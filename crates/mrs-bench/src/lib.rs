//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation (§V) has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md's experiment index); this
//! library holds the common pieces: aligned table printing, CSV output,
//! repeat-and-summarize timing, and the standard experiment scales.

pub mod pi_sweep;
pub mod report;
pub mod table;
pub mod timing;

pub use report::Report;
pub use table::Table;
pub use timing::{median_secs, time_secs};

/// Directory experiment binaries write CSVs into.
pub const RESULTS_DIR: &str = "results";

/// Ensure the results directory exists and return a path inside it.
pub fn results_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(RESULTS_DIR);
    let _ = std::fs::create_dir_all(dir);
    dir.join(name)
}

/// Parse `--flag value`-style options plus positionals from `args`.
/// Tiny on purpose: the binaries take at most a couple of knobs.
pub struct Args {
    positionals: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    /// Parse the process arguments (after argv\[0\]).
    pub fn parse() -> Args {
        let mut positionals = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = iter.next().unwrap_or_default();
                flags.insert(name.to_owned(), value);
            } else {
                positionals.push(a);
            }
        }
        Args { positionals, flags }
    }

    /// Positional argument `i`, parsed, or the default.
    pub fn pos<T: std::str::FromStr>(&self, i: usize, default: T) -> T {
        self.positionals.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    }

    /// Flag `--name`, parsed, or the default.
    pub fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flags.get(name).and_then(|s| s.parse().ok()).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_path_is_under_results_dir() {
        let p = super::results_path("x.csv");
        assert!(p.starts_with(super::RESULTS_DIR));
    }
}
