//! **Fig. 3b** — π estimation with the inner loop in C (ctypes).
//!
//! Paper series: Hadoop (Java) vs Mrs with the Halton loop moved into a C
//! function called via ctypes. Ours: Hadoop-sim vs Mrs + slowpy
//! dispatching one call to a registered native, plus the pure-native tier
//! for reference.
//!
//! The shape: with a compiled inner loop Mrs is faster than Hadoop across
//! the whole sweep — the interpreter no longer loses on the right-hand
//! side, so Hadoop's fixed overhead never gets amortized ("Mrs is much
//! faster than Hadoop, despite the vast majority of Mrs code being in
//! Python").
//!
//! ```text
//! cargo run --release -p mrs-bench --bin fig3b [--max 1e8]
//! ```

use mrs::apps::pi::Kernel;
use mrs_bench::pi_sweep::{hadoop_pi, mrs_pi, sweep_points};
use mrs_bench::{Args, Table};

fn main() {
    let args = Args::parse();
    let max: f64 = args.flag("max", 1e8);
    let tasks: u64 = args.flag("tasks", 16);
    let workers: usize = args.flag("workers", 6);
    let nodes: usize = args.flag("nodes", 21);

    println!("Fig 3b: pi estimation with a native ('C via ctypes') inner loop\n");
    let mut table =
        Table::new(["samples", "hadoop_virtual_s", "mrs_ctypes_s", "mrs_native_s", "mrs_wins"]);
    let mut mrs_always_wins = true;
    for n in sweep_points(max as u64) {
        let t = tasks.min(n.max(1));
        let hadoop = hadoop_pi(n, t, nodes);
        let ctypes = mrs_pi(Kernel::Ctypes, n, t, workers);
        let native = mrs_pi(Kernel::Native, n, t, workers);
        assert_eq!(ctypes.estimate, native.estimate, "tiers must agree");
        assert_eq!(ctypes.estimate, hadoop.estimate, "frameworks must agree");
        let wins = ctypes.secs < hadoop.secs;
        mrs_always_wins &= wins;
        table.row([
            n.to_string(),
            format!("{:.2}", hadoop.secs),
            format!("{:.4}", ctypes.secs),
            format!("{:.4}", native.secs),
            if wins { "yes".to_string() } else { "no".to_string() },
        ]);
    }
    table.emit("fig3b");
    if mrs_always_wins {
        println!("\nMrs+ctypes beats Hadoop at every sample count ✓ (the Fig. 3b shape)");
    } else {
        println!("\nwarning: Hadoop overtook Mrs+ctypes somewhere — unexpected for this figure");
    }
}
