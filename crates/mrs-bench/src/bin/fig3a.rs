//! **Fig. 3a** — π estimation run times, pure-interpreter tiers.
//!
//! Paper series: Hadoop (Java), Mrs/CPython, Mrs/PyPy, samples 1…10⁹.
//! Ours: Hadoop-sim (native kernel, virtual clock), Mrs + slowpy tree
//! interpreter ("CPython"), Mrs + slowpy VM ("PyPy"), measured wall time.
//!
//! The shape to reproduce: on the left (few samples) Mrs wins by two
//! orders of magnitude because Hadoop pays its ~30 s fixed cost; on the
//! right the compiled kernel overtakes the interpreted ones, and the
//! crossover sits where interpreted task time reaches Hadoop's overhead
//! (the paper's "around 32 seconds").
//!
//! ```text
//! cargo run --release -p mrs-bench --bin fig3a [--max-tree 1e6] [--max-vm 1e7] [--max 1e8]
//! ```

use mrs::apps::pi::Kernel;
use mrs_bench::pi_sweep::{hadoop_pi, mrs_pi, sweep_points};
use mrs_bench::{Args, Table};

fn main() {
    let args = Args::parse();
    let max: f64 = args.flag("max", 1e8);
    let max_tree: f64 = args.flag("max-tree", 1e6);
    let max_vm: f64 = args.flag("max-vm", 1e7);
    let tasks: u64 = args.flag("tasks", 16);
    let workers: usize = args.flag("workers", 6);
    let nodes: usize = args.flag("nodes", 21); // the paper's private cluster

    println!("Fig 3a: pi estimation, pure-interpreter tiers ({tasks} map tasks)\n");
    let mut table =
        Table::new(["samples", "hadoop_virtual_s", "mrs_tree_s", "mrs_vm_s", "estimate"]);
    // (samples, tier seconds, hadoop seconds) per tier for crossover math.
    let mut tree_pts: Vec<(u64, f64, f64)> = Vec::new();
    let mut vm_pts: Vec<(u64, f64, f64)> = Vec::new();
    for n in sweep_points(max as u64) {
        let hadoop = hadoop_pi(n, tasks.min(n.max(1)), nodes);
        let tree = (n as f64 <= max_tree)
            .then(|| mrs_pi(Kernel::TreeInterp, n, tasks.min(n.max(1)), workers));
        let vm =
            (n as f64 <= max_vm).then(|| mrs_pi(Kernel::Bytecode, n, tasks.min(n.max(1)), workers));
        if let Some(t) = &tree {
            tree_pts.push((n, t.secs, hadoop.secs));
        }
        if let Some(v) = &vm {
            vm_pts.push((n, v.secs, hadoop.secs));
        }
        table.row([
            n.to_string(),
            format!("{:.2}", hadoop.secs),
            tree.map(|t| format!("{:.4}", t.secs)).unwrap_or_else(|| "-".into()),
            vm.map(|t| format!("{:.4}", t.secs)).unwrap_or_else(|| "-".into()),
            format!("{:.6}", hadoop.estimate),
        ]);
    }
    table.emit("fig3a");
    println!();
    for (label, pts) in [("tree / 'CPython'", tree_pts), ("vm / 'PyPy'", vm_pts)] {
        report_crossover(label, &pts);
    }
    println!("(paper: the interpreted tier loses to Hadoop where task time reaches ~32 s)");
}

/// Print the observed crossover, or project it from the last point's
/// near-linear growth when the sweep was capped before reaching it.
fn report_crossover(label: &str, pts: &[(u64, f64, f64)]) {
    if let Some(&(n, ..)) = pts.iter().find(|&&(_, tier, hadoop)| tier > hadoop) {
        println!("crossover ({label}): Hadoop wins from {n} samples (observed)");
        return;
    }
    match pts.last() {
        Some(&(n, tier, hadoop)) if tier > 0.0 => {
            let projected = (n as f64 * hadoop / tier) as u64;
            println!(
                "crossover ({label}): not reached by {n} samples; projected near {projected} samples (linear extrapolation)"
            );
        }
        _ => println!("crossover ({label}): tier not run"),
    }
}
