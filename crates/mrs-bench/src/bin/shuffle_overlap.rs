//! **Shuffle overlap** — the eager-shuffle experiment: one Zipf WordCount
//! shuffle workload (combiner off, so every map token crosses the data
//! plane) run on identical clusters with eager shuffle on and off, plus a
//! mock-parallel run as the perfect-overlap oracle (every handover is a
//! colocated in-memory transfer, i.e. 100% of reduce input pre-staged).
//! Reports fragments and bytes moved ahead of the barrier, residual
//! fetches still needed at reduce time, and the overlap window (time each
//! warm fragment sat ready before its reduce task consumed it) — and
//! *checks* the claims: eager fragments moved, a positive overlap window,
//! eager wall clock no worse than the cold path, outputs byte-identical
//! across all arms (the implementations-agree discipline applied to the
//! shuffle schedule).
//!
//! ```text
//! cargo run --release -p mrs-bench --bin shuffle_overlap \
//!     [--words 500000] [--maps 16] [--reduces 8] [--slaves 2] [--repeats 3]
//! ```
//!
//! Writes `BENCH_overlap.json` at the repo root and mirrors it under
//! `results/`. Each cluster arm runs `repeats` times and the fastest run
//! is kept (wall clock on a shared host is noisy; the counters are
//! schedule-dependent but the assertions hold for every run).

use corpus::{Corpus, CorpusConfig};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_bench::{Args, Report, Table};
use mrs_core::Record;
use mrs_fs::MemFs;
use std::sync::Arc;
use std::time::Instant;

/// Zipf text totalling roughly `words` tokens, as input records.
fn zipf_input(words: u64) -> Vec<Record> {
    let config = CorpusConfig {
        n_files: 16,
        seed: 11,
        mean_tokens: (words / 16).max(1),
        ..CorpusConfig::default()
    };
    let corpus = Corpus::new(config);
    let docs: Vec<String> = (0..16).map(|i| corpus.document(i)).collect();
    lines_to_records(docs.iter().flat_map(|d| d.lines()))
}

fn sorted(mut records: Vec<Record>) -> Vec<Record> {
    records.sort();
    records
}

struct ArmRun {
    secs: f64,
    eager_fragments: u64,
    eager_bytes: u64,
    residual_fetches: u64,
    overlap_ms: f64,
    output: Vec<Record>,
}

/// One WordCount (combiner off — the full shuffle) on a fresh cluster
/// with the given eager-shuffle setting.
fn cluster_run(
    input: &[Record],
    eager_shuffle: bool,
    maps: usize,
    reduces: usize,
    slaves: usize,
) -> ArmRun {
    let cfg = MasterConfig { eager_shuffle, ..MasterConfig::default() };
    let mut cluster =
        LocalCluster::start(Arc::new(Simple(WordCount)), slaves, DataPlane::Direct, cfg)
            .expect("cluster");
    let t0 = Instant::now();
    let output = {
        let mut job = Job::new(&mut cluster);
        job.map_reduce(input.to_vec(), maps, reduces, false).expect("wordcount")
    };
    let secs = t0.elapsed().as_secs_f64();
    let m = cluster.metrics();
    ArmRun {
        secs,
        eager_fragments: m.eager_fragments(),
        eager_bytes: m.eager_bytes(),
        residual_fetches: m.residual_fetches(),
        overlap_ms: m.overlap_time().as_secs_f64() * 1000.0,
        output: sorted(output),
    }
}

/// Keep the fastest repeat, asserting every repeat returns the same bytes.
fn keep_best(best: &mut Option<ArmRun>, run: ArmRun) {
    match best {
        Some(b) => {
            assert_eq!(b.output, run.output, "repeat run changed the answer");
            if run.secs < b.secs {
                *best = Some(run);
            }
        }
        None => *best = Some(run),
    }
}

/// The same job under the mock-parallel runtime: every reduce input is a
/// colocated in-memory handover — perfect overlap, the oracle ceiling.
fn mock_run(input: &[Record], maps: usize, reduces: usize) -> ArmRun {
    let mut rt = LocalRuntime::mock_parallel_with(
        Arc::new(Simple(WordCount)),
        Arc::new(MemFs::new()),
        CompressMode::On,
    );
    let t0 = Instant::now();
    let output = {
        let mut job = Job::new(&mut rt);
        job.map_reduce(input.to_vec(), maps, reduces, false).expect("wordcount")
    };
    let secs = t0.elapsed().as_secs_f64();
    let m = rt.metrics();
    ArmRun {
        secs,
        eager_fragments: m.eager_fragments(),
        eager_bytes: m.eager_bytes(),
        residual_fetches: m.residual_fetches(),
        overlap_ms: m.overlap_time().as_secs_f64() * 1000.0,
        output: sorted(output),
    }
}

fn main() {
    let args = Args::parse();
    let words: u64 = args.flag("words", 500_000);
    let maps: usize = args.flag("maps", 16);
    let reduces: usize = args.flag("reduces", 8);
    let slaves: usize = args.flag("slaves", 2);
    let repeats: usize = args.flag("repeats", 3);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "Shuffle overlap: Zipf WordCount, ~{words} words, {maps} maps/{reduces} reduces \
         (no combiner), {slaves} slave(s), {cores} core(s), best of {repeats}\n"
    );

    let input = zipf_input(words);
    // Interleave the arms so host-load drift lands on both equally, and
    // keep each arm's fastest repeat.
    let (mut eager, mut off) = (None, None);
    for _ in 0..repeats.max(1) {
        keep_best(&mut eager, cluster_run(&input, true, maps, reduces, slaves));
        keep_best(&mut off, cluster_run(&input, false, maps, reduces, slaves));
    }
    let (eager, off) = (eager.expect("eager arm"), off.expect("off arm"));
    let mock = mock_run(&input, maps, reduces);

    // Implementations-agree across shuffle schedules, byte for byte.
    assert_eq!(eager.output, off.output, "eager shuffle changed the answer");
    assert_eq!(eager.output, mock.output, "mock parallel changed the answer");
    // The eager plane must have engaged: fragments moved before the
    // barrier, and each sat warm for a positive window before its reduce
    // task consumed it.
    assert!(eager.eager_fragments > 0, "eager arm moved no fragments ahead of the barrier");
    assert!(eager.eager_bytes > 0, "eager fragments carried no bytes");
    assert!(eager.overlap_ms > 0.0, "no overlap window: fragments never consumed warm");
    // The oracle arm must be inert.
    assert_eq!(off.eager_fragments, 0, "eager-off arm announced fragments");
    assert_eq!(off.overlap_ms, 0.0, "eager-off arm recorded overlap");
    // Mock parallel is the perfect-overlap limit: every handover counted.
    assert_eq!(
        mock.eager_fragments,
        (maps * reduces) as u64,
        "mock parallel should hand over every map-output fragment in memory"
    );
    assert_eq!(mock.residual_fetches, 0, "mock parallel made a residual fetch");
    // Overlap must not cost wall clock. Best-of-N with interleaved arms
    // still carries scheduling noise on shared 1-core hosts, so allow
    // 25% before calling it a regression — on a multicore host eager
    // should win outright; see EXPERIMENTS.md.
    assert!(
        eager.secs <= off.secs * 1.25,
        "eager shuffle slower than the cold path: eager={:.3}s off={:.3}s",
        eager.secs,
        off.secs
    );

    let speedup = off.secs / eager.secs.max(1e-9);
    let total = (maps * reduces) as u64;
    let warm = total.saturating_sub(eager.residual_fetches);
    let mut table =
        Table::new(["arm", "secs", "eager_frags", "eager_bytes", "residual", "overlap_ms"]);
    for (name, run) in [("eager-on", &eager), ("eager-off", &off), ("mock-parallel", &mock)] {
        table.row([
            name.to_string(),
            format!("{:.3}", run.secs),
            run.eager_fragments.to_string(),
            run.eager_bytes.to_string(),
            run.residual_fetches.to_string(),
            format!("{:.3}", run.overlap_ms),
        ]);
    }
    table.emit("shuffle_overlap");
    println!(
        "\nspeedup: {speedup:.2}x (eager-off vs eager-on); {warm} of {total} reduce-input \
         fragments pre-staged before the barrier"
    );

    Report::new("shuffle_overlap")
        .int("cores", cores as u64)
        .int("words", words)
        .int("maps", maps as u64)
        .int("reduces", reduces as u64)
        .int("slaves", slaves as u64)
        .int("repeats", repeats as u64)
        .secs("eager_secs", eager.secs)
        .secs("off_secs", off.secs)
        .secs("mock_secs", mock.secs)
        .float("speedup", speedup, 3)
        .int("eager_fragments", eager.eager_fragments)
        .int("eager_bytes", eager.eager_bytes)
        .int("residual_fetches", eager.residual_fetches)
        .float("overlap_ms", eager.overlap_ms, 3)
        .int("mock_eager_fragments", mock.eager_fragments)
        .bool("outputs_identical", true)
        .write("overlap", "outputs verified identical across shuffle schedules.");
}
