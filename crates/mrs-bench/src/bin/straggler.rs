//! **Straggler mitigation** — the speculative-execution experiment: one
//! WordCount run on identical 2-slave clusters, with a hidden test hook
//! (`--mrs-test-delay` in the CLI) forcing the first attempt of one map
//! task to sleep far past the speculation cutoff. The speculating arm
//! (`--mrs-speculate on`, the default) must launch a backup on the other
//! slave, commit the backup's completion, and cancel the sleeper; the
//! non-speculating arm (`--mrs-speculate off`) has to sit out the full
//! injected delay. A mock-parallel run is the no-stragglers oracle.
//!
//! Checks the claims: the speculating arm records at least one
//! first-completion win, runs at least 1.3x faster than the off arm,
//! and both arms (and the oracle) produce byte-identical output; the
//! off arm must not launch a single backup.
//!
//! ```text
//! cargo run --release -p mrs-bench --bin straggler \
//!     [--words 200000] [--maps 8] [--reduces 4] [--slots 2] \
//!     [--delay-ms 2000] [--repeats 1]
//! ```
//!
//! Writes `BENCH_straggler.json` at the repo root and mirrors it under
//! `results/`.

use corpus::{Corpus, CorpusConfig};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_bench::{Args, Report, Table};
use mrs_core::Record;
use mrs_fs::MemFs;
use std::sync::Arc;
use std::time::Instant;

/// Zipf text totalling roughly `words` tokens, as input records.
fn zipf_input(words: u64) -> Vec<Record> {
    let config = CorpusConfig {
        n_files: 16,
        seed: 23,
        mean_tokens: (words / 16).max(1),
        ..CorpusConfig::default()
    };
    let corpus = Corpus::new(config);
    let docs: Vec<String> = (0..16).map(|i| corpus.document(i)).collect();
    lines_to_records(docs.iter().flat_map(|d| d.lines()))
}

fn sorted(mut records: Vec<Record>) -> Vec<Record> {
    records.sort();
    records
}

struct ArmRun {
    secs: f64,
    launches: u64,
    wins: u64,
    losses: u64,
    cancelled: u64,
    saved_ms: f64,
    output: Vec<Record>,
}

/// One WordCount on a fresh 2-slave cluster whose slaves both carry the
/// straggler injection (dataset ids are deterministic per job: source = 0,
/// map = 1, so `(1, 0, delay_ms)` delays the first attempt of map task 0
/// on whichever slave draws it; backup attempts run at full speed).
fn cluster_run(
    input: &[Record],
    speculate: SpeculateMode,
    maps: usize,
    reduces: usize,
    slots: usize,
    delay_ms: u64,
) -> ArmRun {
    let cfg = MasterConfig { speculate, ..MasterConfig::default() };
    let mut cluster = LocalCluster::start(Arc::new(Simple(WordCount)), 0, DataPlane::Direct, cfg)
        .expect("cluster");
    let straggly =
        SlaveOptions { slots, test_delays: vec![(1, 0, delay_ms)], ..SlaveOptions::default() };
    cluster.add_slave_with(straggly.clone());
    cluster.add_slave_with(straggly);
    let t0 = Instant::now();
    let output = {
        let mut job = Job::new(&mut cluster);
        job.map_reduce(input.to_vec(), maps, reduces, true).expect("wordcount")
    };
    let secs = t0.elapsed().as_secs_f64();
    let m = cluster.metrics();
    ArmRun {
        secs,
        launches: m.speculative_launches(),
        wins: m.speculative_wins(),
        losses: m.speculative_losses(),
        cancelled: m.cancelled_tasks(),
        saved_ms: m.straggler_time_saved().as_secs_f64() * 1000.0,
        output: sorted(output),
    }
}

/// Keep the fastest repeat, asserting every repeat returns the same bytes.
fn keep_best(best: &mut Option<ArmRun>, run: ArmRun) {
    match best {
        Some(b) => {
            assert_eq!(b.output, run.output, "repeat run changed the answer");
            if run.secs < b.secs {
                *best = Some(run);
            }
        }
        None => *best = Some(run),
    }
}

/// The same job under the mock-parallel runtime: no machines, no
/// stragglers, no speculation — the clean-schedule oracle.
fn mock_run(input: &[Record], maps: usize, reduces: usize) -> ArmRun {
    let mut rt = LocalRuntime::mock_parallel(Arc::new(Simple(WordCount)), Arc::new(MemFs::new()));
    let t0 = Instant::now();
    let output = {
        let mut job = Job::new(&mut rt);
        job.map_reduce(input.to_vec(), maps, reduces, true).expect("wordcount")
    };
    let secs = t0.elapsed().as_secs_f64();
    ArmRun {
        secs,
        launches: 0,
        wins: 0,
        losses: 0,
        cancelled: 0,
        saved_ms: 0.0,
        output: sorted(output),
    }
}

fn main() {
    let args = Args::parse();
    let words: u64 = args.flag("words", 200_000);
    let maps: usize = args.flag("maps", 8);
    let reduces: usize = args.flag("reduces", 4);
    let slots: usize = args.flag("slots", 2);
    let delay_ms: u64 = args.flag("delay-ms", 2000);
    let repeats: usize = args.flag("repeats", 1);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "Straggler mitigation: WordCount, ~{words} words, {maps} maps/{reduces} reduces, \
         2 slaves x {slots} slots, one map attempt delayed {delay_ms}ms, {cores} core(s), \
         best of {repeats}\n"
    );

    let input = zipf_input(words);
    // Interleave the arms so host-load drift lands on both equally, and
    // keep each arm's fastest repeat.
    let (mut on, mut off) = (None, None);
    for _ in 0..repeats.max(1) {
        keep_best(
            &mut on,
            cluster_run(&input, SpeculateMode::default(), maps, reduces, slots, delay_ms),
        );
        keep_best(
            &mut off,
            cluster_run(&input, SpeculateMode::Off, maps, reduces, slots, delay_ms),
        );
    }
    let (on, off) = (on.expect("on arm"), off.expect("off arm"));
    let mock = mock_run(&input, maps, reduces);

    // Implementations-agree across scheduling policies, byte for byte:
    // first-completion-wins arbitration must be invisible to the answer.
    assert_eq!(on.output, off.output, "speculation changed the answer");
    assert_eq!(on.output, mock.output, "mock parallel changed the answer");
    // The speculating arm must actually have raced and won: the sleeper
    // cannot finish for delay_ms, so the backup commits first.
    assert!(
        on.wins >= 1,
        "speculation never won a race: {} launches, {} wins",
        on.launches,
        on.wins
    );
    assert_eq!(
        on.launches,
        on.wins + on.losses,
        "every speculative attempt must resolve as a win or a loss"
    );
    assert!(on.cancelled >= 1, "the losing attempt was never cancelled");
    assert!(on.saved_ms > 0.0, "a won race must bank straggler time saved");
    // The oracle arm must be inert and pay the full injected delay.
    assert_eq!(off.launches, 0, "speculate=off launched a backup");
    assert!(
        off.secs >= delay_ms as f64 / 1000.0,
        "off arm finished before the sleeper woke: {:.3}s",
        off.secs
    );
    // The point of the mechanism: dodging the straggler must buy real
    // wall clock. The injected delay dominates the base job, so 1.3x is
    // conservative even on a loaded 1-core host.
    let speedup = off.secs / on.secs.max(1e-9);
    assert!(
        speedup >= 1.3,
        "speculation bought only {speedup:.2}x (on={:.3}s off={:.3}s)",
        on.secs,
        off.secs
    );

    let mut table =
        Table::new(["arm", "secs", "backups", "wins", "losses", "cancelled", "saved_ms"]);
    for (name, run) in [("speculate-on", &on), ("speculate-off", &off), ("mock-parallel", &mock)] {
        table.row([
            name.to_string(),
            format!("{:.3}", run.secs),
            run.launches.to_string(),
            run.wins.to_string(),
            run.losses.to_string(),
            run.cancelled.to_string(),
            format!("{:.1}", run.saved_ms),
        ]);
    }
    table.emit("straggler");
    println!("\nspeedup: {speedup:.2}x (speculate-off vs speculate-on)");

    Report::new("straggler")
        .int("cores", cores as u64)
        .int("words", words)
        .int("maps", maps as u64)
        .int("reduces", reduces as u64)
        .int("slots", slots as u64)
        .int("delay_ms", delay_ms)
        .int("repeats", repeats as u64)
        .secs("on_secs", on.secs)
        .secs("off_secs", off.secs)
        .secs("mock_secs", mock.secs)
        .float("speedup", speedup, 3)
        .int("speculative_launches", on.launches)
        .int("speculative_wins", on.wins)
        .int("speculative_losses", on.losses)
        .int("cancelled_tasks", on.cancelled)
        .float("straggler_ms_saved", on.saved_ms, 3)
        .int("off_speculative_launches", off.launches)
        .bool("outputs_identical", true)
        .write("straggler", "outputs verified identical across speculation policies.");
}
