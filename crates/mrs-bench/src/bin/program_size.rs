//! **§V-A Programs 1 & 2** — the program-size comparison.
//!
//! The paper argues subjectively by juxtaposing a ~10-line Python
//! WordCount (Program 1) with a ~55-line Java Hadoop WordCount
//! (Program 2). We measure our actual Rust Mrs WordCount (the `MapReduce`
//! impl in `src/apps/wordcount.rs`, the analogue of Program 1) and the
//! actual launch example against the paper's reported counts.
//!
//! ```text
//! cargo run --release -p mrs-bench --bin program_size
//! ```

use mrs_bench::Table;

/// The exact core of our WordCount (kept in sync with
/// `src/apps/wordcount.rs` by the test below in spirit): what a user must
/// write.
const MRS_RUST_WORDCOUNT: &str = r#"
pub struct WordCount;

impl MapReduce for WordCount {
    type K1 = u64;
    type V1 = String;
    type K2 = String;
    type V2 = u64;

    fn map(&self, _line_no: u64, line: String, emit: &mut dyn FnMut(String, u64)) {
        for word in line.split_whitespace() {
            emit(word.to_owned(), 1);
        }
    }

    fn reduce(&self, _word: &String, counts: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
        emit(counts.sum());
    }

    fn has_combiner(&self) -> bool {
        true
    }
}
"#;

/// Program 1 of the paper (Mrs/Python), for reference counting.
const MRS_PYTHON_WORDCOUNT: &str = r#"
import mrs

class WordCount(mrs.MapReduce):
    def map(self, key, value):
        for word in value.split():
            yield (word, 1)

    def reduce(self, key, values):
        yield sum(values)

if __name__ == '__main__':
    mrs.main(WordCount)
"#;

fn loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with('#'))
        .count()
}

fn main() {
    let mut table = Table::new(["program", "non-blank LoC", "source"]);
    table.row([
        "WordCount, Mrs/Python (Program 1)".to_string(),
        loc(MRS_PYTHON_WORDCOUNT).to_string(),
        "paper".to_string(),
    ]);
    table.row([
        "WordCount, Mrs/Rust (this repo)".to_string(),
        loc(MRS_RUST_WORDCOUNT).to_string(),
        "measured".to_string(),
    ]);
    table.row([
        "WordCount, Hadoop/Java (Program 2)".to_string(),
        "55".to_string(),
        "paper (imports omitted)".to_string(),
    ]);
    table.row([
        "launch script, Mrs (Program 3)".to_string(),
        "4 steps".to_string(),
        "paper".to_string(),
    ]);
    table.row([
        "launch script, Hadoop (Program 4)".to_string(),
        "6 steps + HDFS format + config sed".to_string(),
        "paper".to_string(),
    ]);
    table.emit("program_size");
    println!(
        "\nshape: the Mrs program is a map and a reduce and nothing else; the Hadoop\n\
         version carries driver/job/typing boilerplate several times its size."
    );
}
