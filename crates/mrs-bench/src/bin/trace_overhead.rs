//! **Tracing overhead** — the observability-is-free experiment:
//! back-to-back WordCount jobs on identical 2-slave clusters, once with
//! the tracing plane on (the default) and once with `trace: false`,
//! interleaved repeats in alternating order. While each run's jobs
//! execute, a probe thread hits the master's live `/status` and
//! `/metrics` endpoints and validates every Prometheus sample it gets
//! back. The arms are compared on total process CPU time (falling back
//! to wall clock where `/proc` is absent) so a noisy co-tenant host
//! can't masquerade as tracing cost.
//!
//! Checks the claims: tracing costs under 5%, the bounded recorder
//! drops zero events under a real workload, both arms (and the
//! mock-parallel oracle) produce byte-identical output, every attempt's
//! spans cover its dispatch→report window, the critical-path phase
//! buckets sum exactly to the trace wall-clock and that wall-clock
//! agrees with the measured job time, and the Chrome-trace export names
//! one process lane per worker.
//!
//! ```text
//! cargo run --release -p mrs-bench --bin trace_overhead \
//!     [--words 500000] [--maps 8] [--reduces 4] [--slots 2] \
//!     [--jobs 6] [--repeats 5]
//! ```
//!
//! Writes `BENCH_trace.json` at the repo root and mirrors it under
//! `results/`.

use corpus::{Corpus, CorpusConfig};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_bench::{Args, Report, Table};
use mrs_core::Record;
use mrs_fs::MemFs;
use mrs_trace::{AttemptCoverage, JobTrace, Kind, Name, MASTER_PID};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Zipf text totalling roughly `words` tokens, as input records.
fn zipf_input(words: u64) -> Vec<Record> {
    let config = CorpusConfig {
        n_files: 16,
        seed: 23,
        mean_tokens: (words / 16).max(1),
        ..CorpusConfig::default()
    };
    let corpus = Corpus::new(config);
    let docs: Vec<String> = (0..16).map(|i| corpus.document(i)).collect();
    lines_to_records(docs.iter().flat_map(|d| d.lines()))
}

fn sorted(mut records: Vec<Record>) -> Vec<Record> {
    records.sort();
    records
}

/// Every line of a Prometheus text page must be `mrs_* <float>`.
/// Returns the sample count; panics on any malformed line.
fn check_prometheus(body: &str) -> u64 {
    let mut samples = 0;
    for line in body.lines().filter(|l| !l.is_empty()) {
        let mut parts = line.split_whitespace();
        let (name, value) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
        assert!(
            name.starts_with("mrs_") && parts.next().is_none(),
            "malformed metrics line: {line:?}"
        );
        value.parse::<f64>().unwrap_or_else(|_| panic!("bad sample value in {line:?}"));
        samples += 1;
    }
    assert!(samples > 0, "empty metrics page");
    samples
}

/// Cumulative user+system CPU of this whole process in clock ticks,
/// from `/proc/self/stat`; 0 when unavailable (non-Linux). CPU time is
/// what the overhead comparison wants on a shared host: a co-tenant
/// stealing the core inflates wall clock but not our ticks, while real
/// tracing work (recording, draining, piggybacking deltas) does.
fn cpu_ticks() -> u64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else { return 0 };
    // utime/stime are fields 14/15; split after the parenthesised comm,
    // which may itself contain spaces.
    let rest = stat.rsplit_once(')').map(|(_, r)| r).unwrap_or(&stat);
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let tick = |i: usize| fields.get(i).and_then(|s| s.parse().ok()).unwrap_or(0u64);
    tick(11) + tick(12)
}

#[derive(Default)]
struct Probe {
    status: String,
    metrics: String,
    polls: u64,
}

struct ArmRun {
    secs: f64,
    cpu: u64,
    output: Vec<Record>,
    trace: Option<JobTrace>,
    probe: Probe,
}

/// One WordCount on a fresh 2-slave cluster. A probe thread polls
/// `/status` and `/metrics` while the job runs (plus one guaranteed
/// fetch after it finishes) — on *both* arms, because the live HTTP
/// plane is independent of tracing and probing only one arm would bill
/// its CPU time to the tracing column. With `trace` on, the assembled
/// job trace is drained before teardown. Speculation is pinned off so
/// both arms schedule identically and the comparison is apples-to-apples.
fn cluster_run(
    input: &[Record],
    trace: bool,
    jobs: usize,
    maps: usize,
    reduces: usize,
    slots: usize,
) -> ArmRun {
    let cfg = MasterConfig { trace, speculate: SpeculateMode::Off, ..MasterConfig::default() };
    let options = SlaveOptions { slots, ..SlaveOptions::default() };
    let mut cluster =
        LocalCluster::start_with(Arc::new(Simple(WordCount)), 2, DataPlane::Direct, cfg, options)
            .expect("cluster");

    let authority = cluster.http_authority();
    let fetch = |path: &str| -> Option<String> {
        match mrs_rpc::HttpClient::request(&authority, "GET", path, &[]) {
            Ok((200, body)) => Some(String::from_utf8_lossy(&body).into_owned()),
            _ => None,
        }
    };
    let shared = Arc::new(Mutex::new(Probe::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let prober = {
        let authority = authority.clone();
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Fixed poll budget: the probe must cost the same CPU on
            // both arms, not scale with how long a noisy host stretches
            // the run.
            let mut budget = 10;
            while !stop.load(Ordering::Relaxed) && budget > 0 {
                budget -= 1;
                std::thread::sleep(Duration::from_millis(25));
                let get =
                    |path: &str| match mrs_rpc::HttpClient::request(&authority, "GET", path, &[]) {
                        Ok((200, body)) => Some(String::from_utf8_lossy(&body).into_owned()),
                        _ => None,
                    };
                let (status, metrics) = (get("/status"), get("/metrics"));
                let mut p = shared.lock().unwrap();
                if let Some(s) = status {
                    p.status = s;
                    p.polls += 1;
                }
                if let Some(m) = metrics {
                    check_prometheus(&m);
                    p.metrics = m;
                }
            }
        })
    };

    // Several jobs back to back on the one cluster: each timing sample
    // carries `jobs` worth of compute and zero startup cost, so the
    // on/off comparison measures the tracing plane, not thread-spawn and
    // port-bind jitter.
    let t0 = Instant::now();
    let cpu0 = cpu_ticks();
    let mut output = None;
    for _ in 0..jobs.max(1) {
        let out = {
            let mut job = Job::new(&mut cluster);
            sorted(job.map_reduce(input.to_vec(), maps, reduces, true).expect("wordcount"))
        };
        match &output {
            Some(prev) => assert_eq!(*prev, out, "repeat job changed the answer"),
            None => output = Some(out),
        }
    }
    let cpu = cpu_ticks() - cpu0;
    let secs = t0.elapsed().as_secs_f64();
    let output = output.expect("at least one job");

    stop.store(true, Ordering::Relaxed);
    prober.join().expect("probe thread");
    let mut probe = Arc::try_unwrap(shared).ok().expect("probe refs").into_inner().unwrap();
    // The probe may never land on a fast run; the endpoints stay up
    // until teardown, so sample them at least once either way.
    if probe.metrics.is_empty() {
        probe.metrics = fetch("/metrics").expect("metrics page");
        check_prometheus(&probe.metrics);
    }
    if probe.status.is_empty() {
        probe.status = fetch("/status").expect("status page");
    }

    let trace = cluster.take_trace();
    ArmRun { secs, cpu, output, trace, probe }
}

/// Keep the fastest repeat, asserting every repeat returns the same bytes.
fn keep_best(best: &mut Option<ArmRun>, run: ArmRun) {
    match best {
        Some(b) => {
            assert_eq!(b.output, run.output, "repeat run changed the answer");
            if run.secs < b.secs {
                *best = Some(run);
            }
        }
        None => *best = Some(run),
    }
}

/// The same job under the mock-parallel runtime — the oracle answer.
fn mock_output(input: &[Record], maps: usize, reduces: usize) -> Vec<Record> {
    let mut rt = LocalRuntime::mock_parallel(Arc::new(Simple(WordCount)), Arc::new(MemFs::new()));
    let mut job = Job::new(&mut rt);
    sorted(job.map_reduce(input.to_vec(), maps, reduces, true).expect("wordcount"))
}

fn main() {
    let args = Args::parse();
    let words: u64 = args.flag("words", 500_000);
    let maps: usize = args.flag("maps", 8);
    let reduces: usize = args.flag("reduces", 4);
    let slots: usize = args.flag("slots", 2);
    let jobs: usize = args.flag("jobs", 6);
    let repeats: usize = args.flag("repeats", 5);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "Tracing overhead: WordCount, ~{words} words, {maps} maps/{reduces} reduces, \
         2 slaves x {slots} slots, {jobs} jobs per cluster, {cores} core(s), \
         best of {repeats}\n"
    );

    let input = zipf_input(words);
    // One discarded warmup run pages in the binary and warms the
    // allocator, then interleave the arms in alternating order so
    // host-load drift and any first-of-pair cost land on both equally;
    // keep each arm's fastest repeat.
    drop(cluster_run(&input, true, 1, maps, reduces, slots));
    let (mut on, mut off) = (None, None);
    let (mut on_cpu, mut off_cpu) = (u64::MAX, u64::MAX);
    for i in 0..repeats.max(1) {
        let run = |on: &mut _, cpu: &mut u64, traced| {
            let r = cluster_run(&input, traced, jobs, maps, reduces, slots);
            *cpu = (*cpu).min(r.cpu);
            keep_best(on, r);
        };
        // Alternate the pair order so any first-of-pair cost (allocator
        // state, page cache) lands on both arms equally.
        if i % 2 == 0 {
            run(&mut on, &mut on_cpu, true);
            run(&mut off, &mut off_cpu, false);
        } else {
            run(&mut off, &mut off_cpu, false);
            run(&mut on, &mut on_cpu, true);
        }
    }
    let (on, off) = (on.expect("on arm"), off.expect("off arm"));
    let mock = mock_output(&input, maps, reduces);

    // Tracing must be invisible to the answer, byte for byte.
    assert_eq!(on.output, off.output, "tracing changed the answer");
    assert_eq!(on.output, mock, "mock parallel changed the answer");
    assert!(off.trace.is_none(), "trace=false still assembled a trace");

    // The recorder is bounded; a real workload must not overflow it.
    let trace = on.trace.expect("traced arm has a trace");
    assert_eq!(trace.dropped, 0, "recorder dropped events");

    // One process row per worker: the master plus both slaves must have
    // recorded attempt spans, and the Chrome export must name them all.
    let attempts = |pid: u32| {
        trace.count(|g| {
            g.pid == pid
                && matches!(g.event.kind, Kind::Begin)
                && matches!(g.event.name, Name::Attempt)
        })
    };
    let span_attempts = attempts(1) + attempts(2);
    assert!(attempts(1) >= 1, "slave 0 recorded no attempt spans");
    assert!(attempts(2) >= 1, "slave 1 recorded no attempt spans");
    assert_eq!(attempts(MASTER_PID), 0, "master must not own execution spans");
    assert_eq!(span_attempts, jobs * (maps + reduces), "one attempt span per task");
    let chrome = trace.chrome_json();
    for needle in ["\"traceEvents\"", "\"ph\":\"B\"", "master", "slave 0", "slave 1"] {
        assert!(chrome.contains(needle), "chrome export missing {needle}");
    }

    // Spans must cover each attempt's dispatch→report window: ≥95%, with
    // an absolute floor for the uncovered remainder — report-poll latency
    // and clock-offset error are control-plane costs, not tracing gaps,
    // and on an oversubscribed host they can dominate a short window.
    let coverage = trace.coverage();
    assert_eq!(coverage.len(), jobs * (maps + reduces), "one coverage window per attempt");
    let min_coverage = coverage.iter().map(AttemptCoverage::fraction).fold(f64::INFINITY, f64::min);
    for c in &coverage {
        assert!(
            c.fraction() >= 0.95 || c.window_us - c.covered_us < 250_000,
            "attempt spans cover only {:.1}% of its window: {c:?}",
            c.fraction() * 100.0
        );
    }

    // The critical-path report partitions the trace wall-clock exactly,
    // and that wall-clock must agree with the measured job time.
    let phases = trace.critical_path();
    let bucket_sum: u64 = phases.buckets().iter().map(|(_, us)| *us).sum();
    assert_eq!(bucket_sum, phases.wall_us, "phase buckets must partition the wall clock");
    let wall_secs = phases.wall_us as f64 / 1e6;
    assert!(
        (wall_secs - on.secs).abs() <= 0.10 * on.secs + 0.05,
        "trace wall-clock {wall_secs:.3}s disagrees with measured {:.3}s",
        on.secs
    );

    // The live plane must have answered with well-formed pages.
    let metrics_lines = check_prometheus(&on.probe.metrics);
    assert!(on.probe.status.contains("mrs master:"), "status page missing header");
    assert!(on.probe.metrics.contains("mrs_trace_dropped_events 0"), "dropped gauge missing");

    // The headline claim: the whole plane costs under 5%. Compared on
    // each arm's *minimum* process-CPU repeat — on a shared host, wall
    // clock measures the co-tenants, and even CPU inflates with bursts
    // (a stretched run spends more ticks in poll loops), but that noise
    // only ever adds ticks, so the minima are the clean samples.
    // Off-Linux (no /proc) the ticks read 0 and we fall back to the
    // best wall-clock of each arm.
    let overhead = if on_cpu > 0 && off_cpu > 0 && on_cpu < u64::MAX && off_cpu < u64::MAX {
        on_cpu as f64 / off_cpu as f64 - 1.0
    } else {
        on.secs / off.secs.max(1e-9) - 1.0
    };
    // The floor is CPU-accounting granularity: arm minima land in
    // different quiet windows, and a handful of 10ms scheduler ticks of
    // skew between them is measurement, not tracing.
    let within_noise_floor = on_cpu.saturating_sub(off_cpu) < 15;
    assert!(
        overhead < 0.05 || within_noise_floor,
        "tracing overhead {:.1}% exceeds 5% (cpu on={on_cpu} off={off_cpu} ticks, \
         wall on={:.3}s off={:.3}s)",
        overhead * 100.0,
        on.secs,
        off.secs
    );

    let mut table = Table::new(["arm", "secs", "events", "dropped"]);
    table.row([
        "trace-on".into(),
        format!("{:.3}", on.secs),
        trace.events.len().to_string(),
        trace.dropped.to_string(),
    ]);
    table.row(["trace-off".into(), format!("{:.3}", off.secs), "-".into(), "-".into()]);
    table.emit("trace_overhead");
    println!(
        "\noverhead: {:.2}% | min span coverage: {:.1}% | mid-run metric polls: {}\n",
        overhead * 100.0,
        min_coverage * 100.0,
        on.probe.polls
    );
    println!("{}", phases.render());

    Report::new("trace")
        .int("cores", cores as u64)
        .int("words", words)
        .int("maps", maps as u64)
        .int("reduces", reduces as u64)
        .int("slots", slots as u64)
        .int("jobs_per_cluster", jobs as u64)
        .int("repeats", repeats as u64)
        .secs("traced_secs", on.secs)
        .secs("untraced_secs", off.secs)
        .int("traced_cpu_ticks_min", on_cpu)
        .int("untraced_cpu_ticks_min", off_cpu)
        .float("overhead_frac", overhead, 4)
        .int("trace_events", trace.events.len() as u64)
        .int("dropped_events", trace.dropped)
        .int("attempt_spans", span_attempts as u64)
        .float("min_coverage_frac", min_coverage, 4)
        .secs("trace_wall_secs", wall_secs)
        .int("metrics_lines", metrics_lines)
        .int("status_polls", on.probe.polls)
        .bool("outputs_identical", true)
        .write("trace", "tracing on/off outputs verified byte-identical; overhead under 5%.");
}
