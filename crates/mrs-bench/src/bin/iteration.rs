//! **Iteration** — the fused-ReduceMap experiment: an iterative PSO job
//! (Rosenbrock, subswarm islands — the paper's Fig. 4 workload at smoke
//! scale) driven once as the classic map/reduce chain and once with every
//! interior round fused into a single ReduceMap op. Fusion halves the
//! scheduling rounds and skips the materialized reduce output, so the
//! per-iteration framework overhead — the quantity the paper's serial-phase
//! analysis bounds — drops; dataset lifetime GC keeps the live-dataset
//! footprint O(1) in the iteration count either way. Verifies byte-identical
//! output across fusion modes and across planes (cluster vs pool vs serial).
//!
//! ```text
//! cargo run --release -p mrs-bench --bin iteration \
//!     [--iters 50] [--particles 20] [--slaves 2] [--slots 2]
//! ```
//!
//! Writes `BENCH_iteration.json` at the repo root and mirrors it under
//! `results/`. The headline ratio is per-iteration wall time unfused vs
//! fused on the RPC cluster; with tiny tasks the gap is control-plane
//! rounds, not compute, so it shows on a 1-core host too.

use mrs::prelude::*;
use mrs_bench::{Args, Report, Table};
use mrs_core::Record;
use mrs_pso::mapreduce::PsoProgram;
use mrs_pso::PsoConfig;
use mrs_runtime::{LocalRuntime, SerialRuntime};
use std::sync::Arc;
use std::time::Instant;

fn pso_config(particles: u64) -> PsoConfig {
    PsoConfig::rosenbrock_250(particles, 404)
}

struct ClusterRun {
    total_secs: f64,
    rpcs: u64,
    tasks: u64,
    fused_ops: u64,
    reducemap_tasks: u64,
    datasets_freed: u64,
    peak_live: u64,
    output: Vec<Record>,
}

/// Drive `iters` island iterations on a fresh RPC cluster, fused or not.
fn run_cluster(fused: bool, iters: u64, particles: u64, slaves: usize, slots: usize) -> ClusterRun {
    let mut cluster = LocalCluster::start_with(
        Arc::new(PsoProgram::new(pso_config(particles), 1)),
        slaves,
        DataPlane::Direct,
        MasterConfig::default(),
        SlaveOptions { slots, ..SlaveOptions::default() },
    )
    .expect("cluster");
    let (total_secs, output) = {
        let mut job = Job::new(&mut cluster);
        let program = PsoProgram::new(pso_config(particles), 1);
        let t0 = Instant::now();
        let output = program.run_islands(&mut job, iters, fused).expect("run");
        (t0.elapsed().as_secs_f64(), output)
    };
    let rpcs = cluster.control_requests();
    let m = cluster.metrics();
    ClusterRun {
        total_secs,
        rpcs,
        tasks: m.tasks_executed(),
        fused_ops: m.fused_ops(),
        reducemap_tasks: m.reducemap_tasks(),
        datasets_freed: m.datasets_freed(),
        peak_live: m.peak_live_datasets(),
        output,
    }
}

fn main() {
    let args = Args::parse();
    let iters: u64 = args.flag("iters", 50);
    let particles: u64 = args.flag("particles", 20);
    let slaves: usize = args.flag("slaves", 2);
    let slots: usize = args.flag("slots", 2);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let islands = pso_config(particles).topology.islands(particles);

    println!(
        "Iteration rounds: Rosenbrock-250 PSO, {particles} particles in {islands} islands, \
         {iters} iterations, {slaves} slave(s) x {slots} slot(s), {cores} core(s)\n"
    );

    let unfused = run_cluster(false, iters, particles, slaves, slots);
    let fused = run_cluster(true, iters, particles, slaves, slots);

    // Byte-identity: fusion must be a pure perf transform, and the other
    // planes must agree with the cluster.
    assert_eq!(fused.output, unfused.output, "fusion changed the answer");
    let pool_fused = {
        let mut rt = LocalRuntime::pool(Arc::new(PsoProgram::new(pso_config(particles), 1)), 4);
        let program = PsoProgram::new(pso_config(particles), 1);
        program.run_islands(&mut Job::new(&mut rt), iters, true).expect("pool run")
    };
    assert_eq!(pool_fused, fused.output, "pool plane disagreed with the cluster");
    let serial_unfused = {
        let mut rt = SerialRuntime::new(Arc::new(PsoProgram::new(pso_config(particles), 1)));
        let program = PsoProgram::new(pso_config(particles), 1);
        program.run_islands(&mut Job::new(&mut rt), iters, false).expect("serial run")
    };
    assert_eq!(serial_unfused, fused.output, "serial plane disagreed with the cluster");

    // The fusion and GC machinery must actually have engaged.
    assert_eq!(fused.fused_ops, iters - 1, "every interior round should fuse");
    assert_eq!(fused.reducemap_tasks, (iters - 1) * islands, "one fused task per partition");
    assert_eq!(unfused.fused_ops, 0, "unfused run must not fuse");
    assert!(fused.datasets_freed > 0, "lifetime GC never freed a dataset (fused)");
    assert!(unfused.datasets_freed > 0, "lifetime GC never freed a dataset (unfused)");
    // GC bounds the footprint: peak live datasets is a small constant,
    // independent of the iteration count.
    assert!(fused.peak_live <= 4, "fused peak live datasets {} not O(1)", fused.peak_live);
    assert!(unfused.peak_live <= 5, "unfused peak live datasets {} not O(1)", unfused.peak_live);
    // One fewer scheduling round and materialized dataset per interior
    // iteration: exactly `islands` fewer tasks per fused round.
    assert_eq!(
        unfused.tasks - fused.tasks,
        (iters - 1) * islands,
        "fusion should eliminate one task per partition per interior round"
    );
    assert!(
        fused.rpcs < unfused.rpcs,
        "fusion must reduce control RPCs: fused={} unfused={}",
        fused.rpcs,
        unfused.rpcs
    );

    let mut table = Table::new(["mode", "iter_ms", "total_s", "rpcs", "tasks", "peak_live"]);
    for (name, run) in [("unfused", &unfused), ("fused", &fused)] {
        table.row([
            name.to_string(),
            format!("{:.3}", run.total_secs * 1e3 / iters as f64),
            format!("{:.3}", run.total_secs),
            run.rpcs.to_string(),
            run.tasks.to_string(),
            run.peak_live.to_string(),
        ]);
    }
    table.emit("iteration");

    let speedup = unfused.total_secs / fused.total_secs;
    println!(
        "\nfused counters: fused_ops={} reducemap_tasks={} datasets_freed={} peak_live={}",
        fused.fused_ops, fused.reducemap_tasks, fused.datasets_freed, fused.peak_live
    );
    println!("per-iteration speedup from fusion: {speedup:.2}x");
    assert!(
        speedup >= 1.3,
        "fusion should cut per-iteration overhead >=1.3x, measured {speedup:.2}x \
         (unfused {:.3}s vs fused {:.3}s)",
        unfused.total_secs,
        fused.total_secs
    );

    Report::new("iteration")
        .int("cores", cores as u64)
        .int("iters", iters)
        .int("particles", particles)
        .int("islands", islands)
        .int("slaves", slaves as u64)
        .int("slots", slots as u64)
        .secs("unfused_total_secs", unfused.total_secs)
        .secs("fused_total_secs", fused.total_secs)
        .secs("unfused_iter_secs", unfused.total_secs / iters as f64)
        .secs("fused_iter_secs", fused.total_secs / iters as f64)
        .float("speedup", speedup, 3)
        .int("unfused_rpcs", unfused.rpcs)
        .int("fused_rpcs", fused.rpcs)
        .int("unfused_tasks", unfused.tasks)
        .int("fused_tasks", fused.tasks)
        .int("fused_ops", fused.fused_ops)
        .int("reducemap_tasks", fused.reducemap_tasks)
        .int("unfused_datasets_freed", unfused.datasets_freed)
        .int("fused_datasets_freed", fused.datasets_freed)
        .int("unfused_peak_live_datasets", unfused.peak_live)
        .int("fused_peak_live_datasets", fused.peak_live)
        .bool("outputs_identical", true)
        .write("iteration", "outputs verified identical across fusion modes and planes.");
}
