//! **Per-iteration overhead** — the abstract's headline numbers.
//!
//! "Mrs demonstrates per-iteration overhead of about 0.3 seconds for
//! Particle Swarm Optimization, while Hadoop takes at least 30 seconds for
//! each MapReduce operation, a difference of two orders of magnitude."
//!
//! This binary measures the pure framework cost of one map+reduce round
//! with near-zero user compute, per runtime, and compares against the
//! Hadoop simulator's virtual cost for the identical job.
//!
//! ```text
//! cargo run --release -p mrs-bench --bin overhead_table [--iters 20] [--tasks 8]
//! ```

use hadoop_sim::cluster::JobSpec;
use hadoop_sim::hdfs::InputProfile;
use hadoop_sim::{HadoopCluster, SimConfig};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_bench::{Args, Table};
use mrs_fs::MemFs;
use mrs_runtime::{LocalCluster, LocalRuntime};
use std::sync::Arc;

fn tiny_input(tasks: usize) -> Vec<mrs_core::Record> {
    let lines: Vec<String> = (0..tasks).map(|i| format!("w{i}")).collect();
    lines_to_records(lines.iter().map(String::as_str))
}

/// Run `iters` chained map+reduce rounds and return seconds per round.
fn per_iteration(job: &mut Job, tasks: usize, iters: u64) -> f64 {
    let src = job.local_data(tiny_input(tasks), tasks).expect("src");
    let t0 = std::time::Instant::now();
    let mut ds = src;
    for _ in 0..iters {
        let m = job.map_data(ds, 0, tasks, false).expect("map");
        ds = job.reduce_data(m, 0).expect("reduce");
        // WordCount output (word, count) feeds the next map as (K1=word?)
        // — types differ, so instead re-seed each round from the source.
        job.wait(ds).expect("round");
        ds = src;
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let args = Args::parse();
    let iters: u64 = args.flag("iters", 20);
    let tasks: usize = args.flag("tasks", 8);

    println!("Per-iteration framework overhead, near-zero compute ({tasks} map + {tasks} reduce tasks)\n");
    let mut table = Table::new(["runtime", "seconds_per_iteration", "clock"]);

    {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        let s = per_iteration(&mut Job::new(&mut rt), tasks, iters);
        table.row(["mrs serial".to_string(), format!("{s:.6}"), "measured".into()]);
    }
    {
        let mut rt =
            LocalRuntime::mock_parallel(Arc::new(Simple(WordCount)), Arc::new(MemFs::new()));
        let s = per_iteration(&mut Job::new(&mut rt), tasks, iters);
        table.row(["mrs mock-parallel".to_string(), format!("{s:.6}"), "measured".into()]);
    }
    {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 6);
        let s = per_iteration(&mut Job::new(&mut rt), tasks, iters);
        table.row(["mrs pool(6)".to_string(), format!("{s:.6}"), "measured".into()]);
    }
    {
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            4,
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .expect("cluster");
        let s = per_iteration(&mut Job::new(&mut cluster), tasks, iters);
        table.row(["mrs cluster(4, rpc)".to_string(), format!("{s:.6}"), "measured".into()]);
    }
    {
        let cluster = HadoopCluster::new(4, SimConfig::default()).expect("sim");
        let program = Simple(WordCount);
        let report = cluster
            .run_job(&JobSpec {
                program: &program,
                map_func: 0,
                reduce_func: 0,
                combine: false,
                input: tiny_input(tasks),
                input_profile: InputProfile::single_file(256),
                n_maps: tasks,
                n_reduces: tasks,
            })
            .expect("hadoop job");
        table.row([
            "hadoop (simulated)".to_string(),
            format!("{:.3}", report.total.as_secs_f64()),
            "virtual".into(),
        ]);
    }
    table.emit("overhead_table");
    println!(
        "\npaper reference: Mrs ≈0.3 s per iteration (Python), Hadoop ≥30 s per MapReduce\n\
         operation. The Rust Mrs runtimes land in the micro-to-millisecond range; the\n\
         two-orders-of-magnitude gap to Hadoop is preserved (and then some)."
    );
}
