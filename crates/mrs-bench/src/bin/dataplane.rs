//! **Data plane** — the compressed-shuffle experiment: one Zipf WordCount
//! shuffle workload (combiner off, so every map token crosses the data
//! plane) run on identical clusters with compression on and off, plus a
//! mock-parallel run for the colocated short-circuit path. Reports bytes
//! before compression vs bytes actually moved over HTTP, the compression
//! ratio, short-circuited (loopback-free) fetches, and checksum retries —
//! and *checks* the claims: compressed wire bytes at least 2x below raw,
//! short circuits engaged, zero checksum failures, outputs byte-identical
//! across all arms (the implementations-agree discipline applied to the
//! shuffle codec).
//!
//! ```text
//! cargo run --release -p mrs-bench --bin dataplane \
//!     [--words 500000] [--maps 16] [--reduces 8] [--slaves 2]
//! ```
//!
//! Writes `BENCH_dataplane.json` at the repo root and mirrors it under
//! `results/`. Wire counters are consumer-side: they count real HTTP body
//! bytes of bucket fetches, so short-circuited local reads contribute
//! nothing — exactly the traffic a real network would carry.

use corpus::{Corpus, CorpusConfig};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_bench::{Args, Report, Table};
use mrs_core::Record;
use mrs_fs::MemFs;
use std::sync::Arc;
use std::time::Instant;

/// Zipf text totalling roughly `words` tokens, as input records.
fn zipf_input(words: u64) -> Vec<Record> {
    let config = CorpusConfig {
        n_files: 16,
        seed: 11,
        mean_tokens: (words / 16).max(1),
        ..CorpusConfig::default()
    };
    let corpus = Corpus::new(config);
    let docs: Vec<String> = (0..16).map(|i| corpus.document(i)).collect();
    lines_to_records(docs.iter().flat_map(|d| d.lines()))
}

fn sorted(mut records: Vec<Record>) -> Vec<Record> {
    records.sort();
    records
}

struct ArmRun {
    secs: f64,
    bytes_pre_compress: u64,
    bytes_on_wire: u64,
    shortcircuit_fetches: u64,
    checksum_retries: u64,
    output: Vec<Record>,
}

/// One WordCount (combiner off — the full shuffle) on a fresh cluster
/// with the given compression policy.
fn cluster_run(
    input: &[Record],
    compress: CompressMode,
    maps: usize,
    reduces: usize,
    slaves: usize,
) -> ArmRun {
    let cfg = MasterConfig { compress, ..MasterConfig::default() };
    let mut cluster =
        LocalCluster::start(Arc::new(Simple(WordCount)), slaves, DataPlane::Direct, cfg)
            .expect("cluster");
    let t0 = Instant::now();
    let output = {
        let mut job = Job::new(&mut cluster);
        job.map_reduce(input.to_vec(), maps, reduces, false).expect("wordcount")
    };
    let secs = t0.elapsed().as_secs_f64();
    let m = cluster.metrics();
    ArmRun {
        secs,
        bytes_pre_compress: m.bytes_pre_compress(),
        bytes_on_wire: m.bytes_on_wire(),
        shortcircuit_fetches: m.shortcircuit_fetches(),
        checksum_retries: m.checksum_retries(),
        output: sorted(output),
    }
}

/// The same job under the mock-parallel runtime: every reduce input is a
/// colocated in-memory handover, the pure short-circuit regime.
fn mock_run(input: &[Record], maps: usize, reduces: usize) -> ArmRun {
    let mut rt = LocalRuntime::mock_parallel_with(
        Arc::new(Simple(WordCount)),
        Arc::new(MemFs::new()),
        CompressMode::On,
    );
    let t0 = Instant::now();
    let output = {
        let mut job = Job::new(&mut rt);
        job.map_reduce(input.to_vec(), maps, reduces, false).expect("wordcount")
    };
    let secs = t0.elapsed().as_secs_f64();
    let m = rt.metrics();
    ArmRun {
        secs,
        bytes_pre_compress: m.bytes_pre_compress(),
        bytes_on_wire: m.bytes_on_wire(),
        shortcircuit_fetches: m.shortcircuit_fetches(),
        checksum_retries: m.checksum_retries(),
        output: sorted(output),
    }
}

fn main() {
    let args = Args::parse();
    let words: u64 = args.flag("words", 500_000);
    let maps: usize = args.flag("maps", 16);
    let reduces: usize = args.flag("reduces", 8);
    let slaves: usize = args.flag("slaves", 2);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "Data plane: Zipf WordCount, ~{words} words, {maps} maps/{reduces} reduces \
         (no combiner), {slaves} slave(s), {cores} core(s)\n"
    );

    let input = zipf_input(words);
    let on = cluster_run(&input, CompressMode::On, maps, reduces, slaves);
    let off = cluster_run(&input, CompressMode::Off, maps, reduces, slaves);
    let mock = mock_run(&input, maps, reduces);

    // Implementations-agree across codec settings, byte for byte.
    assert_eq!(on.output, off.output, "compression changed the answer");
    assert_eq!(on.output, mock.output, "mock parallel changed the answer");
    // The codec must have engaged, cleanly.
    assert!(
        on.bytes_on_wire < on.bytes_pre_compress,
        "compression must shrink the Zipf shuffle: wire={} pre={}",
        on.bytes_on_wire,
        on.bytes_pre_compress
    );
    assert!(
        on.bytes_on_wire * 2 <= off.bytes_on_wire,
        "expected >= 2x wire reduction: on={} off={}",
        on.bytes_on_wire,
        off.bytes_on_wire
    );
    assert_eq!(
        off.bytes_on_wire, off.bytes_pre_compress,
        "compression-off wire bytes must equal raw bytes"
    );
    assert!(mock.shortcircuit_fetches > 0, "mock parallel never short-circuited a fetch");
    assert_eq!(mock.bytes_on_wire, 0, "mock parallel moved bytes over a wire");
    for (name, run) in [("on", &on), ("off", &off), ("mock", &mock)] {
        assert_eq!(run.checksum_retries, 0, "checksum failures in arm {name}");
    }

    let ratio = off.bytes_on_wire as f64 / on.bytes_on_wire.max(1) as f64;
    let mut table =
        Table::new(["arm", "secs", "pre_compress_b", "on_wire_b", "shortcircuit", "retries"]);
    for (name, run) in [("compress-on", &on), ("compress-off", &off), ("mock-parallel", &mock)] {
        table.row([
            name.to_string(),
            format!("{:.3}", run.secs),
            run.bytes_pre_compress.to_string(),
            run.bytes_on_wire.to_string(),
            run.shortcircuit_fetches.to_string(),
            run.checksum_retries.to_string(),
        ]);
    }
    table.emit("dataplane");
    println!("\nwire reduction: {ratio:.2}x (compress-off vs compress-on)");

    Report::new("dataplane")
        .int("cores", cores as u64)
        .int("words", words)
        .int("maps", maps as u64)
        .int("reduces", reduces as u64)
        .int("slaves", slaves as u64)
        .secs("on_secs", on.secs)
        .secs("off_secs", off.secs)
        .secs("mock_secs", mock.secs)
        .int("on_bytes_pre_compress", on.bytes_pre_compress)
        .int("on_bytes_on_wire", on.bytes_on_wire)
        .int("off_bytes_on_wire", off.bytes_on_wire)
        .float("wire_reduction", ratio, 3)
        .int("on_shortcircuit_fetches", on.shortcircuit_fetches)
        .int("mock_shortcircuit_fetches", mock.shortcircuit_fetches)
        .int("checksum_retries", 0u32)
        .bool("outputs_identical", true)
        .write("dataplane", "outputs verified identical across codec settings.");
}
