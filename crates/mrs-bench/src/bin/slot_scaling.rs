//! **Slot scaling** — throughput of one slave as its task-slot count
//! grows, the capacity-aware-scheduling experiment. Two workloads:
//!
//! * Zipf WordCount — data-parallel, compute-bound in the map stage
//!   (tokenize + hash); scales with slots up to the host's core count.
//! * PSO — iterative (10 outer iterations by default); per-iteration
//!   barriers and tiny tasks expose scheduling overhead, the regime the
//!   paper's iterative jobs live in.
//!
//! The bench also *checks* the scaling is sound: each configuration's
//! output must be byte-identical to the 1-slot baseline (the
//! implementations-agree discipline applied to the worker pool).
//!
//! ```text
//! cargo run --release -p mrs-bench --bin slot_scaling \
//!     [--words 120000] [--pso-iters 10]
//! ```
//!
//! Writes `BENCH_slots.json` at the repo root and mirrors it under
//! `results/`. On a single-core host the speedup columns are flat (~1x);
//! the JSON records `cores` so readers can tell the hardware ceiling from
//! a scheduler regression.

use corpus::{Corpus, CorpusConfig};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_bench::{Args, Report, Table};
use mrs_core::Record;
use mrs_pso::mapreduce::{PsoProgram, FUNC_PARTICLE};
use mrs_pso::{Objective, PsoConfig, Topology};
use std::sync::Arc;
use std::time::Instant;

const SLOT_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WC_MAPS: usize = 16;
const WC_REDUCES: usize = 8;
const PSO_PARTS: usize = 8;

fn cluster_with_slots(program: Arc<dyn Program>, slots: usize) -> LocalCluster {
    LocalCluster::start_with(
        program,
        1,
        DataPlane::Direct,
        MasterConfig::default(),
        SlaveOptions { slots, ..SlaveOptions::default() },
    )
    .expect("cluster")
}

fn sorted(mut records: Vec<Record>) -> Vec<Record> {
    records.sort();
    records
}

/// Zipf text totalling roughly `words` tokens, as input records.
fn zipf_input(words: u64) -> Vec<Record> {
    let config = CorpusConfig {
        n_files: 16,
        seed: 7,
        mean_tokens: (words / 16).max(1),
        ..CorpusConfig::default()
    };
    let corpus = Corpus::new(config);
    let docs: Vec<String> = (0..16).map(|i| corpus.document(i)).collect();
    lines_to_records(docs.iter().flat_map(|d| d.lines()))
}

/// One timed WordCount over `input` on a 1-slave cluster with `slots`.
fn wordcount_run(input: &[Record], slots: usize) -> (f64, Vec<Record>) {
    let mut cluster = cluster_with_slots(Arc::new(Simple(WordCount)), slots);
    let mut job = Job::new(&mut cluster);
    let t0 = Instant::now();
    let out = job.map_reduce(input.to_vec(), WC_MAPS, WC_REDUCES, true).expect("wordcount");
    (t0.elapsed().as_secs_f64(), sorted(out))
}

/// One timed PSO run (`iters` outer iterations) with `slots`.
fn pso_run(iters: u64, slots: usize) -> (f64, Vec<Record>) {
    let cfg = PsoConfig {
        objective: Objective::Rastrigin,
        dim: 24,
        n_particles: 48,
        topology: Topology::Ring { k: 1 },
        seed: 1234,
    };
    let program = PsoProgram::new(cfg.clone(), 1);
    let mut cluster = cluster_with_slots(Arc::new(PsoProgram::new(cfg, 1)), slots);
    let mut job = Job::new(&mut cluster);
    let t0 = Instant::now();
    let mut ds = job.local_data(program.initial_particles(), PSO_PARTS).expect("scatter");
    for _ in 0..iters {
        let m = job.map_data(ds, FUNC_PARTICLE, PSO_PARTS, false).expect("map");
        ds = job.reduce_data(m, FUNC_PARTICLE).expect("reduce");
    }
    let out = job.fetch_all(ds).expect("fetch");
    (t0.elapsed().as_secs_f64(), sorted(out))
}

fn json_f64s(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x:.6}")).collect();
    format!("[{}]", items.join(", "))
}

fn json_usizes(xs: &[usize]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let args = Args::parse();
    let words: u64 = args.flag("words", 120_000);
    let pso_iters: u64 = args.flag("pso-iters", 10);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "Slot scaling: 1 slave, slots {SLOT_COUNTS:?}, {cores} core(s); \
         WordCount ~{words} Zipf words ({WC_MAPS} maps/{WC_REDUCES} reduces), \
         PSO {pso_iters} iterations ({PSO_PARTS} partitions)\n"
    );

    let input = zipf_input(words);
    let mut wc_secs = Vec::new();
    let mut pso_secs = Vec::new();
    let mut wc_baseline: Option<Vec<Record>> = None;
    let mut pso_baseline: Option<Vec<Record>> = None;

    let mut table = Table::new(["slots", "wordcount_s", "wc_speedup", "pso_s", "pso_speedup"]);
    for &slots in &SLOT_COUNTS {
        let (wc_t, wc_out) = wordcount_run(&input, slots);
        let (pso_t, pso_out) = pso_run(pso_iters, slots);

        // Implementations-agree: every slot count must reproduce the
        // 1-slot answer byte for byte.
        match &wc_baseline {
            None => wc_baseline = Some(wc_out),
            Some(base) => assert_eq!(base, &wc_out, "WordCount output diverged at {slots} slots"),
        }
        match &pso_baseline {
            None => pso_baseline = Some(pso_out),
            Some(base) => assert_eq!(base, &pso_out, "PSO output diverged at {slots} slots"),
        }

        wc_secs.push(wc_t);
        pso_secs.push(pso_t);
        table.row([
            slots.to_string(),
            format!("{wc_t:.3}"),
            format!("{:.2}", wc_secs[0] / wc_t),
            format!("{pso_t:.3}"),
            format!("{:.2}", pso_secs[0] / pso_t),
        ]);
    }
    table.emit("slot_scaling");

    let wc_speedup: Vec<f64> = wc_secs.iter().map(|t| wc_secs[0] / t).collect();
    let pso_speedup: Vec<f64> = pso_secs.iter().map(|t| pso_secs[0] / t).collect();
    Report::new("slot_scaling")
        .int("cores", cores as u64)
        .int("words", words)
        .int("pso_iters", pso_iters)
        .raw("slots", &json_usizes(&SLOT_COUNTS))
        .raw("wordcount_secs", &json_f64s(&wc_secs))
        .raw("pso_secs", &json_f64s(&pso_secs))
        .raw("wordcount_speedup", &json_f64s(&wc_speedup))
        .raw("pso_speedup", &json_f64s(&pso_speedup))
        .write(
            "slots",
            &format!(
                "outputs verified identical across all slot counts. \
                 Speedup is bounded by the host's {cores} core(s)."
            ),
        );
}
