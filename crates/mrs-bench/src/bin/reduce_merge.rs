//! **Reduce merge** — the sorted-run shuffle experiment: one Zipf
//! WordCount shuffle workload (combiner off, so every map token crosses
//! the data plane) run on identical clusters with the streaming k-way
//! merge reduce (`--mrs-merge=merge`, the default) and the legacy
//! concatenate-then-sort oracle (`--mrs-merge=sort`). The map phase is
//! barriered out of the measurement so the timed window is exactly the
//! reduce phase: input assembly (merge vs concat+sort) plus the reduce
//! kernel. A third arm re-runs the merge plan with the hash combiner on
//! to check the sorted-run guarantee end to end.
//!
//! Checked claims: merge-mode reduce tasks consume runs (`merge_runs > 0`)
//! and every run arrives presorted (`presorted_runs == merge_runs` — the
//! map-side sort guarantee, on both the combiner and no-combiner arms);
//! the background pre-merge collapsed warm fragments while maps ran
//! (`premerged_runs > 0`); the sort oracle records no merge activity; the
//! merge arm's reduce phase is at least 1.3x faster than the sort arm's;
//! and outputs are byte-identical across every arm (the
//! implementations-agree discipline applied to the reduce input path).
//!
//! ```text
//! cargo run --release -p mrs-bench --bin reduce_merge \
//!     [--words 500000] [--maps 16] [--reduces 4] [--slaves 2] [--repeats 3]
//! ```
//!
//! Writes `BENCH_merge.json` at the repo root and mirrors it under
//! `results/`. Each timed arm runs `repeats` times interleaved and the
//! fastest reduce phase is kept (wall clock on a shared host is noisy;
//! the counter assertions hold for every run).

use corpus::{Corpus, CorpusConfig};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_bench::{Args, Report, Table};
use mrs_core::Record;
use std::sync::Arc;
use std::time::Instant;

/// Zipf text totalling roughly `words` tokens, as input records.
fn zipf_input(words: u64) -> Vec<Record> {
    let config = CorpusConfig {
        n_files: 16,
        seed: 23,
        mean_tokens: (words / 16).max(1),
        ..CorpusConfig::default()
    };
    let corpus = Corpus::new(config);
    let docs: Vec<String> = (0..16).map(|i| corpus.document(i)).collect();
    lines_to_records(docs.iter().flat_map(|d| d.lines()))
}

fn sorted(mut records: Vec<Record>) -> Vec<Record> {
    records.sort();
    records
}

struct ArmRun {
    reduce_secs: f64,
    total_secs: f64,
    merge_runs: u64,
    presorted_runs: u64,
    premerged_runs: u64,
    merge_ms: f64,
    peak_reduce_records: u64,
    output: Vec<Record>,
}

/// One WordCount on a fresh cluster with the given merge mode. The map
/// phase runs to completion first (while the eager fetcher stages and
/// pre-merges fragments in the background); only then is the reduce
/// submitted and timed, so `reduce_secs` isolates the input-assembly
/// difference between the arms.
fn cluster_run(
    input: &[Record],
    merge: MergeMode,
    combine: bool,
    maps: usize,
    reduces: usize,
    slaves: usize,
) -> ArmRun {
    let cfg = MasterConfig { merge, ..MasterConfig::default() };
    let mut cluster =
        LocalCluster::start(Arc::new(Simple(WordCount)), slaves, DataPlane::Direct, cfg)
            .expect("cluster");
    let t_all = Instant::now();
    let (output, reduce_secs) = {
        let mut job = Job::new(&mut cluster);
        let src = job.local_data(input.to_vec(), maps).expect("local_data");
        let mapped = job.map_data(src, 0, reduces, combine).expect("map_data");
        // Barrier: the timed window below is purely the reduce phase.
        job.wait(mapped).expect("map phase");
        let t0 = Instant::now();
        let reduced = job.reduce_data(mapped, 0).expect("reduce_data");
        job.wait(reduced).expect("reduce phase");
        let reduce_secs = t0.elapsed().as_secs_f64();
        (sorted(job.fetch_all(reduced).expect("fetch")), reduce_secs)
    };
    let total_secs = t_all.elapsed().as_secs_f64();
    let m = cluster.metrics();
    ArmRun {
        reduce_secs,
        total_secs,
        merge_runs: m.merge_runs(),
        presorted_runs: m.presorted_runs(),
        premerged_runs: m.premerged_runs(),
        merge_ms: m.merge_time().as_secs_f64() * 1000.0,
        peak_reduce_records: m.peak_reduce_records(),
        output,
    }
}

/// Keep the fastest-reduce repeat, asserting every repeat returns the
/// same bytes and the counter invariants hold for every run, not just
/// the kept one.
fn keep_best(best: &mut Option<ArmRun>, run: ArmRun) {
    assert_eq!(
        run.presorted_runs, run.merge_runs,
        "a run reached a reduce task unsorted despite the map-side guarantee"
    );
    match best {
        Some(b) => {
            assert_eq!(b.output, run.output, "repeat run changed the answer");
            if run.reduce_secs < b.reduce_secs {
                *best = Some(run);
            }
        }
        None => *best = Some(run),
    }
}

fn main() {
    let args = Args::parse();
    let words: u64 = args.flag("words", 500_000);
    let maps: usize = args.flag("maps", 16);
    let reduces: usize = args.flag("reduces", 4);
    let slaves: usize = args.flag("slaves", 2);
    let repeats: usize = args.flag("repeats", 3);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "Reduce merge: Zipf WordCount, ~{words} words, {maps} maps/{reduces} reduces \
         (no combiner), {slaves} slave(s), {cores} core(s), best of {repeats}\n"
    );

    let input = zipf_input(words);
    // Interleave the arms so host-load drift lands on both equally, and
    // keep each arm's fastest reduce phase.
    let (mut merge, mut sort) = (None, None);
    for _ in 0..repeats.max(1) {
        keep_best(&mut merge, cluster_run(&input, MergeMode::Merge, false, maps, reduces, slaves));
        keep_best(&mut sort, cluster_run(&input, MergeMode::Sort, false, maps, reduces, slaves));
    }
    let (merge, sort) = (merge.expect("merge arm"), sort.expect("sort arm"));
    // The sorted-run guarantee must also hold for hash-combined map
    // output (the combiner path emits in hash order; the kernel re-sorts
    // before writing the bucket).
    let combined = cluster_run(&input, MergeMode::Merge, true, maps, reduces, slaves);

    // Implementations-agree across reduce input paths, byte for byte.
    assert_eq!(merge.output, sort.output, "merge mode changed the answer");
    assert_eq!(merge.output, combined.output, "the combiner changed the answer");
    // The merge plane must have engaged: reduce tasks consumed k sorted
    // runs, every one presorted map-side, and the background pre-merge
    // collapsed warm fragments into larger runs while maps ran.
    assert!(merge.merge_runs > 0, "merge arm consumed no runs");
    assert!(merge.presorted_runs > 0, "merge arm saw no presorted runs");
    assert!(
        merge.premerged_runs > 0,
        "background pre-merge never collapsed a warm fragment streak"
    );
    assert!(combined.merge_runs > 0, "combine arm consumed no runs");
    assert_eq!(
        combined.presorted_runs, combined.merge_runs,
        "hash-combined map output broke the sorted-run guarantee"
    );
    // The oracle arm must be inert.
    assert_eq!(sort.merge_runs, 0, "sort oracle recorded merge activity");
    assert_eq!(sort.premerged_runs, 0, "sort oracle pre-merged fragments");
    // The point of the exercise: streaming merge beats concat+sort on
    // the reduce phase. Best-of-N with interleaved arms keeps scheduling
    // noise out; see EXPERIMENTS.md for the 1-core caveat on the margin.
    let speedup = sort.reduce_secs / merge.reduce_secs.max(1e-9);
    assert!(
        speedup >= 1.3,
        "merge reduce not >=1.3x faster than concat+sort: merge={:.3}s sort={:.3}s ({speedup:.2}x)",
        merge.reduce_secs,
        sort.reduce_secs
    );

    let mut table = Table::new([
        "arm",
        "reduce_s",
        "total_s",
        "merge_runs",
        "presorted",
        "premerged",
        "merge_ms",
        "peak_records",
    ]);
    for (name, run) in [("merge", &merge), ("sort", &sort), ("merge+combine", &combined)] {
        table.row([
            name.to_string(),
            format!("{:.3}", run.reduce_secs),
            format!("{:.3}", run.total_secs),
            run.merge_runs.to_string(),
            run.presorted_runs.to_string(),
            run.premerged_runs.to_string(),
            format!("{:.3}", run.merge_ms),
            run.peak_reduce_records.to_string(),
        ]);
    }
    table.emit("reduce_merge");
    println!("\nreduce-phase speedup: {speedup:.2}x (concat+sort vs streaming merge)");

    Report::new("reduce_merge")
        .int("cores", cores as u64)
        .int("words", words)
        .int("maps", maps as u64)
        .int("reduces", reduces as u64)
        .int("slaves", slaves as u64)
        .int("repeats", repeats as u64)
        .secs("merge_reduce_secs", merge.reduce_secs)
        .secs("sort_reduce_secs", sort.reduce_secs)
        .float("speedup", speedup, 3)
        .int("merge_runs", merge.merge_runs)
        .int("presorted_runs", merge.presorted_runs)
        .int("premerged_runs", merge.premerged_runs)
        .float("merge_ms", merge.merge_ms, 3)
        .int("peak_reduce_records", merge.peak_reduce_records)
        .int("combine_merge_runs", combined.merge_runs)
        .int("combine_presorted_runs", combined.presorted_runs)
        .bool("outputs_identical", true)
        .write("merge", "outputs verified identical across merge modes.");
}
