//! **Control latency** — the event-driven control plane experiment: a
//! tiny-task iterative PSO job (the paper's hardest regime — per-iteration
//! barriers, sub-millisecond tasks) driven once under the legacy
//! sleep-and-poll plane and once under long-poll dispatch with piggybacked
//! completions. Reports per-iteration round latency and total control-RPC
//! count per mode, and verifies the two planes produce byte-identical
//! output (the implementations-agree discipline applied to the control
//! plane).
//!
//! ```text
//! cargo run --release -p mrs-bench --bin control_latency \
//!     [--iters 50] [--parts 4] [--slaves 2] [--slots 2]
//! ```
//!
//! Writes `BENCH_control.json` at the repo root and mirrors it under
//! `results/`. Latency numbers on a 1-core host still separate the modes
//! cleanly: the gap measured here is scheduler *wait* time (poll backoff
//! vs condvar wake), not compute parallelism, so it does not need spare
//! cores to show — but absolute per-iteration times on loaded or
//! single-core hosts carry scheduling noise; read medians, not tails.

use mrs::prelude::*;
use mrs_bench::{Args, Report, Table};
use mrs_core::Record;
use mrs_pso::mapreduce::{PsoProgram, FUNC_PARTICLE};
use mrs_pso::{Objective, PsoConfig, Topology};
use std::sync::Arc;
use std::time::Instant;

fn pso_config() -> PsoConfig {
    PsoConfig {
        objective: Objective::Sphere,
        dim: 4,
        n_particles: 16,
        topology: Topology::Ring { k: 1 },
        seed: 404,
    }
}

struct ModeRun {
    iter_secs: Vec<f64>,
    total_secs: f64,
    rpcs: u64,
    parks: u64,
    timeouts: u64,
    piggybacked: u64,
    wakeups: u64,
    output: Vec<Record>,
}

/// Drive `iters` map+reduce rounds with a per-iteration barrier (the
/// driver waits on each reduce, so one sample = one full control round
/// trip through dispatch, execution, and completion).
fn run_mode(
    control: ControlMode,
    iters: u64,
    parts: usize,
    slaves: usize,
    slots: usize,
) -> ModeRun {
    let cfg = MasterConfig { control, ..MasterConfig::default() };
    let mut cluster = LocalCluster::start_with(
        Arc::new(PsoProgram::new(pso_config(), 1)),
        slaves,
        DataPlane::Direct,
        cfg,
        SlaveOptions { slots, ..SlaveOptions::default() },
    )
    .expect("cluster");

    let (iter_secs, total_secs, mut output) = {
        let mut job = Job::new(&mut cluster);
        let program = PsoProgram::new(pso_config(), 1);
        let t0 = Instant::now();
        let mut ds = job.local_data(program.initial_particles(), parts).expect("scatter");
        let mut iter_secs = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let it0 = Instant::now();
            let m = job.map_data(ds, FUNC_PARTICLE, parts, false).expect("map");
            let r = job.reduce_data(m, FUNC_PARTICLE).expect("reduce");
            job.wait(r).expect("barrier");
            job.discard(m);
            ds = r;
            iter_secs.push(it0.elapsed().as_secs_f64());
        }
        let output = job.fetch_all(ds).expect("fetch");
        (iter_secs, t0.elapsed().as_secs_f64(), output)
    };
    output.sort();

    let rpcs = cluster.control_requests();
    let m = cluster.metrics();
    ModeRun {
        iter_secs,
        total_secs,
        rpcs,
        parks: m.longpoll_parks(),
        timeouts: m.longpoll_timeouts(),
        piggybacked: m.piggybacked_reports(),
        wakeups: m.wakeups(),
        output,
    }
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn json_f64s(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| format!("{x:.6}")).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let args = Args::parse();
    let iters: u64 = args.flag("iters", 50);
    let parts: usize = args.flag("parts", 4);
    let slaves: usize = args.flag("slaves", 2);
    let slots: usize = args.flag("slots", 2);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "Control latency: tiny-task PSO, {iters} iterations, {parts} partitions, \
         {slaves} slave(s) x {slots} slot(s), {cores} core(s)\n"
    );

    let long = run_mode(ControlMode::LongPoll, iters, parts, slaves, slots);
    let poll = run_mode(ControlMode::Poll, iters, parts, slaves, slots);

    // Implementations-agree across control planes, byte for byte.
    assert_eq!(long.output, poll.output, "control mode changed the answer");
    // The event-driven machinery must actually have engaged.
    assert!(long.parks > 0, "long-poll run never parked a request");
    assert!(long.piggybacked > 0, "long-poll run never piggybacked a report");
    assert_eq!(poll.parks, 0, "poll mode must never park");

    let mut table = Table::new(["mode", "iter_median_ms", "iter_mean_ms", "total_s", "rpcs"]);
    for (name, run) in [("longpoll", &long), ("poll", &poll)] {
        table.row([
            name.to_string(),
            format!("{:.3}", median(&run.iter_secs) * 1e3),
            format!("{:.3}", mean(&run.iter_secs) * 1e3),
            format!("{:.3}", run.total_secs),
            run.rpcs.to_string(),
        ]);
    }
    table.emit("control_latency");
    println!(
        "\nlongpoll counters: parks={} timeouts={} piggybacked={} wakeups={}",
        long.parks, long.timeouts, long.piggybacked, long.wakeups
    );

    // The headline claims: fewer control RPCs and lower per-iteration
    // latency than the sleep-and-poll plane.
    assert!(
        long.rpcs < poll.rpcs,
        "event-driven plane must reduce control RPCs: longpoll={} poll={}",
        long.rpcs,
        poll.rpcs
    );
    assert!(
        median(&long.iter_secs) < median(&poll.iter_secs),
        "event-driven plane must reduce per-iteration latency: longpoll={:.3}ms poll={:.3}ms",
        median(&long.iter_secs) * 1e3,
        median(&poll.iter_secs) * 1e3
    );

    Report::new("control_latency")
        .int("cores", cores as u64)
        .int("iters", iters)
        .int("parts", parts as u64)
        .int("slaves", slaves as u64)
        .int("slots", slots as u64)
        .raw("longpoll_iter_secs", &json_f64s(&long.iter_secs))
        .raw("poll_iter_secs", &json_f64s(&poll.iter_secs))
        .secs("longpoll_iter_median_secs", median(&long.iter_secs))
        .secs("poll_iter_median_secs", median(&poll.iter_secs))
        .secs("longpoll_total_secs", long.total_secs)
        .secs("poll_total_secs", poll.total_secs)
        .int("longpoll_rpcs", long.rpcs)
        .int("poll_rpcs", poll.rpcs)
        .int("longpoll_parks", long.parks)
        .int("longpoll_timeouts", long.timeouts)
        .int("piggybacked_reports", long.piggybacked)
        .int("wakeups", long.wakeups)
        .bool("outputs_identical", true)
        .write("control", "outputs verified identical across control modes.");
}
