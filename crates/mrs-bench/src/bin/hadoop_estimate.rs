//! **§V-B Hadoop-PSO estimate** — "2471 iterations × 30 s ≈ 20 hours".
//!
//! The paper never ran PSO on Hadoop; it measured the iterations Mrs
//! needed to converge and multiplied by Hadoop's per-operation overhead.
//! We reproduce the *method*: run iterative MapReduce PSO to a target on a
//! tractable configuration, measure Mrs's per-iteration cost, take
//! Hadoop's per-operation cost from the simulator, and extrapolate both —
//! including the paper's punchline check that Hadoop-PSO would be slower
//! than just running serially on one machine.
//!
//! ```text
//! cargo run --release -p mrs-bench --bin hadoop_estimate [--dim 20] [--target 1e-5]
//! ```

use hadoop_sim::cluster::JobSpec;
use hadoop_sim::hdfs::InputProfile;
use hadoop_sim::{HadoopCluster, SimConfig};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_bench::{Args, Table};
use mrs_pso::mapreduce::{PsoProgram, FUNC_PARTICLE};
use mrs_pso::serial::SerialPso;
use mrs_pso::{Objective, PsoConfig, Topology};
use mrs_runtime::LocalRuntime;
use std::sync::Arc;

fn main() {
    let args = Args::parse();
    let dim: usize = args.flag("dim", 20);
    let target: f64 = args.flag("target", 1e-5);
    let particles: u64 = args.flag("particles", 20);
    let max_iters: u64 = args.flag("max-iters", 20_000);

    // Tractable substitution for Rosenbrock-250 (documented in
    // EXPERIMENTS.md): Sphere in `dim` dimensions with the gbest topology
    // (the original MRPSO formulation [5]) reaches 1e-5 in thousands of
    // iterations, the same order as the paper's 2471.
    let config = PsoConfig {
        objective: Objective::Sphere,
        dim,
        n_particles: particles,
        topology: Topology::Complete,
        seed: 42,
    };

    // 1. Iterations to target (serial; identical to MapReduce by
    //    construction).
    let mut serial = SerialPso::new(config.clone());
    let t0 = std::time::Instant::now();
    let iters = serial
        .run_until(target, max_iters)
        .unwrap_or_else(|| panic!("target {target} not reached in {max_iters} iterations"));
    let serial_total = t0.elapsed().as_secs_f64();
    let serial_per_iter = serial_total / iters.max(1) as f64;

    // 2. Mrs per-iteration cost, measured on the pool runtime (1 inner
    //    iteration per task = one MapReduce operation per PSO iteration,
    //    the paper's accounting unit).
    let program = Arc::new(PsoProgram::new(config, 1));
    let mut rt = LocalRuntime::pool(program.clone(), 6);
    let probe_iters = 200u64;
    let parts = particles as usize;
    let mrs_per_iter = {
        let mut job = Job::new(&mut rt);
        let mut ds = job.local_data(program.initial_particles(), parts).expect("init");
        let t0 = std::time::Instant::now();
        for _ in 0..probe_iters {
            let m = job.map_data(ds, FUNC_PARTICLE, parts, false).expect("map");
            ds = job.reduce_data(m, FUNC_PARTICLE).expect("reduce");
        }
        job.wait(ds).expect("probe");
        t0.elapsed().as_secs_f64() / probe_iters as f64
    };

    // 3. Hadoop per-operation cost from the simulator (empty-compute job).
    let hadoop_per_op = {
        let cluster = HadoopCluster::new(6, SimConfig::default()).expect("sim");
        let wc = Simple(WordCount);
        let report = cluster
            .run_job(&JobSpec {
                program: &wc,
                map_func: 0,
                reduce_func: 0,
                combine: false,
                input: lines_to_records(["x"]),
                input_profile: InputProfile::single_file(64),
                n_maps: 4,
                n_reduces: 4,
            })
            .expect("hadoop probe");
        report.total.as_secs_f64()
    };

    let mut table = Table::new(["quantity", "value"]);
    table.row(["objective".to_string(), format!("sphere-{dim} (paper: rosenbrock-250)")]);
    table.row(["target value".to_string(), format!("{target:e}")]);
    table.row(["iterations to target".to_string(), iters.to_string()]);
    table.row(["(paper reference iterations)".to_string(), "2471".to_string()]);
    table.row(["mrs s/iteration (measured)".to_string(), format!("{mrs_per_iter:.5}")]);
    table.row(["hadoop s/operation (virtual)".to_string(), format!("{hadoop_per_op:.1}")]);
    table.row(["mrs projected total".to_string(), format!("{:.1} s", mrs_per_iter * iters as f64)]);
    table.row([
        "hadoop projected total".to_string(),
        format!("{:.1} h", hadoop_per_op * iters as f64 / 3600.0),
    ]);
    table.row(["(paper projection)".to_string(), "2471 × 30 s ≈ 20.6 h".to_string()]);
    table.row([
        "serial on one machine".to_string(),
        format!("{serial_total:.1} s ({serial_per_iter:.5} s/iter)"),
    ]);
    table.row([
        "hadoop slower than serial?".to_string(),
        (hadoop_per_op * iters as f64 > serial_total).to_string(),
    ]);
    table.emit("hadoop_estimate");
    println!(
        "\npaper conclusion reproduced: \"the overhead of Hadoop often makes it slower than\n\
         running the same task in serial on a single machine\""
    );
}
