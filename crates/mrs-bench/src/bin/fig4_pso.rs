//! **Fig. 4** — PSO convergence on Rosenbrock-250 with the Apiary
//! topology, against function evaluations and against wall time, serial
//! vs parallel.
//!
//! Both runs execute the *identical* iterative MapReduce program (island
//! map tasks, ring exchange in reduce) — one on the serial runtime, one on
//! the thread pool — so the best-value trajectory is bit-identical and
//! only the time axis differs, exactly the comparison Fig. 4 makes.
//!
//! Paper observations: 100 iterations on 5 particles take 0.2 s serially;
//! parallel PSO costs ≈0.5 s per (inner-batched) iteration of which
//! ≈0.3 s is framework overhead; startup ≈2 s.
//!
//! ```text
//! cargo run --release -p mrs-bench --bin fig4_pso [--particles 20] [--outer 25] [--inner 100] [--workers 6]
//! ```

use mrs::prelude::*;
use mrs_bench::{Args, Table};
use mrs_pso::mapreduce::PsoProgram;
use mrs_pso::serial::IterRecord;
use mrs_pso::PsoConfig;
use mrs_runtime::LocalRuntime;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let particles: u64 = args.flag("particles", 20);
    let outer: u64 = args.flag("outer", 25);
    let inner: u64 = args.flag("inner", 100);
    let workers: usize = args.flag("workers", 6);
    let config = PsoConfig::rosenbrock_250(particles, 42);

    println!(
        "Fig 4: Rosenbrock-250, {particles} particles (subswarms of 5), {outer}×{inner} iterations\n"
    );

    // Serial: the same MapReduce program on the serial runtime.
    let (serial_history, serial_total) = {
        let program = Arc::new(PsoProgram::new(config.clone(), inner));
        let mut rt = SerialRuntime::new(program.clone());
        let t0 = Instant::now();
        let mut job = Job::new(&mut rt);
        let h = program.drive_islands(&mut job, outer).expect("serial pso");
        (h, t0.elapsed().as_secs_f64())
    };

    // Parallel: identical program, thread-pool runtime.
    let program = Arc::new(PsoProgram::new(config, inner));
    let mut rt = LocalRuntime::pool(program.clone(), workers);
    let (parallel_history, parallel_total) = {
        let t0 = Instant::now();
        let mut job = Job::new(&mut rt);
        let h = program.drive_islands(&mut job, outer).expect("parallel pso");
        (h, t0.elapsed().as_secs_f64())
    };

    assert_eq!(
        serial_history, parallel_history,
        "serial and parallel trajectories must be bit-identical"
    );

    let mut table = Table::new([
        "batch",
        "iteration",
        "func_evals",
        "best_value",
        "serial_time_s",
        "parallel_time_s",
    ]);
    let frac = |i: usize, total: f64| total * i as f64 / outer.max(1) as f64;
    for (i, rec) in parallel_history.iter().enumerate() {
        let IterRecord { iteration, best_val, func_evals } = *rec;
        table.row([
            i.to_string(),
            iteration.to_string(),
            func_evals.to_string(),
            format!("{best_val:.4e}"),
            format!("{:.3}", frac(i, serial_total)),
            format!("{:.3}", frac(i, parallel_total)),
        ]);
    }
    table.emit("fig4_pso");

    let per_iter = parallel_total / outer as f64;
    println!("\nconvergence is identical per function evaluation (asserted); wall time differs:");
    println!(
        "serial runtime:   {serial_total:.3} s ({:.4} s per {inner}-iteration batch)",
        serial_total / outer as f64
    );
    println!("parallel runtime: {parallel_total:.3} s ({per_iter:.4} s per MapReduce iteration, {workers} workers)");
    println!(
        "speedup: {:.2}×  |  tasks executed: {}",
        serial_total / parallel_total.max(1e-12),
        rt.metrics().tasks_executed()
    );
    println!("paper reference: 0.2 s per 100×5 serial batch; ≈0.3 s/iteration Mrs overhead");
}
