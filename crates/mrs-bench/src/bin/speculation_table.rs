//! **A5 ablation** — stragglers and speculative execution in the Hadoop
//! baseline: virtual job time across straggler rates, with MR1-style
//! backup tasks off and on. (Virtual-clock results, so this is a table
//! binary rather than a Criterion bench.)
//!
//! ```text
//! cargo run --release -p mrs-bench --bin speculation_table
//! ```

use hadoop_sim::cluster::JobSpec;
use hadoop_sim::hdfs::InputProfile;
use hadoop_sim::{HadoopCluster, SimConfig};
use mrs::apps::pi::{slabs, Kernel, PiEstimator};
use mrs::prelude::*;
use mrs_bench::Table;

fn run(prob: f64, speculative: bool) -> (f64, u64) {
    let cfg = SimConfig {
        straggler_prob: prob,
        straggler_factor: 10.0,
        speculative,
        ..SimConfig::default()
    };
    let cluster = HadoopCluster::new(8, cfg).expect("cluster");
    let program = Simple(PiEstimator { kernel: Kernel::Native });
    let report = cluster
        .run_job(&JobSpec {
            program: &program,
            map_func: 0,
            reduce_func: 0,
            combine: false,
            // Enough samples that map compute dominates, so a 10× straggler
            // visibly stretches the tail.
            input: slabs(40_000_000, 48),
            input_profile: InputProfile::single_file(1 << 20),
            n_maps: 48,
            n_reduces: 4,
        })
        .expect("job");
    (report.total.as_secs_f64(), report.speculative_launched)
}

fn main() {
    println!("Stragglers vs speculative execution (virtual clock, 8 nodes, 48 maps)\n");
    let mut table = Table::new([
        "straggler_prob",
        "no_speculation_s",
        "speculation_s",
        "backups_launched",
        "time_recovered_s",
    ]);
    for prob in [0.0, 0.1, 0.2, 0.4] {
        let (off, _) = run(prob, false);
        let (on, backups) = run(prob, true);
        table.row([
            format!("{prob:.1}"),
            format!("{off:.1}"),
            format!("{on:.1}"),
            backups.to_string(),
            format!("{:.1}", off - on),
        ]);
    }
    table.emit("speculation_table");
    println!(
        "\nshape: with no stragglers speculation is a no-op; as the straggler rate grows,\n\
         backup tasks recover most of the tail latency — the mechanism Hadoop ships to\n\
         defend exactly the overhead structure this paper measures."
    );
}
