//! **§V-B WordCount comparison** — the Gutenberg table.
//!
//! Paper numbers: full corpus (31,173 files): Hadoop's startup alone takes
//! nearly nine minutes while Mrs finishes the entire operation in under
//! nine; subset (8,316 files): Hadoop 1 min preparation / 16 min total,
//! Mrs 2 min total.
//!
//! Ours: the synthetic corpus keeps the paper's *file counts and directory
//! shape* (what drives Hadoop's namenode traffic) but scales tokens per
//! file down by `--token-scale` so the measured side runs in seconds; the
//! scale factor is reported. Mrs times are measured on a real localhost
//! cluster; Hadoop times are virtual-clock simulation. The claim checked
//! is structural: *Hadoop's startup alone exceeds Mrs's entire job.*
//!
//! ```text
//! cargo run --release -p mrs-bench --bin wordcount_table [--slaves 6] [--mean-tokens 120]
//! ```

use corpus::tree::{directory_count, Layout};
use corpus::{Corpus, CorpusConfig};
use hadoop_sim::cluster::JobSpec;
use hadoop_sim::hdfs::InputProfile;
use hadoop_sim::{HadoopCluster, SimConfig};
use mrs::apps::wordcount::{decode_counts, documents_to_records, WordCount};
use mrs::prelude::*;
use mrs_bench::{Args, Table};
use mrs_runtime::LocalCluster;
use std::sync::Arc;

const PAPER_MEAN_TOKENS: u64 = 64_000; // ≈2e9 tokens / 31,173 files

fn main() {
    let args = Args::parse();
    let slaves: usize = args.flag("slaves", 6);
    let mean_tokens: u64 = args.flag("mean-tokens", 120);
    let scale = PAPER_MEAN_TOKENS as f64 / mean_tokens as f64;

    println!(
        "WordCount on synthetic Gutenberg (token scale 1/{scale:.0} of the paper's ≈2G tokens)\n"
    );
    let mut table = Table::new([
        "corpus",
        "files",
        "dirs",
        "tokens",
        "mrs_measured_s",
        "hadoop_scan_virtual_s",
        "hadoop_total_virtual_s",
        "startup_exceeds_mrs_total",
    ]);

    for (label, files) in [("subset", 8_316u64), ("full", 31_173u64)] {
        let corpus = Corpus::new(CorpusConfig {
            n_files: files,
            mean_tokens,
            vocab: 50_000,
            ..CorpusConfig::default()
        });
        let documents: Vec<String> = (0..files).map(|f| corpus.document(f)).collect();
        let tokens: u64 = documents.iter().map(|d| corpus::tokenizer::token_count(d)).sum();
        let bytes: u64 = documents.iter().map(|d| d.len() as u64).sum();
        let records = documents_to_records(documents.iter().map(String::as_str));
        let dirs = directory_count(Layout::Nested, files);

        // Mrs: measured on a real localhost master/slave cluster.
        let t0 = std::time::Instant::now();
        let mrs_counts = {
            let mut cluster = LocalCluster::start(
                Arc::new(Simple(WordCount)),
                slaves,
                DataPlane::Direct,
                MasterConfig::default(),
            )
            .expect("cluster");
            let mut job = Job::new(&mut cluster);
            let out =
                job.map_reduce(records.clone(), slaves * 4, slaves * 2, true).expect("wordcount");
            decode_counts(&out).expect("decode")
        };
        let mrs_secs = t0.elapsed().as_secs_f64();

        // Hadoop: the same job on the virtual cluster with the real
        // nested-tree namenode traffic. Bytes are scaled back up to paper
        // scale for the scan-and-read model (metadata cost is exact).
        let hadoop = HadoopCluster::new(slaves.max(2), SimConfig::default()).expect("sim");
        let program = Simple(WordCount);
        let report = hadoop
            .run_job(&JobSpec {
                program: &program,
                map_func: 0,
                reduce_func: 0,
                combine: true,
                input: records,
                input_profile: InputProfile {
                    files,
                    directories: dirs,
                    bytes: (bytes as f64 * scale) as u64,
                },
                n_maps: slaves * 4,
                n_reduces: slaves * 2,
            })
            .expect("hadoop job");
        assert_eq!(
            decode_counts(&report.output).expect("decode"),
            mrs_counts,
            "frameworks disagree on {label}"
        );

        let scan = report.input_scan.as_secs_f64();
        table.row([
            label.to_string(),
            files.to_string(),
            dirs.to_string(),
            tokens.to_string(),
            format!("{mrs_secs:.2}"),
            format!("{scan:.1}"),
            format!("{:.1}", report.total.as_secs_f64()),
            (scan > mrs_secs).to_string(),
        ]);
    }
    table.emit("wordcount_table");
    println!(
        "\npaper reference: full corpus — Hadoop startup ≈9 min vs Mrs total <9 min;\n\
         subset — Hadoop 16 min total vs Mrs 2 min. The structural claim reproduced here:\n\
         Hadoop's input scan alone (virtual) exceeds Mrs's whole measured job."
    );
}
