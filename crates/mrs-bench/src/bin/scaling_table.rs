//! **Scaling** — how the Mrs master/slave implementation scales with
//! slave count, the dimension the paper's 21-machine private cluster
//! provides implicitly. Three columns:
//!
//! * latency-bound: map tasks that *wait* a fixed 50 ms (an expensive
//!   external objective — instrument, simulation service, disk). This
//!   isolates the **scheduler's** scaling and works on any host.
//! * compute-bound: the π estimator. On a multi-core host this scales
//!   toward the core count; on a single-core host it is flat — the
//!   hardware ceiling, which the binary reports.
//! * overhead-bound: tiny WordCount — never scales (it measures the
//!   framework floor), the contrast the paper draws for iterative jobs.
//!
//! ```text
//! cargo run --release -p mrs-bench --bin scaling_table [--samples 4000000]
//! ```

use mrs::apps::pi::{slabs, Kernel, PiEstimator};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_bench::{Args, Table};
use mrs_core::kv::encode_record;
use mrs_core::MapReduce;
use mrs_runtime::LocalCluster;
use std::sync::Arc;
use std::time::Instant;

/// A map task standing in for an expensive external objective: it waits,
/// it does not compute.
struct ExternalEval;

impl MapReduce for ExternalEval {
    type K1 = u64;
    type V1 = u64;
    type K2 = u64;
    type V2 = u64;

    fn map(&self, k: u64, v: u64, emit: &mut dyn FnMut(u64, u64)) {
        std::thread::sleep(std::time::Duration::from_millis(50));
        emit(k % 4, v);
    }

    fn reduce(&self, _k: &u64, vs: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
        emit(vs.sum());
    }
}

fn timed<P: mrs_core::Program>(
    program: P,
    n_slaves: usize,
    input: Vec<mrs_core::Record>,
    maps: usize,
    reduces: usize,
) -> f64 {
    let mut cluster = LocalCluster::start(
        Arc::new(program),
        n_slaves,
        DataPlane::Direct,
        MasterConfig::default(),
    )
    .expect("cluster");
    let mut job = Job::new(&mut cluster);
    let t0 = Instant::now();
    job.map_reduce(input, maps, reduces, false).expect("job");
    t0.elapsed().as_secs_f64()
}

fn main() {
    let args = Args::parse();
    let samples: u64 = args.flag("samples", 4_000_000);
    let slave_counts = [1usize, 2, 4, 8];
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!("Scaling with slave count (real RPC cluster on localhost, {cores} core(s))\n");
    let mut table = Table::new([
        "slaves",
        "latency_bound_s",
        "latency_speedup",
        "pi_compute_s",
        "wordcount_tiny_s",
    ]);
    let mut latency_base = None;
    for &n in &slave_counts {
        // 32 external evaluations of 50 ms each: 1.6 s of task time.
        let latency_secs = {
            let input: Vec<mrs_core::Record> = (0..32u64).map(|i| encode_record(&i, &i)).collect();
            timed(Simple(ExternalEval), n, input, 32, 4)
        };
        let base = *latency_base.get_or_insert(latency_secs);

        let tasks = (n * 4) as u64;
        let pi_secs = timed(
            Simple(PiEstimator { kernel: Kernel::Native }),
            n,
            slabs(samples, tasks),
            tasks as usize,
            1,
        );

        let wc_secs = timed(Simple(WordCount), n, lines_to_records(["a b c", "d e f"]), 2, 2);

        table.row([
            n.to_string(),
            format!("{latency_secs:.3}"),
            format!("{:.2}", base / latency_secs),
            format!("{pi_secs:.3}"),
            format!("{wc_secs:.4}"),
        ]);
    }
    table.emit("scaling_table");
    println!(
        "\nshape: the latency-bound column scales near-linearly with slaves (the scheduler\n\
         imposes no serialization); the compute column scales only up to the host's {cores}\n\
         core(s); the tiny job is flat — adding machines cannot buy back per-operation\n\
         overhead, which is why the paper attacks the overhead itself."
    );
}
