//! Shared `BENCH_*.json` writer for the experiment binaries.
//!
//! Every bench emits a flat JSON object summarizing its run — read by
//! humans and by the CI smoke checks. Until PR 10 each binary
//! hand-rolled its own `format!` block; this module is the one place
//! that knows the conventions: insertion order preserved (the file reads
//! top-down like the experiment), fixed float precision, a repo-root
//! copy plus a `results/` mirror, and the closing "wrote ..." line.

use crate::results_path;

/// An order-preserving flat JSON object, written as `BENCH_<file>.json`.
pub struct Report {
    entries: Vec<(String, String)>,
}

impl Report {
    /// Start a report for the named bench (`"bench": name` first).
    pub fn new(bench: &str) -> Report {
        let mut r = Report { entries: Vec::new() };
        r.str("bench", bench);
        r
    }

    fn push(&mut self, key: &str, rendered: String) -> &mut Self {
        self.entries.push((key.to_owned(), rendered));
        self
    }

    /// A string field.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.push(key, format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
    }

    /// An integer field.
    pub fn int(&mut self, key: &str, v: impl Into<i128>) -> &mut Self {
        self.push(key, v.into().to_string())
    }

    /// A boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.push(key, v.to_string())
    }

    /// A float field with explicit decimal places (the benches use 6 for
    /// seconds, 3 for milliseconds and ratios).
    pub fn float(&mut self, key: &str, v: f64, decimals: usize) -> &mut Self {
        self.push(key, format!("{v:.decimals$}"))
    }

    /// A seconds duration (6 decimals, the bench convention).
    pub fn secs(&mut self, key: &str, v: f64) -> &mut Self {
        self.float(key, v, 6)
    }

    /// A pre-rendered JSON value (arrays, nested objects). The caller
    /// vouches for its validity.
    pub fn raw(&mut self, key: &str, v: &str) -> &mut Self {
        self.push(key, v.to_owned())
    }

    /// Render the JSON object, keys in insertion order.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            out.push_str(&format!("  \"{k}\": {v}"));
            out.push_str(if i + 1 == self.entries.len() { "\n" } else { ",\n" });
        }
        out.push_str("}\n");
        out
    }

    /// Write `BENCH_<file>.json` at the repo root, mirror it under
    /// `results/`, and print the conventional closing line with `note`
    /// appended after a semicolon.
    pub fn write(&self, file: &str, note: &str) {
        let name = format!("BENCH_{file}.json");
        let json = self.json();
        std::fs::write(&name, &json).unwrap_or_else(|e| panic!("write {name}: {e}"));
        std::fs::write(results_path(&name), &json).unwrap_or_else(|e| panic!("mirror {name}: {e}"));
        println!("\nwrote {name} (and results/{name}); {note}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_in_insertion_order_with_fixed_precision() {
        let mut r = Report::new("demo");
        r.int("words", 500u32).secs("wall", 1.25).float("speedup", 2.0, 3).bool("ok", true);
        assert_eq!(
            r.json(),
            "{\n  \"bench\": \"demo\",\n  \"words\": 500,\n  \"wall\": 1.250000,\n  \
             \"speedup\": 2.000,\n  \"ok\": true\n}\n"
        );
    }

    #[test]
    fn escapes_strings() {
        let mut r = Report::new("demo");
        r.str("path", "a\"b\\c");
        assert!(r.json().contains("\"path\": \"a\\\"b\\\\c\""));
    }
}
