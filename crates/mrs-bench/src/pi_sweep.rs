//! Shared machinery for the Fig. 3 sweeps: run the π estimator at a given
//! sample count on an Mrs runtime (measured wall time) or on the Hadoop
//! simulator (virtual time).

use hadoop_sim::cluster::JobSpec;
use hadoop_sim::hdfs::InputProfile;
use hadoop_sim::{HadoopCluster, SimConfig};
use mrs::apps::pi::{estimate_from, slabs, Kernel, PiEstimator};
use mrs::prelude::*;
use mrs_runtime::LocalRuntime;
use std::sync::Arc;

/// Result of one sweep point.
#[derive(Clone, Copy, Debug)]
pub struct PiRun {
    /// Sample count.
    pub samples: u64,
    /// Wall (Mrs) or virtual (Hadoop) seconds.
    pub secs: f64,
    /// The π estimate (all engines must agree).
    pub estimate: f64,
}

/// Run the estimator on the thread-pool Mrs runtime; wall-clock seconds.
pub fn mrs_pi(kernel: Kernel, samples: u64, tasks: u64, workers: usize) -> PiRun {
    let program = Arc::new(Simple(PiEstimator { kernel }));
    let mut rt = LocalRuntime::pool(program, workers);
    let t0 = std::time::Instant::now();
    let mut job = Job::new(&mut rt);
    let out = job.map_reduce(slabs(samples, tasks), tasks as usize, 1, false).expect("pi job");
    let secs = t0.elapsed().as_secs_f64();
    PiRun { samples, secs, estimate: estimate_from(&out).expect("estimate") }
}

/// Run the estimator on the Hadoop simulator ("Java" tier: the native
/// kernel, as Java's JIT-compiled numeric speed ≈ Rust's); virtual seconds.
pub fn hadoop_pi(samples: u64, tasks: u64, nodes: usize) -> PiRun {
    let cluster = HadoopCluster::new(nodes, SimConfig::default()).expect("cluster");
    let program = Simple(PiEstimator { kernel: Kernel::Native });
    let report = cluster
        .run_job(&JobSpec {
            program: &program,
            map_func: 0,
            reduce_func: 0,
            combine: false,
            input: slabs(samples, tasks),
            // PiEstimator has no on-disk input: one tiny job file.
            input_profile: InputProfile::single_file(1024),
            n_maps: tasks as usize,
            n_reduces: 1,
        })
        .expect("hadoop pi job");
    PiRun {
        samples,
        secs: report.total.as_secs_f64(),
        estimate: estimate_from(&report.output).expect("estimate"),
    }
}

/// The sample counts of a Fig. 3 sweep: powers of ten from 1 to `max`.
pub fn sweep_points(max: u64) -> Vec<u64> {
    let mut points = Vec::new();
    let mut n = 1u64;
    while n <= max {
        points.push(n);
        n = n.saturating_mul(10);
    }
    points
}
