//! Aligned console tables with CSV mirroring.

use std::fmt::Write as _;

/// A simple column-aligned table that also serializes to CSV.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                // Right-align numbers, left-align text.
                if cell.parse::<f64>().is_ok() {
                    for _ in 0..pad {
                        out.push(' ');
                    }
                    out.push_str(cell);
                } else {
                    out.push_str(cell);
                    for _ in 0..pad {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Print to stdout and mirror to `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        print!("{}", self.render());
        let path = crate::results_path(&format!("{name}.csv"));
        if std::fs::write(&path, self.to_csv()).is_ok() {
            println!("(csv: {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width of the longest.
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
