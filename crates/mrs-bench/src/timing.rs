//! Wall-clock helpers for the experiment binaries.

use std::time::Instant;

/// Time one execution; returns `(result, seconds)`.
pub fn time_secs<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Run `f` `n` times (n ≥ 1) and return the median seconds.
pub fn median_secs(n: usize, mut f: impl FnMut()) -> f64 {
    assert!(n >= 1);
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_secs_returns_result_and_duration() {
        let (v, s) = time_secs(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }

    #[test]
    fn median_of_odd_samples() {
        let mut i = 0;
        let s = median_secs(3, || {
            i += 1;
            if i == 2 {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        });
        // median of [fast, slow, fast] is fast
        assert!(s < 0.01, "{s}");
    }
}
