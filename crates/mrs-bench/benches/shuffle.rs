//! Shuffle data-plane benchmarks: the two halves of the overhaul.
//!
//! * `shuffle_combine` — in-mapper combining strategies on Zipf-distributed
//!   WordCount input (the shape where streaming hash combining wins: a few
//!   very hot keys fold incrementally instead of being buffered and sorted).
//!   The `seed_sort_combine` arm reconstructs the pre-overhaul pipeline
//!   (per-emit record allocation + stable `Vec<Record>` sort) so the
//!   speedup is measured against the original implementation, not just
//!   against the already-optimised arena sort path.
//! * `shuffle_transfer` — bucket fetch over a persistent pooled connection
//!   vs. a fresh TCP dial per request (the keep-alive ablation, A4).

use corpus::zipf::{word_for_rank, Zipf};
use criterion::{criterion_group, criterion_main, Criterion};
use mrs_core::kv::encode_record;
use mrs_core::program::Program;
use mrs_core::sortgroup::group_sorted;
use mrs_core::task::{run_map_task_with, CombineStrategy};
use mrs_core::{MapReduce, Record, Simple};
use mrs_rng::SplitMix64;
use mrs_rpc::http::{HttpClient, HttpServer, Response, ServerOptions};
use std::hint::black_box;
use std::sync::Arc;

struct WordCount;

impl MapReduce for WordCount {
    type K1 = u64;
    type V1 = String;
    type K2 = String;
    type V2 = u64;

    fn map(&self, _k: u64, v: String, emit: &mut dyn FnMut(String, u64)) {
        for w in v.split_whitespace() {
            emit(w.to_owned(), 1);
        }
    }

    fn reduce(&self, _k: &String, vs: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
        emit(vs.sum());
    }

    fn has_combiner(&self) -> bool {
        true
    }
}

/// Zipf(1.1) WordCount input: `lines` lines of `words_per_line` words drawn
/// from a 50k-word vocabulary. Rank 0 alone is ~10% of all draws, so the
/// combiner's hot-key path dominates.
fn zipf_lines(lines: usize, words_per_line: usize) -> Vec<Record> {
    let zipf = Zipf::new(50_000, 1.1);
    let mut rng = SplitMix64::new(42);
    (0..lines)
        .map(|i| {
            let line: Vec<String> =
                (0..words_per_line).map(|_| word_for_rank(zipf.sample(&mut rng))).collect();
            encode_record(&(i as u64), &line.join(" "))
        })
        .collect()
}

/// The seed's sort-then-combine map task, reconstructed verbatim: every emit
/// allocates an owned `(Vec<u8>, Vec<u8>)` record, buckets are plain record
/// vectors, and combining stable-sorts each bucket before grouping. This is
/// the pre-overhaul baseline the acceptance criterion measures against.
fn seed_sort_combine_map_task(
    program: &dyn Program,
    input: &[Record],
    parts: usize,
) -> Vec<Vec<Record>> {
    let mut buckets: Vec<Vec<Record>> = (0..parts).map(|_| Vec::new()).collect();
    for (key, value) in input {
        program
            .map_bytes(0, key, value, &mut |k2, v2| {
                let p = program.partition(k2, parts);
                buckets[p].push((k2.to_vec(), v2.to_vec()));
            })
            .unwrap();
    }
    for b in &mut buckets {
        b.sort_by(|x, y| x.0.cmp(&y.0));
        let mut out: Vec<Record> = Vec::new();
        for (key, values) in group_sorted(b) {
            let mut iter = values;
            program
                .combine_bytes(0, key, &mut iter, &mut |k, v| out.push((k.to_vec(), v.to_vec())))
                .unwrap();
        }
        *b = out;
    }
    buckets
}

fn bench_combine(c: &mut Criterion) {
    let input = zipf_lines(10_000, 50); // 500k words
    let program = Simple(WordCount);

    // Sanity: the reconstructed seed path and the new hash path must agree
    // byte-for-byte, or the benchmark would be comparing different work.
    let hash = run_map_task_with(&program, 0, &input, 4, true, CombineStrategy::Hash).unwrap();
    let seed = seed_sort_combine_map_task(&program, &input, 4);
    assert_eq!(hash.iter().map(|b| b.to_records()).collect::<Vec<_>>(), seed);

    let mut group = c.benchmark_group("shuffle_combine");
    group.bench_function("hash_combine_zipf_500k", |b| {
        b.iter(|| {
            black_box(
                run_map_task_with(&program, 0, black_box(&input), 4, true, CombineStrategy::Hash)
                    .unwrap(),
            )
        })
    });
    group.bench_function("sort_combine_zipf_500k", |b| {
        b.iter(|| {
            black_box(
                run_map_task_with(&program, 0, black_box(&input), 4, true, CombineStrategy::Sort)
                    .unwrap(),
            )
        })
    });
    group.bench_function("seed_sort_combine_zipf_500k", |b| {
        b.iter(|| black_box(seed_sort_combine_map_task(&program, black_box(&input), 4)))
    });
    group.bench_function("no_combine_zipf_500k", |b| {
        b.iter(|| {
            black_box(
                run_map_task_with(&program, 0, black_box(&input), 4, false, CombineStrategy::Hash)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_transfer(c: &mut Criterion) {
    let payload = Arc::new(vec![0xabu8; 64 * 1024]);
    let handler = {
        let payload = Arc::clone(&payload);
        Arc::new(move |_req: mrs_rpc::Request| {
            Response::ok("application/octet-stream", payload.as_ref().clone())
        })
    };
    let keep_alive = HttpServer::bind(0, handler.clone()).unwrap();
    let close_per_request = HttpServer::bind_with(
        0,
        handler,
        ServerOptions { keep_alive: false, max_requests_per_connection: 0 },
    )
    .unwrap();

    let mut group = c.benchmark_group("shuffle_transfer");
    group.bench_function("fetch_64k_keepalive", |b| {
        let authority = keep_alive.authority();
        b.iter(|| black_box(HttpClient::get(&authority, "/data/b0.mrsb").unwrap()))
    });
    group.bench_function("fetch_64k_fresh_connection", |b| {
        let authority = close_per_request.authority();
        b.iter(|| black_box(HttpClient::get(&authority, "/data/b0.mrsb").unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_combine, bench_transfer);
criterion_main!(benches);
