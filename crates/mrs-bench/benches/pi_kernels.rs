//! Criterion bench for the Fig. 3 language tiers: the same Halton π
//! kernel as native Rust ("C"), slowpy VM ("PyPy"), slowpy tree
//! ("CPython"), and slowpy→native ("ctypes"). The *ratios* between these
//! are the right-hand side of Fig. 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs::apps::pi::{kernel_count, native_count, Kernel};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pi_kernels");
    let n = 20_000u64;
    group.sample_size(10);
    for kernel in Kernel::all() {
        group.bench_with_input(BenchmarkId::new(kernel.name(), n), &n, |b, &n| {
            b.iter(|| kernel_count(black_box(kernel), black_box(0), black_box(n)).unwrap());
        });
    }
    group.finish();

    // Sanity: tiers agree (run once outside timing).
    let reference = native_count(0, 1_000);
    for kernel in Kernel::all() {
        assert_eq!(kernel_count(kernel, 0, 1_000).unwrap(), reference);
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
