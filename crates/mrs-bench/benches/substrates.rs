//! Substrate microbenchmarks: the building blocks whose costs underlie
//! the system-level numbers — PRNG throughput, Halton generation
//! (incremental vs direct, the paper's inner-loop optimization), the
//! XML-RPC codec, bucket sort/group, and base64.

use criterion::{criterion_group, criterion_main, Criterion};
use mrs_core::{Bucket, Datum};
use mrs_rng::{halton, Halton2D, Mt19937_64, StreamFactory};
use mrs_rpc::xmlrpc::{encode_request, parse_request, Value};
use std::hint::black_box;

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_rng");
    group.bench_function("mt19937_64_next", |b| {
        let mut g = Mt19937_64::new(5489);
        b.iter(|| black_box(g.next_u64()));
    });
    group.bench_function("stream_derivation", |b| {
        let f = StreamFactory::new(42);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(f.stream(&[1, 2, i]))
        });
    });
    group.finish();
}

fn bench_halton(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_halton");
    group.bench_function("incremental_2d_1000", |b| {
        b.iter(|| {
            let mut h = Halton2D::new(0);
            let mut acc = 0.0;
            for _ in 0..1000 {
                let (x, y) = h.next_point();
                acc += x + y;
            }
            black_box(acc)
        });
    });
    group.bench_function("direct_2d_1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=1000u64 {
                acc += halton(i, 2) + halton(i, 3);
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_rpc_codec(c: &mut Criterion) {
    let params = vec![
        Value::Int(42),
        Value::Str("task assignment with some payload".into()),
        Value::Array(
            (0..16)
                .map(|i| Value::Str(format!("http://10.0.0.1:8080/data/op3/t{i}/b2.mrsb")))
                .collect(),
        ),
    ];
    let xml = encode_request("task_done", &params);
    let mut group = c.benchmark_group("substrate_xmlrpc");
    group.bench_function("encode_request", |b| {
        b.iter(|| black_box(encode_request("task_done", black_box(&params))))
    });
    group.bench_function("parse_request", |b| {
        b.iter(|| black_box(parse_request(black_box(&xml)).unwrap()))
    });
    group.finish();
}

fn bench_bucket(c: &mut Criterion) {
    let records: Vec<(Vec<u8>, Vec<u8>)> =
        (0..10_000u64).map(|i| ((i * 2_654_435_761 % 997).to_bytes(), i.to_bytes())).collect();
    let mut group = c.benchmark_group("substrate_bucket");
    group.bench_function("sort_group_10k", |b| {
        b.iter(|| {
            let mut bucket = Bucket::from_records(records.clone());
            bucket.sort();
            black_box(bucket.groups().count())
        })
    });
    group.bench_function("bucket_file_roundtrip_10k", |b| {
        b.iter(|| {
            let bytes = mrs_fs::format::write_bucket_bytes(black_box(&records));
            let mut back = Bucket::new();
            mrs_fs::format::read_bucket_into(&bytes, &mut back).unwrap();
            black_box(back.len())
        })
    });
    group.finish();
}

fn bench_base64(c: &mut Criterion) {
    let data = vec![0xA7u8; 64 * 1024];
    let encoded = mrs_rpc::base64::encode(&data);
    let mut group = c.benchmark_group("substrate_base64");
    group.bench_function("encode_64k", |b| {
        b.iter(|| black_box(mrs_rpc::base64::encode(black_box(&data))))
    });
    group.bench_function("decode_64k", |b| {
        b.iter(|| black_box(mrs_rpc::base64::decode(black_box(&encoded)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_rng, bench_halton, bench_rpc_codec, bench_bucket, bench_base64);
criterion_main!(benches);
