//! Per-iteration framework overhead (the abstract's 0.3 s vs ≥30 s
//! claim): one near-empty map+reduce round on each Mrs runtime. The
//! Hadoop side is virtual-clock simulation and is reported by the
//! `overhead_table` binary instead of Criterion (simulated time cannot be
//! wall-benchmarked).

use criterion::{criterion_group, criterion_main, Criterion};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_runtime::{LocalCluster, LocalRuntime};
use std::sync::Arc;

fn tiny_input(tasks: usize) -> Vec<mrs_core::Record> {
    let lines: Vec<String> = (0..tasks).map(|i| format!("w{i}")).collect();
    lines_to_records(lines.iter().map(String::as_str))
}

fn one_round(job: &mut Job, src: mrs_runtime::DataId, tasks: usize) {
    let m = job.map_data(src, 0, tasks, false).expect("map");
    let r = job.reduce_data(m, 0).expect("reduce");
    job.wait(r).expect("round");
    job.discard(m);
    job.discard(r);
}

fn bench_overhead(c: &mut Criterion) {
    let tasks = 8;
    let mut group = c.benchmark_group("iteration_overhead");
    group.sample_size(20);

    group.bench_function("serial", |b| {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        let mut job = Job::new(&mut rt);
        let src = job.local_data(tiny_input(tasks), tasks).unwrap();
        b.iter(|| one_round(&mut job, src, tasks));
    });

    group.bench_function("pool_6", |b| {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 6);
        let mut job = Job::new(&mut rt);
        let src = job.local_data(tiny_input(tasks), tasks).unwrap();
        b.iter(|| one_round(&mut job, src, tasks));
    });

    group.bench_function("cluster_4_rpc", |b| {
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            4,
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .unwrap();
        let mut job = Job::new(&mut cluster);
        let src = job.local_data(tiny_input(tasks), tasks).unwrap();
        b.iter(|| one_round(&mut job, src, tasks));
    });

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
