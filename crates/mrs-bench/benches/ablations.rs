//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **A1 affinity** — iterative PSO on the RPC cluster with the
//!   task→slave affinity scheduler on vs off,
//! * **A2 pipelining** — chained iterations queued ahead vs waited on one
//!   by one (the §IV-A operation-queueing optimization),
//! * **A3 combiner** — WordCount with and without the local reduce,
//! * **A4 data path** — direct HTTP intermediate data vs the shared
//!   filesystem (with injected per-op latency to stand in for NFS).

use criterion::{criterion_group, criterion_main, Criterion};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_fs::MemFs;
use mrs_pso::mapreduce::{PsoProgram, FUNC_ISLAND};
use mrs_pso::{Objective, PsoConfig, Topology};
use mrs_runtime::{LocalCluster, LocalRuntime};
use std::sync::Arc;
use std::time::Duration;

fn pso_config() -> PsoConfig {
    PsoConfig {
        objective: Objective::Sphere,
        dim: 10,
        n_particles: 8,
        topology: Topology::Subswarms { size: 2 },
        seed: 3,
    }
}

fn pso_iterations(cluster: &mut LocalCluster, iters: u64) {
    let program = PsoProgram::new(pso_config(), 2);
    let islands = program.n_islands() as usize;
    let mut job = Job::new(cluster);
    let mut ds = job.local_data(program.initial_islands(), islands).unwrap();
    for _ in 0..iters {
        let m = job.map_data(ds, FUNC_ISLAND, islands, false).unwrap();
        ds = job.reduce_data(m, FUNC_ISLAND).unwrap();
    }
    job.wait(ds).unwrap();
}

fn ablation_affinity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_affinity");
    group.sample_size(10);
    for (label, on) in [("affinity_on", true), ("affinity_off", false)] {
        group.bench_function(label, |b| {
            let cfg = MasterConfig { use_affinity: on, ..MasterConfig::default() };
            let mut cluster = LocalCluster::start(
                Arc::new(PsoProgram::new(pso_config(), 2)),
                4,
                DataPlane::Direct,
                cfg,
            )
            .unwrap();
            b.iter(|| pso_iterations(&mut cluster, 8));
        });
    }
    group.finish();
}

fn ablation_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pipeline");
    group.sample_size(10);
    let program = || Arc::new(PsoProgram::new(pso_config(), 2));
    let islands = PsoProgram::new(pso_config(), 2).n_islands() as usize;

    group.bench_function("queued_ahead", |b| {
        let mut rt = LocalRuntime::pool(program(), 4);
        b.iter(|| {
            let p = PsoProgram::new(pso_config(), 2);
            let mut job = Job::new(&mut rt);
            let mut ds = job.local_data(p.initial_islands(), islands).unwrap();
            // Queue all 10 rounds, wait once.
            for _ in 0..10 {
                let m = job.map_data(ds, FUNC_ISLAND, islands, false).unwrap();
                ds = job.reduce_data(m, FUNC_ISLAND).unwrap();
            }
            job.wait(ds).unwrap();
        });
    });

    group.bench_function("wait_each_round", |b| {
        let mut rt = LocalRuntime::pool(program(), 4);
        b.iter(|| {
            let p = PsoProgram::new(pso_config(), 2);
            let mut job = Job::new(&mut rt);
            let mut ds = job.local_data(p.initial_islands(), islands).unwrap();
            for _ in 0..10 {
                let m = job.map_data(ds, FUNC_ISLAND, islands, false).unwrap();
                ds = job.reduce_data(m, FUNC_ISLAND).unwrap();
                // The non-pipelined driver: a barrier after every round.
                job.wait(ds).unwrap();
            }
        });
    });
    group.finish();
}

fn ablation_combiner(c: &mut Criterion) {
    // Heavily repetitive input: the combiner's best case, as in WordCount.
    let lines: Vec<String> =
        (0..400).map(|i| format!("common shared w{} common shared", i % 5)).collect();
    let input = lines_to_records(lines.iter().map(String::as_str));

    let mut group = c.benchmark_group("ablation_combiner");
    group.sample_size(10);
    for (label, combine) in [("combiner_on", true), ("combiner_off", false)] {
        group.bench_function(label, |b| {
            let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 4);
            b.iter(|| {
                let mut job = Job::new(&mut rt);
                job.map_reduce(input.clone(), 8, 4, combine).unwrap()
            });
        });
    }
    group.finish();

    // Report shuffle volume once (the real point of the combiner).
    for combine in [true, false] {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 4);
        {
            let mut job = Job::new(&mut rt);
            job.map_reduce(input.clone(), 8, 4, combine).unwrap();
        }
        eprintln!("combiner={combine}: shuffle bytes = {}", rt.metrics().shuffle_bytes());
    }
}

fn ablation_datapath(c: &mut Criterion) {
    let lines: Vec<String> =
        (0..200).map(|i| format!("w{} w{} w{}", i % 11, i % 5, i % 3)).collect();
    let input = lines_to_records(lines.iter().map(String::as_str));

    let mut group = c.benchmark_group("ablation_datapath");
    group.sample_size(10);

    group.bench_function("direct_http", |b| {
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            3,
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .unwrap();
        b.iter(|| {
            let mut job = Job::new(&mut cluster);
            job.map_reduce(input.clone(), 6, 3, true).unwrap()
        });
    });

    group.bench_function("shared_fs_1ms", |b| {
        // The shared filesystem with 1 ms per operation — a mild NFS.
        let store = MemFs::new();
        store.set_latency(Duration::from_millis(1));
        let shared: Arc<dyn mrs_fs::Store> = Arc::new(store);
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            3,
            DataPlane::SharedFs(shared),
            MasterConfig::default(),
        )
        .unwrap();
        b.iter(|| {
            let mut job = Job::new(&mut cluster);
            job.map_reduce(input.clone(), 6, 3, true).unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_affinity,
    ablation_pipeline,
    ablation_combiner,
    ablation_datapath
);
criterion_main!(benches);
