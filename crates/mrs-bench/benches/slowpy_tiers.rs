//! Interpreter-substrate microbenchmarks: per-operation dispatch cost of
//! the tree walker vs the bytecode VM on numeric loops (the mechanism
//! behind the Fig. 3 tier gaps), plus compile cost.

use criterion::{criterion_group, criterion_main, Criterion};
use slowpy::{parse, Engine, Value};
use std::hint::black_box;

const LOOP_SRC: &str = r#"
fn spin(n) {
  var acc = 0.0;
  var i = 0;
  while (i < n) {
    acc = acc + i * 0.5 - (i % 7);
    i = i + 1;
  }
  return acc;
}
"#;

fn bench_tiers(c: &mut Criterion) {
    let engine = Engine::new();
    let prog = parse(LOOP_SRC).unwrap();
    let module = engine.compile(&prog).unwrap();
    let n = Value::Int(20_000);

    // Reference results must agree.
    assert_eq!(
        engine.run_tree(&prog, "spin", &[Value::Int(500)]).unwrap(),
        engine.run_vm(&prog, "spin", &[Value::Int(500)]).unwrap()
    );

    let mut group = c.benchmark_group("slowpy_tiers");
    group.sample_size(10);
    group.bench_function("tree_interp", |b| {
        b.iter(|| engine.run_tree(&prog, "spin", black_box(std::slice::from_ref(&n))).unwrap())
    });
    group.bench_function("bytecode_vm", |b| {
        b.iter(|| engine.run_module(&module, "spin", black_box(std::slice::from_ref(&n))).unwrap())
    });
    group.bench_function("native_rust", |b| {
        b.iter(|| {
            let n = 20_000i64;
            let mut acc = 0.0f64;
            let mut i = 0i64;
            while i < n {
                acc = acc + i as f64 * 0.5 - (i.rem_euclid(7)) as f64;
                i += 1;
            }
            black_box(acc)
        })
    });
    group.bench_function("parse_and_compile", |b| {
        b.iter(|| engine.compile(&parse(black_box(LOOP_SRC)).unwrap()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_tiers);
criterion_main!(benches);
