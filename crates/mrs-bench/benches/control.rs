//! Control-plane round-trip cost: one near-empty map+reduce round on a
//! real-socket cluster under each control mode. The long-poll plane wins
//! by replacing poll backoff sleeps with condvar wakes and standalone
//! `task_done` RPCs with piggybacked reports; this bench pins that gap.

use criterion::{criterion_group, criterion_main, Criterion};
use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_runtime::LocalCluster;
use std::sync::Arc;

fn tiny_input(tasks: usize) -> Vec<mrs_core::Record> {
    let lines: Vec<String> = (0..tasks).map(|i| format!("w{i}")).collect();
    lines_to_records(lines.iter().map(String::as_str))
}

fn one_round(job: &mut Job, src: mrs_runtime::DataId, tasks: usize) {
    let m = job.map_data(src, 0, tasks, false).expect("map");
    let r = job.reduce_data(m, 0).expect("reduce");
    job.wait(r).expect("round");
    job.discard(m);
    job.discard(r);
}

fn bench_control(c: &mut Criterion) {
    let tasks = 8;
    let mut group = c.benchmark_group("control_round");
    group.sample_size(20);

    for (name, control) in [("longpoll", ControlMode::LongPoll), ("poll", ControlMode::Poll)] {
        group.bench_function(name, |b| {
            let cfg = MasterConfig { control, ..MasterConfig::default() };
            let mut cluster = LocalCluster::start_with(
                Arc::new(Simple(WordCount)),
                2,
                DataPlane::Direct,
                cfg,
                SlaveOptions { slots: 2, ..SlaveOptions::default() },
            )
            .unwrap();
            let mut job = Job::new(&mut cluster);
            let src = job.local_data(tiny_input(tasks), tasks).unwrap();
            b.iter(|| one_round(&mut job, src, tasks));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_control);
criterion_main!(benches);
