//! Master↔slave protocol messages and their XML-RPC encoding.
//!
//! The control channel (§IV-B) is genuine XML-RPC; these are the typed
//! views of the `get_task` / `task_done` payloads plus the URL resolver
//! both sides use to read bucket data (`http://` direct transfer, `file://`
//! / `mem://` shared filesystem).

use crate::dataplane;
use mrs_codec::FrameError;
use mrs_core::{Bucket, Error, Record, Result};
use mrs_fs::format::read_bucket_into;
use mrs_fs::{BucketUrl, Store};
use mrs_rpc::xmlrpc::Value;
use mrs_rpc::FrameCache;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the control channel discovers state changes.
///
/// The event-driven mode is the default: a `get_task` with nothing
/// runnable parks server-side on a condvar until a state transition makes
/// work available (or a deadline expires), and completion reports ride on
/// the next `get_task` instead of costing their own RPC. The legacy
/// `Poll` mode — fixed-interval sleeps between polls, standalone
/// `task_done` calls — is kept behind `--mrs-control=poll` so the
/// `control_latency` bench can measure the delta honestly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ControlMode {
    /// Sleep-and-poll: `Wait` answers return immediately and the slave
    /// backs off between polls; completions are standalone RPCs.
    Poll,
    /// Event-driven: long-poll dispatch plus piggybacked completions.
    #[default]
    LongPoll,
}

impl ControlMode {
    /// Parse a `--mrs-control` value.
    pub fn parse(s: &str) -> Result<ControlMode> {
        match s {
            "poll" => Ok(ControlMode::Poll),
            "longpoll" | "event" => Ok(ControlMode::LongPoll),
            other => Err(Error::Invalid(format!("unknown control mode {other:?} (poll|longpoll)"))),
        }
    }
}

/// Whether the master launches speculative backup copies of straggling
/// tasks (§ speculative execution). When a task wave is nearly drained and
/// idle slots exist, a running task whose elapsed time exceeds
/// `threshold ×` the median completed-task runtime of its operation gets a
/// backup attempt on a different slave; the first attempt to finish wins
/// and the loser is cancelled cooperatively. `Off` keeps the
/// non-speculative scheduler as a first-class oracle for benchmarks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpeculateMode {
    /// Never launch backup attempts.
    Off,
    /// Launch a backup when a task has run longer than `threshold` times
    /// the median completed runtime of its operation.
    On {
        /// Straggler multiple; 1.5 by default.
        threshold: f64,
    },
}

impl Default for SpeculateMode {
    fn default() -> Self {
        SpeculateMode::On { threshold: 1.5 }
    }
}

impl SpeculateMode {
    /// Parse a `--mrs-speculate` value: `on`, `off`, or `threshold=X`.
    pub fn parse(s: &str) -> Result<SpeculateMode> {
        match s {
            "off" => Ok(SpeculateMode::Off),
            "on" => Ok(SpeculateMode::default()),
            other => match other.strip_prefix("threshold=") {
                Some(t) => match t.parse::<f64>() {
                    Ok(x) if x.is_finite() && x >= 1.0 => Ok(SpeculateMode::On { threshold: x }),
                    _ => Err(Error::Invalid(format!("speculate threshold {t:?} must be >= 1.0"))),
                },
                None => Err(Error::Invalid(format!(
                    "unknown speculate mode {other:?} (on|off|threshold=X)"
                ))),
            },
        }
    }
}

/// A task-completion report: the payload of `task_done`, also batched on
/// `get_task` calls as the piggybacked `reports` parameter so that in the
/// steady state one control round trip both returns finished work and
/// fetches the next batch.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskReport {
    /// Output dataset id the task contributed to.
    pub data: u32,
    /// Task index within the dataset.
    pub index: usize,
    /// The attempt id this report is for (0 from legacy slaves that echo
    /// no attempt; the master then accepts the report unconditionally).
    pub attempt: u32,
    /// Output bucket URLs (one per partition for map, one for reduce).
    pub urls: Vec<String>,
}

impl TaskReport {
    /// Encode for the RPC request.
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("data".to_owned(), Value::Int(self.data as i64));
        m.insert("index".to_owned(), Value::Int(self.index as i64));
        m.insert("attempt".to_owned(), Value::Int(self.attempt as i64));
        m.insert(
            "urls".to_owned(),
            Value::Array(self.urls.iter().map(|u| Value::Str(u.clone())).collect()),
        );
        Value::Struct(m)
    }

    /// Decode from the RPC request. A missing `attempt` key (legacy slave)
    /// decodes as 0, which the master treats as "no attempt tracking".
    pub fn from_value(v: &Value) -> Result<TaskReport> {
        let int = |name: &str| -> Result<i64> {
            v.field(name)
                .and_then(Value::as_int)
                .ok_or_else(|| Error::Rpc(format!("report missing {name}")))
        };
        let urls = v
            .field("urls")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::Rpc("report missing urls".into()))?
            .iter()
            .map(|u| {
                u.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| Error::Rpc("non-string report url".into()))
            })
            .collect::<Result<Vec<_>>>()?;
        let attempt = match v.field("attempt") {
            Some(a) => {
                a.as_int().ok_or_else(|| Error::Rpc("non-int report attempt".into()))? as u32
            }
            None => 0,
        };
        Ok(TaskReport { data: int("data")? as u32, index: int("index")? as usize, attempt, urls })
    }
}

/// What `get_task` returns to a polling slave.
///
/// A multicore slave polls with its free slot count and can be handed a
/// whole batch in one round trip, so filling an N-slot slave costs one
/// poll, not N — the per-round control-channel latency the BSP analysis
/// (PAPERS.md) identifies as the iterative-workload tax.
#[derive(Clone, Debug, PartialEq)]
pub enum Assignment {
    /// Run these tasks (never empty; at most the `free_slots` the slave
    /// asked for, and never more than the master believes it has free).
    Tasks(Vec<TaskMsg>),
    /// Nothing runnable right now; poll again.
    Wait,
    /// The job is over; the slave should exit its loop.
    Exit,
}

/// What a task does with its input.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Map each input record, partitioning output into `parts` buckets.
    Map,
    /// Sort-group-reduce the gathered partition into one output bucket.
    Reduce,
    /// Fused reduce+map (§ iterative jobs): sort-group-reduce the gathered
    /// partition and feed every reduced record straight into the map
    /// function, partitioning like a map task — one scheduling round and
    /// one shuffle instead of two, with no materialized reduce output.
    ReduceMap,
}

impl TaskKind {
    fn as_str(self) -> &'static str {
        match self {
            TaskKind::Map => "map",
            TaskKind::Reduce => "reduce",
            TaskKind::ReduceMap => "reducemap",
        }
    }

    /// Map-like kinds emit partitioned buckets; reduce-like kinds gather
    /// one partition from every task of their input.
    pub fn is_map_like(self) -> bool {
        matches!(self, TaskKind::Map | TaskKind::ReduceMap)
    }
}

/// A task assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskMsg {
    /// Output dataset id the task contributes to.
    pub data: u32,
    /// Task index within the dataset.
    pub index: usize,
    /// What the task does with its input.
    pub kind: TaskKind,
    /// Program function id (the reduce function for fused tasks).
    pub func: u32,
    /// Map function id for fused `ReduceMap` tasks; 0 otherwise.
    pub map_func: u32,
    /// Output partitions (map-like only; 1 for reduce).
    pub parts: usize,
    /// Run the combiner after mapping.
    pub combine: bool,
    /// Attempt id (1-based, unique per task slot): echoed back in the
    /// completion report so the master can reject reports from attempts
    /// that have since been cancelled or superseded. 0 from legacy masters
    /// that never wrote the key.
    pub attempt: u32,
    /// Input bucket URLs.
    pub inputs: Vec<String>,
}

impl TaskMsg {
    /// Encode for the RPC response. Alongside the `kind` discriminator the
    /// legacy `is_map` boolean is still written (fused tasks gather like a
    /// reduce, so they encode as `false`) — struct decoders ignore unknown
    /// keys, so old peers keep working for the kinds they know.
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("data".to_owned(), Value::Int(self.data as i64));
        m.insert("index".to_owned(), Value::Int(self.index as i64));
        m.insert("kind".to_owned(), Value::Str(self.kind.as_str().into()));
        m.insert("is_map".to_owned(), Value::Bool(self.kind == TaskKind::Map));
        m.insert("func".to_owned(), Value::Int(self.func as i64));
        m.insert("map_func".to_owned(), Value::Int(self.map_func as i64));
        m.insert("parts".to_owned(), Value::Int(self.parts as i64));
        m.insert("combine".to_owned(), Value::Bool(self.combine));
        m.insert("attempt".to_owned(), Value::Int(self.attempt as i64));
        m.insert(
            "inputs".to_owned(),
            Value::Array(self.inputs.iter().map(|u| Value::Str(u.clone())).collect()),
        );
        Value::Struct(m)
    }

    /// Decode from the RPC response. Prefers the `kind` discriminator and
    /// falls back to the legacy `is_map` boolean from pre-fusion masters.
    pub fn from_value(v: &Value) -> Result<TaskMsg> {
        let int = |name: &str| -> Result<i64> {
            v.field(name)
                .and_then(Value::as_int)
                .ok_or_else(|| Error::Rpc(format!("assignment missing {name}")))
        };
        let inputs = v
            .field("inputs")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::Rpc("assignment missing inputs".into()))?
            .iter()
            .map(|u| {
                u.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| Error::Rpc("non-string input url".into()))
            })
            .collect::<Result<Vec<_>>>()?;
        let kind = match v.field("kind").and_then(Value::as_str) {
            Some("map") => TaskKind::Map,
            Some("reduce") => TaskKind::Reduce,
            Some("reducemap") => TaskKind::ReduceMap,
            Some(other) => return Err(Error::Rpc(format!("unknown task kind {other:?}"))),
            None => match v.field("is_map") {
                Some(Value::Bool(true)) => TaskKind::Map,
                Some(Value::Bool(false)) => TaskKind::Reduce,
                _ => return Err(Error::Rpc("assignment missing kind/is_map".into())),
            },
        };
        let combine = match v.field("combine") {
            Some(Value::Bool(b)) => *b,
            _ => return Err(Error::Rpc("assignment missing combine".into())),
        };
        let map_func = match v.field("map_func") {
            Some(f) => f.as_int().ok_or_else(|| Error::Rpc("non-int map_func".into()))? as u32,
            None => 0,
        };
        let attempt = match v.field("attempt") {
            Some(a) => a.as_int().ok_or_else(|| Error::Rpc("non-int attempt".into()))? as u32,
            None => 0,
        };
        Ok(TaskMsg {
            data: int("data")? as u32,
            index: int("index")? as usize,
            kind,
            func: int("func")? as u32,
            map_func,
            parts: int("parts")? as usize,
            combine,
            attempt,
            inputs,
        })
    }
}

impl Assignment {
    /// Encode for the RPC response.
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        match self {
            Assignment::Wait => {
                m.insert("type".to_owned(), Value::Str("wait".into()));
            }
            Assignment::Exit => {
                m.insert("type".to_owned(), Value::Str("exit".into()));
            }
            Assignment::Tasks(tasks) => {
                m.insert("type".to_owned(), Value::Str("tasks".into()));
                m.insert(
                    "tasks".to_owned(),
                    Value::Array(tasks.iter().map(TaskMsg::to_value).collect()),
                );
            }
        }
        Value::Struct(m)
    }

    /// Decode from the RPC response.
    pub fn from_value(v: &Value) -> Result<Assignment> {
        let ty = v
            .field("type")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::Rpc("assignment missing type".into()))?;
        match ty {
            "wait" => Ok(Assignment::Wait),
            "exit" => Ok(Assignment::Exit),
            "tasks" => {
                let tasks = v
                    .field("tasks")
                    .and_then(Value::as_array)
                    .ok_or_else(|| Error::Rpc("assignment missing tasks".into()))?
                    .iter()
                    .map(TaskMsg::from_value)
                    .collect::<Result<Vec<_>>>()?;
                if tasks.is_empty() {
                    return Err(Error::Rpc("empty task batch".into()));
                }
                Ok(Assignment::Tasks(tasks))
            }
            other => Err(Error::Rpc(format!("unknown assignment type {other:?}"))),
        }
    }
}

/// An eagerly published map-output fragment: one partition bucket of one
/// completed map-like task, announced to the slave the master predicts
/// will own the consuming reduce partition — *before* the operation
/// barrier clears. The receiving slave may fetch it in the background
/// while the remaining map tasks run, hiding transfer latency behind map
/// compute.
#[derive(Clone, Debug, PartialEq)]
pub struct EagerFragment {
    /// The map-like dataset the fragment belongs to.
    pub data: u32,
    /// The reduce partition the bucket feeds.
    pub partition: usize,
    /// Bucket URL, exactly as the consuming task's `inputs` will name it.
    pub url: String,
}

impl EagerFragment {
    /// Encode for the RPC response.
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("data".to_owned(), Value::Int(self.data as i64));
        m.insert("partition".to_owned(), Value::Int(self.partition as i64));
        m.insert("url".to_owned(), Value::Str(self.url.clone()));
        Value::Struct(m)
    }

    /// Decode from the RPC response.
    pub fn from_value(v: &Value) -> Result<EagerFragment> {
        let int = |name: &str| -> Result<i64> {
            v.field(name)
                .and_then(Value::as_int)
                .ok_or_else(|| Error::Rpc(format!("eager fragment missing {name}")))
        };
        let url = v
            .field("url")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::Rpc("eager fragment missing url".into()))?
            .to_owned();
        Ok(EagerFragment { data: int("data")? as u32, partition: int("partition")? as usize, url })
    }
}

/// An order to abort a specific running attempt: piggybacked on the
/// `Dispatch` response to the slave that is running an attempt which lost
/// the first-completion race (or whose task became moot). The slave sets
/// the attempt's cancellation flag — checked at kernel record/group
/// boundaries — and silently discards the partial output, freeing the slot
/// without reporting. Encoded as an extra struct key, so legacy slaves
/// (which ignore unknown keys) simply let the doomed attempt run to
/// completion; its stale report is then rejected by attempt id.
#[derive(Clone, Debug, PartialEq)]
pub struct CancelOrder {
    /// Output dataset id of the task.
    pub data: u32,
    /// Task index within the dataset.
    pub index: usize,
    /// The specific attempt to abort (never 0).
    pub attempt: u32,
}

impl CancelOrder {
    /// Encode for the RPC response.
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("data".to_owned(), Value::Int(self.data as i64));
        m.insert("index".to_owned(), Value::Int(self.index as i64));
        m.insert("attempt".to_owned(), Value::Int(self.attempt as i64));
        Value::Struct(m)
    }

    /// Decode from the RPC response.
    pub fn from_value(v: &Value) -> Result<CancelOrder> {
        let int = |name: &str| -> Result<i64> {
            v.field(name)
                .and_then(Value::as_int)
                .ok_or_else(|| Error::Rpc(format!("cancel order missing {name}")))
        };
        Ok(CancelOrder {
            data: int("data")? as u32,
            index: int("index")? as usize,
            attempt: int("attempt")? as u32,
        })
    }
}

/// A batch of trace events piggybacked on a `get_task` call: the slave
/// drains its recorder every poll and ships the delta, so tracing costs
/// zero extra RPCs. `sent_at_us` is the slave's clock at send time and
/// `rtt_us` the slave-measured round trip of its *previous* poll (0 =
/// not yet known); together they let the master fit a clock offset
/// ([`mrs_trace::ClockSync`]) and map the events onto its own timeline.
/// Encoded as an extra optional positional parameter, so legacy peers
/// (which never send or read it) interoperate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceBatch {
    /// Slave recorder clock (µs since its epoch) when the batch was sent.
    pub sent_at_us: u64,
    /// Slave-measured RTT of the previous `get_task` call (0 = unknown).
    pub rtt_us: u64,
    /// Events lost to ring-buffer overflow since the last batch.
    pub dropped: u64,
    /// The drained events, time-sorted on the slave's clock.
    pub events: Vec<mrs_trace::Event>,
}

impl TraceBatch {
    /// True when there is nothing worth shipping (tracing off or idle).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Encode for the RPC request. Each event is a flat 8-int array —
    /// `[at_us, kind, name, lane, op, data, index, attempt]` — to keep
    /// the XML-RPC volume of a busy poll small.
    pub fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("sent_at".to_owned(), Value::Int(self.sent_at_us as i64));
        m.insert("rtt".to_owned(), Value::Int(self.rtt_us as i64));
        m.insert("dropped".to_owned(), Value::Int(self.dropped as i64));
        let events = self
            .events
            .iter()
            .map(|e| {
                Value::Array(vec![
                    Value::Int(e.at_us as i64),
                    Value::Int(e.kind.code() as i64),
                    Value::Int(e.name.code() as i64),
                    Value::Int(e.lane as i64),
                    Value::Int(e.tag.op.code() as i64),
                    Value::Int(e.tag.data as i64),
                    Value::Int(e.tag.index as i64),
                    Value::Int(e.tag.attempt as i64),
                ])
            })
            .collect();
        m.insert("events".to_owned(), Value::Array(events));
        Value::Struct(m)
    }

    /// Decode from the RPC request. Tracing is best-effort observability:
    /// an event with an unknown kind/name/op code (a newer slave's
    /// vocabulary) is skipped rather than failing the whole dispatch;
    /// only a structurally malformed batch is an error.
    pub fn from_value(v: &Value) -> Result<TraceBatch> {
        let int = |name: &str| -> Result<i64> {
            v.field(name)
                .and_then(Value::as_int)
                .ok_or_else(|| Error::Rpc(format!("trace batch missing {name}")))
        };
        let raw = v
            .field("events")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::Rpc("trace batch missing events".into()))?;
        let mut events = Vec::with_capacity(raw.len());
        for e in raw {
            let fields =
                e.as_array().ok_or_else(|| Error::Rpc("trace event is not an array".into()))?;
            if fields.len() != 8 {
                return Err(Error::Rpc(format!("trace event has {} fields", fields.len())));
            }
            let mut ints = [0i64; 8];
            for (slot, f) in ints.iter_mut().zip(fields) {
                *slot = f.as_int().ok_or_else(|| Error::Rpc("non-int trace event field".into()))?;
            }
            let (Some(kind), Some(name), Some(op)) = (
                mrs_trace::Kind::from_code(ints[1] as u8),
                mrs_trace::Name::from_code(ints[2] as u8),
                mrs_trace::Op::from_code(ints[4] as u8),
            ) else {
                continue;
            };
            events.push(mrs_trace::Event {
                at_us: ints[0] as u64,
                kind,
                name,
                lane: ints[3] as u32,
                tag: mrs_trace::Tag {
                    op,
                    data: ints[5] as u32,
                    index: ints[6] as u32,
                    attempt: ints[7] as u32,
                },
            });
        }
        Ok(TraceBatch {
            sent_at_us: int("sent_at")? as u64,
            rtt_us: int("rtt")? as u64,
            dropped: int("dropped")? as u64,
            events,
        })
    }
}

/// A full `get_task` answer: the assignment plus lifetime-GC purge
/// orders, eager-shuffle fragment announcements, and attempt-cancellation
/// orders. `purge` lists output-path prefixes whose datasets have no
/// remaining consumers; the slave drops the matching frames (and eager
/// fragments) from its caches. `eager` lists freshly completed map-output
/// buckets this slave should pre-fetch before the barrier clears.
/// `cancel` lists attempts this slave should abort cooperatively. All are
/// encoded as extra keys on the assignment struct, so older slaves (which
/// ignore unknown keys) interoperate.
#[derive(Clone, Debug, PartialEq)]
pub struct Dispatch {
    /// What to run (or wait/exit).
    pub assignment: Assignment,
    /// Frame-cache path prefixes to drop.
    pub purge: Vec<String>,
    /// Map-output fragments available for eager pre-fetch.
    pub eager: Vec<EagerFragment>,
    /// Running attempts to abort.
    pub cancel: Vec<CancelOrder>,
}

impl Dispatch {
    /// Encode for the RPC response.
    pub fn to_value(&self) -> Value {
        let mut v = self.assignment.to_value();
        if let Value::Struct(m) = &mut v {
            if !self.purge.is_empty() {
                m.insert(
                    "purge".to_owned(),
                    Value::Array(self.purge.iter().map(|p| Value::Str(p.clone())).collect()),
                );
            }
            if !self.eager.is_empty() {
                m.insert(
                    "eager".to_owned(),
                    Value::Array(self.eager.iter().map(EagerFragment::to_value).collect()),
                );
            }
            if !self.cancel.is_empty() {
                m.insert(
                    "cancel".to_owned(),
                    Value::Array(self.cancel.iter().map(CancelOrder::to_value).collect()),
                );
            }
        }
        v
    }

    /// Decode from the RPC response. A missing `purge`, `eager`, or
    /// `cancel` key (old master) means nothing to drop, pre-fetch, or
    /// abort.
    pub fn from_value(v: &Value) -> Result<Dispatch> {
        let assignment = Assignment::from_value(v)?;
        let purge = match v.field("purge").and_then(Value::as_array) {
            Some(items) => items
                .iter()
                .map(|p| {
                    p.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| Error::Rpc("non-string purge prefix".into()))
                })
                .collect::<Result<Vec<_>>>()?,
            None => Vec::new(),
        };
        let eager = match v.field("eager").and_then(Value::as_array) {
            Some(items) => {
                items.iter().map(EagerFragment::from_value).collect::<Result<Vec<_>>>()?
            }
            None => Vec::new(),
        };
        let cancel = match v.field("cancel").and_then(Value::as_array) {
            Some(items) => items.iter().map(CancelOrder::from_value).collect::<Result<Vec<_>>>()?,
            None => Vec::new(),
        };
        Ok(Dispatch { assignment, purge, eager, cancel })
    }
}

/// How intermediate data moves between slaves.
#[derive(Clone)]
pub enum DataPlane {
    /// Each slave serves its own outputs over HTTP; URLs are `http://`.
    /// "direct communication for high performance" (§IV-B).
    Direct,
    /// All outputs go to a shared store; URLs are `file://`. "storage on a
    /// filesystem for increased fault-tolerance".
    SharedFs(Arc<dyn Store>),
}

impl std::fmt::Debug for DataPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataPlane::Direct => f.write_str("DataPlane::Direct"),
            DataPlane::SharedFs(_) => f.write_str("DataPlane::SharedFs"),
        }
    }
}

/// Fetch and parse a bucket by URL. `shared` resolves `file://`/`mem://`
/// URLs; `http://` URLs are fetched from the owning peer's data server.
pub fn fetch_records(url: &str, shared: Option<&Arc<dyn Store>>) -> Result<Vec<Record>> {
    fetch_records_local_first(url, shared, None, None)
}

/// Like [`fetch_records`], but an `http://` URL whose authority is
/// `own_authority` is read straight from `own_cache` instead of going
/// through a socket — the short-circuit real Mrs gets for free by reading
/// its own local files, which is what makes task→slave affinity pay even
/// for data the slave itself produced (§IV-A).
pub fn fetch_records_local_first(
    url: &str,
    shared: Option<&Arc<dyn Store>>,
    own_authority: Option<&str>,
    own_cache: Option<&FrameCache>,
) -> Result<Vec<Record>> {
    let bytes = fetch_bucket_bytes_local_first(url, shared, own_authority, own_cache)?;
    let mut bucket = Bucket::new();
    read_bucket_into(&bytes, &mut bucket)?;
    Ok(bucket.to_records())
}

/// The transfer half of [`fetch_records_local_first`]: resolve the URL
/// and return the raw (decoded `MRSB1`) bucket bytes without parsing
/// them. The reduce path uses this to decode several fetched buckets
/// straight into one arena instead of materializing a `Vec<Record>` per
/// bucket.
///
/// Every resolution path runs the wire bytes through the `MRSF1` frame
/// decoder, which verifies the checksum and transparently accepts raw
/// legacy payloads. A *remote* frame that fails its checksum is fetched
/// once more from the peer (transient corruption) before the error
/// surfaces; local and shared-store corruption is not retried — re-reading
/// the same bytes cannot help.
pub fn fetch_bucket_bytes_local_first(
    url: &str,
    shared: Option<&Arc<dyn Store>>,
    own_authority: Option<&str>,
    own_cache: Option<&FrameCache>,
) -> Result<Vec<u8>> {
    let parsed = BucketUrl::parse(url)?;
    match &parsed {
        BucketUrl::Http { authority, path } => {
            if let (Some(own), Some(cache), Some(rel)) =
                (own_authority, own_cache, path.strip_prefix("/data/"))
            {
                if own == authority {
                    let frame = cache.get(rel).ok_or_else(|| {
                        Error::MissingData(format!("own bucket {rel} missing from frame cache"))
                    })?;
                    dataplane::record_shortcircuit();
                    return mrs_codec::decode_frame(&frame)
                        .map_err(|e| Error::Codec(format!("local frame {rel}: {e}")));
                }
            }
            fetch_remote_verified(authority, path)
        }
        BucketUrl::File(p) | BucketUrl::Mem(p) => {
            let bytes = shared
                .ok_or_else(|| Error::Url(format!("no shared store to resolve {url}")))?
                .get(p)?;
            mrs_codec::decode_vec(bytes).map_err(|e| Error::Codec(format!("bucket {p}: {e}")))
        }
    }
}

/// Fetch a bucket from a peer and decode its frame, re-fetching once on a
/// checksum mismatch. Successful transfers feed the process-wide wire
/// counters (raw vs on-wire bytes).
fn fetch_remote_verified(authority: &str, path: &str) -> Result<Vec<u8>> {
    let wire = mrs_rpc::dataserver::fetch(authority, path)?;
    let wire_len = wire.len();
    match mrs_codec::decode_vec(wire) {
        Ok(raw) => {
            dataplane::record_remote_fetch(raw.len(), wire_len);
            Ok(raw)
        }
        Err(FrameError::Checksum { .. }) => {
            dataplane::record_checksum_retry();
            let wire = mrs_rpc::dataserver::fetch(authority, path)?;
            let wire_len = wire.len();
            let raw = mrs_codec::decode_vec(wire).map_err(|e| {
                Error::Codec(format!("bucket {authority}{path} corrupt after refetch: {e}"))
            })?;
            dataplane::record_remote_fetch(raw.len(), wire_len);
            Ok(raw)
        }
        Err(e) => Err(Error::Codec(format!("bucket {authority}{path}: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_roundtrip_tasks() {
        let t = TaskMsg {
            data: 3,
            index: 7,
            kind: TaskKind::Map,
            func: 2,
            map_func: 0,
            parts: 5,
            combine: true,
            attempt: 1,
            inputs: vec!["http://h:1/data/x".into(), "file://y".into()],
        };
        let mut t2 = t.clone();
        t2.index = 8;
        t2.kind = TaskKind::Reduce;
        let mut t3 = t.clone();
        t3.index = 9;
        t3.kind = TaskKind::ReduceMap;
        t3.map_func = 4;
        for a in [Assignment::Tasks(vec![t.clone()]), Assignment::Tasks(vec![t, t2, t3])] {
            assert_eq!(Assignment::from_value(&a.to_value()).unwrap(), a);
        }
    }

    #[test]
    fn legacy_is_map_decodes_without_kind() {
        let t = TaskMsg {
            data: 1,
            index: 0,
            kind: TaskKind::Reduce,
            func: 0,
            map_func: 0,
            parts: 1,
            combine: false,
            attempt: 0,
            inputs: vec![],
        };
        // Strip the new keys the way a pre-fusion master would never have
        // written them.
        let Value::Struct(mut m) = t.to_value() else { panic!("struct") };
        m.remove("kind");
        m.remove("map_func");
        m.remove("attempt");
        let got = TaskMsg::from_value(&Value::Struct(m)).unwrap();
        assert_eq!(got, t);
    }

    #[test]
    fn attempt_id_roundtrips_and_defaults_to_zero() {
        // New master → new slave: the attempt id survives the round trip.
        let t = TaskMsg {
            data: 2,
            index: 3,
            kind: TaskKind::Map,
            func: 0,
            map_func: 0,
            parts: 2,
            combine: false,
            attempt: 7,
            inputs: vec![],
        };
        assert_eq!(TaskMsg::from_value(&t.to_value()).unwrap().attempt, 7);
        // Old master → new slave: a missing attempt key decodes as 0.
        let Value::Struct(mut m) = t.to_value() else { panic!("struct") };
        m.remove("attempt");
        assert_eq!(TaskMsg::from_value(&Value::Struct(m)).unwrap().attempt, 0);
        // Old slave → new master: an attempt-less report decodes as 0, the
        // "accept unconditionally" sentinel.
        let r = TaskReport { data: 2, index: 3, attempt: 5, urls: vec!["file://a".into()] };
        assert_eq!(TaskReport::from_value(&r.to_value()).unwrap().attempt, 5);
        let Value::Struct(mut m) = r.to_value() else { panic!("struct") };
        m.remove("attempt");
        let legacy = TaskReport::from_value(&Value::Struct(m)).unwrap();
        assert_eq!(legacy.attempt, 0);
        assert_eq!(legacy.urls, r.urls);
    }

    #[test]
    fn cancel_order_roundtrips_and_legacy_decoder_ignores_it() {
        let c = CancelOrder { data: 4, index: 2, attempt: 3 };
        assert_eq!(CancelOrder::from_value(&c.to_value()).unwrap(), c);
        // Malformed orders are rejected, not mis-decoded.
        assert!(CancelOrder::from_value(&Value::Int(1)).is_err());
        let mut m = BTreeMap::new();
        m.insert("data".to_owned(), Value::Int(4));
        assert!(CancelOrder::from_value(&Value::Struct(m)).is_err());
        // A dispatch carrying cancel orders round-trips...
        let d = Dispatch {
            assignment: Assignment::Wait,
            purge: vec![],
            eager: vec![],
            cancel: vec![c.clone(), CancelOrder { data: 4, index: 5, attempt: 1 }],
        };
        assert_eq!(Dispatch::from_value(&d.to_value()).unwrap(), d);
        // ...and a legacy decoder (assignment-only view) still parses the
        // same bytes: the cancel key rides along ignored.
        assert_eq!(Assignment::from_value(&d.to_value()).unwrap(), Assignment::Wait);
        // A new slave reading an old master's dispatch sees no cancels.
        let old = Assignment::Wait.to_value();
        assert!(Dispatch::from_value(&old).unwrap().cancel.is_empty());
    }

    #[test]
    fn dispatch_roundtrip_with_and_without_purge() {
        let a = Assignment::Wait;
        let d = Dispatch {
            assignment: a.clone(),
            purge: vec!["s0/d3/".into(), "src2/".into()],
            eager: vec![],
            cancel: vec![],
        };
        assert_eq!(Dispatch::from_value(&d.to_value()).unwrap(), d);
        let bare = Dispatch { assignment: a.clone(), purge: vec![], eager: vec![], cancel: vec![] };
        assert_eq!(Dispatch::from_value(&bare.to_value()).unwrap(), bare);
        // An old master's plain assignment decodes as an empty purge list.
        assert_eq!(Dispatch::from_value(&a.to_value()).unwrap(), bare);
    }

    #[test]
    fn dispatch_roundtrip_with_eager_fragments() {
        let frag = |p: usize| EagerFragment {
            data: 2,
            partition: p,
            url: format!("http://h:1/data/s0/d2/t0/b{p}.mrsb"),
        };
        let d = Dispatch {
            assignment: Assignment::Wait,
            purge: vec!["s1/d0/".into()],
            eager: vec![frag(0), frag(3)],
            cancel: vec![],
        };
        assert_eq!(Dispatch::from_value(&d.to_value()).unwrap(), d);
        // Fragment messages round-trip standalone too.
        let f = frag(7);
        assert_eq!(EagerFragment::from_value(&f.to_value()).unwrap(), f);
    }

    #[test]
    fn malformed_eager_fragment_rejected() {
        assert!(EagerFragment::from_value(&Value::Int(1)).is_err());
        let mut m = BTreeMap::new();
        m.insert("data".to_owned(), Value::Int(1));
        m.insert("partition".to_owned(), Value::Int(0));
        // Missing url.
        assert!(EagerFragment::from_value(&Value::Struct(m)).is_err());
    }

    #[test]
    fn assignment_roundtrip_wait_exit() {
        for a in [Assignment::Wait, Assignment::Exit] {
            assert_eq!(Assignment::from_value(&a.to_value()).unwrap(), a);
        }
    }

    #[test]
    fn malformed_assignment_rejected() {
        assert!(Assignment::from_value(&Value::Int(3)).is_err());
        let mut m = BTreeMap::new();
        m.insert("type".to_owned(), Value::Str("tasks".into()));
        assert!(Assignment::from_value(&Value::Struct(m)).is_err());
        // An empty batch is a protocol violation, not a silent Wait.
        let mut m = BTreeMap::new();
        m.insert("type".to_owned(), Value::Str("tasks".into()));
        m.insert("tasks".to_owned(), Value::Array(vec![]));
        assert!(Assignment::from_value(&Value::Struct(m)).is_err());
    }

    #[test]
    fn task_report_roundtrip() {
        let r = TaskReport {
            data: 9,
            index: 4,
            attempt: 2,
            urls: vec!["http://h:1/data/a".into(), "file://b".into()],
        };
        assert_eq!(TaskReport::from_value(&r.to_value()).unwrap(), r);
        let empty = TaskReport { data: 0, index: 0, attempt: 0, urls: vec![] };
        assert_eq!(TaskReport::from_value(&empty.to_value()).unwrap(), empty);
    }

    #[test]
    fn malformed_task_report_rejected() {
        assert!(TaskReport::from_value(&Value::Int(1)).is_err());
        let mut m = BTreeMap::new();
        m.insert("data".to_owned(), Value::Int(1));
        // Missing index/urls.
        assert!(TaskReport::from_value(&Value::Struct(m)).is_err());
    }

    #[test]
    fn trace_batch_roundtrips_and_skips_unknown_codes() {
        use mrs_trace::{Event, Kind, Name, Op, Tag};
        let e = |at: u64| Event {
            at_us: at,
            kind: Kind::Begin,
            name: Name::Exec,
            lane: 2,
            tag: Tag::task(Op::Map, 3, 7, 1),
        };
        let b = TraceBatch {
            sent_at_us: 1_000_000,
            rtt_us: 450,
            dropped: 2,
            events: vec![e(10), e(20)],
        };
        assert_eq!(TraceBatch::from_value(&b.to_value()).unwrap(), b);
        assert!(!b.is_empty());
        assert!(TraceBatch::default().is_empty());
        assert_eq!(TraceBatch::from_value(&TraceBatch::default().to_value()).unwrap().events, []);
        // An event with an unknown name code (future vocabulary) is
        // skipped, not fatal…
        let Value::Struct(mut m) = b.to_value() else { panic!("struct") };
        m.insert(
            "events".to_owned(),
            Value::Array(vec![Value::Array(vec![
                Value::Int(5),
                Value::Int(0),
                Value::Int(200),
                Value::Int(0),
                Value::Int(0),
                Value::Int(0),
                Value::Int(0),
                Value::Int(0),
            ])]),
        );
        assert!(TraceBatch::from_value(&Value::Struct(m)).unwrap().events.is_empty());
        // …but a structurally broken batch is rejected.
        assert!(TraceBatch::from_value(&Value::Int(3)).is_err());
        let Value::Struct(mut m) = b.to_value() else { panic!("struct") };
        m.insert("events".to_owned(), Value::Array(vec![Value::Array(vec![Value::Int(1)])]));
        assert!(TraceBatch::from_value(&Value::Struct(m)).is_err());
    }

    #[test]
    fn speculate_mode_parses_and_rejects() {
        assert_eq!(SpeculateMode::parse("off").unwrap(), SpeculateMode::Off);
        assert_eq!(SpeculateMode::parse("on").unwrap(), SpeculateMode::On { threshold: 1.5 });
        assert_eq!(
            SpeculateMode::parse("threshold=2.5").unwrap(),
            SpeculateMode::On { threshold: 2.5 }
        );
        assert!(SpeculateMode::parse("threshold=0.5").is_err(), "sub-1 multiples thrash");
        assert!(SpeculateMode::parse("threshold=nan").is_err());
        assert!(SpeculateMode::parse("maybe").is_err());
        assert_eq!(SpeculateMode::default(), SpeculateMode::On { threshold: 1.5 });
    }

    #[test]
    fn control_mode_parses_and_rejects() {
        assert_eq!(ControlMode::parse("poll").unwrap(), ControlMode::Poll);
        assert_eq!(ControlMode::parse("longpoll").unwrap(), ControlMode::LongPoll);
        assert_eq!(ControlMode::parse("event").unwrap(), ControlMode::LongPoll);
        assert!(ControlMode::parse("telepathy").is_err());
        assert_eq!(ControlMode::default(), ControlMode::LongPoll);
    }

    #[test]
    fn fetch_from_shared_store() {
        use mrs_fs::format::write_bucket_bytes;
        let store: Arc<dyn Store> = Arc::new(mrs_fs::MemFs::new());
        let records = vec![(b"k".to_vec(), b"v".to_vec())];
        store.put("op/b0", &write_bucket_bytes(&records)).unwrap();
        let got = fetch_records("file://op/b0", Some(&store)).unwrap();
        assert_eq!(got, records);
    }

    #[test]
    fn fetch_without_shared_store_fails() {
        assert!(fetch_records("file://x", None).is_err());
    }

    #[test]
    fn local_first_bypasses_the_socket_for_own_urls() {
        use mrs_fs::format::write_bucket_bytes;
        // No server is listening on this authority, so only the local
        // short-circuit can satisfy the fetch.
        let cache = FrameCache::new();
        let records = vec![(b"k".to_vec(), b"v".to_vec())];
        let frame =
            mrs_codec::encode_vec(write_bucket_bytes(&records), mrs_codec::CompressMode::On);
        cache.insert("d0/t0/b0.mrsb", frame);
        let url = "http://127.0.0.1:1/data/d0/t0/b0.mrsb";
        let before = dataplane::snapshot();
        let got = fetch_records_local_first(url, None, Some("127.0.0.1:1"), Some(&cache)).unwrap();
        assert_eq!(got, records);
        assert!(dataplane::snapshot().since(before).shortcircuit_fetches >= 1);
        // A different authority still goes to the network (and fails here).
        assert!(fetch_records_local_first(url, None, Some("127.0.0.1:2"), Some(&cache)).is_err());
    }

    #[test]
    fn shared_store_frames_are_verified_and_decoded() {
        use mrs_fs::format::write_bucket_bytes;
        let store: Arc<dyn Store> = Arc::new(mrs_fs::MemFs::new());
        let records = vec![(b"key".to_vec(), vec![3u8; 64])];
        let frame =
            mrs_codec::encode_vec(write_bucket_bytes(&records), mrs_codec::CompressMode::On);
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        store.put("good", &frame).unwrap();
        store.put("bad", &bad).unwrap();
        assert_eq!(fetch_records("mem://good", Some(&store)).unwrap(), records);
        // Local corruption is not retried — it surfaces immediately.
        assert!(matches!(fetch_records("mem://bad", Some(&store)), Err(Error::Codec(_))));
    }

    /// A peer that serves a corrupt frame once is given a second chance;
    /// one that serves corruption persistently surfaces an error.
    #[test]
    fn corrupt_remote_frame_is_refetched_once() {
        use mrs_fs::format::write_bucket_bytes;
        use std::sync::atomic::{AtomicUsize, Ordering};
        let records = vec![(b"key".to_vec(), vec![9u8; 800])];
        let good: Arc<[u8]> =
            mrs_codec::encode_vec(write_bucket_bytes(&records), mrs_codec::CompressMode::On).into();
        let bad: Arc<[u8]> = {
            let mut b = good.to_vec();
            let last = b.len() - 1;
            b[last] ^= 0xff;
            b.into()
        };

        let hits = Arc::new(AtomicUsize::new(0));
        let provider: mrs_rpc::dataserver::Provider = {
            let hits = Arc::clone(&hits);
            let good = Arc::clone(&good);
            let bad = Arc::clone(&bad);
            Arc::new(move |p: &str| match p {
                // First request corrupt, later ones clean.
                "flaky" => Some(if hits.fetch_add(1, Ordering::SeqCst) == 0 {
                    Arc::clone(&bad)
                } else {
                    Arc::clone(&good)
                }),
                "hosed" => Some(Arc::clone(&bad)),
                _ => None,
            })
        };
        let server = mrs_rpc::DataServer::serve(0, provider).unwrap();

        let before = dataplane::snapshot();
        let got = fetch_records(&server.url_for("flaky"), None).unwrap();
        assert_eq!(got, records);
        assert_eq!(hits.load(Ordering::SeqCst), 2, "exactly one refetch");
        let d = dataplane::snapshot().since(before);
        assert!(d.checksum_retries >= 1);
        assert!(d.bytes_on_wire >= good.len() as u64);

        let err = fetch_records(&server.url_for("hosed"), None).unwrap_err();
        assert!(matches!(err, Error::Codec(_)), "persistent corruption must surface: {err}");
    }
}
