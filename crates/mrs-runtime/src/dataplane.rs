//! Process-wide data-plane counters.
//!
//! The shuffle codec runs deep inside fetch paths that have no job
//! context (the prefetch threads, the master's result collector), so —
//! like the HTTP connection pool's `pool_stats` — these are process-wide
//! atomics. Job-scoped views take a [`snapshot`] at job start and report
//! the delta via [`DataPlaneStats::since`].
//!
//! What the counters mean:
//!
//! - `bytes_pre_compress` — decoded (raw `MRSB1`) size of every bucket
//!   fetched over HTTP: the volume that *would* have crossed the wire
//!   without the codec.
//! - `bytes_on_wire` — the HTTP body bytes actually transferred for
//!   those fetches. `pre / wire` is the live compression ratio.
//! - `shortcircuit_fetches` — fetches satisfied from the local frame
//!   cache without touching a socket (colocated producer+consumer).
//! - `checksum_retries` — remote frames that failed checksum
//!   verification and were re-fetched once.
//! - `eager_fragments` / `eager_bytes` — map-output buckets pulled by
//!   the background shuffle fetcher *before* the operation barrier
//!   cleared, and their decoded sizes.
//! - `residual_fetches` — reduce inputs an eager-enabled slave still had
//!   to fetch cold at task time (fragments the fetcher missed: published
//!   late, predicted onto another slave, or invalidated).
//! - `overlap_micros` — for every warm fragment a reduce-like task
//!   consumed, the time it sat ready in the cache before it was needed:
//!   transfer + verify + decompress work that ran concurrently with map
//!   execution instead of on the post-barrier critical path.
//! - `merge_runs` / `presorted_runs` — input runs consumed by merge-mode
//!   reduce tasks, and how many of them arrived already sorted (no
//!   task-time sort needed). Equal when every producer upholds the
//!   sorted-run guarantee.
//! - `premerged_runs` — warm eager fragments the background pre-merge
//!   collapsed into larger runs while maps were still running.
//! - `merge_micros` — wall time reduce-like tasks spent assembling their
//!   input (decode + any demoted-run sorts + the streamed merge is *not*
//!   included: it overlaps the reduce itself).
//! - `peak_reduce_records` — the largest record count any single
//!   reduce-like task materialized as input.

use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_PRE_COMPRESS: AtomicU64 = AtomicU64::new(0);
static BYTES_ON_WIRE: AtomicU64 = AtomicU64::new(0);
static SHORTCIRCUIT_FETCHES: AtomicU64 = AtomicU64::new(0);
static CHECKSUM_RETRIES: AtomicU64 = AtomicU64::new(0);
static EAGER_FRAGMENTS: AtomicU64 = AtomicU64::new(0);
static EAGER_BYTES: AtomicU64 = AtomicU64::new(0);
static RESIDUAL_FETCHES: AtomicU64 = AtomicU64::new(0);
static OVERLAP_MICROS: AtomicU64 = AtomicU64::new(0);
static MERGE_RUNS: AtomicU64 = AtomicU64::new(0);
static PRESORTED_RUNS: AtomicU64 = AtomicU64::new(0);
static PREMERGED_RUNS: AtomicU64 = AtomicU64::new(0);
static MERGE_MICROS: AtomicU64 = AtomicU64::new(0);
static PEAK_REDUCE_RECORDS: AtomicU64 = AtomicU64::new(0);

/// Record one completed remote bucket transfer: `raw` decoded bytes
/// moved as `wire` bytes on the socket.
pub fn record_remote_fetch(raw: usize, wire: usize) {
    BYTES_PRE_COMPRESS.fetch_add(raw as u64, Ordering::Relaxed);
    BYTES_ON_WIRE.fetch_add(wire as u64, Ordering::Relaxed);
}

/// Record a fetch served from the local frame cache (no socket).
pub fn record_shortcircuit() {
    SHORTCIRCUIT_FETCHES.fetch_add(1, Ordering::Relaxed);
}

/// Record a checksum-failed remote frame being re-fetched.
pub fn record_checksum_retry() {
    CHECKSUM_RETRIES.fetch_add(1, Ordering::Relaxed);
}

/// Record one map-output bucket of `bytes` decoded bytes fetched by the
/// eager shuffle fetcher ahead of the barrier.
pub fn record_eager_fragment(bytes: usize) {
    EAGER_FRAGMENTS.fetch_add(1, Ordering::Relaxed);
    EAGER_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Record a reduce input an eager-enabled slave fetched cold at task
/// time (not found warm in its fragment cache).
pub fn record_residual_fetch() {
    RESIDUAL_FETCHES.fetch_add(1, Ordering::Relaxed);
}

/// Record a warm fragment being consumed by its reduce-like task after
/// sitting ready for `overlap` — the transfer latency hidden behind map
/// execution.
pub fn record_overlap(overlap: std::time::Duration) {
    OVERLAP_MICROS.fetch_add(overlap.as_micros() as u64, Ordering::Relaxed);
}

/// Record one merge-mode reduce input being assembled: `runs` decoded
/// runs (of which `presorted` arrived already sorted), `records` total
/// input records, and the `assembly` wall time spent getting them
/// merge-ready (decode plus any demotion sorts).
pub fn record_merge_input(
    runs: usize,
    presorted: usize,
    records: usize,
    assembly: std::time::Duration,
) {
    MERGE_RUNS.fetch_add(runs as u64, Ordering::Relaxed);
    PRESORTED_RUNS.fetch_add(presorted as u64, Ordering::Relaxed);
    MERGE_MICROS.fetch_add(assembly.as_micros() as u64, Ordering::Relaxed);
    PEAK_REDUCE_RECORDS.fetch_max(records as u64, Ordering::Relaxed);
}

/// Record the background pre-merge collapsing `fragments` warm eager
/// fragments into one larger run.
pub fn record_premerge(fragments: usize) {
    PREMERGED_RUNS.fetch_add(fragments as u64, Ordering::Relaxed);
}

/// A point-in-time (or delta) view of the data-plane counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DataPlaneStats {
    /// Decoded bytes of remotely fetched buckets.
    pub bytes_pre_compress: u64,
    /// Bytes those fetches put on the wire.
    pub bytes_on_wire: u64,
    /// Fetches short-circuited through the local frame cache.
    pub shortcircuit_fetches: u64,
    /// Corrupt remote frames re-fetched.
    pub checksum_retries: u64,
    /// Map-output buckets fetched eagerly ahead of the barrier.
    pub eager_fragments: u64,
    /// Decoded bytes of those eager fetches.
    pub eager_bytes: u64,
    /// Reduce inputs fetched cold at task time under eager mode.
    pub residual_fetches: u64,
    /// Microseconds warm fragments sat ready before their reduce-like
    /// task consumed them (transfer hidden behind map execution).
    pub overlap_micros: u64,
    /// Input runs consumed by merge-mode reduce tasks.
    pub merge_runs: u64,
    /// Of those, runs that arrived already in sorted key order.
    pub presorted_runs: u64,
    /// Warm fragments collapsed by the background pre-merge.
    pub premerged_runs: u64,
    /// Microseconds spent assembling merge-ready reduce inputs.
    pub merge_micros: u64,
    /// Largest record count one reduce-like task materialized as input.
    /// A high-water gauge, not a sum — `since` carries the process-wide
    /// peak through rather than subtracting.
    pub peak_reduce_records: u64,
}

impl DataPlaneStats {
    /// Counters accumulated since `earlier` (a prior [`snapshot`]).
    pub fn since(self, earlier: DataPlaneStats) -> DataPlaneStats {
        DataPlaneStats {
            bytes_pre_compress: self.bytes_pre_compress - earlier.bytes_pre_compress,
            bytes_on_wire: self.bytes_on_wire - earlier.bytes_on_wire,
            shortcircuit_fetches: self.shortcircuit_fetches - earlier.shortcircuit_fetches,
            checksum_retries: self.checksum_retries - earlier.checksum_retries,
            eager_fragments: self.eager_fragments - earlier.eager_fragments,
            eager_bytes: self.eager_bytes - earlier.eager_bytes,
            residual_fetches: self.residual_fetches - earlier.residual_fetches,
            overlap_micros: self.overlap_micros - earlier.overlap_micros,
            merge_runs: self.merge_runs - earlier.merge_runs,
            presorted_runs: self.presorted_runs - earlier.presorted_runs,
            premerged_runs: self.premerged_runs - earlier.premerged_runs,
            merge_micros: self.merge_micros - earlier.merge_micros,
            peak_reduce_records: self.peak_reduce_records,
        }
    }

    /// Render the counters in the Prometheus text exposition format,
    /// prefixed `mrs_dataplane_` to keep them apart from the job-scoped
    /// [`crate::metrics::JobMetrics`] samples on the same `/metrics` page.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(512);
        let mut counter = |name: &str, v: u64| {
            out.push_str("mrs_dataplane_");
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        };
        counter("bytes_pre_compress_total", self.bytes_pre_compress);
        counter("bytes_on_wire_total", self.bytes_on_wire);
        counter("shortcircuit_fetches_total", self.shortcircuit_fetches);
        counter("checksum_retries_total", self.checksum_retries);
        counter("eager_fragments_total", self.eager_fragments);
        counter("eager_bytes_total", self.eager_bytes);
        counter("residual_fetches_total", self.residual_fetches);
        counter("overlap_micros_total", self.overlap_micros);
        counter("merge_runs_total", self.merge_runs);
        counter("presorted_runs_total", self.presorted_runs);
        counter("premerged_runs_total", self.premerged_runs);
        counter("merge_micros_total", self.merge_micros);
        counter("peak_reduce_records", self.peak_reduce_records);
        out
    }
}

/// Current cumulative counter values for this process.
pub fn snapshot() -> DataPlaneStats {
    DataPlaneStats {
        bytes_pre_compress: BYTES_PRE_COMPRESS.load(Ordering::Relaxed),
        bytes_on_wire: BYTES_ON_WIRE.load(Ordering::Relaxed),
        shortcircuit_fetches: SHORTCIRCUIT_FETCHES.load(Ordering::Relaxed),
        checksum_retries: CHECKSUM_RETRIES.load(Ordering::Relaxed),
        eager_fragments: EAGER_FRAGMENTS.load(Ordering::Relaxed),
        eager_bytes: EAGER_BYTES.load(Ordering::Relaxed),
        residual_fetches: RESIDUAL_FETCHES.load(Ordering::Relaxed),
        overlap_micros: OVERLAP_MICROS.load(Ordering::Relaxed),
        merge_runs: MERGE_RUNS.load(Ordering::Relaxed),
        presorted_runs: PRESORTED_RUNS.load(Ordering::Relaxed),
        premerged_runs: PREMERGED_RUNS.load(Ordering::Relaxed),
        merge_micros: MERGE_MICROS.load(Ordering::Relaxed),
        peak_reduce_records: PEAK_REDUCE_RECORDS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate() {
        let before = snapshot();
        record_remote_fetch(1000, 300);
        record_remote_fetch(500, 500);
        record_shortcircuit();
        record_checksum_retry();
        record_eager_fragment(256);
        record_residual_fetch();
        record_overlap(std::time::Duration::from_millis(3));
        let d = snapshot().since(before);
        // Other tests in the process may add concurrently; bounds only.
        assert!(d.bytes_pre_compress >= 1500);
        assert!(d.bytes_on_wire >= 800);
        assert!(d.shortcircuit_fetches >= 1);
        assert!(d.checksum_retries >= 1);
        assert!(d.eager_fragments >= 1);
        assert!(d.eager_bytes >= 256);
        assert!(d.residual_fetches >= 1);
        assert!(d.overlap_micros >= 3000);
    }
}
