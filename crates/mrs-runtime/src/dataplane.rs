//! Process-wide data-plane counters.
//!
//! The shuffle codec runs deep inside fetch paths that have no job
//! context (the prefetch threads, the master's result collector), so —
//! like the HTTP connection pool's `pool_stats` — these are process-wide
//! atomics. Job-scoped views take a [`snapshot`] at job start and report
//! the delta via [`DataPlaneStats::since`].
//!
//! What the counters mean:
//!
//! - `bytes_pre_compress` — decoded (raw `MRSB1`) size of every bucket
//!   fetched over HTTP: the volume that *would* have crossed the wire
//!   without the codec.
//! - `bytes_on_wire` — the HTTP body bytes actually transferred for
//!   those fetches. `pre / wire` is the live compression ratio.
//! - `shortcircuit_fetches` — fetches satisfied from the local frame
//!   cache without touching a socket (colocated producer+consumer).
//! - `checksum_retries` — remote frames that failed checksum
//!   verification and were re-fetched once.

use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_PRE_COMPRESS: AtomicU64 = AtomicU64::new(0);
static BYTES_ON_WIRE: AtomicU64 = AtomicU64::new(0);
static SHORTCIRCUIT_FETCHES: AtomicU64 = AtomicU64::new(0);
static CHECKSUM_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Record one completed remote bucket transfer: `raw` decoded bytes
/// moved as `wire` bytes on the socket.
pub fn record_remote_fetch(raw: usize, wire: usize) {
    BYTES_PRE_COMPRESS.fetch_add(raw as u64, Ordering::Relaxed);
    BYTES_ON_WIRE.fetch_add(wire as u64, Ordering::Relaxed);
}

/// Record a fetch served from the local frame cache (no socket).
pub fn record_shortcircuit() {
    SHORTCIRCUIT_FETCHES.fetch_add(1, Ordering::Relaxed);
}

/// Record a checksum-failed remote frame being re-fetched.
pub fn record_checksum_retry() {
    CHECKSUM_RETRIES.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time (or delta) view of the data-plane counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DataPlaneStats {
    /// Decoded bytes of remotely fetched buckets.
    pub bytes_pre_compress: u64,
    /// Bytes those fetches put on the wire.
    pub bytes_on_wire: u64,
    /// Fetches short-circuited through the local frame cache.
    pub shortcircuit_fetches: u64,
    /// Corrupt remote frames re-fetched.
    pub checksum_retries: u64,
}

impl DataPlaneStats {
    /// Counters accumulated since `earlier` (a prior [`snapshot`]).
    pub fn since(self, earlier: DataPlaneStats) -> DataPlaneStats {
        DataPlaneStats {
            bytes_pre_compress: self.bytes_pre_compress - earlier.bytes_pre_compress,
            bytes_on_wire: self.bytes_on_wire - earlier.bytes_on_wire,
            shortcircuit_fetches: self.shortcircuit_fetches - earlier.shortcircuit_fetches,
            checksum_retries: self.checksum_retries - earlier.checksum_retries,
        }
    }
}

/// Current cumulative counter values for this process.
pub fn snapshot() -> DataPlaneStats {
    DataPlaneStats {
        bytes_pre_compress: BYTES_PRE_COMPRESS.load(Ordering::Relaxed),
        bytes_on_wire: BYTES_ON_WIRE.load(Ordering::Relaxed),
        shortcircuit_fetches: SHORTCIRCUIT_FETCHES.load(Ordering::Relaxed),
        checksum_retries: CHECKSUM_RETRIES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate() {
        let before = snapshot();
        record_remote_fetch(1000, 300);
        record_remote_fetch(500, 500);
        record_shortcircuit();
        record_checksum_retry();
        let d = snapshot().since(before);
        // Other tests in the process may add concurrently; bounds only.
        assert!(d.bytes_pre_compress >= 1500);
        assert!(d.bytes_on_wire >= 800);
        assert!(d.shortcircuit_fetches >= 1);
        assert!(d.checksum_retries >= 1);
    }
}
