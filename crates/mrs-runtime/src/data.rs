//! Materialized datasets: what an operation produces.
//!
//! A dataset is a list of *splits*; a map or reduce task reads one split's
//! worth of input. Splitting input data evenly across a target task count
//! is the runtimes' first scheduling decision.

use mrs_core::Record;

/// Identifies a dataset within one job (sources and op outputs alike).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataId(pub u32);

/// A fully materialized dataset: `splits[i]` is the record list of split i.
pub type Dataset = Vec<Vec<Record>>;

/// Split `records` into `splits` contiguous, nearly equal pieces. Always
/// returns exactly `splits` pieces (some possibly empty), preserving order.
pub fn split_evenly(records: Vec<Record>, splits: usize) -> Dataset {
    assert!(splits > 0, "need at least one split");
    let n = records.len();
    let base = n / splits;
    let extra = n % splits;
    let mut out = Vec::with_capacity(splits);
    let mut iter = records.into_iter();
    for i in 0..splits {
        let take = base + usize::from(i < extra);
        out.push(iter.by_ref().take(take).collect());
    }
    out
}

/// Flatten a dataset back into one record list (split order preserved).
pub fn gather(dataset: Dataset) -> Vec<Record> {
    dataset.into_iter().flatten().collect()
}

/// Total records across all splits.
pub fn total_len(dataset: &Dataset) -> usize {
    dataset.iter().map(Vec::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: usize) -> Vec<Record> {
        (0..n).map(|i| (vec![i as u8], vec![])).collect()
    }

    #[test]
    fn split_exact_division() {
        let ds = split_evenly(recs(9), 3);
        assert_eq!(ds.iter().map(Vec::len).collect::<Vec<_>>(), vec![3, 3, 3]);
    }

    #[test]
    fn split_with_remainder_front_loads() {
        let ds = split_evenly(recs(10), 4);
        assert_eq!(ds.iter().map(Vec::len).collect::<Vec<_>>(), vec![3, 3, 2, 2]);
    }

    #[test]
    fn split_more_splits_than_records() {
        let ds = split_evenly(recs(2), 5);
        assert_eq!(ds.len(), 5);
        assert_eq!(total_len(&ds), 2);
    }

    #[test]
    fn split_empty_input() {
        let ds = split_evenly(vec![], 3);
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(Vec::is_empty));
    }

    #[test]
    fn gather_inverts_split() {
        let original = recs(17);
        let ds = split_evenly(original.clone(), 5);
        assert_eq!(gather(ds), original);
    }

    #[test]
    #[should_panic(expected = "at least one split")]
    fn zero_splits_panics() {
        split_evenly(vec![], 0);
    }
}
