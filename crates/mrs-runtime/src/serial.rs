//! The serial implementation: one task per operation, executed eagerly.
//!
//! "The serial implementation performs all work sequentially on a single
//! processor and makes all work deterministic" (§IV-A). Operations run
//! inline at submission time, so `wait` is a no-op; this is the reference
//! implementation against which the others are checked.

use crate::data::{gather, DataId, Dataset};
use crate::job::JobApi;
use crate::metrics::JobMetrics;
use mrs_core::task::{
    run_map_task, run_reduce_map_task, run_reduce_map_task_merge, run_reduce_task,
    run_reduce_task_merge, MergeMode,
};
use mrs_core::{Bucket, Error, FuncId, Program, Record, Result};
use mrs_trace::{JobTrace, Name, Op, Recorder, Tag, TraceHandle};
use std::sync::Arc;

/// The serial runtime. Create one per job via [`SerialRuntime::new`].
pub struct SerialRuntime {
    program: Arc<dyn Program>,
    datasets: Vec<SerialData>,
    metrics: JobMetrics,
    merge: MergeMode,
    rec: Recorder,
    th: TraceHandle,
}

enum SerialData {
    /// Materialized records (sources and reduce outputs), one split each.
    Plain(Dataset),
    /// Map-like output (map or fused reducemap): per task, per partition
    /// buckets. Serial runs one map task (`len() == 1`), but a reducemap
    /// runs one task per input partition.
    Mapped(Vec<Vec<Bucket>>),
    /// Reclaimed by `discard`.
    Discarded,
}

/// One partition's gathered reduce input, shaped by the [`MergeMode`].
enum ReduceInput {
    Runs(Vec<Bucket>),
    Concat(Bucket),
}

impl SerialRuntime {
    /// A serial job for `program`.
    pub fn new(program: Arc<dyn Program>) -> Self {
        let rec = Recorder::new();
        let th = rec.handle(0);
        SerialRuntime {
            program,
            datasets: Vec::new(),
            metrics: JobMetrics::default(),
            merge: MergeMode::default(),
            rec,
            th,
        }
    }

    /// Choose how reduce-like tasks assemble their input (`--mrs-merge`).
    pub fn set_merge_mode(&mut self, merge: MergeMode) {
        self.merge = merge;
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &JobMetrics {
        &self.metrics
    }

    /// Drain the recorded timeline. Serial tasks run inline, so each
    /// task's Dispatch and Report instants bracket its Attempt span
    /// exactly; a second call returns only events recorded since.
    pub fn take_trace(&self) -> JobTrace {
        let (events, dropped) = self.rec.drain();
        JobTrace::from_local(events, dropped)
    }

    /// Gather partition `p` of every task as the reduce input, in the
    /// shape the configured [`MergeMode`] wants: either the per-task runs
    /// kept separate for the k-way merge, or one concatenated bucket.
    fn partition_input(&mut self, tasks: &[Vec<Bucket>], p: usize) -> ReduceInput {
        match self.merge {
            MergeMode::Merge => {
                let t0 = std::time::Instant::now();
                let runs: Vec<Bucket> = tasks.iter().map(|task| task[p].clone()).collect();
                let records: usize = runs.iter().map(Bucket::len).sum();
                // In-process runs come straight off the map kernels, which
                // guarantee sorted output — every run counts as presorted.
                self.metrics.record_merge_input(runs.len(), runs.len(), records, t0.elapsed());
                ReduceInput::Runs(runs)
            }
            MergeMode::Sort => {
                let mut bucket = Bucket::new();
                for task in tasks {
                    bucket.extend_from(&task[p]);
                }
                ReduceInput::Concat(bucket)
            }
        }
    }

    fn get(&self, id: DataId) -> Result<&SerialData> {
        self.datasets
            .get(id.0 as usize)
            .ok_or_else(|| Error::MissingData(format!("dataset {id:?}")))
    }

    fn push(&mut self, d: SerialData) -> DataId {
        self.datasets.push(d);
        DataId(self.datasets.len() as u32 - 1)
    }
}

impl JobApi for SerialRuntime {
    fn local_data(&mut self, records: Vec<Record>, _splits: usize) -> Result<DataId> {
        // Serial ignores the split hint: everything is one task.
        Ok(self.push(SerialData::Plain(vec![records])))
    }

    fn map_data(
        &mut self,
        input: DataId,
        func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId> {
        let records: Vec<Record> = match self.get(input)? {
            SerialData::Plain(ds) => ds.iter().flatten().cloned().collect(),
            SerialData::Mapped(_) => {
                return Err(Error::Invalid("map cannot consume an unreduced map output".into()))
            }
            SerialData::Discarded => {
                return Err(Error::MissingData(format!("dataset {input:?} was discarded")))
            }
        };
        let tag = Tag::task(Op::Map, self.datasets.len() as u32, 0, 1);
        self.th.instant(Name::Dispatch, tag);
        self.th.begin(Name::Attempt, tag);
        self.th.begin(Name::Exec, tag);
        let t0 = std::time::Instant::now();
        let buckets = run_map_task(self.program.as_ref(), func, &records, parts, combine);
        self.th.end(Name::Exec, tag);
        self.th.end(Name::Attempt, tag);
        let buckets = buckets?;
        self.th.instant(Name::Report, tag);
        self.metrics.record_map(t0.elapsed(), buckets.iter().map(|b| b.byte_size()).sum());
        Ok(self.push(SerialData::Mapped(vec![buckets])))
    }

    fn reduce_data(&mut self, input: DataId, func: FuncId) -> Result<DataId> {
        let tasks: Vec<Vec<Bucket>> = match self.get(input)? {
            SerialData::Mapped(t) => t.clone(),
            _ => return Err(Error::Invalid("reduce must consume a map output".into())),
        };
        let parts = tasks.first().map_or(0, Vec::len);
        let t0 = std::time::Instant::now();
        let mut splits = Vec::with_capacity(parts);
        let out_data = self.datasets.len() as u32;
        for p in 0..parts {
            let tag = Tag::task(Op::Reduce, out_data, p, 1);
            self.th.instant(Name::Dispatch, tag);
            self.th.begin(Name::Attempt, tag);
            self.th.begin(Name::Merge, tag);
            let input = self.partition_input(&tasks, p);
            self.th.end(Name::Merge, tag);
            self.th.begin(Name::Exec, tag);
            let out = match input {
                ReduceInput::Runs(runs) => {
                    run_reduce_task_merge(self.program.as_ref(), func, &runs)
                }
                ReduceInput::Concat(bucket) => run_reduce_task(self.program.as_ref(), func, bucket),
            };
            self.th.end(Name::Exec, tag);
            self.th.end(Name::Attempt, tag);
            let out = out?;
            self.th.instant(Name::Report, tag);
            splits.push(out.into_records());
        }
        self.metrics.record_reduce(t0.elapsed());
        Ok(self.push(SerialData::Plain(splits)))
    }

    fn reduce_map_data(
        &mut self,
        input: DataId,
        reduce_func: FuncId,
        map_func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId> {
        let tasks: Vec<Vec<Bucket>> = match self.get(input)? {
            SerialData::Mapped(t) => t.clone(),
            _ => return Err(Error::Invalid("reducemap must consume a map output".into())),
        };
        let in_parts = tasks.first().map_or(0, Vec::len);
        let t0 = std::time::Instant::now();
        let mut out_tasks = Vec::with_capacity(in_parts);
        let out_data = self.datasets.len() as u32;
        for p in 0..in_parts {
            let tag = Tag::task(Op::ReduceMap, out_data, p, 1);
            self.th.instant(Name::Dispatch, tag);
            self.th.begin(Name::Attempt, tag);
            self.th.begin(Name::Merge, tag);
            let input = self.partition_input(&tasks, p);
            self.th.end(Name::Merge, tag);
            self.th.begin(Name::Exec, tag);
            let out = match input {
                ReduceInput::Runs(runs) => run_reduce_map_task_merge(
                    self.program.as_ref(),
                    reduce_func,
                    map_func,
                    &runs,
                    parts,
                    combine,
                ),
                ReduceInput::Concat(bucket) => run_reduce_map_task(
                    self.program.as_ref(),
                    reduce_func,
                    map_func,
                    bucket,
                    parts,
                    combine,
                ),
            };
            self.th.end(Name::Exec, tag);
            self.th.end(Name::Attempt, tag);
            let out = out?;
            self.th.instant(Name::Report, tag);
            out_tasks.push(out);
        }
        let elapsed = t0.elapsed();
        self.metrics.record_fused_op();
        for task in &out_tasks {
            let bytes = task.iter().map(Bucket::byte_size).sum();
            self.metrics.record_reducemap_task(elapsed / in_parts.max(1) as u32, bytes);
        }
        Ok(self.push(SerialData::Mapped(out_tasks)))
    }

    fn wait(&mut self, data: DataId) -> Result<()> {
        // Everything is already materialized; just validate the id.
        self.get(data).map(|_| ())
    }

    fn fetch_all(&mut self, data: DataId) -> Result<Vec<Record>> {
        match self.get(data)? {
            SerialData::Plain(ds) => Ok(gather(ds.clone())),
            SerialData::Mapped(tasks) => {
                Ok(tasks.iter().flatten().flat_map(|b| b.to_records()).collect())
            }
            SerialData::Discarded => {
                Err(Error::MissingData(format!("dataset {data:?} was discarded")))
            }
        }
    }

    fn discard(&mut self, data: DataId) {
        if let Some(slot) = self.datasets.get_mut(data.0 as usize) {
            *slot = SerialData::Discarded;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use mrs_core::kv::encode_record;
    use mrs_core::{Datum, MapReduce, Simple};

    struct WordCount;

    impl MapReduce for WordCount {
        type K1 = u64;
        type V1 = String;
        type K2 = String;
        type V2 = u64;

        fn map(&self, _k: u64, v: String, emit: &mut dyn FnMut(String, u64)) {
            for w in v.split_whitespace() {
                emit(w.to_owned(), 1);
            }
        }

        fn reduce(
            &self,
            _k: &String,
            vs: &mut dyn Iterator<Item = u64>,
            emit: &mut dyn FnMut(u64),
        ) {
            emit(vs.sum());
        }

        fn has_combiner(&self) -> bool {
            true
        }
    }

    fn input() -> Vec<Record> {
        ["the cat sat", "on the mat", "the end"]
            .iter()
            .enumerate()
            .map(|(i, line)| encode_record(&(i as u64), &line.to_string()))
            .collect()
    }

    fn sorted_counts(records: Vec<Record>) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = records
            .iter()
            .map(|(k, v)| (String::from_bytes(k).unwrap(), u64::from_bytes(v).unwrap()))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn wordcount_end_to_end() {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        let mut job = Job::new(&mut rt);
        let out = job.map_reduce(input(), 2, 3, true).unwrap();
        assert_eq!(
            sorted_counts(out),
            vec![
                ("cat".into(), 1),
                ("end".into(), 1),
                ("mat".into(), 1),
                ("on".into(), 1),
                ("sat".into(), 1),
                ("the".into(), 3),
            ]
        );
    }

    #[test]
    fn iterative_chain_runs() {
        // Two map+reduce rounds: counts of counts.
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        let mut job = Job::new(&mut rt);
        let src = job.local_data(input(), 1).unwrap();
        let m1 = job.map_data(src, 0, 2, false).unwrap();
        let r1 = job.reduce_data(m1, 0).unwrap();
        // Feed reduce output (word -> count) into another map: it splits the
        // *word* again (value is a count, not a string) — so instead check
        // that fetching r1 and resubmitting works.
        let counts = job.fetch_all(r1).unwrap();
        assert_eq!(counts.len(), 6);
        let src2 = job.local_data(counts, 1).unwrap();
        let _ = src2;
    }

    #[test]
    fn reduce_of_plain_data_is_error() {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        let mut job = Job::new(&mut rt);
        let src = job.local_data(input(), 1).unwrap();
        assert!(job.reduce_data(src, 0).is_err());
    }

    #[test]
    fn discard_frees_dataset() {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        let mut job = Job::new(&mut rt);
        let src = job.local_data(input(), 1).unwrap();
        job.discard(src);
        assert!(job.fetch_all(src).is_err());
    }

    #[test]
    fn unknown_dataset_is_error() {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        let mut job = Job::new(&mut rt);
        assert!(job.wait(DataId(99)).is_err());
    }

    #[test]
    fn metrics_track_ops() {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        {
            let mut job = Job::new(&mut rt);
            job.map_reduce(input(), 1, 2, false).unwrap();
        }
        assert_eq!(rt.metrics().map_ops(), 1);
        assert_eq!(rt.metrics().reduce_ops(), 1);
        assert!(rt.metrics().shuffle_bytes() > 0);
    }

    /// An iterative program whose reduce output feeds its map: keys and
    /// values are both `u64`, so rounds chain indefinitely.
    struct Relabel;

    impl MapReduce for Relabel {
        type K1 = u64;
        type V1 = u64;
        type K2 = u64;
        type V2 = u64;

        fn map(&self, k: u64, v: u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(k % 3, v + 1);
            emit((k + 1) % 3, v);
        }

        fn reduce(&self, _k: &u64, vs: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
            emit(vs.sum());
        }
    }

    fn relabel_input() -> Vec<Record> {
        (0..24u64).map(|i| encode_record(&i, &(i * 5))).collect()
    }

    #[test]
    fn reducemap_matches_reduce_then_map() {
        let iters: u64 = 4;
        let unfused = {
            let mut rt = SerialRuntime::new(Arc::new(Simple(Relabel)));
            let mut job = Job::new(&mut rt);
            let src = job.local_data(relabel_input(), 1).unwrap();
            let mut m = job.map_data(src, 0, 3, false).unwrap();
            for _ in 1..iters {
                let r = job.reduce_data(m, 0).unwrap();
                m = job.map_data(r, 0, 3, false).unwrap();
            }
            let out = job.reduce_data(m, 0).unwrap();
            job.fetch_all(out).unwrap()
        };
        let fused = {
            let mut rt = SerialRuntime::new(Arc::new(Simple(Relabel)));
            let records = {
                let mut job = Job::new(&mut rt);
                let src = job.local_data(relabel_input(), 1).unwrap();
                let mut m = job.map_data(src, 0, 3, false).unwrap();
                for _ in 1..iters {
                    m = job.reduce_map_data(m, 0, 0, 3, false).unwrap();
                }
                let out = job.reduce_data(m, 0).unwrap();
                job.fetch_all(out).unwrap()
            };
            assert_eq!(rt.metrics().fused_ops(), iters - 1);
            assert_eq!(rt.metrics().reducemap_tasks(), 3 * (iters - 1));
            records
        };
        assert_eq!(unfused, fused, "fused chain diverged from unfused");
    }

    #[test]
    fn merge_and_sort_modes_agree() {
        let run = |mode: MergeMode| {
            let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
            rt.set_merge_mode(mode);
            let out = {
                let mut job = Job::new(&mut rt);
                job.map_reduce(input(), 2, 3, false).unwrap()
            };
            let m = rt.metrics().clone();
            (out, m)
        };
        let (merged, mm) = run(MergeMode::Merge);
        let (sorted, sm) = run(MergeMode::Sort);
        assert_eq!(merged, sorted, "merge mode diverged from the sort oracle");
        assert!(mm.merge_runs() > 0);
        assert_eq!(mm.merge_runs(), mm.presorted_runs(), "in-process runs are always sorted");
        assert!(mm.peak_reduce_records() > 0);
        assert_eq!(sm.merge_runs(), 0, "sort mode never touches the merger");
    }

    #[test]
    fn reducemap_merge_mode_matches_sort_mode() {
        let run = |mode: MergeMode| {
            let mut rt = SerialRuntime::new(Arc::new(Simple(Relabel)));
            rt.set_merge_mode(mode);
            let mut job = Job::new(&mut rt);
            let src = job.local_data(relabel_input(), 1).unwrap();
            let mut m = job.map_data(src, 0, 3, false).unwrap();
            for _ in 0..3 {
                m = job.reduce_map_data(m, 0, 0, 3, false).unwrap();
            }
            let out = job.reduce_data(m, 0).unwrap();
            job.fetch_all(out).unwrap()
        };
        assert_eq!(run(MergeMode::Merge), run(MergeMode::Sort));
    }

    #[test]
    fn reducemap_of_plain_data_is_error() {
        let mut rt = SerialRuntime::new(Arc::new(Simple(Relabel)));
        let mut job = Job::new(&mut rt);
        let src = job.local_data(relabel_input(), 1).unwrap();
        assert!(job.reduce_map_data(src, 0, 0, 2, false).is_err());
    }

    #[test]
    fn trace_covers_every_task() {
        use mrs_trace::Kind;
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        {
            let mut job = Job::new(&mut rt);
            job.map_reduce(input(), 2, 3, true).unwrap();
        }
        let trace = rt.take_trace();
        assert_eq!(trace.dropped, 0);
        // One map task plus three reduce partitions, each fully spanned.
        let begins = |n: Name| trace.count(|g| g.event.name == n && g.event.kind == Kind::Begin);
        assert_eq!(begins(Name::Attempt), 4);
        assert_eq!(begins(Name::Exec), 4);
        assert_eq!(begins(Name::Merge), 3, "one merge per reduce partition");
        let cov = trace.coverage();
        assert_eq!(cov.len(), 4, "every dispatch/report pair yields a window");
        for c in &cov {
            // Tasks here finish in microseconds, so bound the uncovered
            // remainder absolutely rather than as a flaky ratio.
            assert!(c.window_us - c.covered_us < 1_000, "attempt should fill its window: {c:?}");
        }
        // A second drain only sees new work.
        assert!(rt.take_trace().events.is_empty());
    }
}
