//! Mock-parallel and thread-pool execution in one scheduler.
//!
//! The scheduler decomposes operations into the *same tasks* as the
//! distributed implementation — one map task per input split, one reduce
//! task per partition — and tracks fine-grained readiness: a map task over
//! a reduce output only waits for *its own* input split, so consecutive
//! iterations pipeline exactly as §IV-A describes, while reduce tasks wait
//! for every map task of their operation (the barrier of Fig. 1).
//!
//! * `LocalRuntime::mock_parallel(program, store)` — one worker, every task
//!   output additionally spilled to bucket files on `store` for debugging:
//!   the paper's mock parallel implementation.
//! * `LocalRuntime::pool(program, n)` — N worker threads, in-memory.
//!
//! Speculative execution (`--mrs-speculate`) is deliberately a no-op on
//! both of these planes: in a single process there is no "slow machine"
//! for a backup attempt to dodge, every task here runs exactly once, and
//! output stays byte-identical to the distributed planes with speculation
//! on or off (the implementations-agree oracle enforces it).

use crate::data::{split_evenly, DataId, Dataset};
use crate::dataplane::DataPlaneStats;
use crate::job::JobApi;
use crate::metrics::JobMetrics;
use mrs_codec::CompressMode;
use mrs_core::task::{
    run_map_task, run_reduce_map_task, run_reduce_map_task_merge, run_reduce_task,
    run_reduce_task_merge, MergeMode,
};
use mrs_core::{Bucket, Error, FuncId, Program, Record, Result};
use mrs_fs::format::write_bucket;
use mrs_fs::Store;
use mrs_trace::{JobTrace, Name, Op, Recorder, Tag, TraceHandle};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TaskRef {
    data: DataId,
    index: usize,
}

#[derive(Debug)]
enum DsState {
    /// Fully materialized source data.
    Source(Dataset),
    /// A map operation's output: per task, `parts` buckets.
    MapOut {
        input: DataId,
        func: FuncId,
        parts: usize,
        combine: bool,
        tasks: Vec<Option<Vec<Bucket>>>,
        remaining: usize,
    },
    /// A reduce operation's output: one record list per partition.
    ReduceOut {
        input: DataId,
        func: FuncId,
        tasks: Vec<Option<Vec<Record>>>,
        remaining: usize,
    },
    /// A fused reduce+map operation's output: map-like (per task, `parts`
    /// buckets), one task per partition of the input.
    ReduceMapOut {
        input: DataId,
        reduce_func: FuncId,
        map_func: FuncId,
        parts: usize,
        combine: bool,
        tasks: Vec<Option<Vec<Bucket>>>,
        remaining: usize,
    },
    Discarded,
}

impl DsState {
    fn complete(&self) -> bool {
        match self {
            DsState::Source(_) => true,
            DsState::MapOut { remaining, .. }
            | DsState::ReduceOut { remaining, .. }
            | DsState::ReduceMapOut { remaining, .. } => *remaining == 0,
            DsState::Discarded => true,
        }
    }
}

struct State {
    datasets: Vec<DsState>,
    /// Remaining registered consumers per dataset (index-aligned with
    /// `datasets`): incremented when an op is queued over the dataset,
    /// decremented when that op completes. Lifetime GC frees a dataset
    /// when its count returns to zero.
    consumers: Vec<u32>,
    /// Datasets pinned by `keep` — exempt from lifetime GC until an
    /// explicit discard.
    pins: HashSet<u32>,
    /// When set, lifetime GC is disabled (`--mrs-keep-data`).
    keep_data: bool,
    /// How reduce-like tasks assemble their input (`--mrs-merge`).
    merge: MergeMode,
    /// Tasks not yet ready to run.
    pending: Vec<TaskRef>,
    /// Tasks ready to run.
    queue: VecDeque<TaskRef>,
    error: Option<String>,
    shutdown: bool,
    metrics: JobMetrics,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    program: Arc<dyn Program>,
    spill: Option<Arc<dyn Store>>,
    spill_compress: CompressMode,
    trace: Recorder,
}

/// The local (mock-parallel / thread-pool) runtime.
pub struct LocalRuntime {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl LocalRuntime {
    /// The paper's mock parallel implementation: distributed task split,
    /// one processor, intermediate data spilled to `store`.
    pub fn mock_parallel(program: Arc<dyn Program>, store: Arc<dyn Store>) -> Self {
        Self::mock_parallel_with(program, store, CompressMode::default())
    }

    /// Mock parallel with an explicit spill-compression policy — the same
    /// `--mrs-compress` knob the distributed planes honour.
    pub fn mock_parallel_with(
        program: Arc<dyn Program>,
        store: Arc<dyn Store>,
        compress: CompressMode,
    ) -> Self {
        Self::build(program, 1, Some(store), compress)
    }

    /// Thread-pool parallelism with `workers` threads, in-memory data.
    pub fn pool(program: Arc<dyn Program>, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        Self::build(program, workers, None, CompressMode::default())
    }

    fn build(
        program: Arc<dyn Program>,
        workers: usize,
        spill: Option<Arc<dyn Store>>,
        spill_compress: CompressMode,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                datasets: Vec::new(),
                consumers: Vec::new(),
                pins: HashSet::new(),
                keep_data: false,
                merge: MergeMode::default(),
                pending: Vec::new(),
                queue: VecDeque::new(),
                error: None,
                shutdown: false,
                metrics: JobMetrics::default(),
            }),
            cv: Condvar::new(),
            program,
            spill,
            spill_compress,
            trace: Recorder::new(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mrs-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i as u32))
                    .expect("spawn worker")
            })
            .collect();
        LocalRuntime { shared, workers }
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> JobMetrics {
        self.shared.state.lock().metrics.clone()
    }

    /// Drain the recorded timeline: one lane per pool worker, the same
    /// span vocabulary as the distributed slaves. A second call returns
    /// only events recorded since the first.
    pub fn take_trace(&self) -> JobTrace {
        let (events, dropped) = self.shared.trace.drain();
        JobTrace::from_local(events, dropped)
    }

    /// Disable (or re-enable) dataset lifetime GC. With GC on (the
    /// default) a dataset is reclaimed as soon as its last queued consumer
    /// finishes; `--mrs-keep-data` routes here.
    pub fn set_keep_data(&mut self, keep: bool) {
        self.shared.state.lock().keep_data = keep;
    }

    /// Choose how reduce-like tasks assemble their input (`--mrs-merge`).
    pub fn set_merge_mode(&mut self, merge: MergeMode) {
        self.shared.state.lock().merge = merge;
    }
}

impl Drop for LocalRuntime {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Is task `t` ready, given current dataset states?
fn ready(st: &State, t: TaskRef) -> bool {
    match &st.datasets[t.data.0 as usize] {
        DsState::MapOut { input, .. } => match &st.datasets[input.0 as usize] {
            DsState::Source(_) => true,
            DsState::ReduceOut { tasks, .. } => tasks[t.index].is_some(),
            _ => false,
        },
        // Reduce-like tasks (plain or fused) gather one partition from
        // *every* task of the input, so they wait for the whole op.
        DsState::ReduceOut { input, .. } | DsState::ReduceMapOut { input, .. } => {
            st.datasets[input.0 as usize].complete()
        }
        _ => false,
    }
}

/// Move newly-ready pending tasks into the run queue.
fn promote(st: &mut State) -> usize {
    let mut moved = 0;
    let mut i = 0;
    while i < st.pending.len() {
        if ready(st, st.pending[i]) {
            let t = st.pending.swap_remove(i);
            st.queue.push_back(t);
            moved += 1;
        } else {
            i += 1;
        }
    }
    moved
}

/// Clone the input records for a task (under the lock; execution happens
/// outside it). In spill mode (`count_handover`) each map-output bucket a
/// reduce task receives is an in-memory handover of data that the
/// distributed runtime would fetch over a socket — counted as a
/// short-circuit fetch so mock-parallel metrics mirror colocated fetches,
/// and as an eager fragment: on one core every fragment is available the
/// instant its producer finishes, so mock-parallel is the perfect-overlap
/// oracle the eager shuffle plane is measured against.
fn task_input(st: &mut State, t: TaskRef, count_handover: bool) -> Result<TaskWork> {
    match &st.datasets[t.data.0 as usize] {
        DsState::MapOut { input, func, parts, combine, .. } => {
            let records = match &st.datasets[input.0 as usize] {
                DsState::Source(ds) => ds[t.index].clone(),
                DsState::ReduceOut { tasks, .. } => tasks[t.index]
                    .clone()
                    .ok_or_else(|| Error::Invalid("map input split not ready".into()))?,
                _ => return Err(Error::Invalid("bad map input".into())),
            };
            Ok(TaskWork::Map { records, func: *func, parts: *parts, combine: *combine })
        }
        DsState::ReduceOut { input, func, .. } => {
            let func = *func;
            let (input, handovers) = gather_partition(st, *input, t.index)?;
            if count_handover {
                st.metrics.record_dataplane(DataPlaneStats {
                    shortcircuit_fetches: handovers,
                    eager_fragments: handovers,
                    ..DataPlaneStats::default()
                });
            }
            Ok(TaskWork::Reduce { input, func })
        }
        DsState::ReduceMapOut { input, reduce_func, map_func, parts, combine, .. } => {
            let (reduce_func, map_func, parts, combine) =
                (*reduce_func, *map_func, *parts, *combine);
            let (input, handovers) = gather_partition(st, *input, t.index)?;
            if count_handover {
                st.metrics.record_dataplane(DataPlaneStats {
                    shortcircuit_fetches: handovers,
                    eager_fragments: handovers,
                    ..DataPlaneStats::default()
                });
            }
            Ok(TaskWork::ReduceMap { input, reduce_func, map_func, parts, combine })
        }
        _ => Err(Error::Invalid("task on non-op dataset".into())),
    }
}

/// One reduce-like task's gathered input, shaped by the [`MergeMode`]:
/// the per-task runs kept separate for the k-way merge, or partition
/// `index` of every task concatenated into one bucket.
enum ReduceInput {
    Runs(Vec<Bucket>),
    Concat(Bucket),
}

/// Gather partition `index` of every task of a map-like dataset,
/// returning the input (shaped by the configured merge mode) and the
/// number of in-memory handovers.
fn gather_partition(st: &mut State, input: DataId, index: usize) -> Result<(ReduceInput, u64)> {
    let merge = st.merge;
    let t0 = std::time::Instant::now();
    let (DsState::MapOut { tasks, .. } | DsState::ReduceMapOut { tasks, .. }) =
        &st.datasets[input.0 as usize]
    else {
        return Err(Error::Invalid("reduce input is not a map-like output".into()));
    };
    let handovers = tasks.len() as u64;
    match merge {
        MergeMode::Merge => {
            let mut runs = Vec::with_capacity(tasks.len());
            for task in tasks {
                let buckets =
                    task.as_ref().ok_or_else(|| Error::Invalid("map task not done".into()))?;
                runs.push(buckets[index].clone());
            }
            // In-process runs come straight off the map kernels, which
            // guarantee sorted output — every run counts as presorted.
            let records = runs.iter().map(Bucket::len).sum();
            st.metrics.record_merge_input(runs.len(), runs.len(), records, t0.elapsed());
            Ok((ReduceInput::Runs(runs), handovers))
        }
        MergeMode::Sort => {
            let mut bucket = Bucket::new();
            for task in tasks {
                let buckets =
                    task.as_ref().ok_or_else(|| Error::Invalid("map task not done".into()))?;
                bucket.extend_from(&buckets[index]);
            }
            Ok((ReduceInput::Concat(bucket), handovers))
        }
    }
}

enum TaskWork {
    Map {
        records: Vec<Record>,
        func: FuncId,
        parts: usize,
        combine: bool,
    },
    Reduce {
        input: ReduceInput,
        func: FuncId,
    },
    ReduceMap {
        input: ReduceInput,
        reduce_func: FuncId,
        map_func: FuncId,
        parts: usize,
        combine: bool,
    },
}

fn op_of(work: &TaskWork) -> Op {
    match work {
        TaskWork::Map { .. } => Op::Map,
        TaskWork::Reduce { .. } => Op::Reduce,
        TaskWork::ReduceMap { .. } => Op::ReduceMap,
    }
}

fn worker_loop(shared: &Shared, lane: u32) {
    let th = shared.trace.handle(lane);
    loop {
        let (task, work, picked_us) = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(t) = st.queue.pop_front() {
                    let picked_us = th.now_us();
                    match task_input(&mut st, t, shared.spill.is_some()) {
                        Ok(w) => break (t, w, picked_us),
                        Err(e) => {
                            st.error = Some(e.to_string());
                            shared.cv.notify_all();
                            return;
                        }
                    }
                }
                shared.cv.wait(&mut st);
            }
        };

        // The attempt reaches back to when the task left the queue, so
        // the gathered-input window (the in-memory shuffle handover,
        // assembled under the scheduler lock) is on the timeline too.
        let tag = Tag::task(op_of(&work), task.data.0, task.index, 1);
        th.begin_at(picked_us, Name::Attempt, tag);
        if !matches!(work, TaskWork::Map { .. }) {
            th.begin_at(picked_us, Name::Merge, tag);
            th.end(Name::Merge, tag);
        }
        th.instant(Name::Dispatch, tag);

        let outcome = execute(shared, task, work, &th, tag);
        th.end(Name::Attempt, tag);

        let mut st = shared.state.lock();
        match outcome {
            Ok(()) => {
                th.instant(Name::Report, tag);
                st.metrics.record_task();
                promote(&mut st);
            }
            Err(e) => {
                st.error = Some(e.to_string());
            }
        }
        shared.cv.notify_all();
    }
}

fn execute(shared: &Shared, t: TaskRef, work: TaskWork, th: &TraceHandle, tag: Tag) -> Result<()> {
    match work {
        TaskWork::Map { records, func, parts, combine } => {
            let t0 = std::time::Instant::now();
            th.begin(Name::Exec, tag);
            let buckets = run_map_task(shared.program.as_ref(), func, &records, parts, combine);
            th.end(Name::Exec, tag);
            let buckets = buckets?;
            let bytes: usize = buckets.iter().map(|b| b.byte_size()).sum();
            if let Some(store) = &shared.spill {
                th.begin(Name::Emit, tag);
                for (p, b) in buckets.iter().enumerate() {
                    let path = format!("ds{}/map{}/b{p}.mrsb", t.data.0, t.index);
                    store.put(
                        &path,
                        &mrs_codec::encode_vec(write_bucket(b), shared.spill_compress),
                    )?;
                }
                th.end(Name::Emit, tag);
            }
            let mut st = shared.state.lock();
            st.metrics.record_map(t0.elapsed(), bytes);
            let DsState::MapOut { tasks, remaining, .. } = &mut st.datasets[t.data.0 as usize]
            else {
                return Err(Error::Invalid("map task on non-map dataset".into()));
            };
            tasks[t.index] = Some(buckets);
            *remaining -= 1;
            if *remaining == 0 {
                st.metrics.record_dataset_live();
                op_completed(&mut st, t.data);
            }
            Ok(())
        }
        TaskWork::Reduce { input, func } => {
            let t0 = std::time::Instant::now();
            th.begin(Name::Exec, tag);
            let out = match input {
                ReduceInput::Runs(runs) => {
                    run_reduce_task_merge(shared.program.as_ref(), func, &runs)
                }
                ReduceInput::Concat(bucket) => {
                    run_reduce_task(shared.program.as_ref(), func, bucket)
                }
            };
            th.end(Name::Exec, tag);
            let out = out?;
            if let Some(store) = &shared.spill {
                th.begin(Name::Emit, tag);
                let path = format!("ds{}/reduce{}.mrsb", t.data.0, t.index);
                store.put(
                    &path,
                    &mrs_codec::encode_vec(write_bucket(&out), shared.spill_compress),
                )?;
                th.end(Name::Emit, tag);
            }
            let mut st = shared.state.lock();
            st.metrics.record_reduce(t0.elapsed());
            let DsState::ReduceOut { tasks, remaining, .. } = &mut st.datasets[t.data.0 as usize]
            else {
                return Err(Error::Invalid("reduce task on non-reduce dataset".into()));
            };
            tasks[t.index] = Some(out.into_records());
            *remaining -= 1;
            if *remaining == 0 {
                st.metrics.record_dataset_live();
                op_completed(&mut st, t.data);
            }
            Ok(())
        }
        TaskWork::ReduceMap { input, reduce_func, map_func, parts, combine } => {
            let t0 = std::time::Instant::now();
            th.begin(Name::Exec, tag);
            let out = match input {
                ReduceInput::Runs(runs) => run_reduce_map_task_merge(
                    shared.program.as_ref(),
                    reduce_func,
                    map_func,
                    &runs,
                    parts,
                    combine,
                ),
                ReduceInput::Concat(bucket) => run_reduce_map_task(
                    shared.program.as_ref(),
                    reduce_func,
                    map_func,
                    bucket,
                    parts,
                    combine,
                ),
            };
            th.end(Name::Exec, tag);
            let out = out?;
            let bytes: usize = out.iter().map(Bucket::byte_size).sum();
            if let Some(store) = &shared.spill {
                th.begin(Name::Emit, tag);
                for (p, b) in out.iter().enumerate() {
                    let path = format!("ds{}/reducemap{}/b{p}.mrsb", t.data.0, t.index);
                    store.put(
                        &path,
                        &mrs_codec::encode_vec(write_bucket(b), shared.spill_compress),
                    )?;
                }
                th.end(Name::Emit, tag);
            }
            let mut st = shared.state.lock();
            st.metrics.record_reducemap_task(t0.elapsed(), bytes);
            let DsState::ReduceMapOut { tasks, remaining, .. } =
                &mut st.datasets[t.data.0 as usize]
            else {
                return Err(Error::Invalid("reducemap task on non-reducemap dataset".into()));
            };
            tasks[t.index] = Some(out);
            *remaining -= 1;
            if *remaining == 0 {
                st.metrics.record_dataset_live();
                op_completed(&mut st, t.data);
            }
            Ok(())
        }
    }
}

/// Called when an op's last task lands: release the refcount the op held
/// on its input and, if that was the input's last registered consumer,
/// reclaim the input's storage (unless GC is off or the driver pinned it).
fn op_completed(st: &mut State, data: DataId) {
    let input = match &st.datasets[data.0 as usize] {
        DsState::MapOut { input, .. }
        | DsState::ReduceOut { input, .. }
        | DsState::ReduceMapOut { input, .. } => *input,
        _ => return,
    };
    let c = &mut st.consumers[input.0 as usize];
    *c = c.saturating_sub(1);
    if *c == 0 && !st.keep_data && !st.pins.contains(&input.0) {
        let slot = &mut st.datasets[input.0 as usize];
        // Sources are exempt (matching the master): job input stays
        // available unless explicitly discarded.
        if slot.complete() && !matches!(slot, DsState::Discarded | DsState::Source(_)) {
            *slot = DsState::Discarded;
            st.metrics.record_dataset_freed(true);
        }
    }
}

impl LocalRuntime {
    fn submit(&mut self, ds: DsState, ntasks: usize) -> DataId {
        let input = match &ds {
            DsState::MapOut { input, .. }
            | DsState::ReduceOut { input, .. }
            | DsState::ReduceMapOut { input, .. } => Some(*input),
            _ => None,
        };
        let mut st = self.shared.state.lock();
        st.datasets.push(ds);
        st.consumers.push(0);
        match input {
            Some(input) => st.consumers[input.0 as usize] += 1,
            // Sources are materialized at submission; op outputs count as
            // live when their last task lands (see `execute`), so
            // `peak_live_datasets` tracks held storage, not queue depth.
            None => st.metrics.record_dataset_live(),
        }
        let id = DataId(st.datasets.len() as u32 - 1);
        for index in 0..ntasks {
            st.pending.push(TaskRef { data: id, index });
        }
        promote(&mut st);
        drop(st);
        self.shared.cv.notify_all();
        id
    }

    fn check_error(st: &State) -> Result<()> {
        match &st.error {
            Some(e) => Err(Error::TaskFailed(e.clone())),
            None => Ok(()),
        }
    }
}

impl JobApi for LocalRuntime {
    fn local_data(&mut self, records: Vec<Record>, splits: usize) -> Result<DataId> {
        if splits == 0 {
            return Err(Error::Invalid("need at least one split".into()));
        }
        Ok(self.submit(DsState::Source(split_evenly(records, splits)), 0))
    }

    fn map_data(
        &mut self,
        input: DataId,
        func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId> {
        if parts == 0 {
            return Err(Error::Invalid("need at least one partition".into()));
        }
        let ntasks = {
            let st = self.shared.state.lock();
            match st.datasets.get(input.0 as usize) {
                Some(DsState::Source(ds)) => ds.len(),
                Some(DsState::ReduceOut { tasks, .. }) => tasks.len(),
                Some(DsState::MapOut { .. } | DsState::ReduceMapOut { .. }) => {
                    return Err(Error::Invalid("map cannot consume an unreduced map output".into()))
                }
                Some(DsState::Discarded) => {
                    return Err(Error::MissingData(format!("dataset {input:?} was discarded")))
                }
                None => return Err(Error::MissingData(format!("dataset {input:?}"))),
            }
        };
        Ok(self.submit(
            DsState::MapOut {
                input,
                func,
                parts,
                combine,
                tasks: (0..ntasks).map(|_| None).collect(),
                remaining: ntasks,
            },
            ntasks,
        ))
    }

    fn reduce_data(&mut self, input: DataId, func: FuncId) -> Result<DataId> {
        let parts = {
            let st = self.shared.state.lock();
            match st.datasets.get(input.0 as usize) {
                Some(DsState::MapOut { parts, .. } | DsState::ReduceMapOut { parts, .. }) => *parts,
                Some(_) => return Err(Error::Invalid("reduce must consume a map output".into())),
                None => return Err(Error::MissingData(format!("dataset {input:?}"))),
            }
        };
        Ok(self.submit(
            DsState::ReduceOut {
                input,
                func,
                tasks: (0..parts).map(|_| None).collect(),
                remaining: parts,
            },
            parts,
        ))
    }

    fn reduce_map_data(
        &mut self,
        input: DataId,
        reduce_func: FuncId,
        map_func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId> {
        if parts == 0 {
            return Err(Error::Invalid("need at least one partition".into()));
        }
        let ntasks = {
            let mut st = self.shared.state.lock();
            let n = match st.datasets.get(input.0 as usize) {
                Some(DsState::MapOut { parts, .. } | DsState::ReduceMapOut { parts, .. }) => *parts,
                Some(_) => {
                    return Err(Error::Invalid("reduce_map must consume a map-like output".into()))
                }
                None => return Err(Error::MissingData(format!("dataset {input:?}"))),
            };
            st.metrics.record_fused_op();
            n
        };
        Ok(self.submit(
            DsState::ReduceMapOut {
                input,
                reduce_func,
                map_func,
                parts,
                combine,
                tasks: (0..ntasks).map(|_| None).collect(),
                remaining: ntasks,
            },
            ntasks,
        ))
    }

    fn keep(&mut self, data: DataId) {
        self.shared.state.lock().pins.insert(data.0);
    }

    fn wait(&mut self, data: DataId) -> Result<()> {
        let mut st = self.shared.state.lock();
        loop {
            Self::check_error(&st)?;
            match st.datasets.get(data.0 as usize) {
                None => return Err(Error::MissingData(format!("dataset {data:?}"))),
                Some(ds) if ds.complete() => return Ok(()),
                Some(_) => {}
            }
            self.shared.cv.wait(&mut st);
        }
    }

    fn fetch_all(&mut self, data: DataId) -> Result<Vec<Record>> {
        self.wait(data)?;
        let st = self.shared.state.lock();
        match &st.datasets[data.0 as usize] {
            DsState::Source(ds) => Ok(ds.iter().flatten().cloned().collect()),
            DsState::MapOut { tasks, .. } | DsState::ReduceMapOut { tasks, .. } => Ok(tasks
                .iter()
                .flatten()
                .flat_map(|buckets| buckets.iter().flat_map(|b| b.to_records()))
                .collect()),
            DsState::ReduceOut { tasks, .. } => {
                Ok(tasks.iter().flatten().flatten().cloned().collect())
            }
            DsState::Discarded => {
                Err(Error::MissingData(format!("dataset {data:?} was discarded")))
            }
        }
    }

    fn discard(&mut self, data: DataId) {
        let mut st = self.shared.state.lock();
        // Refuse while any incomplete consumer still needs this data —
        // discarding it would leave those tasks unready forever. Discard is
        // advisory per the JobApi contract, so ignoring is always safe.
        let has_live_consumer = st.datasets.iter().any(|ds| match ds {
            DsState::MapOut { input, remaining, .. }
            | DsState::ReduceOut { input, remaining, .. }
            | DsState::ReduceMapOut { input, remaining, .. } => *input == data && *remaining > 0,
            _ => false,
        });
        if has_live_consumer {
            return;
        }
        st.pins.remove(&data.0);
        if let Some(slot) = st.datasets.get_mut(data.0 as usize) {
            if slot.complete() && !matches!(slot, DsState::Discarded) {
                *slot = DsState::Discarded;
                st.metrics.record_dataset_freed(false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use mrs_core::kv::encode_record;
    use mrs_core::{Datum, MapReduce, Simple};
    use mrs_fs::MemFs;

    struct WordCount;

    impl MapReduce for WordCount {
        type K1 = u64;
        type V1 = String;
        type K2 = String;
        type V2 = u64;

        fn map(&self, _k: u64, v: String, emit: &mut dyn FnMut(String, u64)) {
            for w in v.split_whitespace() {
                emit(w.to_owned(), 1);
            }
        }

        fn reduce(
            &self,
            _k: &String,
            vs: &mut dyn Iterator<Item = u64>,
            emit: &mut dyn FnMut(u64),
        ) {
            emit(vs.sum());
        }

        fn has_combiner(&self) -> bool {
            true
        }
    }

    fn input(lines: &[&str]) -> Vec<Record> {
        lines.iter().enumerate().map(|(i, l)| encode_record(&(i as u64), &l.to_string())).collect()
    }

    fn sorted_counts(records: Vec<Record>) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = records
            .iter()
            .map(|(k, v)| (String::from_bytes(k).unwrap(), u64::from_bytes(v).unwrap()))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn pool_wordcount_matches_expected() {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 4);
        let mut job = Job::new(&mut rt);
        let out = job.map_reduce(input(&["a b a", "c a", "b b c", "a"]), 3, 4, true).unwrap();
        assert_eq!(sorted_counts(out), vec![("a".into(), 4), ("b".into(), 3), ("c".into(), 2)]);
    }

    #[test]
    fn mock_parallel_spills_bucket_files() {
        let store = Arc::new(MemFs::new());
        let mut rt = LocalRuntime::mock_parallel(Arc::new(Simple(WordCount)), store.clone());
        let mut job = Job::new(&mut rt);
        let out = job.map_reduce(input(&["x y", "y z"]), 2, 2, false).unwrap();
        assert_eq!(sorted_counts(out).len(), 3);
        // Map spill: 2 tasks × 2 buckets; reduce spill: 2 partitions.
        let files = store.list("").unwrap();
        let maps = files.iter().filter(|f| f.contains("/map")).count();
        let reduces = files.iter().filter(|f| f.contains("/reduce")).count();
        assert_eq!(maps, 4, "{files:?}");
        assert_eq!(reduces, 2, "{files:?}");
    }

    #[test]
    fn mock_parallel_counts_handovers_and_frames_spills() {
        let store = Arc::new(MemFs::new());
        let mut rt = LocalRuntime::mock_parallel_with(
            Arc::new(Simple(WordCount)),
            store.clone(),
            CompressMode::On,
        );
        let mut job = Job::new(&mut rt);
        let out = job.map_reduce(input(&["x y", "y z", "x x"]), 3, 2, false).unwrap();
        assert_eq!(sorted_counts(out).len(), 3);
        // Every reduce partition took all 3 map outputs by in-memory
        // handover: 2 partitions × 3 map tasks. Each handover is also a
        // perfect-overlap eager fragment (the mock-parallel oracle arm).
        assert_eq!(rt.metrics().shortcircuit_fetches(), 6);
        assert_eq!(rt.metrics().eager_fragments(), 6);
        // Spilled buckets carry the MRSF1 frame and decode back to MRSB1.
        let files = store.list("").unwrap();
        let spilled = store.get(files.iter().find(|f| f.contains("/map")).unwrap()).unwrap();
        assert!(mrs_codec::is_framed(&spilled));
        let raw = mrs_codec::decode_vec(spilled).unwrap();
        assert!(raw.starts_with(b"MRSB1"));
    }

    #[test]
    fn pool_matches_mock_parallel_output() {
        let data = input(&["the quick brown fox", "jumps over the lazy dog", "the end"]);
        let run = |mut rt: LocalRuntime| {
            let mut job = Job::new(&mut rt);
            sorted_counts(job.map_reduce(data.clone(), 3, 5, true).unwrap())
        };
        let pool = run(LocalRuntime::pool(Arc::new(Simple(WordCount)), 6));
        let mock =
            run(LocalRuntime::mock_parallel(Arc::new(Simple(WordCount)), Arc::new(MemFs::new())));
        assert_eq!(pool, mock);
    }

    #[test]
    fn pipelined_iterations_complete_without_waits() {
        // Queue two chained map+reduce rounds before waiting on anything:
        // identity-ish second round re-counts counts of words.
        struct CountValues;
        impl MapReduce for CountValues {
            type K1 = String;
            type V1 = u64;
            type K2 = String;
            type V2 = u64;
            fn map(&self, k: String, v: u64, emit: &mut dyn FnMut(String, u64)) {
                emit(k, v);
            }
            fn reduce(
                &self,
                _k: &String,
                vs: &mut dyn Iterator<Item = u64>,
                emit: &mut dyn FnMut(u64),
            ) {
                emit(vs.sum());
            }
        }
        let mut rt = LocalRuntime::pool(Arc::new(Simple(CountValues)), 3);
        let mut job = Job::new(&mut rt);
        let recs: Vec<Record> =
            (0..20u64).map(|i| encode_record(&format!("k{}", i % 4), &1u64)).collect();
        let src = job.local_data(recs, 4).unwrap();
        let m1 = job.map_data(src, 0, 4, false).unwrap();
        let r1 = job.reduce_data(m1, 0).unwrap();
        // Second round queued immediately — no wait in between.
        let m2 = job.map_data(r1, 0, 2, false).unwrap();
        let r2 = job.reduce_data(m2, 0).unwrap();
        let out = sorted_counts(job.fetch_all(r2).unwrap());
        assert_eq!(
            out,
            vec![("k0".into(), 5), ("k1".into(), 5), ("k2".into(), 5), ("k3".into(), 5)]
        );
    }

    #[test]
    fn task_error_is_reported_on_wait() {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 2);
        let mut job = Job::new(&mut rt);
        // Corrupt input records: map will fail to decode.
        let src = job.local_data(vec![(vec![1], vec![2])], 1).unwrap();
        let m = job.map_data(src, 0, 1, false).unwrap();
        let err = job.wait(m).unwrap_err();
        assert!(matches!(err, Error::TaskFailed(_)));
    }

    #[test]
    fn discard_only_frees_completed_data() {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 2);
        let mut job = Job::new(&mut rt);
        let src = job.local_data(input(&["a b"]), 1).unwrap();
        let m = job.map_data(src, 0, 1, false).unwrap();
        let r = job.reduce_data(m, 0).unwrap();
        job.wait(r).unwrap();
        job.discard(m);
        // r is still fetchable; m is gone.
        assert!(job.fetch_all(r).is_ok());
        assert!(job.fetch_all(m).is_err());
    }

    #[test]
    fn discard_with_live_consumers_is_ignored_not_hung() {
        // Regression: discarding a dataset that queued-but-unrun consumers
        // still need must be refused, otherwise those tasks never become
        // ready and wait() hangs forever.
        // Self-feeding program: reduce output is valid map input.
        struct SelfFeed;
        impl MapReduce for SelfFeed {
            type K1 = String;
            type V1 = u64;
            type K2 = String;
            type V2 = u64;
            fn map(&self, k: String, v: u64, emit: &mut dyn FnMut(String, u64)) {
                emit(k, v + 1);
            }
            fn reduce(
                &self,
                _k: &String,
                vs: &mut dyn Iterator<Item = u64>,
                emit: &mut dyn FnMut(u64),
            ) {
                emit(vs.sum());
            }
        }
        let mut rt = LocalRuntime::pool(Arc::new(Simple(SelfFeed)), 1);
        let mut job = Job::new(&mut rt);
        let recs: Vec<Record> = (0..4u64).map(|i| encode_record(&format!("k{i}"), &i)).collect();
        let src = job.local_data(recs, 2).unwrap();
        let m1 = job.map_data(src, 0, 2, false).unwrap();
        let r1 = job.reduce_data(m1, 0).unwrap();
        // Queue a second round over r1, then immediately ask to discard r1.
        let m2 = job.map_data(r1, 0, 2, false).unwrap();
        job.discard(r1); // must be ignored: m2 still needs it
        let r2 = job.reduce_data(m2, 0).unwrap();
        let out = job.fetch_all(r2).unwrap();
        assert_eq!(out.len(), 4);
    }

    /// Self-feeding chain program for iterative tests: reduce output is
    /// valid map input, map scatters across keys so every partition mixes.
    struct Rotate;
    impl MapReduce for Rotate {
        type K1 = u64;
        type V1 = u64;
        type K2 = u64;
        type V2 = u64;
        fn map(&self, k: u64, v: u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(k % 5, v + 1);
            emit((k * 3 + 1) % 5, v);
        }
        fn reduce(&self, _k: &u64, vs: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
            emit(vs.sum());
        }
        fn has_combiner(&self) -> bool {
            true
        }
    }

    fn rotate_input() -> Vec<Record> {
        (0..24u64).map(|i| encode_record(&i, &(i * i % 11))).collect()
    }

    fn rotate_unfused(rt: &mut LocalRuntime, iters: usize, parts: usize) -> Vec<Record> {
        let mut job = Job::new(rt);
        let src = job.local_data(rotate_input(), 3).unwrap();
        let mut m = job.map_data(src, 0, parts, true).unwrap();
        for _ in 1..iters {
            let r = job.reduce_data(m, 0).unwrap();
            m = job.map_data(r, 0, parts, true).unwrap();
        }
        let last = job.reduce_data(m, 0).unwrap();
        job.fetch_all(last).unwrap()
    }

    fn rotate_fused(rt: &mut LocalRuntime, iters: usize, parts: usize) -> Vec<Record> {
        let mut job = Job::new(rt);
        let src = job.local_data(rotate_input(), 3).unwrap();
        let mut m = job.map_data(src, 0, parts, true).unwrap();
        for _ in 1..iters {
            m = job.reduce_map_data(m, 0, 0, parts, true).unwrap();
        }
        let last = job.reduce_data(m, 0).unwrap();
        job.fetch_all(last).unwrap()
    }

    #[test]
    fn pool_reducemap_matches_unfused_chain() {
        let (iters, parts) = (4usize, 3usize);
        let mut plain = LocalRuntime::pool(Arc::new(Simple(Rotate)), 4);
        let unfused = rotate_unfused(&mut plain, iters, parts);
        let mut fused_rt = LocalRuntime::pool(Arc::new(Simple(Rotate)), 4);
        let fused = rotate_fused(&mut fused_rt, iters, parts);
        assert_eq!(fused, unfused, "fused chain must be byte-identical");
        let m = fused_rt.metrics();
        assert_eq!(m.fused_ops(), (iters - 1) as u64);
        assert_eq!(m.reducemap_tasks(), ((iters - 1) * parts) as u64);
        assert!(m.datasets_freed() > 0, "GC should reclaim interior datasets");
    }

    #[test]
    fn mock_parallel_reducemap_matches_pool() {
        let (iters, parts) = (3usize, 2usize);
        let mut pool = LocalRuntime::pool(Arc::new(Simple(Rotate)), 3);
        let a = rotate_fused(&mut pool, iters, parts);
        let mut mock =
            LocalRuntime::mock_parallel(Arc::new(Simple(Rotate)), Arc::new(MemFs::new()));
        let b = rotate_fused(&mut mock, iters, parts);
        assert_eq!(a, b);
    }

    #[test]
    fn gc_bounds_live_datasets_independent_of_iterations() {
        let peak_at = |iters: usize| {
            let mut rt = LocalRuntime::pool(Arc::new(Simple(Rotate)), 1);
            rotate_fused(&mut rt, iters, 2);
            rt.metrics().peak_live_datasets()
        };
        let (short, long) = (peak_at(3), peak_at(12));
        assert_eq!(short, long, "peak live datasets must not grow with iteration count");
        assert!(long <= 4, "chain should hold O(1) datasets, saw {long}");
    }

    #[test]
    fn keep_data_disables_gc_and_keeps_intermediates_fetchable() {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(Rotate)), 2);
        rt.set_keep_data(true);
        let (m1, out) = {
            let mut job = Job::new(&mut rt);
            let src = job.local_data(rotate_input(), 2).unwrap();
            let m1 = job.map_data(src, 0, 2, true).unwrap();
            let m2 = job.reduce_map_data(m1, 0, 0, 2, true).unwrap();
            let last = job.reduce_data(m2, 0).unwrap();
            (m1, job.fetch_all(last).unwrap())
        };
        assert!(!out.is_empty());
        let metrics = rt.metrics();
        assert_eq!(metrics.datasets_freed(), 0);
        let mut job = Job::new(&mut rt);
        assert!(job.fetch_all(m1).is_ok(), "keep-data mode must retain intermediates");
    }

    #[test]
    fn keep_pins_dataset_against_gc_until_discard() {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(Rotate)), 2);
        let mut job = Job::new(&mut rt);
        let src = job.local_data(rotate_input(), 2).unwrap();
        let m1 = job.map_data(src, 0, 2, true).unwrap();
        let r1 = job.reduce_data(m1, 0).unwrap();
        job.keep(r1);
        // Queue the next round over r1 *before* fetching it — without the
        // pin, the map's completion would free r1 out from under us.
        let m2 = job.map_data(r1, 0, 2, true).unwrap();
        let r2 = job.reduce_data(m2, 0).unwrap();
        job.wait(r2).unwrap();
        assert!(job.fetch_all(r1).is_ok(), "pinned dataset must survive its last consumer");
        job.discard(r1);
        assert!(job.fetch_all(r1).is_err(), "explicit discard releases the pin");
    }

    #[test]
    fn reducemap_of_reduce_output_is_error() {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(Rotate)), 1);
        let mut job = Job::new(&mut rt);
        let src = job.local_data(rotate_input(), 1).unwrap();
        let m = job.map_data(src, 0, 2, false).unwrap();
        let r = job.reduce_data(m, 0).unwrap();
        assert!(job.reduce_map_data(r, 0, 0, 2, false).is_err());
        assert!(job.reduce_map_data(src, 0, 0, 2, false).is_err());
    }

    #[test]
    fn merge_and_sort_modes_agree_across_planes() {
        let data = input(&["the quick brown fox", "jumps over the lazy dog", "the end the"]);
        let run = |mut rt: LocalRuntime, mode: MergeMode| {
            rt.set_merge_mode(mode);
            let out = {
                let mut job = Job::new(&mut rt);
                job.map_reduce(data.clone(), 3, 4, false).unwrap()
            };
            (out, rt.metrics())
        };
        let (merged, mm) =
            run(LocalRuntime::pool(Arc::new(Simple(WordCount)), 4), MergeMode::Merge);
        let (sorted, sm) = run(LocalRuntime::pool(Arc::new(Simple(WordCount)), 4), MergeMode::Sort);
        assert_eq!(merged, sorted, "merge mode diverged from the sort oracle");
        // 4 partitions × 3 map tasks, every run sorted at the producer.
        assert_eq!(mm.merge_runs(), 12);
        assert_eq!(mm.presorted_runs(), 12);
        assert!(mm.peak_reduce_records() > 0);
        assert_eq!(sm.merge_runs(), 0);
        let (mock, _) = run(
            LocalRuntime::mock_parallel(Arc::new(Simple(WordCount)), Arc::new(MemFs::new())),
            MergeMode::Merge,
        );
        assert_eq!(mock, merged);
    }

    #[test]
    fn reducemap_merge_mode_matches_sort_mode() {
        let run = |mode: MergeMode| {
            let mut rt = LocalRuntime::pool(Arc::new(Simple(Rotate)), 3);
            rt.set_merge_mode(mode);
            rotate_fused(&mut rt, 4, 3)
        };
        assert_eq!(run(MergeMode::Merge), run(MergeMode::Sort));
    }

    #[test]
    fn trace_covers_every_task_across_worker_lanes() {
        use mrs_trace::{Kind, Name, MASTER_PID};
        let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 4);
        {
            let mut job = Job::new(&mut rt);
            job.map_reduce(input(&["a b a", "c a", "b b c", "a"]), 3, 4, true).unwrap();
        }
        let trace = rt.take_trace();
        assert_eq!(trace.dropped, 0);
        let count = |n: Name, k: Kind| trace.count(|g| g.event.name == n && g.event.kind == k);
        // 3 map tasks + 4 reduce partitions.
        assert_eq!(count(Name::Attempt, Kind::Begin), 7);
        assert_eq!(count(Name::Attempt, Kind::End), 7);
        assert_eq!(count(Name::Exec, Kind::Begin), 7);
        assert_eq!(count(Name::Merge, Kind::Begin), 4, "one merge per reduce");
        assert_eq!(count(Name::Dispatch, Kind::Instant), 7);
        assert_eq!(count(Name::Report, Kind::Instant), 7);
        // Scheduler instants sit on the master row; execution spans keep
        // their worker lane under the single slave pid.
        assert!(trace.events.iter().all(
            |g| (g.pid == MASTER_PID) == matches!(g.event.name, Name::Dispatch | Name::Report)
        ));
        assert!(trace.events.iter().all(|g| g.pid == MASTER_PID || g.event.lane < 4));
        let cov = trace.coverage();
        assert_eq!(cov.len(), 7);
        for c in &cov {
            // Tasks here finish in microseconds, so bound the uncovered
            // remainder absolutely rather than as a flaky ratio.
            assert!(c.window_us - c.covered_us < 1_000, "attempt should fill its window: {c:?}");
        }
        let json = trace.chrome_json();
        assert!(json.contains("\"ph\":\"B\"") && json.contains("process_name"));
    }

    #[test]
    fn many_workers_no_deadlock_on_large_fanout() {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 8);
        let mut job = Job::new(&mut rt);
        let lines: Vec<String> =
            (0..200).map(|i| format!("w{} w{} shared", i % 17, i % 5)).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let out = job.map_reduce(input(&refs), 32, 16, true).unwrap();
        let counts = sorted_counts(out);
        let shared = counts.iter().find(|(w, _)| w == "shared").unwrap();
        assert_eq!(shared.1, 200);
    }
}
