//! The slave: poll the master, execute tasks, serve outputs.
//!
//! A slave "needs only the master's address and port to connect" (§IV).
//! On the direct data plane it keeps its outputs in a local store and
//! serves them to peers over its built-in HTTP data server; on the
//! shared-filesystem plane it writes bucket files to the common store.
//!
//! A slave is multicore-aware: it advertises a slot count at signin and
//! runs that many worker threads plus a dedicated prefetch thread that
//! fetches the *next* assignment's input buckets while the workers
//! compute, so transfer overlaps computation (the pipelining the paper's
//! serial-phase analysis motivates). Capacity is one more than the worker
//! count: that extra slot is the prefetch buffer. The polling thread
//! itself never fetches data — a slow or dead peer can stall the data
//! plane without silencing the control heartbeat.
//!
//! The slave is written against the [`MasterLink`] trait so the same loop
//! runs over real XML-RPC (production/distributed tests) or direct method
//! calls (scheduler unit tests).

use crate::dataplane::{
    record_eager_fragment, record_merge_input, record_overlap, record_premerge,
    record_residual_fetch,
};
use crate::master::SlaveId;
use crate::proto::{
    fetch_bucket_bytes_local_first, Assignment, CancelOrder, ControlMode, DataPlane, Dispatch,
    EagerFragment, TaskKind, TaskMsg, TaskReport, TraceBatch,
};
use mrs_codec::CompressMode;
use mrs_core::task::{
    run_map_task_bucket_cancellable, run_reduce_map_task_cancellable,
    run_reduce_map_task_merge_cancellable, run_reduce_task_cancellable,
    run_reduce_task_merge_cancellable,
};
use mrs_core::{merge_runs, Bucket, Error, MergeMode, Program, Result};
use mrs_fs::format::{read_bucket_into, read_bucket_run, write_bucket};
use mrs_fs::Store;
use mrs_rpc::{DataServer, FrameCache};
use mrs_trace::{Name, Op, Recorder, Tag, TraceHandle, EAGER_LANE, POLL_LANE, PREFETCH_LANE};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The slave's view of the master.
pub trait MasterLink: Send + Sync {
    /// Register, advertising how many assignments this slave can hold at
    /// once; returns the slave id.
    fn signin(&self, authority: &str, slots: usize) -> Result<SlaveId>;
    /// Poll for work with `free` idle slots; the master may grant up to
    /// `free` tasks in one batch.
    fn get_tasks(&self, slave: SlaveId, free: usize) -> Result<Dispatch> {
        self.get_tasks_with(slave, free, Duration::ZERO, Vec::new(), TraceBatch::default())
    }
    /// Full-form poll: delivers piggybacked completion `reports` and asks
    /// the master to hold the request up to `park` when nothing is
    /// runnable (long-poll dispatch). The `trace` batch piggybacks this
    /// slave's trace-event delta (empty when tracing is off). The answer
    /// is a full [`Dispatch`]: the assignment plus any lifetime-GC purge
    /// orders for this slave.
    fn get_tasks_with(
        &self,
        slave: SlaveId,
        free: usize,
        park: Duration,
        reports: Vec<TaskReport>,
        trace: TraceBatch,
    ) -> Result<Dispatch>;
    /// Report success with output bucket URLs. `attempt` echoes the id the
    /// task message carried, so the master can recognize a stale report
    /// from a superseded attempt.
    fn task_done(
        &self,
        slave: SlaveId,
        data: u32,
        index: usize,
        attempt: u32,
        urls: Vec<String>,
    ) -> Result<()>;
    /// Report a failed attempt. `failed_input` is the input URL that could
    /// not be fetched, when the failure was a fetch failure.
    fn task_failed(
        &self,
        slave: SlaveId,
        data: u32,
        index: usize,
        attempt: u32,
        msg: &str,
        failed_input: Option<&str>,
    ) -> Result<()>;
}

/// In-process link: call the master directly (unit tests, benchmarks).
impl MasterLink for crate::master::Master {
    fn signin(&self, authority: &str, slots: usize) -> Result<SlaveId> {
        Ok(crate::master::Master::signin(self, authority, slots))
    }
    fn get_tasks_with(
        &self,
        slave: SlaveId,
        free: usize,
        park: Duration,
        reports: Vec<TaskReport>,
        trace: TraceBatch,
    ) -> Result<Dispatch> {
        Ok(crate::master::Master::get_dispatch_traced(self, slave, free, park, &reports, &trace))
    }
    fn task_done(
        &self,
        slave: SlaveId,
        data: u32,
        index: usize,
        attempt: u32,
        urls: Vec<String>,
    ) -> Result<()> {
        crate::master::Master::task_done(self, slave, data, index, attempt, urls);
        Ok(())
    }
    fn task_failed(
        &self,
        slave: SlaveId,
        data: u32,
        index: usize,
        attempt: u32,
        msg: &str,
        failed_input: Option<&str>,
    ) -> Result<()> {
        crate::master::Master::task_failed(self, slave, data, index, attempt, msg, failed_input);
        Ok(())
    }
}

/// Slave tuning knobs.
#[derive(Clone, Debug)]
pub struct SlaveOptions {
    /// Initial sleep between polls when the master says `Wait`.
    pub poll_interval: Duration,
    /// Idle-poll backoff cap: consecutive `Wait`s double the sleep from
    /// `poll_interval` up to this; any granted work resets it.
    pub max_poll_interval: Duration,
    /// Concurrent task slots (worker threads). Defaults to the number of
    /// available CPU cores.
    pub slots: usize,
    /// How the slave discovers state changes: event-driven long-poll with
    /// piggybacked completions (default), or legacy sleep-and-poll.
    pub control: ControlMode,
    /// Server-side park requested on fully-idle polls (long-poll mode).
    /// The master clamps it to its own `long_poll_timeout` and to half its
    /// slave death timeout, so requesting generously is safe.
    pub long_poll: Duration,
    /// Shuffle payload compression policy for this slave's outputs
    /// (`--mrs-compress`). Consumers auto-detect, so slaves with
    /// different settings interoperate.
    pub compress: CompressMode,
    /// Run the background shuffle fetcher (`--mrs-eager-shuffle`): pull
    /// master-announced map-output fragments while maps still run, then
    /// seed reduce-input fetches from the warm cache. Off restores the
    /// classic fetch-everything-at-task-time path.
    pub eager_shuffle: bool,
    /// How reduce-like tasks assemble their input (`--mrs-merge`):
    /// stream a k-way merge over the decoded sorted runs (default), or
    /// concatenate and sort — the legacy path, kept as the oracle.
    pub merge: MergeMode,
    /// Record task-attempt trace events (on by default; `--mrs-no-trace`
    /// turns it off). Events are shipped to the master piggybacked on the
    /// poll loop; the recorder is bounded, so tracing never grows memory
    /// without bound and costs one uncontended lock per event.
    pub trace: bool,
    /// Test-only straggler injection (`--mrs-test-delay data:index:ms`):
    /// before running the *first* attempt of the named task this slave
    /// sleeps the given milliseconds (checking its cancellation flag, so
    /// a backed-up straggler aborts promptly). Backups (attempt ≥ 2) run
    /// clean wherever they land.
    pub test_delays: Vec<(u32, usize, u64)>,
}

impl Default for SlaveOptions {
    fn default() -> Self {
        SlaveOptions {
            poll_interval: Duration::from_millis(2),
            max_poll_interval: Duration::from_millis(50),
            slots: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            control: ControlMode::default(),
            long_poll: Duration::from_secs(1),
            compress: CompressMode::default(),
            eager_shuffle: true,
            merge: MergeMode::default(),
            trace: true,
            test_delays: Vec::new(),
        }
    }
}

/// Prefetched-task queue shared between the polling/prefetch thread and
/// the compute workers.
struct Pipe {
    state: Mutex<PipeState>,
    /// Wakes compute workers when tasks are queued (or on shutdown).
    cv: Condvar,
    /// Wakes the polling thread on worker events: a slot freed, a report
    /// queued for piggybacking (or shutdown).
    poll_cv: Condvar,
    /// Wakes the prefetch thread when assignments land (or on shutdown).
    fetch_cv: Condvar,
    /// Eager-shuffle fragment queue and warm cache; `None` with
    /// `--mrs-eager-shuffle off`.
    eager: Option<EagerHalf>,
}

/// The eager shuffle fetcher's half of the pipe: fragment URLs announced
/// by the master but not yet fetched, and fetched fragments kept warm
/// until their reduce-like task consumes them.
struct EagerHalf {
    state: Mutex<EagerState>,
    /// Wakes the fetcher when fragments are announced (or on shutdown).
    cv: Condvar,
    /// Pre-merge warm fragments into larger runs while maps still run
    /// (merge-mode reduce only: the sort oracle stays byte-for-byte on
    /// the classic per-fragment path).
    premerge: bool,
}

struct EagerState {
    /// Announced fragment URLs awaiting fetch.
    queue: VecDeque<String>,
    /// Every URL ever queued — duplicate announcements (two consumers of
    /// one map output) fetch once.
    seen: HashSet<String>,
    /// Decoded bucket bytes by URL, stamped with the instant they became
    /// ready: the overlap metric is how long a fragment sat here before
    /// its task consumed it.
    warm: HashMap<String, (Vec<u8>, Instant)>,
    /// Runs the background pre-merge built out of warm fragments, keyed
    /// by the first covered URL. Consumed only when a task's input list
    /// carries the covered URLs contiguously in the same order; any
    /// mismatch (a producer was re-executed under a new URL) drops the
    /// whole entry and the task falls back to residual fetches.
    premerged: HashMap<String, PremergedRun>,
    /// Shutdown flag mirroring the pipe's drain/halt for the fetcher.
    stop: bool,
}

/// One background-merged run: several contiguous map-output fragments
/// collapsed into a single sorted `MRSB1` bucket.
struct PremergedRun {
    /// Raw sorted bucket bytes (re-parsed as one presorted run).
    bytes: Vec<u8>,
    /// The fragment URLs this run covers, in producer task-index order —
    /// the order the master lists reduce inputs in.
    urls: Vec<String>,
    /// When the merge finished (feeds the overlap metric on consumption).
    ready_at: Instant,
}

/// Background pre-merge fires once this many contiguous warm fragments
/// pile up for one (dataset, partition)...
const PREMERGE_MIN: usize = 4;
/// ...and collapses at most this many per merged run (bounded fan-in, so
/// one giant cascade never starves the fetch queue).
const PREMERGE_FAN_IN: usize = 8;

struct PipeState {
    /// Assignments accepted from the master, inputs not yet fetched. The
    /// stamp is the recorder time the assignment arrived (0 untraced), so
    /// the attempt span can reach back to acceptance.
    fetch_queue: VecDeque<(TaskMsg, u64)>,
    /// Tasks with their inputs already fetched, ready to compute.
    queue: VecDeque<(TaskMsg, u64, Vec<Vec<u8>>)>,
    /// Assignments accepted from the master and not yet reported back.
    in_flight: usize,
    /// Completions waiting to ride on the next `get_tasks` poll.
    reports: Vec<TaskReport>,
    /// Cancellation flags of attempts currently executing, keyed by
    /// (data, index, attempt). A cancel order for a running attempt sets
    /// its flag; the kernel observes it at the next record/group boundary.
    active: HashMap<(u32, usize, u32), Arc<AtomicBool>>,
    /// Cancel orders for attempts this slave has accepted but not started
    /// (or never saw): checked when a worker is about to run a task, so a
    /// queued loser is abandoned without executing at all.
    tombstones: HashSet<(u32, usize, u32)>,
    /// The poll loop has exited: no further poll will carry reports, so
    /// workers report straight to `task_done` from here on.
    direct_report: bool,
    /// No more work will arrive; workers drain the queue then exit.
    drain: bool,
    /// Stop immediately and silently — crash semantics (the fault-injection
    /// hook) or a lost control channel. Nothing further is reported.
    halt: bool,
}

impl Pipe {
    fn new(eager: bool, premerge: bool) -> Pipe {
        Pipe {
            state: Mutex::new(PipeState {
                fetch_queue: VecDeque::new(),
                queue: VecDeque::new(),
                in_flight: 0,
                reports: Vec::new(),
                active: HashMap::new(),
                tombstones: HashSet::new(),
                direct_report: false,
                drain: false,
                halt: false,
            }),
            cv: Condvar::new(),
            poll_cv: Condvar::new(),
            fetch_cv: Condvar::new(),
            eager: eager.then(|| EagerHalf {
                state: Mutex::new(EagerState {
                    queue: VecDeque::new(),
                    seen: HashSet::new(),
                    warm: HashMap::new(),
                    premerged: HashMap::new(),
                    stop: false,
                }),
                cv: Condvar::new(),
                premerge,
            }),
        }
    }

    fn shut_down(&self, halt: bool) {
        let mut st = self.state.lock();
        if halt {
            st.halt = true;
        } else {
            st.drain = true;
        }
        drop(st);
        if let Some(eg) = &self.eager {
            eg.state.lock().stop = true;
            eg.cv.notify_all();
        }
        self.cv.notify_all();
        self.poll_cv.notify_all();
        self.fetch_cv.notify_all();
    }

    /// Queue announced fragments for the eager fetcher (dedup by URL).
    fn enqueue_eager(&self, frags: &[EagerFragment]) {
        let Some(eg) = &self.eager else { return };
        let mut st = eg.state.lock();
        let mut queued = false;
        for f in frags {
            if st.seen.insert(f.url.clone()) {
                st.queue.push_back(f.url.clone());
                queued = true;
            }
        }
        drop(st);
        if queued {
            eg.cv.notify_all();
        }
    }

    /// Apply attempt-cancellation orders piggybacked on a dispatch. A
    /// still-queued loser is dropped before it ever runs (freeing its slot
    /// immediately); a running one gets its cooperative flag set; an
    /// attempt this slave has no record of (report already sent, or the
    /// order raced the assignment) leaves a tombstone so it is abandoned
    /// the moment a worker picks it up. A dequeued loser still shows on
    /// the timeline — its accepted→cancelled span and `Cancel` instant
    /// land on the poll lane, since no worker ever owned it.
    fn apply_cancels(&self, orders: &[CancelOrder], th: Option<&TraceHandle>) {
        if orders.is_empty() {
            return;
        }
        let mut st = self.state.lock();
        let mut freed = false;
        let mut dequeued: Vec<(TaskMsg, u64)> = Vec::new();
        for o in orders {
            let key = (o.data, o.index, o.attempt);
            let hit =
                |t: &TaskMsg| t.data == o.data && t.index == o.index && t.attempt == o.attempt;
            if let Some(pos) = st.fetch_queue.iter().position(|(t, _)| hit(t)) {
                let (t, at) = st.fetch_queue.remove(pos).expect("position in range");
                dequeued.push((t, at));
                st.in_flight -= 1;
                freed = true;
            } else if let Some(pos) = st.queue.iter().position(|(t, _, _)| hit(t)) {
                let (t, at, _) = st.queue.remove(pos).expect("position in range");
                dequeued.push((t, at));
                st.in_flight -= 1;
                freed = true;
            } else if let Some(flag) = st.active.get(&key) {
                flag.store(true, Ordering::Relaxed);
            } else {
                st.tombstones.insert(key);
            }
        }
        drop(st);
        if let Some(h) = th {
            for (t, accepted_us) in &dequeued {
                let tag = Tag::task(op_of(t.kind), t.data, t.index, t.attempt);
                h.begin_at(*accepted_us, Name::Attempt, tag);
                h.instant(Name::Cancel, tag);
                h.end(Name::Attempt, tag);
            }
        }
        if freed {
            self.poll_cv.notify_all();
        }
    }

    /// Drop eager fragments (queued or warm) belonging to a lifetime-GC'd
    /// dataset. `prefix` is the purge order's bucket-path prefix
    /// (`s{slave}/d{data}/`); fragment URLs embed it after `/data/`.
    fn purge_eager(&self, prefix: &str) {
        let Some(eg) = &self.eager else { return };
        let needle = format!("/data/{prefix}");
        let mut st = eg.state.lock();
        st.queue.retain(|u| !u.contains(&needle));
        st.seen.retain(|u| !u.contains(&needle));
        st.warm.retain(|u, _| !u.contains(&needle));
        st.premerged.retain(|u, _| !u.contains(&needle));
    }

    fn halted(&self) -> bool {
        self.state.lock().halt
    }
}

/// Run the slave loop until the master says `Exit`, the link dies, or
/// `stop` is set (the fault-injection hook: a stopped slave goes silent
/// exactly like a crashed process — queued and running work is abandoned
/// unreported).
pub fn run_slave(
    link: &dyn MasterLink,
    program: Arc<dyn Program>,
    plane: DataPlane,
    opts: &SlaveOptions,
    stop: &AtomicBool,
) -> Result<()> {
    // Local frame cache and (direct plane) the data server for peers.
    // Outputs are encoded exactly once into the cache; the server hands
    // every reader the same shared buffer (zero-copy), and this slave's
    // own reduce inputs short-circuit through the cache without a socket.
    let frames = Arc::new(FrameCache::new());
    let server = match &plane {
        DataPlane::Direct => Some(DataServer::serve(0, frames.provider()).map_err(Error::Io)?),
        DataPlane::SharedFs(_) => None,
    };
    let authority = server.as_ref().map(|s| s.authority()).unwrap_or_else(|| "shared".into());
    let shared: Option<Arc<dyn Store>> = match &plane {
        DataPlane::SharedFs(s) => Some(Arc::clone(s)),
        DataPlane::Direct => None,
    };
    let own_authority = server.as_ref().map(|s| s.authority());

    let workers = opts.slots.max(1);
    // Advertise one slot beyond the worker count: while all workers
    // compute, one more assignment can sit in the queue with its inputs
    // already fetched (double buffering).
    let capacity = workers + 1;
    let id = link.signin(&authority, capacity)?;

    let piggyback = matches!(opts.control, ControlMode::LongPoll);
    let pipe = Pipe::new(opts.eager_shuffle, opts.merge == MergeMode::Merge);
    // Trace recording: one recorder per slave, one handle (ring shard)
    // per recording thread. Handles live outside the thread scope so the
    // worker closures can borrow them.
    let rec = opts.trace.then(Recorder::new);
    let worker_handles: Vec<Option<TraceHandle>> =
        (0..workers).map(|w| rec.as_ref().map(|r| r.handle(w as u32))).collect();
    let prefetch_handle = rec.as_ref().map(|r| r.handle(PREFETCH_LANE));
    let eager_handle = rec.as_ref().map(|r| r.handle(EAGER_LANE));
    let poll_handle = rec.as_ref().map(|r| r.handle(POLL_LANE));
    let mut result: Result<()> = Ok(());
    std::thread::scope(|s| {
        let mut handles: Vec<_> = worker_handles
            .iter()
            .map(|th| {
                s.spawn(|| {
                    worker_loop(
                        link,
                        program.as_ref(),
                        &plane,
                        &frames,
                        server.as_ref(),
                        id,
                        &pipe,
                        piggyback,
                        opts.compress,
                        opts.merge,
                        &opts.test_delays,
                        th.as_ref(),
                    )
                })
            })
            .collect();
        // The prefetch stage runs on its own thread so a slow or dead peer
        // stalls only the data plane: the polling thread keeps
        // heartbeating, and fetch failures report standalone so recovery
        // starts immediately.
        handles.push(s.spawn(|| {
            prefetch_loop(
                link,
                shared.as_ref(),
                own_authority.as_deref(),
                &frames,
                id,
                &pipe,
                prefetch_handle.as_ref(),
            )
        }));
        // The eager shuffle fetcher pulls announced map-output fragments
        // while the workers are still mapping, hiding reduce-input
        // transfer behind map execution. Purely advisory: every failure
        // is silently dropped and the task-time residual fetch restores
        // correctness.
        if pipe.eager.is_some() {
            handles.push(s.spawn(|| {
                eager_fetch_loop(
                    shared.as_ref(),
                    own_authority.as_deref(),
                    &frames,
                    &pipe,
                    eager_handle.as_ref(),
                );
                Ok(())
            }));
        }

        let mut backoff = opts.poll_interval;
        // The round-trip measured around the *previous* poll, shipped with
        // the next trace batch so the master's clock sync can bound the
        // one-way delay. Until a round-trip exists the batch stays empty —
        // an unmeasured sample would lock the min-RTT filter onto a bogus
        // offset.
        let mut prev_rtt_us: Option<u64> = None;
        let main_res: Result<()> = loop {
            if stop.load(Ordering::SeqCst) {
                pipe.shut_down(true);
                break Ok(());
            }
            if pipe.halted() {
                // A worker lost the control channel; nothing left to do.
                break Ok(());
            }
            // Occupancy and pending reports, read in one lock section.
            // When every slot (including the prefetch buffer) is occupied,
            // wait for a worker's condvar wake rather than sleeping a
            // fixed interval. The wait is bounded: a slave that stays full
            // past it polls anyway with `free = 0` — the empty request is
            // its heartbeat, and it hears about `Exit` without waiting for
            // a slot to open.
            let (free, reports) = {
                let mut st = pipe.state.lock();
                if capacity.saturating_sub(st.in_flight) == 0
                    && !st.halt
                    && !stop.load(Ordering::SeqCst)
                {
                    pipe.poll_cv.wait_for(&mut st, opts.max_poll_interval);
                }
                (capacity.saturating_sub(st.in_flight), std::mem::take(&mut st.reports))
            };
            // Park server-side only when fully idle: with workers running,
            // a local completion could otherwise sit behind our own parked
            // request, so a busy slave polls without parking and waits
            // locally on the worker condvar instead.
            let park = if piggyback && free == capacity { opts.long_poll } else { Duration::ZERO };
            // Drain the trace delta *after* taking the reports: any event a
            // worker recorded before queueing its report is guaranteed to
            // ride the same (or an earlier) poll as the report itself.
            let batch = match (&rec, prev_rtt_us) {
                (Some(r), Some(rtt_us)) => {
                    let (events, dropped) = r.drain();
                    TraceBatch { sent_at_us: r.now_us(), rtt_us, dropped, events }
                }
                _ => TraceBatch::default(),
            };
            let polled_at = Instant::now();
            // A master that has vanished is a normal end of life for a
            // slave: the paper's launch scripts tear everything down
            // together (the scheduler "kills processes as soon as a job
            // completes"), so losing the control channel means the job is
            // over, not an error.
            let answer = link.get_tasks_with(id, free, park, reports, batch).map(|d| {
                // Apply lifetime-GC purge orders before acting on the
                // assignment: spent datasets leave this slave's frame
                // cache so long-running iterative jobs hold O(1)
                // intermediate data, not O(iterations). The eager
                // fragment cache honors the same orders — a freed
                // dataset must not leak warm fragments either.
                for prefix in &d.purge {
                    frames.remove_prefix(prefix);
                    pipe.purge_eager(prefix);
                }
                pipe.enqueue_eager(&d.eager);
                // Cancel orders never name a task granted in this same
                // answer (they are issued for attempts dispatched earlier),
                // so applying them before enqueueing the assignment is safe.
                pipe.apply_cancels(&d.cancel, poll_handle.as_ref());
                d.assignment
            });
            if rec.is_some() {
                // Parked long-polls inflate this sample; the master's
                // min-RTT filter discards inflated ones on its own.
                prev_rtt_us = Some(polled_at.elapsed().as_micros() as u64);
            }
            match answer {
                Ok(Assignment::Exit) => {
                    // No further poll will carry reports: flush anything
                    // queued since this poll was sent, and route later
                    // completions straight to `task_done`.
                    let late: Vec<TaskReport> = {
                        let mut st = pipe.state.lock();
                        st.direct_report = true;
                        std::mem::take(&mut st.reports)
                    };
                    for r in late {
                        // The master may already be gone; either way this
                        // slave's job is over.
                        let _ = link.task_done(id, r.data, r.index, r.attempt, r.urls);
                    }
                    pipe.shut_down(false);
                    break Ok(());
                }
                Ok(Assignment::Wait) => {
                    if park.is_zero() || polled_at.elapsed() < park / 2 {
                        // Either we chose not to park (workers busy: their
                        // completions wake `poll_cv`) or the master did not
                        // honor the park (legacy poll mode): bounded local
                        // condvar wait with exponential backoff.
                        let mut st = pipe.state.lock();
                        if !st.halt && st.reports.is_empty() {
                            pipe.poll_cv.wait_for(&mut st, backoff);
                        }
                        drop(st);
                        backoff = (backoff * 2).min(opts.max_poll_interval);
                    } else {
                        // The master held the request to its deadline: the
                        // long poll itself is the pacing, re-poll at once.
                        backoff = opts.poll_interval;
                    }
                }
                Ok(Assignment::Tasks(tasks)) => {
                    backoff = opts.poll_interval;
                    let accepted_us = rec.as_ref().map(|r| r.now_us()).unwrap_or(0);
                    let mut st = pipe.state.lock();
                    for task in tasks {
                        st.in_flight += 1;
                        st.fetch_queue.push_back((task, accepted_us));
                    }
                    drop(st);
                    pipe.fetch_cv.notify_all();
                }
                Err(Error::Rpc(_)) => {
                    pipe.shut_down(true);
                    break Ok(());
                }
                Err(e) => {
                    pipe.shut_down(true);
                    break Err(e);
                }
            }
        };

        result = main_res;
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if result.is_ok() {
                        result = Err(e);
                    }
                }
                Err(_) => {
                    if result.is_ok() {
                        result = Err(Error::TaskFailed("slave worker panicked".into()));
                    }
                }
            }
        }
    });
    result
}

/// The prefetch stage: pop accepted assignments, fetch their input
/// buckets (overlapping the workers' compute), and queue them ready to
/// run. Runs on its own thread so a stalled fetch — a dead peer, a slow
/// store — never blocks the polling thread's control heartbeat. A fetch
/// failure reports standalone via `task_failed` (recovery starts
/// immediately) and frees the slot.
fn prefetch_loop(
    link: &dyn MasterLink,
    shared: Option<&Arc<dyn Store>>,
    own_authority: Option<&str>,
    frames: &Arc<FrameCache>,
    id: SlaveId,
    pipe: &Pipe,
    th: Option<&TraceHandle>,
) -> Result<()> {
    loop {
        let (task, accepted_us) = {
            let mut st = pipe.state.lock();
            loop {
                if st.halt || (st.drain && st.fetch_queue.is_empty()) {
                    return Ok(());
                }
                if let Some(t) = st.fetch_queue.pop_front() {
                    break t;
                }
                pipe.fetch_cv.wait(&mut st);
            }
        };
        // Only reduce-like tasks (plain or fused) gather map-output
        // partitions, so only they consult the eager warm cache; map
        // tasks fetching source splits must not skew the residual count.
        let eager = pipe.eager.as_ref().filter(|_| task.kind != TaskKind::Map);
        let tag = Tag::task(op_of(task.kind), task.data, task.index, task.attempt);
        if let Some(h) = th {
            h.begin(Name::Fetch, tag);
        }
        let fetched = fetch_all_bucket_bytes(&task.inputs, shared, own_authority, frames, eager);
        if let Some(h) = th {
            h.end(Name::Fetch, tag);
        }
        if pipe.halted() {
            return Ok(());
        }
        match fetched {
            Ok(raw) => {
                let mut st = pipe.state.lock();
                st.queue.push_back((task, accepted_us, raw));
                drop(st);
                pipe.cv.notify_one();
            }
            Err(TaskError { msg, failed_input, .. }) => {
                pipe.state.lock().in_flight -= 1;
                // The freed slot concerns the polling thread.
                pipe.poll_cv.notify_all();
                let r = link.task_failed(
                    id,
                    task.data,
                    task.index,
                    task.attempt,
                    &msg,
                    failed_input.as_deref(),
                );
                match r {
                    Ok(()) => {}
                    Err(Error::Rpc(_)) => {
                        pipe.shut_down(true);
                        return Ok(());
                    }
                    Err(e) => {
                        pipe.shut_down(true);
                        return Err(e);
                    }
                }
            }
        }
    }
}

/// The eager shuffle fetcher: pop announced fragment URLs and pull them
/// into the warm cache while the producing operation is still running —
/// the transfer, checksum verify, and decompress all happen off the
/// post-barrier critical path. Failures are dropped silently (and the
/// URL forgotten so a re-announcement can retry): the producer may have
/// died, or its dataset may have been reclaimed; the residual fetch at
/// task time is the correctness path, this thread only warms it up.
fn eager_fetch_loop(
    shared: Option<&Arc<dyn Store>>,
    own_authority: Option<&str>,
    frames: &Arc<FrameCache>,
    pipe: &Pipe,
    th: Option<&TraceHandle>,
) {
    let Some(eg) = &pipe.eager else { return };
    loop {
        let url = {
            let mut st = eg.state.lock();
            loop {
                if st.stop {
                    return;
                }
                if let Some(u) = st.queue.pop_front() {
                    break u;
                }
                eg.cv.wait(&mut st);
            }
        };
        match fetch_bucket_bytes_local_first(&url, shared, own_authority, Some(frames)) {
            Ok(bytes) => {
                record_eager_fragment(bytes.len());
                if let Some(h) = th {
                    // Tag with the producer coordinates when the URL names
                    // them; attempt 0 marks "whichever attempt produced it".
                    let tag = parse_bucket_coords(&url)
                        .map(|(d, i, _)| Tag::task(Op::None, d as u32, i as usize, 0))
                        .unwrap_or(Tag::NONE);
                    h.instant(Name::EagerFetch, tag);
                }
                let mut st = eg.state.lock();
                if !st.stop {
                    st.warm.insert(url, (bytes, Instant::now()));
                }
                drop(st);
                if eg.premerge {
                    premerge_warm(eg, th);
                }
            }
            Err(_) => {
                eg.state.lock().seen.remove(&url);
            }
        }
    }
}

/// Pull the (dataset, task index, partition) coordinates out of a bucket
/// URL (`…/s{slave}/d{data}/t{index}/b{p}.mrsb`). Returns `None` for
/// anything that does not look like a map-output bucket path.
fn parse_bucket_coords(url: &str) -> Option<(u64, u64, u64)> {
    let mut segs = url.rsplit('/');
    let part = segs.next()?.strip_prefix('b')?.strip_suffix(".mrsb")?.parse().ok()?;
    let index = segs.next()?.strip_prefix('t')?.parse().ok()?;
    let data = segs.next()?.strip_prefix('d')?.parse().ok()?;
    Some((data, index, part))
}

/// The background pre-merge: when enough warm fragments for one
/// (dataset, partition) are contiguous by producer task index, collapse
/// up to [`PREMERGE_FAN_IN`] of them into a single sorted run so the
/// consuming reduce merges k/8 wide instead of k wide. Runs on the
/// fetcher thread between fetches — the merge work happens while maps
/// are still executing, off the post-barrier critical path.
///
/// Only *contiguous* fragments merge, and the merged run remembers the
/// exact URLs it covers in task-index order: because the master lists
/// reduce inputs in producer task-index order and the streaming merge
/// breaks key ties by run slot, splicing the merged run into the covered
/// slots reproduces the per-fragment merge byte for byte.
fn premerge_warm(eg: &EagerHalf, th: Option<&TraceHandle>) {
    loop {
        // Pick one mergeable streak under the lock, taking its fragments
        // out of the warm cache; decode and merge outside the lock so
        // task-time consumers are never blocked behind merge work.
        let streak: Vec<(String, (Vec<u8>, Instant))> = {
            let mut st = eg.state.lock();
            if st.stop {
                return;
            }
            let Some(urls) = find_premerge_streak(&st.warm) else { return };
            urls.into_iter()
                .map(|u| {
                    let entry = st.warm.remove(&u).expect("streak urls come from the warm cache");
                    (u, entry)
                })
                .collect()
        };
        let mut runs = Vec::with_capacity(streak.len());
        let mut ok = true;
        for (_, (bytes, _)) in &streak {
            let mut run = Bucket::new();
            match read_bucket_run(bytes, &mut run) {
                Ok(info) => {
                    if !info.sorted {
                        // Same demotion the task-time path applies.
                        run.sort();
                    }
                    runs.push(run);
                }
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            // Undecodable fragment: put the streak back untouched and let
            // the task-time path surface the error against its URL.
            let mut st = eg.state.lock();
            for (u, entry) in streak {
                st.warm.insert(u, entry);
            }
            return;
        }
        let fragments = streak.len();
        let merged = write_bucket(&merge_runs(&runs));
        drop(runs);
        let mut st = eg.state.lock();
        if st.stop {
            return;
        }
        record_premerge(fragments);
        if let Some(h) = th {
            h.instant(Name::Premerge, Tag::NONE);
        }
        let urls: Vec<String> = streak.into_iter().map(|(u, _)| u).collect();
        let key = urls[0].clone();
        st.premerged.insert(key, PremergedRun { bytes: merged, urls, ready_at: Instant::now() });
    }
}

/// Find one streak of at least [`PREMERGE_MIN`] warm fragments sharing a
/// (dataset, partition) whose producer task indices are consecutive,
/// returning up to [`PREMERGE_FAN_IN`] URLs in task-index order.
fn find_premerge_streak(warm: &HashMap<String, (Vec<u8>, Instant)>) -> Option<Vec<String>> {
    let mut groups: HashMap<(u64, u64), Vec<(u64, &String)>> = HashMap::new();
    for url in warm.keys() {
        if let Some((data, index, part)) = parse_bucket_coords(url) {
            groups.entry((data, part)).or_default().push((index, url));
        }
    }
    for mut members in groups.into_values() {
        members.sort_unstable_by_key(|&(i, _)| i);
        // Two attempts of one task can both sit warm under different
        // URLs; keep one — if it turns out to be the superseded attempt,
        // the exact-URL match at consumption drops the merged run and
        // the task falls back to cold fetches.
        members.dedup_by_key(|&mut (i, _)| i);
        let mut start = 0;
        for i in 1..=members.len() {
            if i == members.len() || members[i].0 != members[i - 1].0 + 1 {
                if i - start >= PREMERGE_MIN {
                    return Some(
                        members[start..i]
                            .iter()
                            .take(PREMERGE_FAN_IN)
                            .map(|&(_, u)| u.clone())
                            .collect(),
                    );
                }
                start = i;
            }
        }
    }
    None
}

/// One compute worker: pop prefetched tasks, execute, report. With
/// `piggyback`, successful completions are queued on the pipe for the
/// polling thread to deliver inside its next `get_tasks` call (one fewer
/// control RPC per task); failures always report standalone so recovery
/// starts immediately.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    link: &dyn MasterLink,
    program: &dyn Program,
    plane: &DataPlane,
    frames: &Arc<FrameCache>,
    server: Option<&DataServer>,
    id: SlaveId,
    pipe: &Pipe,
    piggyback: bool,
    compress: CompressMode,
    merge: MergeMode,
    delays: &[(u32, usize, u64)],
    th: Option<&TraceHandle>,
) -> Result<()> {
    // Per-worker scratch arena, reused across map tasks.
    let mut scratch = Bucket::new();
    loop {
        // Pop a task and register its cancellation flag in one lock
        // section, so a cancel order lands either on the queue entry, the
        // tombstone set, or the registered flag — never in a gap between.
        let (task, accepted_us, raw, cancel) = {
            let mut st = pipe.state.lock();
            loop {
                if st.halt {
                    return Ok(());
                }
                if let Some((task, accepted_us, raw)) = st.queue.pop_front() {
                    let key = (task.data, task.index, task.attempt);
                    if st.tombstones.remove(&key) {
                        // Cancelled before it ever ran: free the slot,
                        // never execute, never report. The attempt still
                        // gets its accepted→cancelled span so the
                        // timeline shows an orderly outcome, not a
                        // dangling acceptance.
                        st.in_flight -= 1;
                        pipe.poll_cv.notify_all();
                        if let Some(h) = th {
                            let tag =
                                Tag::task(op_of(task.kind), task.data, task.index, task.attempt);
                            h.begin_at(accepted_us, Name::Attempt, tag);
                            h.instant(Name::Cancel, tag);
                            h.end(Name::Attempt, tag);
                        }
                        continue;
                    }
                    let flag = Arc::new(AtomicBool::new(false));
                    st.active.insert(key, Arc::clone(&flag));
                    break (task, accepted_us, raw, flag);
                }
                if st.drain {
                    return Ok(());
                }
                pipe.cv.wait(&mut st);
            }
        };
        // The attempt span reaches back to when the assignment arrived:
        // queue wait and prefetch both belong to the attempt's lifetime
        // (the handle clamps it monotone against this lane's last event).
        let tag = Tag::task(op_of(task.kind), task.data, task.index, task.attempt);
        if let Some(h) = th {
            h.begin_at(accepted_us, Name::Attempt, tag);
        }
        // Straggler injection (test-only): only the task's first attempt
        // is delayed, so a speculative backup runs clean. The sleep is
        // sliced to observe the cancellation flag promptly.
        if task.attempt <= 1 {
            if let Some(&(_, _, ms)) =
                delays.iter().find(|&&(d, i, _)| d == task.data && i == task.index)
            {
                let deadline = Instant::now() + Duration::from_millis(ms);
                while Instant::now() < deadline && !cancel.load(Ordering::Relaxed) && !pipe.halted()
                {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        let outcome = if cancel.load(Ordering::Relaxed) {
            Err(TaskError {
                msg: Error::Cancelled.to_string(),
                failed_input: None,
                cancelled: true,
            })
        } else {
            process_task(
                &task,
                &raw,
                program,
                plane,
                frames,
                server,
                id,
                &mut scratch,
                compress,
                merge,
                Some(&cancel),
                th,
            )
        };
        pipe.state.lock().active.remove(&(task.data, task.index, task.attempt));
        if pipe.halted() {
            // Crash semantics: a halted slave goes silent, never reports.
            return Ok(());
        }
        // Close the attempt span (and mark a cancellation) *before* the
        // report is queued or sent: the poll that carries the report to
        // the master drains the recorder after taking reports, so the
        // span's end is guaranteed to travel with (or ahead of) it.
        if let Some(h) = th {
            if matches!(&outcome, Err(TaskError { cancelled: true, .. })) {
                h.instant(Name::Cancel, tag);
            }
            h.end(Name::Attempt, tag);
        }
        let report = match outcome {
            Ok(urls) => {
                let mut st = pipe.state.lock();
                st.in_flight -= 1;
                if piggyback && !st.direct_report {
                    st.reports.push(TaskReport {
                        data: task.data,
                        index: task.index,
                        attempt: task.attempt,
                        urls,
                    });
                    drop(st);
                    // The freed slot and the queued report both concern the
                    // polling thread.
                    pipe.poll_cv.notify_all();
                    Ok(())
                } else {
                    drop(st);
                    let r = link.task_done(id, task.data, task.index, task.attempt, urls);
                    pipe.poll_cv.notify_all();
                    r
                }
            }
            Err(TaskError { cancelled: true, .. }) => {
                // Cooperative cancellation: another attempt already won at
                // the master's commit point. Abandon silently — the slot
                // frees, the partial output is never stored or announced.
                pipe.state.lock().in_flight -= 1;
                pipe.poll_cv.notify_all();
                continue;
            }
            Err(TaskError { msg, failed_input, .. }) => {
                pipe.state.lock().in_flight -= 1;
                let r = link.task_failed(
                    id,
                    task.data,
                    task.index,
                    task.attempt,
                    &msg,
                    failed_input.as_deref(),
                );
                pipe.poll_cv.notify_all();
                r
            }
        };
        match report {
            Ok(()) => {}
            Err(Error::Rpc(_)) => {
                pipe.shut_down(true);
                return Ok(());
            }
            Err(e) => {
                pipe.shut_down(true);
                return Err(e);
            }
        }
    }
}

/// Why a task attempt failed: fetch failures carry the offending URL so
/// the master can re-execute the producer (Hadoop's fetch-failure rule).
pub struct TaskError {
    /// Human-readable cause.
    pub msg: String,
    /// The input URL that could not be fetched, if applicable.
    pub failed_input: Option<String>,
    /// The attempt was cancelled cooperatively (it lost a speculation
    /// race): abandon silently, never report.
    pub cancelled: bool,
}

/// How many input buckets a slave fetches concurrently. A reduce task
/// reads one bucket per map task; fetching them serially serializes
/// round-trips to every peer, so this is the main shuffle latency lever.
const FETCH_PARALLELISM: usize = 8;

/// Fetch the raw bytes of every input URL, in order. With `eager`, slots
/// are seeded from the shuffle fetcher's warm cache first and only the
/// residue — fragments the fetcher missed — is fetched cold. Cold fetches
/// run on up to [`FETCH_PARALLELISM`] worker threads; results land in
/// their input slot either way, so downstream parsing sees inputs in
/// assignment order (the determinism oracle depends on it).
fn fetch_all_bucket_bytes(
    urls: &[String],
    shared: Option<&Arc<dyn Store>>,
    own_authority: Option<&str>,
    frames: &FrameCache,
    eager: Option<&EagerHalf>,
) -> std::result::Result<Vec<Vec<u8>>, TaskError> {
    let fetch =
        |url: &str| fetch_bucket_bytes_local_first(url, shared, own_authority, Some(frames));
    let mut slots: Vec<Option<Vec<u8>>> = (0..urls.len()).map(|_| None).collect();
    let mut residue: Vec<usize> = Vec::new();
    if let Some(eg) = eager {
        let now = Instant::now();
        let mut st = eg.state.lock();
        let mut i = 0;
        while i < urls.len() {
            // A background-merged run covers several input slots at once
            // — but only when its covered URLs appear verbatim and
            // contiguously here (re-execution renames a producer's URL,
            // so a stale merged run simply never matches and is dropped).
            if let Some(run) = st.premerged.get(&urls[i]) {
                let n = run.urls.len();
                if urls[i..].len() >= n && urls[i..i + n] == run.urls[..] {
                    let run = st.premerged.remove(&urls[i]).expect("entry just found");
                    record_overlap(now.saturating_duration_since(run.ready_at));
                    slots[i] = Some(run.bytes);
                    // Covered slots carry an empty marker: downstream
                    // parsing skips them, the merged run stands in.
                    for slot in slots.iter_mut().skip(i + 1).take(n - 1) {
                        *slot = Some(Vec::new());
                    }
                    i += n;
                    continue;
                }
                st.premerged.remove(&urls[i]);
            }
            match st.warm.remove(&urls[i]) {
                Some((bytes, ready_at)) => {
                    // How long the fragment sat ready is transfer latency
                    // that ran concurrently with map execution.
                    record_overlap(now.saturating_duration_since(ready_at));
                    slots[i] = Some(bytes);
                }
                None => residue.push(i),
            }
            i += 1;
        }
        // The residue is about to be fetched right here; drop any of it
        // still queued for the background fetcher so the duplicate fetch
        // doesn't compete with the barrier-time critical path. (Entries
        // stay in `seen`: the bytes are being fetched either way.)
        if !residue.is_empty() {
            let residual: HashSet<&String> = residue.iter().map(|&i| &urls[i]).collect();
            st.queue.retain(|u| !residual.contains(u));
        }
        drop(st);
        for _ in &residue {
            record_residual_fetch();
        }
    } else {
        residue = (0..urls.len()).collect();
    }
    if residue.len() <= 1 {
        // Nothing to overlap; skip the thread machinery.
        for &i in &residue {
            let b = fetch(&urls[i]).map_err(|e| TaskError {
                msg: e.to_string(),
                failed_input: Some(urls[i].clone()),
                cancelled: false,
            })?;
            slots[i] = Some(b);
        }
    } else {
        type FetchSlot = Mutex<Option<std::result::Result<Vec<u8>, String>>>;
        let results: Vec<FetchSlot> = residue.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..FETCH_PARALLELISM.min(residue.len()) {
                s.spawn(|| loop {
                    let r = next.fetch_add(1, Ordering::Relaxed);
                    if r >= residue.len() {
                        break;
                    }
                    let res = fetch(&urls[residue[r]]).map_err(|e| e.to_string());
                    *results[r].lock() = Some(res);
                });
            }
        });
        for (r, slot) in results.into_iter().enumerate() {
            let i = residue[r];
            let res = slot.into_inner().expect("fetch worker filled every slot");
            let b = res.map_err(|msg| TaskError {
                msg,
                failed_input: Some(urls[i].clone()),
                cancelled: false,
            })?;
            slots[i] = Some(b);
        }
    }
    Ok(slots.into_iter().map(|b| b.expect("every slot seeded or fetched")).collect())
}

/// The trace op tag for a task kind.
fn op_of(kind: TaskKind) -> Op {
    match kind {
        TaskKind::Map => Op::Map,
        TaskKind::Reduce => Op::Reduce,
        TaskKind::ReduceMap => Op::ReduceMap,
    }
}

/// Execute one task whose input bytes are already fetched (slot-ordered,
/// one entry per input URL), store its outputs, and return their URLs.
/// With a trace handle, the merge/exec/emit phases record as spans nested
/// inside the caller's attempt span.
#[allow(clippy::too_many_arguments)]
fn process_task(
    task: &TaskMsg,
    raw: &[Vec<u8>],
    program: &dyn Program,
    plane: &DataPlane,
    frames: &Arc<FrameCache>,
    server: Option<&DataServer>,
    slave: SlaveId,
    scratch: &mut Bucket,
    compress: CompressMode,
    merge: MergeMode,
    cancel: Option<&AtomicBool>,
    th: Option<&TraceHandle>,
) -> std::result::Result<Vec<String>, TaskError> {
    let tag = Tag::task(op_of(task.kind), task.data, task.index, task.attempt);
    let span_begin = |name: Name| {
        if let Some(h) = th {
            h.begin(name, tag);
        }
    };
    let span_end = |name: Name| {
        if let Some(h) = th {
            h.end(name, tag);
        }
    };
    let parse_err = |url: &String, e: mrs_core::Error| TaskError {
        msg: e.to_string(),
        failed_input: Some(url.clone()),
        cancelled: false,
    };
    let run_err = |e: mrs_core::Error| TaskError {
        cancelled: matches!(e, mrs_core::Error::Cancelled),
        msg: e.to_string(),
        failed_input: None,
    };

    // Gather a reduce-like task's input per the merge mode: as separate
    // merge runs (Merge) or one concatenated arena (Sort, the oracle).
    // Empty slots are pre-merge placeholders — their records live in the
    // merged run occupying the slot of the first URL they covered.
    let gather_runs = || -> std::result::Result<Vec<Bucket>, TaskError> {
        span_begin(Name::Merge);
        let t0 = Instant::now();
        let mut runs = Vec::with_capacity(raw.len());
        let mut presorted = 0usize;
        let mut records = 0usize;
        for (url, bytes) in task.inputs.iter().zip(raw) {
            if bytes.is_empty() {
                continue;
            }
            let mut run = Bucket::new();
            let info = read_bucket_run(bytes, &mut run).map_err(|e| parse_err(url, e))?;
            if info.sorted {
                presorted += 1;
            } else {
                // Legacy/unflagged producer: sort on arrival, then merge
                // as usual — the demotion keeps the fallback correct.
                run.sort();
            }
            records += run.len();
            runs.push(run);
        }
        record_merge_input(runs.len(), presorted, records, t0.elapsed());
        span_end(Name::Merge);
        Ok(runs)
    };
    let gather_concat = || -> std::result::Result<Bucket, TaskError> {
        span_begin(Name::Merge);
        let mut input = Bucket::new();
        for (url, bytes) in task.inputs.iter().zip(raw) {
            if bytes.is_empty() {
                continue;
            }
            read_bucket_into(bytes, &mut input).map_err(|e| parse_err(url, e))?;
        }
        span_end(Name::Merge);
        Ok(input)
    };

    // Execute and serialize output buckets. All paths decode straight
    // into an arena — no per-record `Vec<u8>` allocations; the map path
    // additionally reuses the worker's scratch arena across tasks.
    // Every output rides with its sortedness so the wire frame can carry
    // the sorted-run flag (the kernels sort map-side, so in practice
    // every bucket qualifies).
    let buckets: Vec<(Vec<u8>, bool)> = match task.kind {
        TaskKind::Map => {
            scratch.clear();
            for (url, bytes) in task.inputs.iter().zip(raw) {
                read_bucket_into(bytes, scratch).map_err(|e| parse_err(url, e))?;
            }
            span_begin(Name::Exec);
            let out = run_map_task_bucket_cancellable(
                program,
                task.func,
                scratch,
                task.parts,
                task.combine,
                cancel,
            )
            .map_err(run_err);
            span_end(Name::Exec);
            out?.iter().map(|b| (write_bucket(b), b.is_sorted())).collect()
        }
        TaskKind::Reduce => {
            let out = match merge {
                MergeMode::Merge => {
                    let runs = gather_runs()?;
                    span_begin(Name::Exec);
                    let out = run_reduce_task_merge_cancellable(program, task.func, &runs, cancel)
                        .map_err(run_err);
                    span_end(Name::Exec);
                    out?
                }
                // Reduce consumes its input arena (sorted in place), so
                // it cannot reuse the scratch buffer.
                MergeMode::Sort => {
                    let input = gather_concat()?;
                    span_begin(Name::Exec);
                    let out = run_reduce_task_cancellable(program, task.func, input, cancel)
                        .map_err(run_err);
                    span_end(Name::Exec);
                    out?
                }
            };
            let sorted = out.is_sorted();
            vec![(write_bucket(&out), sorted)]
        }
        TaskKind::ReduceMap => {
            // Fused reduce+map: gather one partition like a reduce, then
            // feed each reduced record straight into the next map — one
            // task where the unfused plan schedules and shuffles two.
            let out = match merge {
                MergeMode::Merge => {
                    let runs = gather_runs()?;
                    span_begin(Name::Exec);
                    let out = run_reduce_map_task_merge_cancellable(
                        program,
                        task.func,
                        task.map_func,
                        &runs,
                        task.parts,
                        task.combine,
                        cancel,
                    )
                    .map_err(run_err);
                    span_end(Name::Exec);
                    out?
                }
                MergeMode::Sort => {
                    let input = gather_concat()?;
                    span_begin(Name::Exec);
                    let out = run_reduce_map_task_cancellable(
                        program,
                        task.func,
                        task.map_func,
                        input,
                        task.parts,
                        task.combine,
                        cancel,
                    )
                    .map_err(run_err);
                    span_end(Name::Exec);
                    out?
                }
            };
            out.iter().map(|b| (write_bucket(b), b.is_sorted())).collect()
        }
    };

    // Encode for the wire (compress + checksum per policy), then store
    // and name the outputs. Encoding happens exactly once per bucket,
    // here; every reader — remote peer, colocated short-circuit, shared
    // store — gets the same encoded bytes.
    span_begin(Name::Emit);
    let mut urls = Vec::with_capacity(buckets.len());
    for (p, (bytes, sorted)) in buckets.into_iter().enumerate() {
        let path = format!("s{slave}/d{}/t{}/b{p}.mrsb", task.data, task.index);
        let wire = mrs_codec::encode_vec_sorted(bytes, compress, sorted);
        match plane {
            DataPlane::Direct => {
                frames.insert(&path, wire);
                urls.push(server.expect("direct plane has a server").url_for(&path));
            }
            DataPlane::SharedFs(store) => {
                store.put(&path, &wire).map_err(run_err)?;
                urls.push(format!("file://{path}"));
            }
        }
    }
    span_end(Name::Emit);
    Ok(urls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobApi;
    use crate::master::{Master, MasterConfig};
    use mrs_core::kv::encode_record;
    use mrs_core::{Datum, MapReduce, Simple};
    use mrs_fs::MemFs;

    struct WordCount;

    impl MapReduce for WordCount {
        type K1 = u64;
        type V1 = String;
        type K2 = String;
        type V2 = u64;

        fn map(&self, _k: u64, v: String, emit: &mut dyn FnMut(String, u64)) {
            for w in v.split_whitespace() {
                emit(w.to_owned(), 1);
            }
        }

        fn reduce(
            &self,
            _k: &String,
            vs: &mut dyn Iterator<Item = u64>,
            emit: &mut dyn FnMut(u64),
        ) {
            emit(vs.sum());
        }
    }

    fn input() -> Vec<mrs_core::Record> {
        ["a b a", "b c"]
            .iter()
            .enumerate()
            .map(|(i, l)| encode_record(&(i as u64), &l.to_string()))
            .collect()
    }

    /// Drive a full job with in-process slaves over the direct data plane:
    /// real HTTP data servers, no RPC layer.
    #[test]
    fn slave_loop_executes_job_direct_plane() {
        let master = Master::new(MasterConfig::default(), DataPlane::Direct).unwrap();
        let program: Arc<dyn Program> = Arc::new(Simple(WordCount));
        let stop = Arc::new(AtomicBool::new(false));
        let slaves: Vec<_> = (0..2)
            .map(|_| {
                let m = master.clone();
                let p = Arc::clone(&program);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    run_slave(&m, p, DataPlane::Direct, &SlaveOptions::default(), &stop)
                })
            })
            .collect();

        let mut driver = master.clone();
        let src = driver.local_data(input(), 2).unwrap();
        let mapped = driver.map_data(src, 0, 2, false).unwrap();
        let reduced = driver.reduce_data(mapped, 0).unwrap();
        let out = driver.fetch_all(reduced).unwrap();
        let mut counts: Vec<(String, u64)> = out
            .iter()
            .map(|(k, v)| (String::from_bytes(k).unwrap(), u64::from_bytes(v).unwrap()))
            .collect();
        counts.sort();
        assert_eq!(counts, vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)]);

        master.finish();
        for s in slaves {
            s.join().unwrap().unwrap();
        }
    }

    #[test]
    fn slave_loop_executes_job_shared_fs() {
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let plane = DataPlane::SharedFs(Arc::clone(&store));
        let master = Master::new(MasterConfig::default(), plane.clone()).unwrap();
        let program: Arc<dyn Program> = Arc::new(Simple(WordCount));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let m = master.clone();
            let p = Arc::clone(&program);
            let plane = plane.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_slave(&m, p, plane, &SlaveOptions::default(), &stop))
        };

        let mut driver = master.clone();
        let src = driver.local_data(input(), 1).unwrap();
        let mapped = driver.map_data(src, 0, 3, false).unwrap();
        let reduced = driver.reduce_data(mapped, 0).unwrap();
        let out = driver.fetch_all(reduced).unwrap();
        assert_eq!(out.len(), 3);

        master.finish();
        handle.join().unwrap().unwrap();
    }

    /// A multi-slot slave alone must still produce correct output (the
    /// worker pool and prefetch stage preserve task semantics).
    #[test]
    fn multislot_slave_executes_job() {
        let master = Master::new(MasterConfig::default(), DataPlane::Direct).unwrap();
        let program: Arc<dyn Program> = Arc::new(Simple(WordCount));
        let stop = Arc::new(AtomicBool::new(false));
        let opts = SlaveOptions { slots: 4, ..SlaveOptions::default() };
        let handle = {
            let m = master.clone();
            let p = Arc::clone(&program);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_slave(&m, p, DataPlane::Direct, &opts, &stop))
        };

        let mut driver = master.clone();
        let src = driver.local_data(input(), 2).unwrap();
        let mapped = driver.map_data(src, 0, 4, false).unwrap();
        let reduced = driver.reduce_data(mapped, 0).unwrap();
        let out = driver.fetch_all(reduced).unwrap();
        let mut counts: Vec<(String, u64)> = out
            .iter()
            .map(|(k, v)| (String::from_bytes(k).unwrap(), u64::from_bytes(v).unwrap()))
            .collect();
        counts.sort();
        assert_eq!(counts, vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)]);

        master.finish();
        handle.join().unwrap().unwrap();
    }

    /// The sort oracle (`--mrs-merge=sort`) must produce the same answer
    /// as the default merge path the other tests exercise.
    #[test]
    fn sort_mode_slave_matches_merge_mode() {
        let master = Master::new(MasterConfig::default(), DataPlane::Direct).unwrap();
        let program: Arc<dyn Program> = Arc::new(Simple(WordCount));
        let stop = Arc::new(AtomicBool::new(false));
        let opts = SlaveOptions { merge: MergeMode::Sort, ..SlaveOptions::default() };
        let handle = {
            let m = master.clone();
            let p = Arc::clone(&program);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_slave(&m, p, DataPlane::Direct, &opts, &stop))
        };

        let mut driver = master.clone();
        let src = driver.local_data(input(), 2).unwrap();
        let mapped = driver.map_data(src, 0, 2, false).unwrap();
        let reduced = driver.reduce_data(mapped, 0).unwrap();
        let out = driver.fetch_all(reduced).unwrap();
        let mut counts: Vec<(String, u64)> = out
            .iter()
            .map(|(k, v)| (String::from_bytes(k).unwrap(), u64::from_bytes(v).unwrap()))
            .collect();
        counts.sort();
        assert_eq!(counts, vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)]);

        master.finish();
        handle.join().unwrap().unwrap();
    }

    fn frag_url(index: usize) -> String {
        format!("file://s0/d1/t{index}/b0.mrsb")
    }

    fn warm_fragment(eg: &EagerHalf, index: usize) {
        let recs = vec![(format!("k{index}").into_bytes(), vec![index as u8])];
        let bytes = mrs_fs::format::write_bucket_bytes(&recs);
        eg.state.lock().warm.insert(frag_url(index), (bytes, Instant::now()));
    }

    /// Contiguous warm fragments collapse into one merged run, and a task
    /// whose input list matches consumes it across the covered slots.
    #[test]
    fn premerge_collapses_and_task_consumes_merged_run() {
        let pipe = Pipe::new(true, true);
        let eg = pipe.eager.as_ref().unwrap();
        for i in 0..5 {
            warm_fragment(eg, i);
        }
        premerge_warm(eg, None);
        {
            let st = eg.state.lock();
            assert_eq!(st.premerged.len(), 1, "one merged run covering the streak");
            let run = st.premerged.get(&frag_url(0)).expect("keyed by first covered url");
            assert_eq!(run.urls, (0..5).map(frag_url).collect::<Vec<_>>());
            assert!(st.warm.is_empty(), "merged fragments leave the warm cache");
        }

        let urls: Vec<String> = (0..5).map(frag_url).collect();
        let frames = Arc::new(FrameCache::new());
        let got = fetch_all_bucket_bytes(&urls, None, None, &frames, Some(eg))
            .map_err(|e| e.msg)
            .unwrap();
        assert!(!got[0].is_empty(), "merged run lands in the first covered slot");
        assert!(got[1..].iter().all(Vec::is_empty), "covered slots carry the empty marker");
        let mut merged = Bucket::new();
        read_bucket_into(&got[0], &mut merged).unwrap();
        assert_eq!(merged.len(), 5);
        assert!(merged.is_sorted());
        assert!(eg.state.lock().premerged.is_empty());
    }

    /// Below the minimum streak, or with a gap in the task indices, the
    /// pre-merge leaves fragments alone.
    #[test]
    fn premerge_requires_contiguous_minimum() {
        let pipe = Pipe::new(true, true);
        let eg = pipe.eager.as_ref().unwrap();
        // Indices 0,1,2 then 4,5: no streak of PREMERGE_MIN.
        for i in [0usize, 1, 2, 4, 5] {
            warm_fragment(eg, i);
        }
        premerge_warm(eg, None);
        let st = eg.state.lock();
        assert!(st.premerged.is_empty());
        assert_eq!(st.warm.len(), 5);
    }

    /// A merged run whose covered URLs no longer match the task's input
    /// list (a producer was re-executed elsewhere) is dropped whole; the
    /// task falls back to per-fragment fetches.
    #[test]
    fn premerge_mismatch_drops_merged_run() {
        let pipe = Pipe::new(true, true);
        let eg = pipe.eager.as_ref().unwrap();
        for i in 0..4 {
            warm_fragment(eg, i);
        }
        premerge_warm(eg, None);
        assert_eq!(eg.state.lock().premerged.len(), 1);

        // The task's input list names a different URL for t2 (the
        // producer re-ran on slave 9): the merged run must not be used.
        let mut urls: Vec<String> = (0..4).map(frag_url).collect();
        urls[2] = "file://s9/d1/t2/b0.mrsb".into();
        let frames = Arc::new(FrameCache::new());
        let res = fetch_all_bucket_bytes(&urls, None, None, &frames, Some(eg));
        // No store to serve the cold fallback in this test: the fetch
        // fails, but the merged run must already be gone.
        assert!(res.is_err());
        assert!(eg.state.lock().premerged.is_empty(), "stale merged run dropped whole");
    }

    #[test]
    fn bucket_coords_parse_from_urls() {
        assert_eq!(
            parse_bucket_coords("http://127.0.0.1:8000/data/s3/d7/t12/b2.mrsb"),
            Some((7, 12, 2))
        );
        assert_eq!(parse_bucket_coords("file://s0/d1/t0/b0.mrsb"), Some((1, 0, 0)));
        assert_eq!(parse_bucket_coords("file://s0/d1/t0/split0"), None);
    }

    #[test]
    fn stopped_slave_goes_silent_and_peer_takes_over() {
        let cfg =
            MasterConfig { slave_timeout: Duration::from_millis(100), ..MasterConfig::default() };
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let plane = DataPlane::SharedFs(Arc::clone(&store));
        let master = Master::new(cfg, plane.clone()).unwrap();
        let program: Arc<dyn Program> = Arc::new(Simple(WordCount));

        // Slave 1 signs in then is stopped immediately (goes silent).
        let stop1 = Arc::new(AtomicBool::new(false));
        let h1 = {
            let m = master.clone();
            let p = Arc::clone(&program);
            let plane = plane.clone();
            let stop = Arc::clone(&stop1);
            std::thread::spawn(move || run_slave(&m, p, plane, &SlaveOptions::default(), &stop))
        };
        std::thread::sleep(Duration::from_millis(20));
        stop1.store(true, Ordering::SeqCst);
        let _ = h1.join().unwrap();

        // Slave 2 arrives and completes the job; the master's wait() path
        // sweeps the dead slave.
        let stop2 = Arc::new(AtomicBool::new(false));
        let h2 = {
            let m = master.clone();
            let p = Arc::clone(&program);
            let plane = plane.clone();
            let stop = Arc::clone(&stop2);
            std::thread::spawn(move || run_slave(&m, p, plane, &SlaveOptions::default(), &stop))
        };

        let mut driver = master.clone();
        let src = driver.local_data(input(), 2).unwrap();
        let mapped = driver.map_data(src, 0, 2, false).unwrap();
        let reduced = driver.reduce_data(mapped, 0).unwrap();
        let out = driver.fetch_all(reduced).unwrap();
        assert_eq!(out.len(), 3);

        master.finish();
        h2.join().unwrap().unwrap();
    }
}
