//! Job metrics: the observability hooks the benchmark harness reads.

use std::time::Duration;

/// Counters accumulated over one job.
#[derive(Debug, Default, Clone)]
pub struct JobMetrics {
    map_ops: u64,
    reduce_ops: u64,
    map_time: Duration,
    reduce_time: Duration,
    shuffle_bytes: u64,
    tasks_executed: u64,
    tasks_retried: u64,
    affinity_hits: u64,
    affinity_misses: u64,
    connections_opened: u64,
    connections_reused: u64,
    tasks_stolen: u64,
    peak_in_flight: u64,
    dispatch_polls: u64,
    dispatched_tasks: u64,
    longpoll_parks: u64,
    longpoll_timeouts: u64,
    piggybacked_reports: u64,
    wakeups: u64,
    bytes_pre_compress: u64,
    bytes_on_wire: u64,
    shortcircuit_fetches: u64,
    checksum_retries: u64,
    eager_fragments: u64,
    eager_bytes: u64,
    residual_fetches: u64,
    overlap_micros: u64,
    fused_ops: u64,
    reducemap_tasks: u64,
    datasets_freed: u64,
    live_datasets: u64,
    peak_live_datasets: u64,
    speculative_launches: u64,
    speculative_wins: u64,
    speculative_losses: u64,
    cancelled_tasks: u64,
    straggler_micros_saved: u64,
    merge_runs: u64,
    presorted_runs: u64,
    premerged_runs: u64,
    merge_micros: u64,
    peak_reduce_records: u64,
}

impl JobMetrics {
    /// Record a completed map operation.
    pub fn record_map(&mut self, elapsed: Duration, shuffle_bytes: usize) {
        self.map_ops += 1;
        self.map_time += elapsed;
        self.shuffle_bytes += shuffle_bytes as u64;
    }

    /// Record a completed reduce operation.
    pub fn record_reduce(&mut self, elapsed: Duration) {
        self.reduce_ops += 1;
        self.reduce_time += elapsed;
    }

    /// Record one executed task (any kind).
    pub fn record_task(&mut self) {
        self.tasks_executed += 1;
    }

    /// Record a task retry (failure recovery).
    pub fn record_retry(&mut self) {
        self.tasks_retried += 1;
    }

    /// Record whether a task landed on its affinity-preferred slave.
    pub fn record_affinity(&mut self, hit: bool) {
        if hit {
            self.affinity_hits += 1;
        } else {
            self.affinity_misses += 1;
        }
    }

    /// Record an occupancy-driven steal: a task with a live affinity owner
    /// was handed to a less-loaded slave instead.
    pub fn record_steal(&mut self) {
        self.tasks_stolen += 1;
    }

    /// Record one `get_task` poll that dispatched `batch` assignments,
    /// and the cluster-wide running-task count after the dispatch (the
    /// occupancy gauge the scaling bench reads).
    pub fn record_dispatch(&mut self, batch: usize, in_flight_total: usize) {
        self.dispatch_polls += 1;
        self.dispatched_tasks += batch as u64;
        self.peak_in_flight = self.peak_in_flight.max(in_flight_total as u64);
    }

    /// Record a `get_task` request that found nothing runnable and parked
    /// server-side on the dispatch condvar (counted once per request).
    pub fn record_longpoll_park(&mut self) {
        self.longpoll_parks += 1;
    }

    /// Record a parked request whose long-poll deadline expired with still
    /// nothing runnable (it returned `Wait`, the fallback path).
    pub fn record_longpoll_timeout(&mut self) {
        self.longpoll_timeouts += 1;
    }

    /// Record `n` task-completion reports that rode on a `get_task` call
    /// instead of costing their own `task_done` RPCs.
    pub fn record_piggybacked_reports(&mut self, n: usize) {
        self.piggybacked_reports += n as u64;
    }

    /// Record one precise wake of the parked-dispatch registry (a state
    /// transition made work runnable while at least one request was parked).
    pub fn record_wakeup(&mut self) {
        self.wakeups += 1;
    }

    /// Completed map operations.
    pub fn map_ops(&self) -> u64 {
        self.map_ops
    }

    /// Completed reduce operations.
    pub fn reduce_ops(&self) -> u64 {
        self.reduce_ops
    }

    /// Total bytes of map output destined for the shuffle.
    pub fn shuffle_bytes(&self) -> u64 {
        self.shuffle_bytes
    }

    /// Total tasks executed.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks_executed
    }

    /// Tasks re-queued after failure.
    pub fn tasks_retried(&self) -> u64 {
        self.tasks_retried
    }

    /// Tasks that ran on their affinity-preferred slave.
    pub fn affinity_hits(&self) -> u64 {
        self.affinity_hits
    }

    /// Tasks that ran elsewhere than their preferred slave.
    pub fn affinity_misses(&self) -> u64 {
        self.affinity_misses
    }

    /// Cumulative map wall time.
    pub fn map_time(&self) -> Duration {
        self.map_time
    }

    /// Cumulative reduce wall time.
    pub fn reduce_time(&self) -> Duration {
        self.reduce_time
    }

    /// Record HTTP connection-pool activity attributed to this job
    /// (deltas of [`mrs_rpc::HttpClient::pool_stats`] over the job's
    /// lifetime).
    pub fn record_connections(&mut self, opened: u64, reused: u64) {
        self.connections_opened += opened;
        self.connections_reused += reused;
    }

    /// TCP connections dialled for this job's RPC and bucket traffic.
    /// With keep-alive this is O(peers), not O(requests).
    pub fn connections_opened(&self) -> u64 {
        self.connections_opened
    }

    /// Requests served over an already-open pooled connection.
    pub fn connections_reused(&self) -> u64 {
        self.connections_reused
    }

    /// Tasks stolen from a live-but-busier affinity owner.
    pub fn tasks_stolen(&self) -> u64 {
        self.tasks_stolen
    }

    /// Highest number of tasks simultaneously running across all slaves.
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight
    }

    /// `get_task` polls that dispatched at least one assignment.
    pub fn dispatch_polls(&self) -> u64 {
        self.dispatch_polls
    }

    /// Total assignments handed out across all dispatching polls; divided
    /// by [`Self::dispatch_polls`] this is the mean batch size — near 1.0
    /// for single-slot slaves, higher when capacity batching engages.
    pub fn dispatched_tasks(&self) -> u64 {
        self.dispatched_tasks
    }

    /// `get_task` requests that parked server-side (event-driven mode).
    pub fn longpoll_parks(&self) -> u64 {
        self.longpoll_parks
    }

    /// Parked requests that expired into a `Wait` (the timeout fallback;
    /// near zero when wakes are precise and work is flowing).
    pub fn longpoll_timeouts(&self) -> u64 {
        self.longpoll_timeouts
    }

    /// Completion reports delivered inside `get_task` calls rather than as
    /// standalone `task_done` RPCs — each one is a control round trip saved.
    pub fn piggybacked_reports(&self) -> u64 {
        self.piggybacked_reports
    }

    /// Times a state transition woke at least one parked dispatch request.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Record data-plane activity attributed to this job (deltas of
    /// [`crate::dataplane::snapshot`] over the job's lifetime).
    pub fn record_dataplane(&mut self, stats: crate::dataplane::DataPlaneStats) {
        self.bytes_pre_compress += stats.bytes_pre_compress;
        self.bytes_on_wire += stats.bytes_on_wire;
        self.shortcircuit_fetches += stats.shortcircuit_fetches;
        self.checksum_retries += stats.checksum_retries;
        self.eager_fragments += stats.eager_fragments;
        self.eager_bytes += stats.eager_bytes;
        self.residual_fetches += stats.residual_fetches;
        self.overlap_micros += stats.overlap_micros;
        self.merge_runs += stats.merge_runs;
        self.presorted_runs += stats.presorted_runs;
        self.premerged_runs += stats.premerged_runs;
        self.merge_micros += stats.merge_micros;
        self.peak_reduce_records = self.peak_reduce_records.max(stats.peak_reduce_records);
    }

    /// Decoded (post-decompress) size of every bucket fetched over HTTP.
    pub fn bytes_pre_compress(&self) -> u64 {
        self.bytes_pre_compress
    }

    /// Actual HTTP body bytes moved for those fetches; with compression on
    /// and compressible data this is well below [`Self::bytes_pre_compress`].
    pub fn bytes_on_wire(&self) -> u64 {
        self.bytes_on_wire
    }

    /// Colocated fetches served from the producer's own frame cache (or
    /// handed over in memory by the mock-parallel runtime) without touching
    /// the HTTP loopback.
    pub fn shortcircuit_fetches(&self) -> u64 {
        self.shortcircuit_fetches
    }

    /// Remote frames whose checksum failed and were re-fetched once.
    pub fn checksum_retries(&self) -> u64 {
        self.checksum_retries
    }

    /// Map-output buckets the eager shuffle fetcher pulled before the
    /// operation barrier cleared.
    pub fn eager_fragments(&self) -> u64 {
        self.eager_fragments
    }

    /// Decoded bytes of those eager fetches.
    pub fn eager_bytes(&self) -> u64 {
        self.eager_bytes
    }

    /// Reduce inputs an eager-enabled slave still fetched cold at task
    /// time (fragments published late, mispredicted, or invalidated).
    pub fn residual_fetches(&self) -> u64 {
        self.residual_fetches
    }

    /// Time warm fragments sat ready before their reduce-like task
    /// consumed them — transfer/verify/decompress time moved off the
    /// post-barrier critical path. Microsecond granularity because short
    /// overlaps on tiny inputs matter to the smoke benches.
    pub fn overlap_time(&self) -> Duration {
        Duration::from_micros(self.overlap_micros)
    }

    /// Record a fused reduce+map operation being queued.
    pub fn record_fused_op(&mut self) {
        self.fused_ops += 1;
    }

    /// Record one executed reducemap task: its wall time and the bytes it
    /// emitted into the shuffle (zero where the observer cannot see them,
    /// e.g. the master learning of a slave-side completion).
    pub fn record_reducemap_task(&mut self, elapsed: Duration, shuffle_bytes: usize) {
        self.reducemap_tasks += 1;
        self.reduce_time += elapsed;
        self.shuffle_bytes += shuffle_bytes as u64;
    }

    /// Record a dataset coming alive (materialized or queued).
    pub fn record_dataset_live(&mut self) {
        self.live_datasets += 1;
        self.peak_live_datasets = self.peak_live_datasets.max(self.live_datasets);
    }

    /// Record a dataset's storage being reclaimed — by lifetime GC when its
    /// last consumer finished, or by an explicit `discard`.
    pub fn record_dataset_freed(&mut self, by_gc: bool) {
        self.live_datasets = self.live_datasets.saturating_sub(1);
        if by_gc {
            self.datasets_freed += 1;
        }
    }

    /// Fused reduce+map operations executed.
    pub fn fused_ops(&self) -> u64 {
        self.fused_ops
    }

    /// Individual reducemap tasks executed across all fused operations.
    pub fn reducemap_tasks(&self) -> u64 {
        self.reducemap_tasks
    }

    /// Datasets reclaimed automatically by consumer-refcount lifetime GC.
    pub fn datasets_freed(&self) -> u64 {
        self.datasets_freed
    }

    /// Datasets currently holding storage.
    pub fn live_datasets(&self) -> u64 {
        self.live_datasets
    }

    /// High-water mark of simultaneously live datasets. For an iterative
    /// job with GC on, this stays O(1) regardless of iteration count.
    pub fn peak_live_datasets(&self) -> u64 {
        self.peak_live_datasets
    }

    /// Record a backup attempt being dispatched for a straggling task.
    pub fn record_speculative_launch(&mut self) {
        self.speculative_launches += 1;
    }

    /// Record a commit where a speculative backup finished first, beating
    /// the original attempt by `saved` (the straggler's elapsed time at
    /// commit minus the winner's runtime — wall clock moved off the
    /// barrier's critical path).
    pub fn record_speculative_win(&mut self, saved: Duration) {
        self.speculative_wins += 1;
        self.straggler_micros_saved += saved.as_micros() as u64;
    }

    /// Record a backup attempt that lost the race (the original finished
    /// first) or was abandoned when its task failed over.
    pub fn record_speculative_loss(&mut self) {
        self.speculative_losses += 1;
    }

    /// Record a cancel order issued to a slave running a doomed attempt.
    pub fn record_cancel(&mut self) {
        self.cancelled_tasks += 1;
    }

    /// Backup attempts dispatched for straggling tasks.
    pub fn speculative_launches(&self) -> u64 {
        self.speculative_launches
    }

    /// Races where the backup finished before the original.
    pub fn speculative_wins(&self) -> u64 {
        self.speculative_wins
    }

    /// Backup attempts that lost (wasted but bounded duplicate work).
    pub fn speculative_losses(&self) -> u64 {
        self.speculative_losses
    }

    /// Cancel orders issued to abort doomed attempts cooperatively.
    pub fn cancelled_tasks(&self) -> u64 {
        self.cancelled_tasks
    }

    /// Straggler tail latency removed by winning backups: for each
    /// speculative win, how much longer the loser had already been
    /// running than the entire winning attempt took. Microsecond
    /// granularity for the same reason as [`Self::overlap_time`].
    pub fn straggler_time_saved(&self) -> Duration {
        Duration::from_micros(self.straggler_micros_saved)
    }

    /// Record one merge-mode reduce input assembled in-process (the local
    /// runtimes' twin of [`crate::dataplane::record_merge_input`]): `runs`
    /// input runs, of which `presorted` arrived already sorted, `records`
    /// total records, assembled in `assembly` wall time.
    pub fn record_merge_input(
        &mut self,
        runs: usize,
        presorted: usize,
        records: usize,
        assembly: Duration,
    ) {
        self.merge_runs += runs as u64;
        self.presorted_runs += presorted as u64;
        self.merge_micros += assembly.as_micros() as u64;
        self.peak_reduce_records = self.peak_reduce_records.max(records as u64);
    }

    /// Input runs consumed by merge-mode reduce-like tasks.
    pub fn merge_runs(&self) -> u64 {
        self.merge_runs
    }

    /// Of [`Self::merge_runs`], runs that arrived already in sorted key
    /// order (no task-time sort was needed). Equal to `merge_runs` when
    /// every producer upholds the sorted-run guarantee.
    pub fn presorted_runs(&self) -> u64 {
        self.presorted_runs
    }

    /// Warm eager fragments the background pre-merge collapsed into
    /// larger runs while maps were still running.
    pub fn premerged_runs(&self) -> u64 {
        self.premerged_runs
    }

    /// Time reduce-like tasks spent assembling merge-ready input (decode
    /// plus any demotion sorts). Microsecond granularity for the same
    /// reason as [`Self::overlap_time`].
    pub fn merge_time(&self) -> Duration {
        Duration::from_micros(self.merge_micros)
    }

    /// Largest record count one reduce-like task materialized as input.
    pub fn peak_reduce_records(&self) -> u64 {
        self.peak_reduce_records
    }

    /// Render every counter in the Prometheus text exposition format
    /// (one `name value` sample per line, durations in seconds). This is
    /// what the master's `/metrics` endpoint serves and what the CI
    /// smoke check parses.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, v: u64| {
            out.push_str("mrs_");
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        };
        counter("map_ops_total", self.map_ops);
        counter("reduce_ops_total", self.reduce_ops);
        counter("shuffle_bytes_total", self.shuffle_bytes);
        counter("tasks_executed_total", self.tasks_executed);
        counter("tasks_retried_total", self.tasks_retried);
        counter("affinity_hits_total", self.affinity_hits);
        counter("affinity_misses_total", self.affinity_misses);
        counter("connections_opened_total", self.connections_opened);
        counter("connections_reused_total", self.connections_reused);
        counter("tasks_stolen_total", self.tasks_stolen);
        counter("peak_in_flight", self.peak_in_flight);
        counter("dispatch_polls_total", self.dispatch_polls);
        counter("dispatched_tasks_total", self.dispatched_tasks);
        counter("longpoll_parks_total", self.longpoll_parks);
        counter("longpoll_timeouts_total", self.longpoll_timeouts);
        counter("piggybacked_reports_total", self.piggybacked_reports);
        counter("wakeups_total", self.wakeups);
        counter("bytes_pre_compress_total", self.bytes_pre_compress);
        counter("bytes_on_wire_total", self.bytes_on_wire);
        counter("shortcircuit_fetches_total", self.shortcircuit_fetches);
        counter("checksum_retries_total", self.checksum_retries);
        counter("eager_fragments_total", self.eager_fragments);
        counter("eager_bytes_total", self.eager_bytes);
        counter("residual_fetches_total", self.residual_fetches);
        counter("fused_ops_total", self.fused_ops);
        counter("reducemap_tasks_total", self.reducemap_tasks);
        counter("datasets_freed_total", self.datasets_freed);
        counter("live_datasets", self.live_datasets);
        counter("peak_live_datasets", self.peak_live_datasets);
        counter("speculative_launches_total", self.speculative_launches);
        counter("speculative_wins_total", self.speculative_wins);
        counter("speculative_losses_total", self.speculative_losses);
        counter("cancelled_tasks_total", self.cancelled_tasks);
        counter("merge_runs_total", self.merge_runs);
        counter("presorted_runs_total", self.presorted_runs);
        counter("premerged_runs_total", self.premerged_runs);
        counter("peak_reduce_records", self.peak_reduce_records);
        let mut seconds = |name: &str, d: Duration| {
            out.push_str("mrs_");
            out.push_str(name);
            out.push(' ');
            out.push_str(&format!("{:.6}\n", d.as_secs_f64()));
        };
        seconds("map_time_seconds_total", self.map_time);
        seconds("reduce_time_seconds_total", self.reduce_time);
        seconds("overlap_seconds_total", self.overlap_time());
        seconds("straggler_seconds_saved_total", self.straggler_time_saved());
        seconds("merge_seconds_total", self.merge_time());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = JobMetrics::default();
        m.record_map(Duration::from_millis(5), 100);
        m.record_map(Duration::from_millis(5), 50);
        m.record_reduce(Duration::from_millis(2));
        m.record_task();
        m.record_retry();
        m.record_affinity(true);
        m.record_affinity(false);
        m.record_connections(3, 40);
        m.record_steal();
        m.record_dispatch(3, 5);
        m.record_dispatch(1, 2);
        m.record_longpoll_park();
        m.record_longpoll_timeout();
        m.record_piggybacked_reports(4);
        m.record_wakeup();
        m.record_wakeup();
        m.record_dataplane(crate::dataplane::DataPlaneStats {
            bytes_pre_compress: 1000,
            bytes_on_wire: 300,
            shortcircuit_fetches: 7,
            checksum_retries: 1,
            eager_fragments: 5,
            eager_bytes: 640,
            residual_fetches: 2,
            overlap_micros: 2500,
            merge_runs: 6,
            presorted_runs: 6,
            premerged_runs: 4,
            merge_micros: 1500,
            peak_reduce_records: 900,
        });
        assert_eq!(m.map_ops(), 2);
        assert_eq!(m.reduce_ops(), 1);
        assert_eq!(m.shuffle_bytes(), 150);
        assert_eq!(m.tasks_executed(), 1);
        assert_eq!(m.tasks_retried(), 1);
        assert_eq!(m.affinity_hits(), 1);
        assert_eq!(m.affinity_misses(), 1);
        assert_eq!(m.connections_opened(), 3);
        assert_eq!(m.connections_reused(), 40);
        assert_eq!(m.tasks_stolen(), 1);
        assert_eq!(m.peak_in_flight(), 5);
        assert_eq!(m.dispatch_polls(), 2);
        assert_eq!(m.dispatched_tasks(), 4);
        assert_eq!(m.longpoll_parks(), 1);
        assert_eq!(m.longpoll_timeouts(), 1);
        assert_eq!(m.piggybacked_reports(), 4);
        assert_eq!(m.wakeups(), 2);
        assert_eq!(m.bytes_pre_compress(), 1000);
        assert_eq!(m.bytes_on_wire(), 300);
        assert_eq!(m.shortcircuit_fetches(), 7);
        assert_eq!(m.checksum_retries(), 1);
        assert_eq!(m.eager_fragments(), 5);
        assert_eq!(m.eager_bytes(), 640);
        assert_eq!(m.residual_fetches(), 2);
        assert_eq!(m.overlap_time(), Duration::from_micros(2500));
        assert!(m.map_time() >= Duration::from_millis(10));
        assert_eq!(m.merge_runs(), 6);
        assert_eq!(m.presorted_runs(), 6);
        assert_eq!(m.premerged_runs(), 4);
        assert_eq!(m.peak_reduce_records(), 900);
        assert_eq!(m.merge_time(), Duration::from_micros(1500));
    }

    #[test]
    fn merge_counters_accumulate_and_track_peak() {
        let mut m = JobMetrics::default();
        m.record_merge_input(4, 3, 1000, Duration::from_micros(700));
        m.record_merge_input(2, 2, 250, Duration::from_micros(300));
        assert_eq!(m.merge_runs(), 6);
        assert_eq!(m.presorted_runs(), 5);
        assert_eq!(m.peak_reduce_records(), 1000, "peak is a max, not a sum");
        assert_eq!(m.merge_time(), Duration::from_millis(1));
    }

    #[test]
    fn fusion_and_lifetime_counters_accumulate() {
        let mut m = JobMetrics::default();
        m.record_fused_op();
        m.record_fused_op();
        for _ in 0..5 {
            m.record_reducemap_task(Duration::from_millis(1), 40);
        }
        assert_eq!(m.fused_ops(), 2);
        assert_eq!(m.reducemap_tasks(), 5);
        assert_eq!(m.shuffle_bytes(), 200);
        assert!(m.reduce_time() >= Duration::from_millis(5));

        for _ in 0..3 {
            m.record_dataset_live();
        }
        m.record_dataset_freed(true);
        m.record_dataset_live();
        m.record_dataset_freed(false);
        assert_eq!(m.peak_live_datasets(), 3);
        assert_eq!(m.live_datasets(), 2);
        assert_eq!(m.datasets_freed(), 1, "only GC frees count as freed");
    }

    #[test]
    fn speculation_counters_accumulate() {
        let mut m = JobMetrics::default();
        m.record_speculative_launch();
        m.record_speculative_launch();
        m.record_speculative_win(Duration::from_micros(1500));
        m.record_speculative_loss();
        m.record_cancel();
        assert_eq!(m.speculative_launches(), 2);
        assert_eq!(m.speculative_wins(), 1);
        assert_eq!(m.speculative_losses(), 1);
        assert_eq!(m.cancelled_tasks(), 1);
        assert_eq!(m.straggler_time_saved(), Duration::from_micros(1500));
        let prom = m.to_prometheus();
        assert!(prom.contains("mrs_speculative_wins_total 1\n"));
        assert!(prom.contains("mrs_straggler_seconds_saved_total 0.001500\n"));
        for line in prom.lines() {
            let (name, value) = line.split_once(' ').expect("name value");
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name {name:?}"
            );
            assert!(value.parse::<f64>().is_ok(), "bad value {value:?}");
        }
    }
}
