//! The `mrs.main` analogue: one binary, every execution implementation.
//!
//! "As a programming framework, Mrs controls the execution flow and is
//! invoked by a call to `mrs.main`. The execution of Mrs depends on the
//! command-line options and the specified program class" (§IV-A). In this
//! reproduction a user binary calls [`main_with`] with its program and a
//! driver closure; `--mrs <impl>` selects how it runs:
//!
//! ```text
//! prog --mrs serial                       # reference semantics
//! prog --mrs mock                         # cluster task split, 1 cpu, spill files
//! prog --mrs pool --mrs-workers 8         # thread-pool parallel
//! prog --mrs master --mrs-port-file P     # master: binds, writes its port
//! prog --mrs slave  --mrs-master H:P      # slave: joins an existing master
//! prog --mrs slave  --mrs-master H:P --mrs-slots 4   # slave with 4 task slots
//! prog --mrs master --mrs-control poll    # legacy sleep-and-poll control plane
//! prog --mrs master --mrs-longpoll-ms 250 # cap server-side get_task parks
//! prog --mrs slave --mrs-master H:P --mrs-compress off          # raw buckets
//! prog --mrs master --mrs-compress threshold=4096               # frame big buckets only
//! prog --mrs master --mrs-keep-data   # disable dataset lifetime GC
//! prog --mrs master --mrs-eager-shuffle off  # classic barrier-then-fetch shuffle
//! prog --mrs master --mrs-speculate off      # no straggler backup tasks
//! prog --mrs master --mrs-speculate threshold=2.5  # back up at 2.5× median runtime
//! prog --mrs master --mrs-merge sort   # concat+sort reduce input (merge oracle)
//! prog --mrs master --mrs-trace trace.json   # write a Chrome trace at job end
//! prog --mrs slave --mrs-master H:P --mrs-no-trace  # slave ships no trace deltas
//! ```
//!
//! A master runs the driver and serves slaves; a slave never runs the
//! driver — it executes tasks until told to exit, exactly the paper's
//! "one copy of the program as a master and any number of other copies
//! of the program as slaves".

use crate::distributed::{serve_master, RpcMasterLink};
use crate::job::Job;
use crate::local::LocalRuntime;
use crate::master::{Master, MasterConfig};
use crate::proto::{ControlMode, DataPlane, SpeculateMode};
use crate::serial::SerialRuntime;
use crate::slave::{run_slave, SlaveOptions};
use mrs_codec::CompressMode;
use mrs_core::{Error, MergeMode, Program, Result};
use mrs_fs::TempFs;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Which execution implementation to use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Implementation {
    /// Everything sequential, one task per operation.
    Serial,
    /// The cluster's task split on one processor, spilled to files.
    MockParallel,
    /// Thread-pool parallelism with this many workers.
    Pool(usize),
    /// Master role: bind `port` (0 = ephemeral), optionally write the
    /// bound port to a file for slaves to discover.
    Master {
        /// TCP port to bind (0 picks one).
        port: u16,
        /// File to write the bound port into (the paper's port file).
        port_file: Option<String>,
    },
    /// Slave role: join the master at `host:port`.
    Slave {
        /// Master authority.
        master: String,
        /// Concurrent task slots (worker threads); `None` = available cores.
        slots: Option<usize>,
    },
}

/// Parsed `--mrs*` options.
#[derive(Clone, Debug, PartialEq)]
pub struct CliOptions {
    /// Selected implementation (default: serial, like the original Mrs).
    pub implementation: Implementation,
    /// Control-plane mode for master/slave roles (`--mrs-control`,
    /// default: event-driven long-poll).
    pub control: ControlMode,
    /// Long-poll cap override (`--mrs-longpoll-ms`): on a master the
    /// maximum server-side park, on a slave the park it requests.
    pub long_poll: Option<Duration>,
    /// Shuffle payload compression (`--mrs-compress=on|off|threshold=N`,
    /// default: compress buckets above the built-in threshold). Decoders
    /// auto-detect framing, so mixed settings across a cluster interoperate.
    pub compress: CompressMode,
    /// Disable dataset lifetime GC (`--mrs-keep-data`): intermediates stay
    /// fetchable after their last plan consumer finishes, and fault
    /// recovery can always re-execute from them. The default (GC on)
    /// bounds an iterative job's footprint at O(1) live datasets.
    pub keep_data: bool,
    /// Eager shuffle (`--mrs-eager-shuffle on|off`, default on): the
    /// master announces finished map-output fragments early and slaves
    /// fetch them while maps still run. `off` is the classic
    /// barrier-then-fetch path, kept as a first-class oracle.
    pub eager_shuffle: bool,
    /// Speculative execution (`--mrs-speculate on|off|threshold=X`,
    /// default on at 1.5×): once a wave is mostly done, a task running
    /// longer than X× the median completed runtime gets a backup attempt
    /// on another slave; first completion wins and the loser is cancelled.
    /// `off` is the non-speculative scheduler, kept as a first-class
    /// oracle. A no-op on the single-process implementations.
    pub speculate: SpeculateMode,
    /// Reduce-input assembly (`--mrs-merge=merge|sort`, default merge):
    /// stream a k-way merge over the sorted map-output runs, or
    /// concatenate and sort — the legacy path, kept as a byte-identical
    /// oracle. Applies to every implementation.
    pub merge: MergeMode,
    /// Write the job's assembled timeline as Chrome trace-event JSON to
    /// this path at job end (`--mrs-trace <path>`), and print the
    /// critical-path report to stderr. Loadable in Perfetto or
    /// `chrome://tracing`.
    pub trace_path: Option<String>,
    /// Trace recording (`--mrs-no-trace` turns it off): with tracing off
    /// a slave's `get_task` request is byte-identical to the legacy wire
    /// form and the master keeps no timeline.
    pub trace: bool,
    /// Hidden test hook (`--mrs-test-delay data:index:ms`, repeatable):
    /// a slave delays the *first* attempt of the named task by `ms`,
    /// manufacturing a deterministic straggler for tests and benches.
    pub test_delays: Vec<(u32, usize, u64)>,
    /// Everything that was not an `--mrs*` option, for the program's own
    /// argument handling.
    pub rest: Vec<String>,
}

/// Parse options from an argument list (excluding argv\[0\]).
pub fn parse_options<I: IntoIterator<Item = String>>(args: I) -> Result<CliOptions> {
    let mut implementation = None;
    let mut workers = None;
    let mut port = 0u16;
    let mut port_file = None;
    let mut master = None;
    let mut slots = None;
    let mut control = ControlMode::default();
    let mut long_poll = None;
    let mut compress = CompressMode::default();
    let mut keep_data = false;
    let mut eager_shuffle = true;
    let mut speculate = SpeculateMode::default();
    let mut merge = MergeMode::default();
    let mut trace_path = None;
    let mut trace = true;
    let mut test_delays = Vec::new();
    let mut rest = Vec::new();

    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |name: &str| -> Result<String> {
            iter.next().ok_or_else(|| Error::Invalid(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--mrs" => {
                let v = value_of("--mrs")?;
                implementation = Some(v);
            }
            "--mrs-workers" => {
                let v = value_of("--mrs-workers")?;
                workers = Some(
                    v.parse::<usize>()
                        .map_err(|e| Error::Invalid(format!("--mrs-workers {v:?}: {e}")))?,
                );
            }
            "--mrs-port" => {
                let v = value_of("--mrs-port")?;
                port = v
                    .parse::<u16>()
                    .map_err(|e| Error::Invalid(format!("--mrs-port {v:?}: {e}")))?;
            }
            "--mrs-port-file" => port_file = Some(value_of("--mrs-port-file")?),
            "--mrs-master" => master = Some(value_of("--mrs-master")?),
            "--mrs-slots" => {
                let v = value_of("--mrs-slots")?;
                slots = Some(
                    v.parse::<usize>()
                        .map_err(|e| Error::Invalid(format!("--mrs-slots {v:?}: {e}")))?,
                );
            }
            "--mrs-control" => {
                let v = value_of("--mrs-control")?;
                control = ControlMode::parse(&v)?;
            }
            "--mrs-longpoll-ms" => {
                let v = value_of("--mrs-longpoll-ms")?;
                let ms = v
                    .parse::<u64>()
                    .map_err(|e| Error::Invalid(format!("--mrs-longpoll-ms {v:?}: {e}")))?;
                long_poll = Some(Duration::from_millis(ms));
            }
            "--mrs-compress" => {
                let v = value_of("--mrs-compress")?;
                compress = CompressMode::parse(&v).map_err(Error::Invalid)?;
            }
            "--mrs-keep-data" => keep_data = true,
            "--mrs-speculate" => {
                let v = value_of("--mrs-speculate")?;
                speculate = SpeculateMode::parse(&v)?;
            }
            "--mrs-merge" => {
                let v = value_of("--mrs-merge")?;
                merge = MergeMode::parse(&v)?;
            }
            "--mrs-trace" => trace_path = Some(value_of("--mrs-trace")?),
            "--mrs-no-trace" => trace = false,
            "--mrs-test-delay" => {
                let v = value_of("--mrs-test-delay")?;
                let parts: Vec<&str> = v.split(':').collect();
                let parsed = match parts.as_slice() {
                    [d, i, ms] => match (d.parse::<u32>(), i.parse::<usize>(), ms.parse::<u64>()) {
                        (Ok(d), Ok(i), Ok(ms)) => Some((d, i, ms)),
                        _ => None,
                    },
                    _ => None,
                };
                match parsed {
                    Some(t) => test_delays.push(t),
                    None => {
                        return Err(Error::Invalid(format!(
                            "--mrs-test-delay {v:?} (expected data:index:ms)"
                        )))
                    }
                }
            }
            "--mrs-eager-shuffle" => {
                let v = value_of("--mrs-eager-shuffle")?;
                eager_shuffle = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(Error::Invalid(format!(
                            "--mrs-eager-shuffle {other:?} (expected on|off)"
                        )))
                    }
                };
            }
            _ => rest.push(arg),
        }
    }

    let implementation = match implementation.as_deref() {
        None | Some("serial") => Implementation::Serial,
        Some("mock") | Some("mockparallel") => Implementation::MockParallel,
        Some("pool") => Implementation::Pool(workers.unwrap_or_else(num_cpus)),
        Some("master") => Implementation::Master { port, port_file },
        Some("slave") => Implementation::Slave {
            master: master
                .ok_or_else(|| Error::Invalid("--mrs slave requires --mrs-master".into()))?,
            slots,
        },
        Some(other) => {
            return Err(Error::Invalid(format!(
                "unknown implementation {other:?} (serial|mock|pool|master|slave)"
            )))
        }
    };
    if workers == Some(0) {
        return Err(Error::Invalid("--mrs-workers must be positive".into()));
    }
    if slots == Some(0) {
        return Err(Error::Invalid("--mrs-slots must be positive".into()));
    }
    if long_poll == Some(Duration::ZERO) {
        return Err(Error::Invalid("--mrs-longpoll-ms must be positive".into()));
    }
    if trace_path.is_some() && !trace {
        return Err(Error::Invalid("--mrs-trace conflicts with --mrs-no-trace".into()));
    }
    Ok(CliOptions {
        implementation,
        control,
        long_poll,
        compress,
        keep_data,
        eager_shuffle,
        speculate,
        merge,
        trace_path,
        trace,
        test_delays,
        rest,
    })
}

fn num_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2)
}

/// Write the timeline as Chrome trace JSON and print the critical-path
/// report to stderr. No-op without a `--mrs-trace` path or a trace.
fn export_trace(path: Option<&str>, trace: Option<mrs_trace::JobTrace>) -> Result<()> {
    let (Some(path), Some(trace)) = (path, trace) else {
        return Ok(());
    };
    std::fs::write(path, trace.chrome_json())?;
    eprintln!("{}", trace.critical_path().render());
    Ok(())
}

/// Run a program under the options, invoking `driver` with a [`Job`] for
/// every implementation that drives jobs (all except `slave`).
pub fn run_with_options<D>(program: Arc<dyn Program>, options: &CliOptions, driver: D) -> Result<()>
where
    D: FnOnce(&mut Job) -> Result<()>,
{
    match &options.implementation {
        Implementation::Serial => {
            let mut rt = SerialRuntime::new(program);
            rt.set_merge_mode(options.merge);
            let result = driver(&mut Job::new(&mut rt));
            result.and(export_trace(options.trace_path.as_deref(), Some(rt.take_trace())))
        }
        Implementation::MockParallel => {
            let spill = Arc::new(TempFs::new("mockparallel")?);
            let mut rt = LocalRuntime::mock_parallel_with(program, spill, options.compress);
            rt.set_keep_data(options.keep_data);
            rt.set_merge_mode(options.merge);
            let result = driver(&mut Job::new(&mut rt));
            result.and(export_trace(options.trace_path.as_deref(), Some(rt.take_trace())))
        }
        Implementation::Pool(workers) => {
            let mut rt = LocalRuntime::pool(program, *workers);
            rt.set_keep_data(options.keep_data);
            rt.set_merge_mode(options.merge);
            let result = driver(&mut Job::new(&mut rt));
            result.and(export_trace(options.trace_path.as_deref(), Some(rt.take_trace())))
        }
        Implementation::Master { port, port_file } => {
            let mut cfg = MasterConfig {
                control: options.control,
                compress: options.compress,
                keep_data: options.keep_data,
                eager_shuffle: options.eager_shuffle,
                speculate: options.speculate,
                merge: options.merge,
                trace: options.trace,
                ..MasterConfig::default()
            };
            if let Some(lp) = options.long_poll {
                cfg.long_poll_timeout = lp;
            }
            let master = Master::new(cfg, DataPlane::Direct)?;
            let server = serve_master(master.clone(), *port).map_err(Error::Io)?;
            if let Some(path) = port_file {
                std::fs::write(path, server.port().to_string())?;
            }
            let mut driver_master = master.clone();
            let result = driver(&mut Job::new(&mut driver_master));
            master.finish();
            let result =
                result.and(export_trace(options.trace_path.as_deref(), master.take_trace()));
            if let Some(path) = port_file {
                let _ = std::fs::remove_file(path);
            }
            result
        }
        Implementation::Slave { master, slots } => {
            // A slave never runs the driver; it serves tasks until Exit.
            let link = RpcMasterLink::new(master.clone());
            let stop = AtomicBool::new(false);
            let mut slave_opts = SlaveOptions::default();
            if let Some(n) = slots {
                slave_opts.slots = *n;
            }
            slave_opts.control = options.control;
            slave_opts.compress = options.compress;
            slave_opts.eager_shuffle = options.eager_shuffle;
            slave_opts.merge = options.merge;
            slave_opts.trace = options.trace;
            slave_opts.test_delays = options.test_delays.clone();
            if let Some(lp) = options.long_poll {
                slave_opts.long_poll = lp;
            }
            run_slave(&link, program, DataPlane::Direct, &slave_opts, &stop)
        }
    }
}

/// The full `mrs.main` flow: parse the process arguments and run.
pub fn main_with<D>(program: Arc<dyn Program>, driver: D) -> Result<()>
where
    D: FnOnce(&mut Job) -> Result<()>,
{
    let options = parse_options(std::env::args().skip(1))?;
    run_with_options(program, &options, driver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::kv::encode_record;
    use mrs_core::{Datum, MapReduce, Simple};

    fn opts(args: &[&str]) -> Result<CliOptions> {
        parse_options(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_is_serial() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.implementation, Implementation::Serial);
        assert!(o.rest.is_empty());
    }

    #[test]
    fn parses_each_implementation() {
        assert_eq!(opts(&["--mrs", "serial"]).unwrap().implementation, Implementation::Serial);
        assert_eq!(opts(&["--mrs", "mock"]).unwrap().implementation, Implementation::MockParallel);
        assert_eq!(
            opts(&["--mrs", "pool", "--mrs-workers", "3"]).unwrap().implementation,
            Implementation::Pool(3)
        );
        assert_eq!(
            opts(&["--mrs", "master", "--mrs-port", "7777", "--mrs-port-file", "/tmp/p"])
                .unwrap()
                .implementation,
            Implementation::Master { port: 7777, port_file: Some("/tmp/p".into()) }
        );
        assert_eq!(
            opts(&["--mrs", "slave", "--mrs-master", "10.0.0.1:7777"]).unwrap().implementation,
            Implementation::Slave { master: "10.0.0.1:7777".into(), slots: None }
        );
        assert_eq!(
            opts(&["--mrs", "slave", "--mrs-master", "h:1", "--mrs-slots", "4"])
                .unwrap()
                .implementation,
            Implementation::Slave { master: "h:1".into(), slots: Some(4) }
        );
    }

    #[test]
    fn parses_control_plane_flags() {
        let o = opts(&["--mrs", "master", "--mrs-control", "poll"]).unwrap();
        assert_eq!(o.control, ControlMode::Poll);
        assert_eq!(o.long_poll, None);
        let o = opts(&["--mrs", "master", "--mrs-control", "longpoll", "--mrs-longpoll-ms", "250"])
            .unwrap();
        assert_eq!(o.control, ControlMode::LongPoll);
        assert_eq!(o.long_poll, Some(Duration::from_millis(250)));
        // Default is event-driven.
        assert_eq!(opts(&[]).unwrap().control, ControlMode::LongPoll);
    }

    #[test]
    fn parses_compress_flag() {
        use mrs_codec::DEFAULT_COMPRESS_THRESHOLD;
        assert_eq!(
            opts(&[]).unwrap().compress,
            CompressMode::Threshold(DEFAULT_COMPRESS_THRESHOLD)
        );
        assert_eq!(opts(&["--mrs-compress", "on"]).unwrap().compress, CompressMode::On);
        assert_eq!(opts(&["--mrs-compress", "off"]).unwrap().compress, CompressMode::Off);
        assert_eq!(
            opts(&["--mrs-compress", "threshold=4096"]).unwrap().compress,
            CompressMode::Threshold(4096)
        );
    }

    #[test]
    fn parses_keep_data_flag() {
        assert!(!opts(&[]).unwrap().keep_data);
        let o = opts(&["--mrs", "pool", "--mrs-keep-data", "rest.txt"]).unwrap();
        assert!(o.keep_data);
        assert_eq!(o.rest, vec!["rest.txt"]);
    }

    #[test]
    fn parses_eager_shuffle_flag() {
        assert!(opts(&[]).unwrap().eager_shuffle, "eager shuffle defaults on");
        assert!(opts(&["--mrs-eager-shuffle", "on"]).unwrap().eager_shuffle);
        assert!(!opts(&["--mrs-eager-shuffle", "off"]).unwrap().eager_shuffle);
    }

    #[test]
    fn parses_speculate_flag() {
        assert_eq!(opts(&[]).unwrap().speculate, SpeculateMode::default());
        assert_eq!(opts(&["--mrs-speculate", "off"]).unwrap().speculate, SpeculateMode::Off);
        assert_eq!(opts(&["--mrs-speculate", "on"]).unwrap().speculate, SpeculateMode::default());
        assert_eq!(
            opts(&["--mrs-speculate", "threshold=2.5"]).unwrap().speculate,
            SpeculateMode::On { threshold: 2.5 }
        );
    }

    #[test]
    fn parses_merge_flag() {
        assert_eq!(opts(&[]).unwrap().merge, MergeMode::Merge, "merge reduce defaults on");
        assert_eq!(opts(&["--mrs-merge", "merge"]).unwrap().merge, MergeMode::Merge);
        assert_eq!(opts(&["--mrs-merge", "sort"]).unwrap().merge, MergeMode::Sort);
    }

    #[test]
    fn parses_trace_flags() {
        let o = opts(&[]).unwrap();
        assert!(o.trace, "tracing defaults on");
        assert_eq!(o.trace_path, None);
        let o = opts(&["--mrs-trace", "/tmp/t.json"]).unwrap();
        assert_eq!(o.trace_path.as_deref(), Some("/tmp/t.json"));
        assert!(!opts(&["--mrs-no-trace"]).unwrap().trace);
        assert!(opts(&["--mrs-trace"]).is_err());
        assert!(opts(&["--mrs-no-trace", "--mrs-trace", "/tmp/t.json"]).is_err());
    }

    #[test]
    fn trace_flag_writes_chrome_json() {
        let path = std::env::temp_dir().join(format!("mrs-cli-trace-{}.json", std::process::id()));
        for args in [vec!["--mrs", "serial"], vec!["--mrs", "pool", "--mrs-workers", "2"]] {
            let mut args: Vec<&str> = args;
            let p = path.to_string_lossy().into_owned();
            args.extend(["--mrs-trace", &p]);
            let o = opts(&args).unwrap();
            run_with_options(Arc::new(Simple(Count)), &o, driver_checks).unwrap();
            let json = std::fs::read_to_string(&path).expect("trace written");
            assert!(json.contains("traceEvents") && json.contains("\"ph\":\"B\""), "{json:.100}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn parses_test_delay_flag() {
        assert!(opts(&[]).unwrap().test_delays.is_empty());
        let o = opts(&["--mrs-test-delay", "1:0:500", "--mrs-test-delay", "3:2:50"]).unwrap();
        assert_eq!(o.test_delays, vec![(1, 0, 500), (3, 2, 50)]);
    }

    #[test]
    fn program_args_pass_through() {
        let o = opts(&["input.txt", "--mrs", "pool", "--verbose"]).unwrap();
        assert_eq!(o.rest, vec!["input.txt", "--verbose"]);
    }

    #[test]
    fn rejects_malformed() {
        assert!(opts(&["--mrs"]).is_err());
        assert!(opts(&["--mrs", "warp-drive"]).is_err());
        assert!(opts(&["--mrs", "slave"]).is_err()); // missing --mrs-master
        assert!(opts(&["--mrs", "pool", "--mrs-workers", "0"]).is_err());
        assert!(opts(&["--mrs-port", "not-a-port"]).is_err());
        assert!(opts(&["--mrs", "slave", "--mrs-master", "h:1", "--mrs-slots", "0"]).is_err());
        assert!(opts(&["--mrs-control", "telepathy"]).is_err());
        assert!(opts(&["--mrs-longpoll-ms", "0"]).is_err());
        assert!(opts(&["--mrs-longpoll-ms", "soon"]).is_err());
        assert!(opts(&["--mrs-compress"]).is_err());
        assert!(opts(&["--mrs-compress", "maybe"]).is_err());
        assert!(opts(&["--mrs-compress", "threshold=lots"]).is_err());
        assert!(opts(&["--mrs-eager-shuffle"]).is_err());
        assert!(opts(&["--mrs-eager-shuffle", "sometimes"]).is_err());
        assert!(opts(&["--mrs-speculate", "perhaps"]).is_err());
        assert!(opts(&["--mrs-speculate", "threshold=0.5"]).is_err());
        assert!(opts(&["--mrs-merge"]).is_err());
        assert!(opts(&["--mrs-merge", "quantum"]).is_err());
        assert!(opts(&["--mrs-test-delay", "1:0"]).is_err());
        assert!(opts(&["--mrs-test-delay", "a:b:c"]).is_err());
    }

    struct Count;
    impl MapReduce for Count {
        type K1 = u64;
        type V1 = u64;
        type K2 = u64;
        type V2 = u64;
        fn map(&self, k: u64, v: u64, emit: &mut dyn FnMut(u64, u64)) {
            emit(k % 2, v);
        }
        fn reduce(&self, _k: &u64, vs: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
            emit(vs.sum());
        }
    }

    fn driver_checks(job: &mut Job) -> mrs_core::Result<()> {
        let input: Vec<mrs_core::Record> = (0..10u64).map(|i| encode_record(&i, &1u64)).collect();
        let out = job.map_reduce(input, 2, 2, false)?;
        let total: u64 = out.iter().map(|(_, v)| u64::from_bytes(v).unwrap()).sum();
        assert_eq!(total, 10);
        Ok(())
    }

    #[test]
    fn run_serial_mock_pool_via_options() {
        for args in [vec![], vec!["--mrs", "mock"], vec!["--mrs", "pool", "--mrs-workers", "2"]] {
            let o = opts(&args).unwrap();
            run_with_options(Arc::new(Simple(Count)), &o, driver_checks).unwrap();
        }
    }

    #[test]
    fn master_writes_and_cleans_port_file() {
        let path = std::env::temp_dir().join(format!("mrs-cli-test-{}", std::process::id()));
        let o = CliOptions {
            implementation: Implementation::Master {
                port: 0,
                port_file: Some(path.to_string_lossy().into_owned()),
            },
            control: ControlMode::default(),
            long_poll: None,
            compress: CompressMode::default(),
            keep_data: false,
            eager_shuffle: true,
            speculate: SpeculateMode::default(),
            merge: MergeMode::default(),
            trace_path: None,
            trace: true,
            test_delays: vec![],
            rest: vec![],
        };
        // Driver with no work: just verify the port file exists while the
        // master is up.
        let path2 = path.clone();
        run_with_options(Arc::new(Simple(Count)), &o, move |_job| {
            let text = std::fs::read_to_string(&path2).expect("port file written");
            assert!(text.trim().parse::<u16>().is_ok());
            Ok(())
        })
        .unwrap();
        assert!(!path.exists(), "port file should be removed on shutdown");
    }
}
