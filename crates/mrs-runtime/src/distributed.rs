//! Wiring the master and slaves together over real XML-RPC.
//!
//! [`serve_master`] exposes a [`Master`] as the paper's HTTP/XML-RPC control
//! endpoint; [`RpcMasterLink`] is the slave-side stub; [`LocalCluster`]
//! assembles a complete cluster on localhost — master RPC server, sweeper,
//! N slave threads each with its own data server and real TCP sockets in
//! between. This is the multi-node substitution documented in DESIGN.md:
//! every protocol byte is real, only the process boundary is elided (slave
//! threads instead of `pssh`-started remote processes).

use crate::data::DataId;
use crate::dataplane::{self, DataPlaneStats};
use crate::job::JobApi;
use crate::master::{Master, MasterConfig, SlaveId};
use crate::metrics::JobMetrics;
use crate::proto::{DataPlane, Dispatch, TaskReport, TraceBatch};
use crate::slave::{run_slave, MasterLink, SlaveOptions};
use mrs_core::{Error, FuncId, Program, Record, Result};
use mrs_rpc::rpc::{Dispatch as RpcDispatch, RpcClient, RpcServer};
use mrs_rpc::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Expose a master over XML-RPC. The returned server lives as long as the
/// handle; slaves connect to `server.authority()`.
pub fn serve_master(master: Master, port: u16) -> std::io::Result<RpcServer> {
    let m1 = master.clone();
    let m2 = master.clone();
    let m3 = master.clone();
    let m4 = master;
    let dispatch = RpcDispatch::new()
        .register("signin", move |params| {
            let authority = params
                .first()
                .and_then(Value::as_str)
                .ok_or((3, "signin: missing authority".to_owned()))?;
            // Slot count; older single-slot callers may omit it.
            let slots = params.get(1).and_then(Value::as_int).unwrap_or(1).max(1) as usize;
            Ok(Value::Int(m1.signin(authority, slots) as i64))
        })
        .register("get_task", move |params| {
            let slave = params
                .first()
                .and_then(Value::as_int)
                .ok_or((3, "get_task: missing slave id".to_owned()))?;
            // Free slot count; omitted means a single-task poll.
            let free = params.get(1).and_then(Value::as_int).unwrap_or(1).max(1) as usize;
            // Requested long-poll park in milliseconds; older pollers omit
            // it and get the immediate-return behaviour.
            let park = Duration::from_millis(
                params.get(2).and_then(Value::as_int).unwrap_or(0).max(0) as u64,
            );
            // Piggybacked completion reports; older pollers omit them.
            let reports = match params.get(3).and_then(Value::as_array) {
                Some(items) => items
                    .iter()
                    .map(TaskReport::from_value)
                    .collect::<Result<Vec<_>>>()
                    .map_err(|e| (3, format!("get_task: bad report: {e}")))?,
                None => Vec::new(),
            };
            // Piggybacked trace-event delta; legacy (and tracing-off)
            // slaves omit it.
            let trace = match params.get(4) {
                Some(v) => TraceBatch::from_value(v)
                    .map_err(|e| (3, format!("get_task: bad trace batch: {e}")))?,
                None => TraceBatch::default(),
            };
            Ok(m2.get_dispatch_traced(slave as SlaveId, free, park, &reports, &trace).to_value())
        })
        .register("task_done", move |params| {
            let (slave, data, index, urls) = parse_report(params)?;
            // Attempt id; legacy slaves omit it and report 0 (matched by
            // slave alone at the master's commit point).
            let attempt = params.get(4).and_then(Value::as_int).unwrap_or(0).max(0) as u32;
            m3.task_done(slave, data, index, attempt, urls);
            Ok(Value::Bool(true))
        })
        .register("task_failed", move |params| {
            let slave =
                params.first().and_then(Value::as_int).ok_or((3, "missing slave".to_owned()))?;
            let data =
                params.get(1).and_then(Value::as_int).ok_or((3, "missing data".to_owned()))?;
            let index =
                params.get(2).and_then(Value::as_int).ok_or((3, "missing index".to_owned()))?;
            let msg = params.get(3).and_then(Value::as_str).unwrap_or("unknown error");
            let failed_input = params.get(4).and_then(Value::as_str).filter(|u| !u.is_empty());
            // Attempt id; legacy slaves omit it (0 = match by slave alone).
            let attempt = params.get(5).and_then(Value::as_int).unwrap_or(0).max(0) as u32;
            m4.task_failed(
                slave as SlaveId,
                data as u32,
                index as usize,
                attempt,
                msg,
                failed_input,
            );
            Ok(Value::Bool(true))
        });
    RpcServer::serve(port, dispatch)
}

type ReportArgs = (SlaveId, u32, usize, Vec<String>);

fn parse_report(params: &[Value]) -> std::result::Result<ReportArgs, (i64, String)> {
    let slave = params.first().and_then(Value::as_int).ok_or((3, "missing slave".to_owned()))?;
    let data = params.get(1).and_then(Value::as_int).ok_or((3, "missing data".to_owned()))?;
    let index = params.get(2).and_then(Value::as_int).ok_or((3, "missing index".to_owned()))?;
    let urls = params
        .get(3)
        .and_then(Value::as_array)
        .ok_or((3, "missing urls".to_owned()))?
        .iter()
        .map(|v| v.as_str().map(str::to_owned).ok_or((3, "non-string url".to_owned())))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    Ok((slave as SlaveId, data as u32, index as usize, urls))
}

/// Slave-side stub speaking XML-RPC to a remote master.
pub struct RpcMasterLink {
    client: RpcClient,
}

impl RpcMasterLink {
    /// Connect to `host:port` of a [`serve_master`] endpoint.
    pub fn new(authority: impl Into<String>) -> Self {
        RpcMasterLink { client: RpcClient::new(authority) }
    }
}

impl MasterLink for RpcMasterLink {
    fn signin(&self, authority: &str, slots: usize) -> Result<SlaveId> {
        let v = self
            .client
            .call("signin", &[Value::Str(authority.to_owned()), Value::Int(slots as i64)])?;
        v.as_int().map(|i| i as SlaveId).ok_or_else(|| Error::Rpc("signin returned non-int".into()))
    }

    fn get_tasks_with(
        &self,
        slave: SlaveId,
        free: usize,
        park: Duration,
        reports: Vec<TaskReport>,
        trace: TraceBatch,
    ) -> Result<Dispatch> {
        let reports = Value::Array(reports.iter().map(TaskReport::to_value).collect());
        let mut params = vec![
            Value::Int(slave as i64),
            Value::Int(free as i64),
            Value::Int(park.as_millis() as i64),
            reports,
        ];
        // The trace delta rides as an optional trailing param: an empty
        // batch is omitted entirely, so tracing-off slaves put the exact
        // legacy request on the wire.
        if !trace.is_empty() {
            params.push(trace.to_value());
        }
        let v = self.client.call("get_task", &params)?;
        Dispatch::from_value(&v)
    }

    fn task_done(
        &self,
        slave: SlaveId,
        data: u32,
        index: usize,
        attempt: u32,
        urls: Vec<String>,
    ) -> Result<()> {
        let urls = Value::Array(urls.into_iter().map(Value::Str).collect());
        self.client.call(
            "task_done",
            &[
                Value::Int(slave as i64),
                Value::Int(data as i64),
                Value::Int(index as i64),
                urls,
                Value::Int(attempt as i64),
            ],
        )?;
        Ok(())
    }

    fn task_failed(
        &self,
        slave: SlaveId,
        data: u32,
        index: usize,
        attempt: u32,
        msg: &str,
        failed_input: Option<&str>,
    ) -> Result<()> {
        self.client.call(
            "task_failed",
            &[
                Value::Int(slave as i64),
                Value::Int(data as i64),
                Value::Int(index as i64),
                Value::Str(msg.to_owned()),
                Value::Str(failed_input.unwrap_or_default().to_owned()),
                Value::Int(attempt as i64),
            ],
        )?;
        Ok(())
    }
}

struct SlaveThread {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Result<()>>>,
}

/// A complete master/slave cluster on localhost.
///
/// Starting one mirrors the paper's launch story: start the master (it
/// binds a port), then point any number of slaves at `host:port`.
pub struct LocalCluster {
    master: Master,
    server: RpcServer,
    slaves: Vec<SlaveThread>,
    sweeper_stop: Arc<AtomicBool>,
    sweeper: Option<JoinHandle<()>>,
    program: Arc<dyn Program>,
    plane: DataPlane,
    options: SlaveOptions,
    /// `HttpClient::pool_stats()` at cluster start; [`Self::metrics`]
    /// reports the delta as this cluster's connection counters.
    pool_baseline: (u64, u64),
    /// `dataplane::snapshot()` at cluster start; [`Self::metrics`] reports
    /// the delta as this cluster's shuffle-payload counters.
    dataplane_baseline: DataPlaneStats,
}

impl LocalCluster {
    /// Start a cluster with `n_slaves` slave threads using default slave
    /// options (slot count = available cores).
    pub fn start(
        program: Arc<dyn Program>,
        n_slaves: usize,
        plane: DataPlane,
        cfg: MasterConfig,
    ) -> Result<LocalCluster> {
        Self::start_with(program, n_slaves, plane, cfg, SlaveOptions::default())
    }

    /// Start a cluster with explicit slave options — the scaling bench uses
    /// this to pin per-slave slot counts.
    pub fn start_with(
        program: Arc<dyn Program>,
        n_slaves: usize,
        plane: DataPlane,
        cfg: MasterConfig,
        mut options: SlaveOptions,
    ) -> Result<LocalCluster> {
        // The control mode is a cluster-wide property: slaves must match
        // the master or the long-poll/piggyback negotiation degrades to
        // the backward-compat fallbacks on every round trip. Compression
        // would interoperate mixed (decoders auto-detect), but a uniform
        // default keeps the benchmarks honest; add_slave_with can diverge.
        options.control = cfg.control;
        options.compress = cfg.compress;
        options.eager_shuffle = cfg.eager_shuffle;
        options.merge = cfg.merge;
        options.trace = cfg.trace;
        let master = Master::new(cfg, plane.clone())?;
        let server = serve_master(master.clone(), 0).map_err(Error::Io)?;
        let sweeper_stop = Arc::new(AtomicBool::new(false));
        let sweeper = {
            let master = master.clone();
            let stop = Arc::clone(&sweeper_stop);
            std::thread::Builder::new()
                .name("mrs-sweeper".into())
                // Condvar-driven: sleeps until the earliest possible slave
                // death, not a fixed interval; exits on finish().
                .spawn(move || master.sweeper_loop(&stop))
                .map_err(Error::Io)?
        };
        let mut cluster = LocalCluster {
            master,
            server,
            slaves: Vec::new(),
            sweeper_stop,
            sweeper: Some(sweeper),
            program,
            plane,
            options,
            pool_baseline: mrs_rpc::HttpClient::pool_stats(),
            dataplane_baseline: dataplane::snapshot(),
        };
        for _ in 0..n_slaves {
            cluster.add_slave();
        }
        Ok(cluster)
    }

    /// The master's RPC `host:port` (what you would hand to remote slaves).
    pub fn master_authority(&self) -> String {
        self.server.authority()
    }

    /// The master's HTTP `host:port` serving `/status` and `/metrics`
    /// (and, on the direct plane, source-split buckets under `/data/`).
    pub fn http_authority(&self) -> String {
        self.master.http_authority()
    }

    /// Drain the assembled job trace (master events plus every ingested
    /// slave delta, on the master clock). `None` when tracing is off;
    /// a second call returns only events recorded since the first.
    pub fn take_trace(&self) -> Option<mrs_trace::JobTrace> {
        self.master.take_trace()
    }

    /// Add one slave thread to the cluster.
    pub fn add_slave(&mut self) {
        self.add_slave_with(self.options.clone());
    }

    /// Add one slave with its own options — e.g. a divergent compression
    /// setting, to exercise mixed-mode shuffle interop.
    pub fn add_slave_with(&mut self, options: SlaveOptions) {
        let stop = Arc::new(AtomicBool::new(false));
        let authority = self.master_authority();
        let program = Arc::clone(&self.program);
        let plane = self.plane.clone();
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("mrs-slave-{}", self.slaves.len()))
            .spawn(move || {
                let link = RpcMasterLink::new(authority);
                run_slave(&link, program, plane, &options, &stop2)
            })
            .expect("spawn slave");
        self.slaves.push(SlaveThread { stop, handle: Some(handle) });
    }

    /// Fault injection: stop slave `i`'s loop so it goes silent, exactly
    /// like a crashed node. Returns false if `i` is out of range.
    pub fn kill_slave(&mut self, i: usize) -> bool {
        match self.slaves.get_mut(i) {
            Some(s) => {
                s.stop.store(true, Ordering::SeqCst);
                if let Some(h) = s.handle.take() {
                    let _ = h.join();
                }
                true
            }
            None => false,
        }
    }

    /// Number of slaves the master currently believes alive.
    pub fn live_slaves(&self) -> usize {
        self.master.live_slaves()
    }

    /// Control-channel RPC requests the master has served so far (signin,
    /// `get_task`, `task_done`, `task_failed`). The control-latency bench
    /// reads this to compare round-trip counts across control modes.
    pub fn control_requests(&self) -> u64 {
        self.server.request_count()
    }

    /// Job metrics snapshot. Connection counters are the change in the
    /// process-wide pool stats since this cluster started, so they include
    /// any unrelated HTTP traffic made by the same process in that window
    /// (in practice: this cluster's RPC polls and bucket transfers).
    pub fn metrics(&self) -> JobMetrics {
        let mut m = self.master.metrics();
        let (opened, reused) = mrs_rpc::HttpClient::pool_stats();
        m.record_connections(opened - self.pool_baseline.0, reused - self.pool_baseline.1);
        m.record_dataplane(dataplane::snapshot().since(self.dataplane_baseline));
        m
    }
}

impl JobApi for LocalCluster {
    fn local_data(&mut self, records: Vec<Record>, splits: usize) -> Result<DataId> {
        self.master.local_data(records, splits)
    }
    fn map_data(
        &mut self,
        input: DataId,
        func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId> {
        self.master.map_data(input, func, parts, combine)
    }
    fn reduce_data(&mut self, input: DataId, func: FuncId) -> Result<DataId> {
        self.master.reduce_data(input, func)
    }
    fn reduce_map_data(
        &mut self,
        input: DataId,
        reduce_func: FuncId,
        map_func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId> {
        self.master.reduce_map_data(input, reduce_func, map_func, parts, combine)
    }
    fn wait(&mut self, data: DataId) -> Result<()> {
        self.master.wait(data)
    }
    fn fetch_all(&mut self, data: DataId) -> Result<Vec<Record>> {
        self.master.fetch_all(data)
    }
    fn keep(&mut self, data: DataId) {
        self.master.keep(data)
    }
    fn discard(&mut self, data: DataId) {
        self.master.discard(data)
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        self.master.finish();
        for s in &mut self.slaves {
            s.stop.store(true, Ordering::SeqCst);
        }
        for s in &mut self.slaves {
            if let Some(h) = s.handle.take() {
                let _ = h.join();
            }
        }
        self.sweeper_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use mrs_core::kv::encode_record;
    use mrs_core::{Datum, MapReduce, Simple};
    use mrs_fs::MemFs;

    struct WordCount;

    impl MapReduce for WordCount {
        type K1 = u64;
        type V1 = String;
        type K2 = String;
        type V2 = u64;

        fn map(&self, _k: u64, v: String, emit: &mut dyn FnMut(String, u64)) {
            for w in v.split_whitespace() {
                emit(w.to_owned(), 1);
            }
        }

        fn reduce(
            &self,
            _k: &String,
            vs: &mut dyn Iterator<Item = u64>,
            emit: &mut dyn FnMut(u64),
        ) {
            emit(vs.sum());
        }

        fn has_combiner(&self) -> bool {
            true
        }
    }

    fn lines(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| encode_record(&(i as u64), &format!("w{} w{} common", i % 7, i % 3)))
            .collect()
    }

    fn sorted_counts(records: Vec<Record>) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = records
            .iter()
            .map(|(k, v)| (String::from_bytes(k).unwrap(), u64::from_bytes(v).unwrap()))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn cluster_runs_wordcount_over_rpc_direct() {
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            3,
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .unwrap();
        let mut job = Job::new(&mut cluster);
        let out = job.map_reduce(lines(50), 4, 3, true).unwrap();
        let counts = sorted_counts(out);
        assert_eq!(counts.iter().find(|(w, _)| w == "common").unwrap().1, 50);
    }

    #[test]
    fn cluster_runs_wordcount_over_rpc_shared_fs() {
        let store: Arc<dyn mrs_fs::Store> = Arc::new(MemFs::new());
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            2,
            DataPlane::SharedFs(store),
            MasterConfig::default(),
        )
        .unwrap();
        let mut job = Job::new(&mut cluster);
        let out = job.map_reduce(lines(30), 3, 2, false).unwrap();
        let counts = sorted_counts(out);
        assert_eq!(counts.iter().find(|(w, _)| w == "common").unwrap().1, 30);
    }

    #[test]
    fn job_survives_slave_death_mid_run() {
        let cfg =
            MasterConfig { slave_timeout: Duration::from_millis(150), ..MasterConfig::default() };
        let mut cluster =
            LocalCluster::start(Arc::new(Simple(WordCount)), 3, DataPlane::Direct, cfg).unwrap();

        // Submit a job large enough to still be running when we kill a slave.
        let reduced = {
            let mut job = Job::new(&mut cluster);
            let src = job.local_data(lines(400), 16).unwrap();
            let mapped = job.map_data(src, 0, 8, true).unwrap();
            job.reduce_data(mapped, 0).unwrap()
        };

        cluster.kill_slave(0);

        let mut job = Job::new(&mut cluster);
        let out = job.fetch_all(reduced).unwrap();
        let counts = sorted_counts(out);
        assert_eq!(counts.iter().find(|(w, _)| w == "common").unwrap().1, 400);
        // The sweeper eventually notices the silent slave.
        for _ in 0..50 {
            if cluster.live_slaves() == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(cluster.live_slaves(), 2);
    }

    #[test]
    fn late_joining_slave_participates() {
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            0, // start with no slaves at all
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .unwrap();
        let reduced = {
            let mut job = Job::new(&mut cluster);
            let src = job.local_data(lines(10), 2).unwrap();
            let mapped = job.map_data(src, 0, 2, false).unwrap();
            job.reduce_data(mapped, 0).unwrap()
        };
        // Nothing can run yet; now a slave arrives.
        cluster.add_slave();
        let mut job = Job::new(&mut cluster);
        let out = job.fetch_all(reduced).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn keep_alive_keeps_connections_near_peer_count() {
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            3,
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .unwrap();
        let mut job = Job::new(&mut cluster);
        // Plenty of tasks: 8 map splits × 4 partitions means 32 bucket
        // transfers plus dozens of control-channel round trips.
        let out = job.map_reduce(lines(200), 8, 4, true).unwrap();
        assert!(!out.is_empty());
        let m = cluster.metrics();
        // The whole job must run over a handful of persistent connections:
        // roughly one control connection per slave thread plus a few
        // data-plane connections per peer pair — not one per request. The
        // bound is generous because sibling tests share the process-wide
        // pool, but it still fails instantly if pooling breaks (a dial per
        // poll/transfer). Batched dispatch and idle-poll backoff keep the
        // total request count low, so reuse only needs to beat dialing,
        // not dwarf it.
        assert!(
            m.connections_opened() < 150,
            "expected O(peers) dials, got {}",
            m.connections_opened()
        );
        assert!(
            m.connections_reused() > m.connections_opened(),
            "expected reuse to dominate: opened={} reused={}",
            m.connections_opened(),
            m.connections_reused()
        );
    }

    #[test]
    fn distributed_matches_serial_output() {
        let input = lines(37);
        let serial = {
            let mut rt = crate::serial::SerialRuntime::new(Arc::new(Simple(WordCount)));
            let mut job = Job::new(&mut rt);
            sorted_counts(job.map_reduce(input.clone(), 1, 1, false).unwrap())
        };
        let distributed = {
            let mut cluster = LocalCluster::start(
                Arc::new(Simple(WordCount)),
                4,
                DataPlane::Direct,
                MasterConfig::default(),
            )
            .unwrap();
            let mut job = Job::new(&mut cluster);
            sorted_counts(job.map_reduce(input, 5, 3, true).unwrap())
        };
        assert_eq!(serial, distributed);
        // The tracing-off arm must agree byte for byte: with no trace the
        // slave's get_task request is the exact legacy wire form.
        let untraced = {
            let cfg = MasterConfig { trace: false, ..MasterConfig::default() };
            let opts = SlaveOptions { trace: false, ..SlaveOptions::default() };
            let mut cluster = LocalCluster::start_with(
                Arc::new(Simple(WordCount)),
                4,
                DataPlane::Direct,
                cfg,
                opts,
            )
            .unwrap();
            let mut job = Job::new(&mut cluster);
            let out = sorted_counts(job.map_reduce(lines(37), 5, 3, true).unwrap());
            assert!(cluster.take_trace().is_none(), "tracing off keeps no timeline");
            out
        };
        assert_eq!(serial, untraced, "tracing off changed the answer");
    }

    #[test]
    fn cluster_trace_pins_attempt_spans_and_serves_http() {
        use crate::proto::SpeculateMode;
        use mrs_trace::{Kind, Name, MASTER_PID};
        let cfg = MasterConfig { speculate: SpeculateMode::Off, ..MasterConfig::default() };
        let opts = SlaveOptions { slots: 2, ..SlaveOptions::default() };
        let mut cluster =
            LocalCluster::start_with(Arc::new(Simple(WordCount)), 2, DataPlane::Direct, cfg, opts)
                .unwrap();
        let out = {
            let mut job = Job::new(&mut cluster);
            job.map_reduce(lines(50), 4, 3, true).unwrap()
        };
        assert!(!out.is_empty());

        // The live pages answer over plain HTTP on the master's data port.
        let authority = cluster.http_authority();
        let (code, body) = mrs_rpc::HttpClient::request(&authority, "GET", "/status", &[]).unwrap();
        let status = String::from_utf8(body).unwrap();
        assert_eq!(code, 200);
        assert!(status.contains("mrs master:"), "{status}");
        assert!(status.contains("slaves: 2 signed in"), "{status}");
        let (code, body) =
            mrs_rpc::HttpClient::request(&authority, "GET", "/metrics", &[]).unwrap();
        assert_eq!(code, 200);
        let metrics = String::from_utf8(body).unwrap();
        for line in metrics.lines() {
            let mut it = line.split_whitespace();
            let (name, value) = (it.next().unwrap(), it.next().expect(line));
            assert!(it.next().is_none(), "{line}");
            assert!(name.starts_with("mrs_"), "{line}");
            value.parse::<f64>().unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(metrics.contains("mrs_slaves_alive 2"), "{metrics}");
        assert!(metrics.contains("mrs_trace_dropped_events 0"), "{metrics}");
        assert!(metrics.contains("mrs_dataplane_bytes_on_wire_total"), "{metrics}");

        let trace = cluster.take_trace().expect("tracing on by default");
        assert_eq!(trace.dropped, 0);
        let count = |n: Name, k: Kind| trace.count(|g| g.event.name == n && g.event.kind == k);
        // 4 map tasks + 3 reduce partitions, exactly one attempt each
        // with speculation off.
        assert_eq!(count(Name::Attempt, Kind::Begin), 7);
        assert_eq!(count(Name::Attempt, Kind::End), 7);
        assert_eq!(count(Name::Exec, Kind::Begin), 7);
        assert_eq!(count(Name::Fetch, Kind::Begin), 7);
        assert_eq!(count(Name::Merge, Kind::Begin), 3, "one gather per reduce");
        assert_eq!(count(Name::Dispatch, Kind::Instant), 7);
        assert_eq!(count(Name::Report, Kind::Instant), 7);
        assert_eq!(count(Name::Cancel, Kind::Instant), 0);
        // Dispatch/Report ride the master row; execution spans ride the
        // slave rows, one pid per slave process.
        assert!(trace
            .events
            .iter()
            .filter(|g| matches!(g.event.name, Name::Dispatch | Name::Report))
            .all(|g| g.pid == MASTER_PID));
        assert!(trace
            .events
            .iter()
            .filter(|g| g.event.name == Name::Attempt)
            .all(|g| g.pid == 1 || g.pid == 2));
        // Every dispatch→report window matches an attempt and is covered
        // by its spans up to control-plane latency.
        let cov = trace.coverage();
        assert_eq!(cov.len(), 7);
        for c in &cov {
            assert!(c.window_us - c.covered_us < 200_000, "uncovered gap too wide: {c:?}");
        }
        // Phase totals partition the traced wall clock exactly.
        let phases = trace.critical_path();
        assert_eq!(phases.buckets().iter().map(|(_, us)| *us).sum::<u64>(), phases.wall_us);
        let json = trace.chrome_json();
        assert!(json.contains("\"name\":\"master\""), "missing master row");
        assert!(json.contains("\"name\":\"slave 0\"") && json.contains("\"name\":\"slave 1\""));
        assert!(json.contains("worker 0") && json.contains("worker 1"), "one lane per slot");
    }

    #[test]
    fn cancelled_speculative_loser_traces_cancel_not_report() {
        use mrs_trace::{Kind, Name, MASTER_PID};
        // Both slaves carry the straggler injection: the first attempt of
        // map task 0 (data 1) sleeps far past the speculation cutoff, so
        // the other slave gets a backup, wins, and the sleeper is
        // cancelled (same setup as the straggler bench, scaled down).
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            0,
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .unwrap();
        let straggly =
            SlaveOptions { slots: 2, test_delays: vec![(1, 0, 600)], ..SlaveOptions::default() };
        cluster.add_slave_with(straggly.clone());
        cluster.add_slave_with(straggly);
        let out = {
            let mut job = Job::new(&mut cluster);
            job.map_reduce(lines(200), 8, 2, true).unwrap()
        };
        assert!(!out.is_empty());
        let m = cluster.metrics();
        assert!(m.speculative_wins() >= 1, "backup never won: {m:?}");
        assert!(m.cancelled_tasks() >= 1);

        // The master row shows the speculative dispatch, the winner's
        // report, and the loser's cancellation.
        let mut trace = cluster.take_trace().expect("tracing on by default");
        let master_cancels: Vec<_> = trace
            .events
            .iter()
            .filter(|g| g.pid == MASTER_PID && g.event.name == Name::Cancel)
            .map(|g| g.event.tag)
            .collect();
        assert!(!master_cancels.is_empty(), "no cancel order on the master row");
        assert!(
            trace.count(|g| g.pid == MASTER_PID && g.event.name == Name::Speculate) >= 1,
            "no speculative dispatch recorded"
        );
        // The cancelled attempt never commits: no Report instant under
        // the loser's attempt id.
        for tag in &master_cancels {
            assert_eq!(
                trace.count(|g| g.pid == MASTER_PID
                    && g.event.name == Name::Report
                    && g.event.tag.key() == tag.key()),
                0,
                "a cancelled attempt also reported: {tag:?}"
            );
        }
        // The sleeping loser wakes after the job is done, notices the
        // cancel, and ships its Cancel instant (plus the closed attempt
        // span) on a later poll — wait for it.
        let loser = master_cancels[0];
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let slave_cancelled = trace.count(|g| {
                g.pid != MASTER_PID
                    && g.event.name == Name::Cancel
                    && g.event.kind == Kind::Instant
                    && g.event.tag.key() == loser.key()
            });
            if slave_cancelled >= 1 {
                // The loser's attempt span is closed by an End, not left
                // dangling: cancel is an orderly outcome on the timeline.
                assert!(
                    trace.count(|g| g.pid != MASTER_PID
                        && g.event.name == Name::Attempt
                        && g.event.kind == Kind::End
                        && g.event.tag.key() == loser.key())
                        >= 1
                );
                break;
            }
            assert!(std::time::Instant::now() < deadline, "loser never traced its cancel");
            std::thread::sleep(Duration::from_millis(50));
            if let Some(more) = cluster.take_trace() {
                trace.events.extend(more.events);
            }
        }
    }
}
