//! The master: task scheduling, affinity, fault tolerance.
//!
//! Transport-agnostic core of the master/slave implementation: the RPC glue
//! in [`crate::distributed`] maps `signin` / `get_task` / `task_done` /
//! `task_failed` calls straight onto these methods, and the unit tests
//! drive them directly. Responsibilities, per §IV:
//!
//! * hand out map/reduce tasks to polling slaves, dispatching each task as
//!   soon as *its own* inputs exist (operation pipelining, Fig. 2),
//! * prefer to "assign corresponding tasks to the same processor from one
//!   iteration to the next" (task→slave affinity, keyed by task kind,
//!   function, and index),
//! * detect silent slaves by poll timeout, re-queue their running tasks,
//!   and — when intermediate data lived on the dead slave (direct data
//!   plane) — re-execute the tasks that produced it,
//! * cap per-task retry attempts so a poisoned task fails the job instead
//!   of looping forever.
//!
//! The control plane is event-driven: a `get_tasks` with nothing runnable
//! parks server-side on a dispatch condvar and is woken precisely when a
//! state transition (a completion crossing an operation barrier, a new
//! operation, a dead slave's requeue) makes work available, with
//! `Assignment::Wait` only as the long-poll timeout fallback. Completion
//! reports may ride piggybacked on `get_tasks` calls, and the driver-side
//! `wait`/`fetch_all`/sweeper loops sleep on the completion condvar until
//! the earliest instant a slave could cross the death timeout — no loop
//! here discovers state by fixed-interval sleep.

use crate::data::{split_evenly, DataId};
use crate::dataplane;
use crate::job::JobApi;
use crate::metrics::JobMetrics;
use crate::proto::{
    fetch_records, Assignment, CancelOrder, ControlMode, DataPlane, Dispatch, EagerFragment,
    SpeculateMode, TaskKind, TaskMsg, TaskReport, TraceBatch,
};
use mrs_codec::CompressMode;
use mrs_core::{Error, FuncId, MergeMode, Record, Result};
use mrs_fs::format::write_bucket_bytes;
use mrs_fs::Store;
use mrs_rpc::{DataServer, FrameCache, Pages, Response};
use mrs_trace::{ClockSync, GlobalEvent, JobTrace, Recorder, TraceHandle, MASTER_PID};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Identifies a signed-in slave.
pub type SlaveId = u32;

/// Master tuning knobs.
#[derive(Clone, Debug)]
pub struct MasterConfig {
    /// A slave silent for longer than this is presumed dead.
    pub slave_timeout: Duration,
    /// Maximum execution attempts per task before the job fails.
    pub max_attempts: u32,
    /// Prefer the slave that ran the corresponding task last time.
    pub use_affinity: bool,
    /// How slaves discover state changes (long-poll vs legacy polling).
    pub control: ControlMode,
    /// Upper bound on how long a `get_tasks` request may park server-side
    /// before returning `Wait`. Also clamped to `slave_timeout / 2` so a
    /// parked slave still heartbeats; must stay well below the RPC
    /// client's I/O timeout (10s) or held requests would look like hangs.
    pub long_poll_timeout: Duration,
    /// Shuffle payload compression policy for the master's own outputs
    /// (source splits). [`crate::LocalCluster`] propagates the same
    /// setting to its slaves.
    pub compress: CompressMode,
    /// Disable dataset lifetime GC (`--mrs-keep-data`): intermediates stay
    /// fetchable forever, and fault-tolerant re-execution never finds its
    /// inputs reclaimed.
    pub keep_data: bool,
    /// Publish map-output bucket URLs to slaves as each map task completes
    /// (`--mrs-eager-shuffle`), letting reduce-input transfer overlap with
    /// map execution. Off (`off`) preserves the classic barrier-then-fetch
    /// path as a first-class oracle. Direct data plane only.
    pub eager_shuffle: bool,
    /// Speculative execution policy (`--mrs-speculate`): when a task wave
    /// is nearly drained and a poller has idle slots, a running task whose
    /// elapsed time exceeds the configured multiple of the operation's
    /// median completed-task runtime gets a backup attempt on a different
    /// slave; first completion wins and the loser is cancelled.
    pub speculate: SpeculateMode,
    /// How reduce-like tasks assemble their input (`--mrs-merge`):
    /// streaming k-way merge over sorted runs (default) or the legacy
    /// concatenate-and-sort oracle. [`crate::LocalCluster`] propagates
    /// the setting to its slaves.
    pub merge: MergeMode,
    /// Record task-attempt trace events (on by default — the recorder is
    /// bounded and lock-cheap, and `--mrs-no-trace` exists to prove it).
    /// Export is separately opt-in via [`Master::take_trace`] /
    /// `--mrs-trace <path>`. [`crate::LocalCluster`] propagates the
    /// setting to its slaves.
    pub trace: bool,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            slave_timeout: Duration::from_secs(2),
            max_attempts: 4,
            use_affinity: true,
            control: ControlMode::default(),
            long_poll_timeout: Duration::from_secs(1),
            compress: CompressMode::default(),
            keep_data: false,
            eager_shuffle: true,
            speculate: SpeculateMode::default(),
            merge: MergeMode::default(),
            trace: true,
        }
    }
}

/// One live execution attempt of a task. Speculative execution means a
/// slot can hold several attempts racing on different slaves; the first
/// completion commits and the rest are cancelled.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Attempt {
    /// Unique per-slot id (1-based, never reused): the task message carries
    /// it out and the completion report echoes it back, so a report from a
    /// cancelled or superseded attempt is recognizably stale.
    id: u32,
    slave: SlaveId,
    started: Instant,
    /// Dispatched as a straggler backup rather than a primary attempt.
    speculative: bool,
}

#[derive(Clone, Debug, PartialEq)]
enum SlotState {
    /// Not running and not done (may or may not be dispatchable yet).
    Pending,
    /// At least one attempt is running (more than one while a speculative
    /// backup races the original).
    Running(Vec<Attempt>),
    /// Completed; `owner` is the slave holding the data on the direct data
    /// plane (None when outputs live on the shared filesystem).
    Done { urls: Vec<String>, owner: Option<SlaveId> },
}

#[derive(Clone, Debug)]
struct TaskSlot {
    state: SlotState,
    /// Charged execution attempts, compared against `max_attempts` (fetch
    /// failures are forgiven and decrement this).
    attempts: u32,
    /// Monotonic attempt-id generator; unlike `attempts` it never goes
    /// down, so ids are never reused within a slot.
    next_attempt: u32,
}

impl TaskSlot {
    fn new() -> Self {
        TaskSlot { state: SlotState::Pending, attempts: 0, next_attempt: 0 }
    }
}

#[derive(Debug)]
enum MDs {
    /// Job input, already materialized as bucket files; one URL per split.
    Source {
        urls: Vec<String>,
    },
    /// A queued/running/complete operation.
    Op {
        input: DataId,
        kind: TaskKind,
        /// Program function (the reduce function for fused ops).
        func: FuncId,
        /// Map function of a fused `ReduceMap` op; 0 otherwise.
        map_func: FuncId,
        parts: usize,
        combine: bool,
        tasks: Vec<TaskSlot>,
        done_count: usize,
        /// Wall-clock runtimes (µs) of this op's committed attempts — the
        /// streaming estimate whose median sets the straggler cutoff for
        /// speculative backups.
        runtimes: Vec<u64>,
    },
    Discarded,
}

/// The trace-vocabulary operation kind of a task kind.
fn trace_op(kind: TaskKind) -> mrs_trace::Op {
    match kind {
        TaskKind::Map => mrs_trace::Op::Map,
        TaskKind::Reduce => mrs_trace::Op::Reduce,
        TaskKind::ReduceMap => mrs_trace::Op::ReduceMap,
    }
}

/// Median of a (small, unsorted) runtime sample; `None` when empty.
fn median_micros(samples: &[u64]) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    Some(sorted[sorted.len() / 2])
}

impl MDs {
    fn complete(&self) -> bool {
        match self {
            MDs::Source { .. } | MDs::Discarded => true,
            MDs::Op { tasks, done_count, .. } => *done_count == tasks.len(),
        }
    }
}

struct SlaveInfo {
    authority: String,
    alive: bool,
    last_seen: Instant,
    /// Capacity advertised at signin: the maximum number of assignments
    /// the slave holds at once (compute workers plus prefetch buffer).
    slots: usize,
}

struct MState {
    datasets: Vec<MDs>,
    /// Remaining registered consumers per dataset (index-aligned with
    /// `datasets`): incremented when an op is queued over the dataset,
    /// decremented when that op completes. Lifetime GC frees a dataset
    /// when its count returns to zero.
    consumers: Vec<u32>,
    /// Datasets pinned by `keep` — exempt from lifetime GC until an
    /// explicit discard.
    pins: HashSet<u32>,
    /// Per-slave frame-cache purge orders not yet delivered; drained onto
    /// the next [`Master::get_dispatch`] answer for that slave.
    pending_purge: Vec<Vec<String>>,
    /// Per-slave eager-shuffle fragment announcements not yet delivered:
    /// completed map-output bucket URLs, published to the slave predicted
    /// to reduce that partition, drained like `pending_purge`.
    pending_eager: Vec<Vec<EagerFragment>>,
    /// Per-slave attempt-cancellation orders not yet delivered: issued at
    /// the commit point for every losing attempt of a won race, drained
    /// like `pending_purge`.
    pending_cancel: Vec<Vec<CancelOrder>>,
    slaves: Vec<SlaveInfo>,
    /// (kind, func, index) → slave that last completed that task shape.
    /// Keying by kind means a fused `ReduceMap` op carries its own claims
    /// from one iteration to the next, exactly like the map/reduce pair it
    /// replaced.
    affinity: HashMap<(TaskKind, FuncId, usize), SlaveId>,
    error: Option<String>,
    finished: bool,
    /// `get_tasks` requests currently parked on `dispatch_cv`. Wakes are
    /// recorded (and broadcast) only while this is non-zero, so the
    /// `wakeups` metric counts precise wakes, not every state change.
    parked: usize,
    metrics: JobMetrics,
}

/// Master-side trace state: its own recorder (dispatch/report/cancel
/// instants, one shared handle with per-slave lanes) plus the ingest
/// side that maps slave-shipped batches onto the master clock.
struct MasterTrace {
    rec: Recorder,
    handle: TraceHandle,
    ingest: Mutex<TraceIngest>,
}

#[derive(Default)]
struct TraceIngest {
    /// Per-slave clock-offset estimators, fed by batch RTT samples.
    sync: HashMap<SlaveId, ClockSync>,
    /// Slave events already mapped onto the master clock.
    remote: Vec<GlobalEvent>,
    /// Ring-overflow losses reported by slaves.
    dropped: u64,
}

impl MasterTrace {
    fn new() -> MasterTrace {
        let rec = Recorder::new();
        let handle = rec.handle(0);
        MasterTrace { rec, handle, ingest: Mutex::new(TraceIngest::default()) }
    }
}

struct MasterShared {
    cfg: MasterConfig,
    state: Mutex<MState>,
    /// Completion condvar: driver `wait`/`fetch_all` and the sweeper.
    cv: Condvar,
    /// Dispatch condvar: parked `get_tasks` requests (long-poll mode).
    dispatch_cv: Condvar,
    plane: DataPlane,
    /// Master-local frame cache for source splits (direct plane): each
    /// split is encoded once and served zero-copy to every reader.
    source_frames: Arc<FrameCache>,
    /// Serves `source_frames` to slaves (direct plane) and the live
    /// `/status` + `/metrics` pages (both planes). Created right after
    /// the shared state exists — the pages closure needs a weak
    /// back-reference — so it is always set by the time `new` returns.
    source_server: OnceLock<DataServer>,
    /// Trace recording (None when `cfg.trace` is off).
    trace: Option<MasterTrace>,
}

/// The master. Clone-cheap handle; all state is shared.
#[derive(Clone)]
pub struct Master {
    shared: Arc<MasterShared>,
}

impl Master {
    /// Create a master for the given data plane.
    pub fn new(cfg: MasterConfig, plane: DataPlane) -> Result<Master> {
        let source_frames = Arc::new(FrameCache::new());
        let trace = cfg.trace.then(MasterTrace::new);
        let master = Master {
            shared: Arc::new(MasterShared {
                cfg,
                state: Mutex::new(MState {
                    datasets: Vec::new(),
                    consumers: Vec::new(),
                    pins: HashSet::new(),
                    pending_purge: Vec::new(),
                    pending_eager: Vec::new(),
                    pending_cancel: Vec::new(),
                    slaves: Vec::new(),
                    affinity: HashMap::new(),
                    error: None,
                    finished: false,
                    parked: 0,
                    metrics: JobMetrics::default(),
                }),
                cv: Condvar::new(),
                dispatch_cv: Condvar::new(),
                plane,
                source_frames,
                source_server: OnceLock::new(),
                trace,
            }),
        };
        // The server outlives neither the master (Weak) nor a request in
        // flight (upgrade); it serves source buckets on the direct plane
        // and the live introspection pages on both planes.
        let weak = Arc::downgrade(&master.shared);
        let pages: Pages = Arc::new(move |page: &str| {
            let shared = weak.upgrade()?;
            let m = Master { shared };
            let (text, content_type) = match page {
                "status" => (m.status_page(), "text/plain; charset=utf-8"),
                "metrics" => (m.metrics_page(), "text/plain; version=0.0.4"),
                _ => return None,
            };
            Some(Response::ok(content_type, Arc::from(text.into_bytes())))
        });
        let server = DataServer::serve_with_pages(0, master.shared.source_frames.provider(), pages)
            .map_err(Error::Io)?;
        let _ = master.shared.source_server.set(server);
        Ok(master)
    }

    /// `host:port` serving this master's `/status` and `/metrics` pages
    /// (and its source buckets on the direct plane).
    pub fn http_authority(&self) -> String {
        self.shared.source_server.get().expect("server started at construction").authority()
    }

    /// Human-readable live state: job phase, per-slave rows, per-dataset
    /// task progress. Served as `/status` by the master's HTTP server.
    pub fn status_page(&self) -> String {
        let st = self.shared.state.lock();
        let mut out = String::with_capacity(1024);
        let phase = match (&st.error, st.finished) {
            (Some(e), _) => format!("error: {e}"),
            (None, true) => "finished".to_owned(),
            (None, false) => "running".to_owned(),
        };
        out.push_str(&format!("mrs master: {phase}\n"));
        out.push_str(&format!(
            "slaves: {} signed in, {} alive\n",
            st.slaves.len(),
            st.slaves.iter().filter(|s| s.alive).count()
        ));
        for (id, s) in st.slaves.iter().enumerate() {
            out.push_str(&format!(
                "  slave {id}: {} {} slots={} last_seen={}ms ago\n",
                s.authority,
                if s.alive { "alive" } else { "dead" },
                s.slots,
                s.last_seen.elapsed().as_millis()
            ));
        }
        out.push_str(&format!("datasets: {}\n", st.datasets.len()));
        for (d, ds) in st.datasets.iter().enumerate() {
            match ds {
                MDs::Source { urls } => {
                    out.push_str(&format!("  data {d}: source, {} split(s)\n", urls.len()));
                }
                MDs::Discarded => out.push_str(&format!("  data {d}: discarded\n")),
                MDs::Op { kind, tasks, done_count, .. } => {
                    let running =
                        tasks.iter().filter(|t| matches!(t.state, SlotState::Running(_))).count();
                    out.push_str(&format!(
                        "  data {d}: {} {done_count}/{} done, {running} running\n",
                        match kind {
                            TaskKind::Map => "map",
                            TaskKind::Reduce => "reduce",
                            TaskKind::ReduceMap => "reducemap",
                        },
                        tasks.len(),
                    ));
                }
            }
        }
        out.push_str(&format!(
            "tasks executed: {}, retries: {}\n",
            st.metrics.tasks_executed(),
            st.metrics.tasks_retried()
        ));
        out
    }

    /// Prometheus text exposition over the job metrics, the process-wide
    /// data-plane counters, and a few master gauges. Served as
    /// `/metrics` by the master's HTTP server.
    pub fn metrics_page(&self) -> String {
        let st = self.shared.state.lock();
        let mut out = st.metrics.to_prometheus();
        out.push_str(&format!(
            "mrs_slaves_alive {}\n",
            st.slaves.iter().filter(|s| s.alive).count()
        ));
        out.push_str(&format!("mrs_slaves_signed_in {}\n", st.slaves.len()));
        drop(st);
        out.push_str(&dataplane::snapshot().to_prometheus());
        if let Some(t) = &self.shared.trace {
            out.push_str(&format!("mrs_trace_dropped_events {}\n", t.rec.dropped_events()));
        }
        out
    }

    /// Record a master-side instant on the lane of the slave it concerns.
    fn trace_instant(&self, slave: SlaveId, name: mrs_trace::Name, tag: mrs_trace::Tag) {
        if let Some(t) = &self.shared.trace {
            t.handle.instant_on(slave, name, tag);
        }
    }

    /// Fold a slave's piggybacked trace batch into the job timeline,
    /// mapping its timestamps onto the master clock via the batch's RTT
    /// sample. No-op when tracing is off or the batch is empty.
    pub fn ingest_trace(&self, slave: SlaveId, batch: &TraceBatch) {
        let Some(t) = &self.shared.trace else { return };
        if batch.is_empty() {
            return;
        }
        let local_now = t.rec.now_us();
        let mut ing = t.ingest.lock();
        let TraceIngest { sync, remote, dropped } = &mut *ing;
        let cs = sync.entry(slave).or_default();
        cs.observe(batch.sent_at_us, batch.rtt_us, local_now);
        remote.extend(batch.events.iter().map(|e| GlobalEvent {
            pid: slave + 1,
            event: mrs_trace::Event { at_us: cs.map_monotone(e.at_us), ..*e },
        }));
        *dropped += batch.dropped;
    }

    /// Take the job timeline assembled so far: master instants plus every
    /// ingested slave event, time-sorted on the master clock. Drains the
    /// recorder — a second call returns only what happened since. `None`
    /// when tracing is off.
    pub fn take_trace(&self) -> Option<JobTrace> {
        let t = self.shared.trace.as_ref()?;
        let (master_events, master_dropped) = t.rec.drain();
        let mut events: Vec<GlobalEvent> =
            master_events.into_iter().map(|event| GlobalEvent { pid: MASTER_PID, event }).collect();
        let mut ing = t.ingest.lock();
        events.append(&mut ing.remote);
        let dropped = master_dropped + std::mem::take(&mut ing.dropped);
        drop(ing);
        events.sort_by_key(|e| e.event.at_us);
        Some(JobTrace { events, dropped })
    }

    /// The shared store, if the data plane is a shared filesystem.
    fn shared_store(&self) -> Option<Arc<dyn Store>> {
        match &self.shared.plane {
            DataPlane::SharedFs(s) => Some(Arc::clone(s)),
            DataPlane::Direct => None,
        }
    }

    /// Register a slave advertising `slots` task slots; returns its id.
    /// `slots` is clamped to at least 1.
    pub fn signin(&self, authority: &str, slots: usize) -> SlaveId {
        let mut st = self.shared.state.lock();
        st.slaves.push(SlaveInfo {
            authority: authority.to_owned(),
            alive: true,
            last_seen: Instant::now(),
            slots: slots.max(1),
        });
        st.pending_purge.push(Vec::new());
        st.pending_eager.push(Vec::new());
        st.pending_cancel.push(Vec::new());
        let id = st.slaves.len() as SlaveId - 1;
        self.shared.cv.notify_all();
        id
    }

    /// Number of slaves currently considered alive.
    pub fn live_slaves(&self) -> usize {
        self.shared.state.lock().slaves.iter().filter(|s| s.alive).count()
    }

    /// Metrics snapshot.
    pub fn metrics(&self) -> JobMetrics {
        self.shared.state.lock().metrics.clone()
    }

    /// Mark the job finished: polling slaves are told to exit.
    pub fn finish(&self) {
        let mut st = self.shared.state.lock();
        st.finished = true;
        Self::wake_dispatch(&mut st, &self.shared.dispatch_cv);
        drop(st);
        self.shared.cv.notify_all();
    }

    /// The configuration this master was built with.
    pub fn config(&self) -> &MasterConfig {
        &self.shared.cfg
    }

    fn touch(st: &mut MState, slave: SlaveId) {
        if let Some(info) = st.slaves.get_mut(slave as usize) {
            info.last_seen = Instant::now();
            info.alive = true;
        }
    }

    /// Wake any parked `get_tasks` requests: a state transition may have
    /// made work runnable (or ended the job). Recorded only when someone
    /// is actually parked, so `wakeups` measures precise wakes.
    fn wake_dispatch(st: &mut MState, dispatch_cv: &Condvar) {
        if st.parked > 0 {
            st.metrics.record_wakeup();
            dispatch_cv.notify_all();
        }
    }

    /// A slave polls for a single task. Unit-test convenience; the real
    /// slave polls with its free slot count via [`Master::get_tasks`].
    pub fn get_task(&self, slave: SlaveId) -> Assignment {
        self.get_tasks(slave, 1)
    }

    /// A slave with `free_slots` idle slots polls for work. Grants up to
    /// `min(free_slots, capacity − in_flight)` tasks in one round trip,
    /// where `capacity` is the slot count the slave advertised at signin —
    /// filling an N-slot slave costs one poll, not N.
    pub fn get_tasks(&self, slave: SlaveId, free_slots: usize) -> Assignment {
        self.get_tasks_with(slave, free_slots, Duration::ZERO, &[])
    }

    /// Full-form poll. First applies any piggybacked completion `reports`
    /// (each one a `task_done` that rode along instead of costing its own
    /// RPC — and applied *before* the dispatch budget is computed, so the
    /// slots they free are grantable in this same round trip). Then tries
    /// to dispatch; with nothing runnable and a non-zero `park`, the
    /// request parks server-side on the dispatch condvar and is woken
    /// precisely when a state transition makes work available. `Wait` is
    /// returned only when the (clamped) park deadline expires.
    pub fn get_tasks_with(
        &self,
        slave: SlaveId,
        free_slots: usize,
        park: Duration,
        reports: &[TaskReport],
    ) -> Assignment {
        let mut st = self.shared.state.lock();
        Self::touch(&mut st, slave);
        if !reports.is_empty() {
            for r in reports {
                self.apply_done_locked(&mut st, slave, r.data, r.index, r.attempt, r.urls.clone());
            }
            st.metrics.record_piggybacked_reports(reports.len());
            // The reports are themselves state transitions: another parked
            // slave may now have runnable work (a barrier may have cleared).
            Self::wake_dispatch(&mut st, &self.shared.dispatch_cv);
            self.shared.cv.notify_all();
        }
        // Parking is long-poll behaviour; legacy pollers get `Wait` at once.
        // The clamp to `slave_timeout / 2` keeps a parked slave heartbeating
        // at least twice per death timeout.
        let park = match self.shared.cfg.control {
            ControlMode::LongPoll => {
                park.min(self.shared.cfg.long_poll_timeout).min(self.shared.cfg.slave_timeout / 2)
            }
            ControlMode::Poll => Duration::ZERO,
        };
        let deadline = Instant::now() + park;
        let mut parked = false;
        loop {
            if st.finished || st.error.is_some() {
                if parked {
                    st.parked -= 1;
                }
                return Assignment::Exit;
            }
            if let Some(granted) = self.dispatch_locked(&mut st, slave, free_slots) {
                if parked {
                    st.parked -= 1;
                }
                return Assignment::Tasks(granted);
            }
            // Undelivered eager fragments or cancel orders must not sit
            // behind the park: fragments exist to start transfers while
            // maps still run, and a cancel order's whole value is freeing
            // the doomed slot *now* — so answer `Wait` at once and let
            // `get_dispatch` attach them.
            if st.pending_eager.get(slave as usize).is_some_and(|v| !v.is_empty())
                || st.pending_cancel.get(slave as usize).is_some_and(|v| !v.is_empty())
            {
                if parked {
                    st.parked -= 1;
                }
                return Assignment::Wait;
            }
            if park.is_zero() || Instant::now() >= deadline {
                if parked {
                    st.parked -= 1;
                    st.metrics.record_longpoll_timeout();
                }
                return Assignment::Wait;
            }
            if !parked {
                parked = true;
                st.parked += 1;
                st.metrics.record_longpoll_park();
            }
            // A running task becomes backup-eligible purely by time passing
            // — no state transition fires, so no wake would. Cap the sleep
            // at the earliest instant a task could cross the straggler
            // cutoff for this poller; the retried dispatch then grants the
            // backup within one wake of eligibility.
            let wake = match self.next_speculation_deadline(&st, slave) {
                Some(spec) => deadline.min(spec),
                None => deadline,
            };
            self.shared.dispatch_cv.wait_until(&mut st, wake);
            // Parked is not silent: the request being held here is proof of
            // life, so refresh `last_seen` on every wake.
            Self::touch(&mut st, slave);
        }
    }

    /// Try to grant tasks under the lock; `None` when nothing is runnable
    /// for this slave right now (the park/`Wait` case).
    fn dispatch_locked(
        &self,
        st: &mut MState,
        slave: SlaveId,
        free_slots: usize,
    ) -> Option<Vec<TaskMsg>> {
        let capacity = st.slaves.get(slave as usize).map(|s| s.slots)?;

        // In-flight counts are derived from task states on every poll, not
        // kept as counters: a sweep's requeue or a duplicate/late report can
        // therefore never leave the accounting stale. Every racing attempt
        // occupies a slot on its slave, so attempts are counted, not slots.
        let mut in_flight = vec![0usize; st.slaves.len()];
        for ds in &st.datasets {
            let MDs::Op { tasks, .. } = ds else { continue };
            for slot in tasks {
                if let SlotState::Running(attempts) = &slot.state {
                    for a in attempts {
                        if let Some(n) = in_flight.get_mut(a.slave as usize) {
                            *n += 1;
                        }
                    }
                }
            }
        }

        let budget = free_slots.min(capacity.saturating_sub(in_flight[slave as usize]));
        let mut granted: Vec<TaskMsg> = Vec::new();
        while granted.len() < budget {
            // Primary work first; with none runnable, offer the idle slot
            // to a straggling task as a speculative backup.
            let (data, index, stolen, speculative) = match Self::pick_task(st, slave, &in_flight) {
                Some((d, i, s)) => (d, i, s, false),
                None => match self.pick_backup(st, slave) {
                    Some((d, i)) => (d, i, false, true),
                    None => break,
                },
            };
            let mut msg = {
                let MDs::Op { input, kind, func, map_func, parts, combine, .. } =
                    &st.datasets[data.0 as usize]
                else {
                    unreachable!("candidates only contain ops");
                };
                let inputs = self.input_urls(st, *input, *kind, index);
                TaskMsg {
                    data: data.0,
                    index,
                    kind: *kind,
                    func: *func,
                    map_func: *map_func,
                    parts: if kind.is_map_like() { *parts } else { 1 },
                    combine: *combine,
                    attempt: 0,
                    inputs,
                }
            };
            if speculative {
                st.metrics.record_speculative_launch();
            } else {
                if self.shared.cfg.use_affinity {
                    let MDs::Op { kind, func, .. } = &st.datasets[data.0 as usize] else {
                        unreachable!()
                    };
                    if let Some(&pref) = st.affinity.get(&(*kind, *func, index)) {
                        st.metrics.record_affinity(pref == slave);
                    }
                }
                if stolen {
                    st.metrics.record_steal();
                }
            }
            let MDs::Op { tasks, .. } = &mut st.datasets[data.0 as usize] else { unreachable!() };
            let slot = &mut tasks[index];
            slot.next_attempt += 1;
            slot.attempts += 1;
            msg.attempt = slot.next_attempt;
            let attempt =
                Attempt { id: slot.next_attempt, slave, started: Instant::now(), speculative };
            match &mut slot.state {
                SlotState::Running(attempts) if speculative => attempts.push(attempt),
                state => *state = SlotState::Running(vec![attempt]),
            }
            in_flight[slave as usize] += 1;
            let tag = mrs_trace::Tag::task(trace_op(msg.kind), msg.data, msg.index, msg.attempt);
            self.trace_instant(slave, mrs_trace::Name::Dispatch, tag);
            if speculative {
                self.trace_instant(slave, mrs_trace::Name::Speculate, tag);
            }
            granted.push(msg);
        }
        if granted.is_empty() {
            return None;
        }
        let total: usize = in_flight.iter().sum();
        st.metrics.record_dispatch(granted.len(), total);
        Some(granted)
    }

    /// Choose the next task for `slave`. Priority order: a task whose
    /// corresponding task ran on this slave last iteration (affinity), then
    /// a task nobody alive has a claim to, and only then — when every
    /// remaining candidate belongs to a live owner — an occupancy-driven
    /// steal from the busiest owner, gated on the poller being *strictly*
    /// less loaded (fractional occupancy, so 2-busy-of-4-slots loses to
    /// 0-busy-of-1-slot). An equally-idle owner keeps its claim: it will
    /// take the task on its own next poll, preserving affinity for free.
    /// Returns `(data, index, was_steal)`.
    fn pick_task(
        st: &MState,
        slave: SlaveId,
        in_flight: &[usize],
    ) -> Option<(DataId, usize, bool)> {
        // Collect dispatchable tasks: Pending with satisfied inputs.
        let mut candidates: Vec<(DataId, usize)> = Vec::new();
        for (d, ds) in st.datasets.iter().enumerate() {
            let MDs::Op { input, kind, tasks, .. } = ds else { continue };
            for (i, slot) in tasks.iter().enumerate() {
                if slot.state != SlotState::Pending {
                    continue;
                }
                if Self::input_ready(st, *input, *kind, i) {
                    candidates.push((DataId(d as u32), i));
                }
            }
        }
        let &first = candidates.first()?;

        let owner_of = |d: DataId, i: usize| -> Option<SlaveId> {
            let MDs::Op { kind, func, .. } = &st.datasets[d.0 as usize] else { return None };
            st.affinity.get(&(*kind, *func, i)).copied()
        };
        let live = |s: SlaveId| st.slaves.get(s as usize).map(|x| x.alive).unwrap_or(false);
        // Fractional load (busy, slots) for cross-multiplied comparison.
        let load = |s: SlaveId| -> (usize, usize) {
            let slots = st.slaves.get(s as usize).map(|x| x.slots.max(1)).unwrap_or(1);
            (in_flight.get(s as usize).copied().unwrap_or(0), slots)
        };

        if !st.affinity.is_empty() {
            // 1. A task this slave has an affinity claim to.
            for &(d, i) in &candidates {
                if owner_of(d, i) == Some(slave) {
                    return Some((d, i, false));
                }
            }
            // 2. A task with no claim, or whose claimant is dead.
            for &(d, i) in &candidates {
                match owner_of(d, i) {
                    None => return Some((d, i, false)),
                    Some(o) if !live(o) => return Some((d, i, false)),
                    Some(_) => {}
                }
            }
            // 3. Every candidate is claimed by a live slave: steal from the
            //    (fractionally) busiest owner, if busier than the poller.
            let (my_busy, my_slots) = load(slave);
            let mut best: Option<((DataId, usize), (usize, usize))> = None;
            for &(d, i) in &candidates {
                let Some(o) = owner_of(d, i) else { continue };
                let (o_busy, o_slots) = load(o);
                if o_busy * my_slots <= my_busy * o_slots {
                    continue; // owner not strictly busier than us: leave it
                }
                let better = match best {
                    None => true,
                    Some((_, (b_busy, b_slots))) => o_busy * b_slots > b_busy * o_slots,
                };
                if better {
                    best = Some(((d, i), (o_busy, o_slots)));
                }
            }
            return best.map(|((d, i), _)| (d, i, true));
        }
        Some((first.0, first.1, false))
    }

    fn input_ready(st: &MState, input: DataId, kind: TaskKind, index: usize) -> bool {
        match &st.datasets[input.0 as usize] {
            MDs::Source { .. } => kind == TaskKind::Map,
            MDs::Op { kind: input_kind, tasks, done_count, .. } => {
                if kind == TaskKind::Map {
                    // map task i needs split i of a reduce output
                    !input_kind.is_map_like()
                        && matches!(
                            tasks.get(index).map(|t| &t.state),
                            Some(SlotState::Done { .. })
                        )
                } else {
                    // reduce-like tasks (plain or fused) need the whole
                    // map-like output to gather their partition
                    input_kind.is_map_like() && *done_count == tasks.len()
                }
            }
            MDs::Discarded => false,
        }
    }

    fn input_urls(&self, st: &MState, input: DataId, kind: TaskKind, index: usize) -> Vec<String> {
        match &st.datasets[input.0 as usize] {
            MDs::Source { urls } => vec![urls[index].clone()],
            MDs::Op { tasks, .. } => {
                if kind == TaskKind::Map {
                    // reduce output split `index`: its single url
                    match &tasks[index].state {
                        SlotState::Done { urls, .. } => urls.clone(),
                        _ => Vec::new(),
                    }
                } else {
                    // partition `index` of every map-like task
                    tasks
                        .iter()
                        .filter_map(|t| match &t.state {
                            SlotState::Done { urls, .. } => urls.get(index).cloned(),
                            _ => None,
                        })
                        .collect()
                }
            }
            MDs::Discarded => Vec::new(),
        }
    }

    /// Straggler candidates for speculation: running single-attempt tasks
    /// of ops past the wave threshold (≥ 75% complete), each paired with
    /// its cutoff instant — `started + threshold × median completed
    /// runtime`. Empty when speculation is off or no runtime sample exists
    /// yet. One backup per task at most: racing more than two attempts
    /// buys little and burns a slot.
    fn straggler_candidates(&self, st: &MState) -> Vec<(DataId, usize, Attempt, Instant)> {
        let SpeculateMode::On { threshold } = self.shared.cfg.speculate else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (d, ds) in st.datasets.iter().enumerate() {
            let MDs::Op { input, kind, tasks, done_count, runtimes, .. } = ds else { continue };
            if *done_count == 0 || *done_count * 4 < tasks.len() * 3 {
                continue;
            }
            let Some(median) = median_micros(runtimes) else { continue };
            let cutoff = Duration::from_micros((median as f64 * threshold) as u64);
            for (i, slot) in tasks.iter().enumerate() {
                let SlotState::Running(attempts) = &slot.state else { continue };
                let [a] = attempts.as_slice() else { continue };
                // A producer re-execution (dead slave on the direct plane)
                // can unready the input of a still-running consumer; a
                // backup could not fetch, so skip it.
                if !Self::input_ready(st, *input, *kind, i) {
                    continue;
                }
                out.push((DataId(d as u32), i, *a, a.started + cutoff));
            }
        }
        out
    }

    /// Choose a straggling task to back up on `slave`: an overdue
    /// single-attempt task running on a *different* slave. Prefers a task
    /// whose reduce partition this slave holds the affinity claim for (its
    /// eager-shuffle cache is warm), then the most overdue.
    fn pick_backup(&self, st: &MState, slave: SlaveId) -> Option<(DataId, usize)> {
        let now = Instant::now();
        let mut best: Option<((bool, Duration), (DataId, usize))> = None;
        for (d, i, a, deadline) in self.straggler_candidates(st) {
            if a.slave == slave || now < deadline {
                continue;
            }
            let warm = {
                let MDs::Op { kind, func, .. } = &st.datasets[d.0 as usize] else {
                    unreachable!("candidates only contain ops")
                };
                st.affinity.get(&(*kind, *func, i)) == Some(&slave)
            };
            let key = (warm, now - deadline);
            if best.as_ref().is_none_or(|(k, _)| key > *k) {
                best = Some((key, (d, i)));
            }
        }
        best.map(|(_, t)| t)
    }

    /// Earliest future instant at which a running task becomes eligible
    /// for a backup on `slave`. Bounds the dispatch park so an idle slave
    /// wakes exactly when speculation could grant it work. Instants
    /// already in the past are excluded: if an overdue task were grantable
    /// now, dispatch would have granted it — re-waking immediately for one
    /// it *cannot* take (e.g. no budget) would busy-loop the poll.
    fn next_speculation_deadline(&self, st: &MState, slave: SlaveId) -> Option<Instant> {
        let now = Instant::now();
        self.straggler_candidates(st)
            .into_iter()
            .filter(|(_, _, a, deadline)| a.slave != slave && *deadline > now)
            .map(|(_, _, _, deadline)| deadline)
            .min()
    }

    /// A slave reports a completed task. `urls` are the output bucket URLs
    /// (one per partition for map tasks, exactly one for reduce tasks).
    /// `attempt` echoes the id carried by the task message (0 from legacy
    /// slaves that do not echo one).
    pub fn task_done(
        &self,
        slave: SlaveId,
        data: u32,
        index: usize,
        attempt: u32,
        urls: Vec<String>,
    ) {
        let mut st = self.shared.state.lock();
        Self::touch(&mut st, slave);
        self.apply_done_locked(&mut st, slave, data, index, attempt, urls);
        Self::wake_dispatch(&mut st, &self.shared.dispatch_cv);
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Record one completed task under the lock. Shared between the
    /// standalone `task_done` RPC and reports piggybacked on `get_tasks`.
    fn apply_done_locked(
        &self,
        st: &mut MState,
        slave: SlaveId,
        data: u32,
        index: usize,
        attempt: u32,
        urls: Vec<String>,
    ) {
        let owner = match self.shared.plane {
            DataPlane::Direct => Some(slave),
            DataPlane::SharedFs(_) => None,
        };
        let mut record_affinity: Option<(TaskKind, FuncId)> = None;
        let mut op_complete: Option<DataId> = None;
        // Racing attempts the winner beat: (slave, attempt-id, speculative,
        // elapsed). The winner itself: (speculative, elapsed).
        let mut losers: Vec<(SlaveId, u32, bool, Duration)> = Vec::new();
        let mut winner: Option<(bool, Duration)> = None;
        // The attempt id that actually committed (resolved below when a
        // legacy report arrives with attempt 0); tags the Report instant.
        let mut committed = attempt;
        if let Some(MDs::Op { tasks, done_count, func, kind, input, runtimes, .. }) =
            st.datasets.get_mut(data as usize)
        {
            let Some(slot) = tasks.get_mut(index) else { return };
            match &slot.state {
                SlotState::Done { .. } => return, // duplicate report: ignore
                SlotState::Running(attempts) => {
                    // The commit point. The report must name a live attempt
                    // — matched by (slave, id), or by slave alone for a
                    // legacy report (attempt 0). A report from a superseded
                    // attempt (cancelled, swept, or beaten to this very
                    // point) is stale: its URLs are never published and its
                    // completion is never counted.
                    let won = attempts
                        .iter()
                        .position(|a| a.slave == slave && (attempt == 0 || a.id == attempt));
                    let Some(won) = won else { return };
                    let now = Instant::now();
                    let w = attempts[won];
                    committed = w.id;
                    winner = Some((w.speculative, now - w.started));
                    runtimes.push((now - w.started).as_micros() as u64);
                    for (p, a) in attempts.iter().enumerate() {
                        if p != won {
                            losers.push((a.slave, a.id, a.speculative, now - a.started));
                        }
                    }
                }
                // Pending: an out-of-band completion for a task the master
                // no longer thinks is running (requeued by a sweep, but the
                // presumed-dead slave finished anyway). The output is real;
                // accept it and the requeue becomes unnecessary.
                SlotState::Pending => {}
            }
            slot.state = SlotState::Done { urls, owner };
            *done_count += 1;
            record_affinity = Some((*kind, *func));
            if *done_count == tasks.len() {
                op_complete = Some(*input);
            }
        }
        // Losers get cancellation orders piggybacked on their slave's next
        // poll; the winner's margin over the slowest loser is the straggler
        // time a speculative win saved.
        let op = record_affinity.map(|(kind, _)| trace_op(kind)).unwrap_or_default();
        let slowest_loser = losers.iter().map(|l| l.3).max().unwrap_or(Duration::ZERO);
        for (l_slave, l_id, l_speculative, _) in losers {
            if let Some(q) = st.pending_cancel.get_mut(l_slave as usize) {
                q.push(CancelOrder { data, index, attempt: l_id });
            }
            self.trace_instant(
                l_slave,
                mrs_trace::Name::Cancel,
                mrs_trace::Tag::task(op, data, index, l_id),
            );
            st.metrics.record_cancel();
            if l_speculative {
                st.metrics.record_speculative_loss();
            }
        }
        if let Some((true, w_elapsed)) = winner {
            st.metrics.record_speculative_win(slowest_loser.saturating_sub(w_elapsed));
        }
        if let Some((kind, func)) = record_affinity {
            self.trace_instant(
                slave,
                mrs_trace::Name::Report,
                mrs_trace::Tag::task(trace_op(kind), data, index, committed),
            );
            st.metrics.record_task();
            if kind == TaskKind::ReduceMap {
                // Time and shuffle bytes happened slave-side; the master
                // only observes that a fused task completed.
                st.metrics.record_reducemap_task(Duration::ZERO, 0);
            }
            if self.shared.cfg.use_affinity {
                st.affinity.insert((kind, func, index), slave);
            }
            if kind.is_map_like() {
                self.publish_eager_locked(st, data, Some(index));
            }
        }
        if let Some(input) = op_complete {
            // The op's output is now fully materialized, and the op no
            // longer needs its input.
            st.metrics.record_dataset_live();
            self.release_consumer(st, input);
        }
    }

    /// Publish finished map-like fragments of dataset `data` to the slaves
    /// predicted to reduce them. Called with `Some(index)` when one map
    /// task just completed, and with `None` when a reduce-like op is
    /// submitted over a dataset that already has `Done` tasks (the
    /// retroactive case — fragments that finished before the consumer
    /// existed). Each partition's URL goes to the slave holding the
    /// affinity claim for that reduce partition; with no claim yet the
    /// owner is round-robin over live slaves and the prediction is
    /// committed into the affinity map so the scheduler later sends the
    /// task where the bytes already are. Re-executed producers publish
    /// fresh URLs (a new `s{slave}/` prefix), so a stale fragment is never
    /// re-announced. Direct plane only; no-op when eager shuffle is off.
    fn publish_eager_locked(&self, st: &mut MState, data: u32, only_task: Option<usize>) {
        if !self.shared.cfg.eager_shuffle || !matches!(self.shared.plane, DataPlane::Direct) {
            return;
        }
        // Reduce-like consumers of this dataset that still have work left.
        let consumers: Vec<(TaskKind, FuncId)> = st
            .datasets
            .iter()
            .filter_map(|ds| match ds {
                // Reduce-like on the *input* side: plain reduces and fused
                // ReduceMaps both gather partitions of a map-like output.
                MDs::Op { input, kind, func, tasks, done_count, .. }
                    if input.0 == data && *kind != TaskKind::Map && *done_count < tasks.len() =>
                {
                    Some((*kind, *func))
                }
                _ => None,
            })
            .collect();
        if consumers.is_empty() {
            return;
        }
        let Some(MDs::Op { kind: prod, tasks, .. }) = st.datasets.get(data as usize) else {
            return;
        };
        if !prod.is_map_like() {
            return;
        }
        let frags: Vec<Vec<String>> = tasks
            .iter()
            .enumerate()
            .filter(|(i, _)| only_task.is_none_or(|t| t == *i))
            .filter_map(|(_, slot)| match &slot.state {
                SlotState::Done { urls, .. } => Some(urls.clone()),
                _ => None,
            })
            .collect();
        let live: Vec<SlaveId> = st
            .slaves
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| i as SlaveId)
            .collect();
        if live.is_empty() {
            return;
        }
        for (kind, func) in consumers {
            for urls in &frags {
                for (p, url) in urls.iter().enumerate() {
                    let owner = match st.affinity.get(&(kind, func, p)) {
                        Some(&s) if st.slaves.get(s as usize).is_some_and(|x| x.alive) => s,
                        _ => {
                            let s = live[p % live.len()];
                            if self.shared.cfg.use_affinity {
                                st.affinity.insert((kind, func, p), s);
                            }
                            s
                        }
                    };
                    if let Some(q) = st.pending_eager.get_mut(owner as usize) {
                        q.push(EagerFragment { data, partition: p, url: url.clone() });
                    }
                }
            }
        }
        // Callers (task completion / op submission) wake the dispatch
        // condvar themselves; the park loop's pending-eager check then
        // turns that wake into prompt delivery.
    }

    /// Release the refcount a completed op held on `input`; when that was
    /// the last registered consumer, reclaim the dataset (lifetime GC).
    /// Sources are exempt: real Mrs re-reads job input from the
    /// filesystem, so keeping splits means a first-level map task can
    /// always be re-executed after a slave death. Only an explicit
    /// discard frees them.
    fn release_consumer(&self, st: &mut MState, input: DataId) {
        let c = &mut st.consumers[input.0 as usize];
        *c = c.saturating_sub(1);
        if *c == 0
            && !self.shared.cfg.keep_data
            && !st.pins.contains(&input.0)
            && !matches!(st.datasets[input.0 as usize], MDs::Source { .. })
        {
            self.free_dataset(st, input, true);
        }
    }

    /// Drop a dataset's storage everywhere: master-held source frames are
    /// removed immediately; slave-held frames are purged via orders
    /// piggybacked on each slave's next poll (direct plane only — on a
    /// shared filesystem slaves hold no frames). No-op unless the dataset
    /// is complete and not already gone.
    fn free_dataset(&self, st: &mut MState, data: DataId, by_gc: bool) {
        let slot = &mut st.datasets[data.0 as usize];
        if !slot.complete() || matches!(slot, MDs::Discarded) {
            return;
        }
        let was_source = matches!(slot, MDs::Source { .. });
        *slot = MDs::Discarded;
        st.metrics.record_dataset_freed(by_gc);
        if was_source {
            self.shared.source_frames.remove_prefix(&format!("src{}/", data.0));
        } else if matches!(self.shared.plane, DataPlane::Direct) {
            for (s, orders) in st.pending_purge.iter_mut().enumerate() {
                orders.push(format!("s{s}/d{}/", data.0));
            }
        }
    }

    /// Fail the job if any re-queued task's input has been reclaimed by
    /// lifetime GC: re-execution cannot proceed without it. Called from the
    /// failure/requeue paths — during normal forward progress a pending
    /// task's input is refcounted alive.
    fn check_freed_inputs(st: &mut MState) {
        if st.error.is_some() {
            return;
        }
        for d in 0..st.datasets.len() {
            let MDs::Op { input, ref tasks, .. } = st.datasets[d] else { continue };
            let any_pending = tasks.iter().any(|t| t.state == SlotState::Pending);
            if any_pending && matches!(st.datasets[input.0 as usize], MDs::Discarded) {
                st.error = Some(format!(
                    "task input (dataset {}) was reclaimed by lifetime GC before re-execution; \
                     re-run with --mrs-keep-data",
                    input.0
                ));
                return;
            }
        }
    }

    /// Full poll answer for the RPC layer: the assignment plus any pending
    /// lifetime-GC purge orders for this slave, drained in one round trip.
    pub fn get_dispatch(
        &self,
        slave: SlaveId,
        free_slots: usize,
        park: Duration,
        reports: &[TaskReport],
    ) -> Dispatch {
        let assignment = self.get_tasks_with(slave, free_slots, park, reports);
        let (purge, eager, cancel) = {
            let mut st = self.shared.state.lock();
            (
                st.pending_purge.get_mut(slave as usize).map(std::mem::take).unwrap_or_default(),
                st.pending_eager.get_mut(slave as usize).map(std::mem::take).unwrap_or_default(),
                st.pending_cancel.get_mut(slave as usize).map(std::mem::take).unwrap_or_default(),
            )
        };
        Dispatch { assignment, purge, eager, cancel }
    }

    /// [`Master::get_dispatch`] plus the piggybacked trace batch: the
    /// batch is ingested first so its events land on the timeline before
    /// anything this poll itself dispatches.
    pub fn get_dispatch_traced(
        &self,
        slave: SlaveId,
        free_slots: usize,
        park: Duration,
        reports: &[TaskReport],
        trace: &TraceBatch,
    ) -> Dispatch {
        self.ingest_trace(slave, trace);
        self.get_dispatch(slave, free_slots, park, reports)
    }

    /// A slave reports a failed task attempt.
    ///
    /// `failed_input` carries the input URL the slave could not fetch, if
    /// the failure was a fetch failure. Like Hadoop's "too many fetch
    /// failures" mechanism, a fetch failure indicts the *producer* of that
    /// URL: the task that wrote it is re-executed, and the reporting task
    /// is re-queued without being charged an attempt (its inputs were
    /// gone; it never really ran).
    pub fn task_failed(
        &self,
        slave: SlaveId,
        data: u32,
        index: usize,
        attempt: u32,
        msg: &str,
        failed_input: Option<&str>,
    ) {
        let mut st = self.shared.state.lock();
        Self::touch(&mut st, slave);
        let max = self.shared.cfg.max_attempts;
        let mut fail_job = None;
        let mut found = false;
        let mut speculative_lost = false;
        if let Some(MDs::Op { tasks, .. }) = st.datasets.get_mut(data as usize) {
            let slot = &mut tasks[index];
            let mut emptied = false;
            if let SlotState::Running(attempts) = &mut slot.state {
                let pos = attempts
                    .iter()
                    .position(|a| a.slave == slave && (attempt == 0 || a.id == attempt));
                if let Some(pos) = pos {
                    found = true;
                    let removed = attempts.remove(pos);
                    // A failed backup while the original still runs is just
                    // a lost speculation, not a task failure.
                    speculative_lost = removed.speculative && !attempts.is_empty();
                    emptied = attempts.is_empty();
                }
            }
            if found {
                if failed_input.is_some() {
                    // Fetch failure: forgive the attempt.
                    slot.attempts = slot.attempts.saturating_sub(1);
                }
                if emptied {
                    if failed_input.is_none() && slot.attempts >= max {
                        fail_job = Some(format!(
                            "task (data {data}, index {index}) failed {} times; last error: {msg}",
                            slot.attempts
                        ));
                    } else {
                        slot.state = SlotState::Pending;
                    }
                }
            }
        }
        if !found {
            // Stale failure from a cancelled or superseded attempt: the
            // slot moved on, nothing to re-queue or charge.
            return;
        }
        if speculative_lost {
            st.metrics.record_speculative_loss();
        }
        // Re-execute the task that produced the unfetchable URL.
        if let Some(url) = failed_input {
            'outer: for ds in &mut st.datasets {
                let MDs::Op { tasks, done_count, .. } = ds else { continue };
                for slot in tasks.iter_mut() {
                    if let SlotState::Done { urls, .. } = &slot.state {
                        if urls.iter().any(|u| u == url) {
                            slot.state = SlotState::Pending;
                            *done_count -= 1;
                            break 'outer;
                        }
                    }
                }
            }
        }
        st.metrics.record_retry();
        if let Some(e) = fail_job {
            st.error = Some(e);
        }
        Self::check_freed_inputs(&mut st);
        Self::wake_dispatch(&mut st, &self.shared.dispatch_cv);
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Sweep for dead slaves: re-queue their running tasks and (on the
    /// direct data plane) re-execute tasks whose completed outputs died
    /// with them. Call periodically.
    pub fn sweep(&self) {
        let timeout = self.shared.cfg.slave_timeout;
        let direct = matches!(self.shared.plane, DataPlane::Direct);
        let mut st = self.shared.state.lock();
        let now = Instant::now();
        let mut newly_dead: Vec<SlaveId> = Vec::new();
        for (id, info) in st.slaves.iter_mut().enumerate() {
            if info.alive && now.duration_since(info.last_seen) > timeout {
                info.alive = false;
                newly_dead.push(id as SlaveId);
            }
        }
        if newly_dead.is_empty() {
            return;
        }
        let mut requeued = 0u32;
        let mut speculative_lost = 0u32;
        for ds in &mut st.datasets {
            let MDs::Op { tasks, done_count, .. } = ds else { continue };
            for slot in tasks.iter_mut() {
                match &mut slot.state {
                    SlotState::Running(attempts) => {
                        let had_any = !attempts.is_empty();
                        attempts.retain(|a| {
                            let dead = newly_dead.contains(&a.slave);
                            if dead && a.speculative {
                                speculative_lost += 1;
                            }
                            !dead
                        });
                        // Re-queue only when every racing attempt died; a
                        // surviving attempt (original or backup) still owns
                        // the slot and will report in its own time.
                        if had_any && attempts.is_empty() {
                            slot.state = SlotState::Pending;
                            requeued += 1;
                        }
                    }
                    SlotState::Done { owner: Some(s), .. } if direct && newly_dead.contains(s) => {
                        slot.state = SlotState::Pending;
                        *done_count -= 1;
                        requeued += 1;
                    }
                    _ => {}
                }
            }
        }
        for _ in 0..requeued {
            st.metrics.record_retry();
        }
        for _ in 0..speculative_lost {
            st.metrics.record_speculative_loss();
        }
        // If nobody is left to run re-queued work, fail rather than hang.
        let any_alive = st.slaves.iter().any(|s| s.alive);
        let any_incomplete = st.datasets.iter().any(|d| !d.complete());
        if !any_alive && any_incomplete {
            st.error = Some("no live slaves remain".into());
        }
        Self::check_freed_inputs(&mut st);
        // Requeued tasks (or the error) are runnable-state transitions.
        Self::wake_dispatch(&mut st, &self.shared.dispatch_cv);
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Earliest instant at which a currently-live slave could cross the
    /// death timeout (its `last_seen + slave_timeout`, plus a millisecond
    /// of grace so a sweep at the deadline sees *strictly* overdue).
    /// `None` when no slave is alive.
    fn next_death_deadline(&self, st: &MState) -> Option<Instant> {
        st.slaves
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.last_seen + self.shared.cfg.slave_timeout + Duration::from_millis(1))
            .min()
    }

    /// Run the dead-slave sweeper until the job finishes, errors, or
    /// `stop` is set. Sleeps on the completion condvar until the earliest
    /// instant a slave could cross the death timeout, instead of a fixed
    /// interval — requeue happens as soon as it possibly could, and the
    /// loop costs nothing while slaves are heartbeating.
    pub fn sweeper_loop(&self, stop: &AtomicBool) {
        loop {
            {
                let mut st = self.shared.state.lock();
                loop {
                    if stop.load(Ordering::Acquire) || st.finished || st.error.is_some() {
                        return;
                    }
                    let deadline = self
                        .next_death_deadline(&st)
                        .unwrap_or_else(|| Instant::now() + self.shared.cfg.slave_timeout);
                    if self.shared.cv.wait_until(&mut st, deadline).timed_out() {
                        break;
                    }
                }
            }
            self.sweep();
        }
    }

    /// Authority of a slave (for tests/diagnostics).
    pub fn slave_authority(&self, slave: SlaveId) -> Option<String> {
        self.shared.state.lock().slaves.get(slave as usize).map(|s| s.authority.clone())
    }

    fn put_source_split(&self, id: u32, split: usize, records: &[Record]) -> Result<String> {
        let path = format!("src{id}/s{split}.mrsb");
        let wire = mrs_codec::encode_vec(write_bucket_bytes(records), self.shared.cfg.compress);
        match &self.shared.plane {
            DataPlane::Direct => {
                self.shared.source_frames.insert(&path, wire);
                let server =
                    self.shared.source_server.get().expect("server started at construction");
                Ok(server.url_for(&path))
            }
            DataPlane::SharedFs(store) => {
                store.put(&path, &wire)?;
                Ok(format!("file://{path}"))
            }
        }
    }
}

impl JobApi for Master {
    fn local_data(&mut self, records: Vec<Record>, splits: usize) -> Result<DataId> {
        if splits == 0 {
            return Err(Error::Invalid("need at least one split".into()));
        }
        // Reserve the slot first so concurrent driver clones cannot collide
        // on ids or bucket paths; fill in the URLs once the data is stored.
        let id = {
            let mut st = self.shared.state.lock();
            st.datasets.push(MDs::Source { urls: Vec::new() });
            st.consumers.push(0);
            st.datasets.len() as u32 - 1
        };
        let mut urls = Vec::with_capacity(splits);
        for (i, split) in split_evenly(records, splits).iter().enumerate() {
            urls.push(self.put_source_split(id, i, split)?);
        }
        let mut st = self.shared.state.lock();
        st.datasets[id as usize] = MDs::Source { urls };
        st.metrics.record_dataset_live();
        Self::wake_dispatch(&mut st, &self.shared.dispatch_cv);
        drop(st);
        self.shared.cv.notify_all();
        Ok(DataId(id))
    }

    fn map_data(
        &mut self,
        input: DataId,
        func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId> {
        if parts == 0 {
            return Err(Error::Invalid("need at least one partition".into()));
        }
        let mut st = self.shared.state.lock();
        let ntasks = match st.datasets.get(input.0 as usize) {
            Some(MDs::Source { urls }) => urls.len(),
            Some(MDs::Op { kind, tasks, .. }) => {
                if kind.is_map_like() {
                    return Err(Error::Invalid(
                        "map cannot consume an unreduced map output".into(),
                    ));
                }
                tasks.len()
            }
            Some(MDs::Discarded) => {
                return Err(Error::MissingData(format!("dataset {input:?} was discarded")))
            }
            None => return Err(Error::MissingData(format!("dataset {input:?}"))),
        };
        st.consumers[input.0 as usize] += 1;
        st.datasets.push(MDs::Op {
            input,
            kind: TaskKind::Map,
            func,
            map_func: 0,
            parts,
            combine,
            tasks: (0..ntasks).map(|_| TaskSlot::new()).collect(),
            done_count: 0,
            runtimes: Vec::new(),
        });
        st.consumers.push(0);
        let id = DataId(st.datasets.len() as u32 - 1);
        Self::wake_dispatch(&mut st, &self.shared.dispatch_cv);
        drop(st);
        self.shared.cv.notify_all();
        Ok(id)
    }

    fn reduce_data(&mut self, input: DataId, func: FuncId) -> Result<DataId> {
        let mut st = self.shared.state.lock();
        let parts = match st.datasets.get(input.0 as usize) {
            Some(MDs::Op { kind, parts, .. }) if kind.is_map_like() => *parts,
            Some(_) => return Err(Error::Invalid("reduce must consume a map output".into())),
            None => return Err(Error::MissingData(format!("dataset {input:?}"))),
        };
        st.consumers[input.0 as usize] += 1;
        st.datasets.push(MDs::Op {
            input,
            kind: TaskKind::Reduce,
            func,
            map_func: 0,
            parts,
            combine: false,
            tasks: (0..parts).map(|_| TaskSlot::new()).collect(),
            done_count: 0,
            runtimes: Vec::new(),
        });
        st.consumers.push(0);
        let id = DataId(st.datasets.len() as u32 - 1);
        // Maps that finished before this consumer existed are publishable
        // right now (iterative drivers submit the reduce late).
        self.publish_eager_locked(&mut st, input.0, None);
        Self::wake_dispatch(&mut st, &self.shared.dispatch_cv);
        drop(st);
        self.shared.cv.notify_all();
        Ok(id)
    }

    fn reduce_map_data(
        &mut self,
        input: DataId,
        reduce_func: FuncId,
        map_func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId> {
        if parts == 0 {
            return Err(Error::Invalid("need at least one partition".into()));
        }
        let mut st = self.shared.state.lock();
        let ntasks = match st.datasets.get(input.0 as usize) {
            Some(MDs::Op { kind, parts, .. }) if kind.is_map_like() => *parts,
            Some(_) => {
                return Err(Error::Invalid("reduce_map must consume a map-like output".into()))
            }
            None => return Err(Error::MissingData(format!("dataset {input:?}"))),
        };
        st.consumers[input.0 as usize] += 1;
        st.metrics.record_fused_op();
        st.datasets.push(MDs::Op {
            input,
            kind: TaskKind::ReduceMap,
            func: reduce_func,
            map_func,
            parts,
            combine,
            tasks: (0..ntasks).map(|_| TaskSlot::new()).collect(),
            done_count: 0,
            runtimes: Vec::new(),
        });
        st.consumers.push(0);
        let id = DataId(st.datasets.len() as u32 - 1);
        self.publish_eager_locked(&mut st, input.0, None);
        Self::wake_dispatch(&mut st, &self.shared.dispatch_cv);
        drop(st);
        self.shared.cv.notify_all();
        Ok(id)
    }

    fn keep(&mut self, data: DataId) {
        self.shared.state.lock().pins.insert(data.0);
    }

    fn wait(&mut self, data: DataId) -> Result<()> {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(e) = &st.error {
                return Err(Error::TaskFailed(e.clone()));
            }
            match st.datasets.get(data.0 as usize) {
                None => return Err(Error::MissingData(format!("dataset {data:?}"))),
                Some(ds) if ds.complete() => return Ok(()),
                Some(_) => {}
            }
            // Sleep until a completion wakes us, or until the earliest
            // instant a slave could cross the death timeout — then sweep.
            // No fixed interval: progress is observed immediately, and the
            // deadline exists only to run the sweep exactly when it could
            // first find something.
            let deadline = self
                .next_death_deadline(&st)
                .unwrap_or_else(|| Instant::now() + self.shared.cfg.slave_timeout);
            if self.shared.cv.wait_until(&mut st, deadline).timed_out() {
                drop(st);
                self.sweep();
                st = self.shared.state.lock();
            }
        }
    }

    fn fetch_all(&mut self, data: DataId) -> Result<Vec<Record>> {
        // A slave can die *after* the job completes but before the driver
        // fetches its buckets; on a fetch failure we sweep (so its lost
        // outputs get re-queued), wait for the recomputation, and retry.
        let mut last_err = None;
        for _attempt in 0..self.shared.cfg.max_attempts {
            self.wait(data)?;
            let urls: Vec<String> = {
                let st = self.shared.state.lock();
                match &st.datasets[data.0 as usize] {
                    MDs::Source { urls } => urls.clone(),
                    MDs::Op { tasks, .. } => tasks
                        .iter()
                        .flat_map(|t| match &t.state {
                            SlotState::Done { urls, .. } => urls.clone(),
                            _ => Vec::new(),
                        })
                        .collect(),
                    MDs::Discarded => {
                        return Err(Error::MissingData(format!("dataset {data:?} was discarded")))
                    }
                }
            };
            let shared = self.shared_store();
            let mut out = Vec::new();
            let mut failed = false;
            for url in urls {
                match fetch_records(&url, shared.as_ref()) {
                    Ok(records) => out.extend(records),
                    Err(e) => {
                        last_err = Some(e);
                        failed = true;
                        break;
                    }
                }
            }
            if !failed {
                return Ok(out);
            }
            // The owner of the lost bucket stopped polling when it died, so
            // the earliest death deadline is its `last_seen + slave_timeout`.
            // Sweep as deadlines pass until a slave is actually declared
            // dead (its outputs then re-queue and we go around again), or a
            // full `slave_timeout` of patience elapses — nothing was going
            // to die; the failure was transient.
            let patience =
                Instant::now() + self.shared.cfg.slave_timeout + Duration::from_millis(1);
            loop {
                let before = self.live_slaves();
                {
                    let mut st = self.shared.state.lock();
                    let deadline = self.next_death_deadline(&st).unwrap_or(patience).min(patience);
                    while st.error.is_none() && Instant::now() < deadline {
                        self.shared.cv.wait_until(&mut st, deadline);
                    }
                }
                self.sweep();
                if self.live_slaves() < before || Instant::now() >= patience {
                    break;
                }
            }
        }
        Err(last_err.unwrap_or(Error::NoSlaves))
    }

    fn discard(&mut self, data: DataId) {
        let mut st = self.shared.state.lock();
        // Advisory: refuse while a queued consumer still needs the data.
        if st.consumers.get(data.0 as usize).is_some_and(|c| *c > 0) {
            return;
        }
        st.pins.remove(&data.0);
        if st.datasets.get(data.0 as usize).is_some() {
            self.free_dataset(&mut st, data, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_fs::MemFs;

    fn master_direct() -> Master {
        Master::new(MasterConfig::default(), DataPlane::Direct).unwrap()
    }

    fn shared_master() -> (Master, Arc<dyn Store>) {
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        (
            Master::new(MasterConfig::default(), DataPlane::SharedFs(Arc::clone(&store))).unwrap(),
            store,
        )
    }

    fn records(n: u64) -> Vec<Record> {
        (0..n).map(|i| (i.to_be_bytes().to_vec(), vec![])).collect()
    }

    /// Unwrap an assignment expected to grant exactly one task.
    fn take1(a: Assignment) -> TaskMsg {
        match a {
            Assignment::Tasks(mut ts) if ts.len() == 1 => ts.remove(0),
            other => panic!("expected exactly one task, got {other:?}"),
        }
    }

    /// Simulate a slave completing whatever it is handed, writing outputs to
    /// the shared store.
    fn fake_slave_step(m: &Master, store: &Arc<dyn Store>, slave: SlaveId) -> Assignment {
        let a = m.get_task(slave);
        if let Assignment::Tasks(ts) = &a {
            for t in ts {
                let urls: Vec<String> = (0..t.parts)
                    .map(|p| {
                        let path = format!("out/d{}t{}p{p}", t.data, t.index);
                        store.put(&path, &write_bucket_bytes(&[])).unwrap();
                        format!("file://{path}")
                    })
                    .collect();
                m.task_done(slave, t.data, t.index, t.attempt, urls);
            }
        }
        a
    }

    #[test]
    fn signin_assigns_sequential_ids() {
        let m = master_direct();
        assert_eq!(m.signin("a:1", 1), 0);
        assert_eq!(m.signin("b:2", 4), 1);
        assert_eq!(m.live_slaves(), 2);
        assert_eq!(m.slave_authority(1).unwrap(), "b:2");
    }

    #[test]
    fn no_work_means_wait_then_exit_after_finish() {
        let m = master_direct();
        let s = m.signin("a:1", 1);
        assert_eq!(m.get_task(s), Assignment::Wait);
        m.finish();
        assert_eq!(m.get_task(s), Assignment::Exit);
    }

    #[test]
    fn map_tasks_dispatch_then_reduce_after_barrier() {
        let (mut m, store) = shared_master();
        let s = m.signin("a:1", 1);
        let src = m.local_data(records(10), 2).unwrap();
        let mapped = m.map_data(src, 0, 3, false).unwrap();
        let _reduced = m.reduce_data(mapped, 0).unwrap();

        // Two map tasks first.
        for _ in 0..2 {
            let a = fake_slave_step(&m, &store, s);
            assert!(
                matches!(a, Assignment::Tasks(ref ts) if ts.len() == 1 && ts[0].kind == TaskKind::Map),
                "{a:?}"
            );
        }
        // Then three reduce tasks (barrier passed).
        for _ in 0..3 {
            let a = fake_slave_step(&m, &store, s);
            assert!(
                matches!(a, Assignment::Tasks(ref ts) if ts.len() == 1 && ts[0].kind == TaskKind::Reduce),
                "{a:?}"
            );
        }
        assert_eq!(m.get_task(s), Assignment::Wait);
    }

    #[test]
    fn reduce_not_dispatched_before_all_maps_done() {
        let (mut m, store) = shared_master();
        let s = m.signin("a:1", 2);
        let src = m.local_data(records(10), 2).unwrap();
        let mapped = m.map_data(src, 0, 2, false).unwrap();
        let _r = m.reduce_data(mapped, 0).unwrap();
        // Take both map tasks but complete only one.
        let t1 = take1(m.get_tasks(s, 1));
        let _t2 = take1(m.get_tasks(s, 1));
        let urls: Vec<String> = (0..t1.parts)
            .map(|p| {
                let path = format!("out/d{}t{}p{p}", t1.data, t1.index);
                store.put(&path, &write_bucket_bytes(&[])).unwrap();
                format!("file://{path}")
            })
            .collect();
        m.task_done(s, t1.data, t1.index, t1.attempt, urls);
        // Nothing dispatchable: the other map is running, reduce is blocked.
        assert_eq!(m.get_tasks(s, 1), Assignment::Wait);
    }

    #[test]
    fn failed_task_is_requeued_until_attempt_cap() {
        let cfg = MasterConfig { max_attempts: 2, ..MasterConfig::default() };
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let mut m = Master::new(cfg, DataPlane::SharedFs(store)).unwrap();
        let s = m.signin("a:1", 1);
        let src = m.local_data(records(4), 1).unwrap();
        let _mapped = m.map_data(src, 0, 1, false).unwrap();

        let t = take1(m.get_task(s));
        m.task_failed(s, t.data, t.index, t.attempt, "boom", None);
        // Re-queued: same task handed out again.
        let t2 = take1(m.get_task(s));
        assert_eq!((t2.data, t2.index), (t.data, t.index));
        m.task_failed(s, t2.data, t2.index, t2.attempt, "boom again", None);
        // Attempt cap reached: job errors out, slaves are told to exit.
        assert_eq!(m.get_task(s), Assignment::Exit);
        assert!(m.wait(DataId(1)).is_err());
    }

    #[test]
    fn dead_slave_tasks_are_requeued() {
        let cfg =
            MasterConfig { slave_timeout: Duration::from_millis(20), ..MasterConfig::default() };
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let mut m = Master::new(cfg, DataPlane::SharedFs(store.clone())).unwrap();
        let s1 = m.signin("a:1", 1);
        let s2 = m.signin("b:2", 1);
        let src = m.local_data(records(4), 1).unwrap();
        let _mapped = m.map_data(src, 0, 1, false).unwrap();

        // s1 takes the task and goes silent.
        let t = take1(m.get_task(s1));
        std::thread::sleep(Duration::from_millis(40));
        // Keep s2 alive and sweep.
        assert_eq!(m.get_task(s2), Assignment::Wait);
        m.sweep();
        assert_eq!(m.live_slaves(), 1);
        // s2 gets the re-queued task.
        let t2 = take1(m.get_task(s2));
        assert_eq!((t2.data, t2.index), (t.data, t.index));
    }

    #[test]
    fn dead_slave_completed_outputs_recomputed_on_direct_plane() {
        // Eager shuffle off: its affinity prediction would pin the reduce
        // to the map's owner (s1), but this scenario needs s2 holding the
        // doomed reduce while s1 dies.
        let cfg = MasterConfig {
            slave_timeout: Duration::from_millis(20),
            eager_shuffle: false,
            ..MasterConfig::default()
        };
        let mut m = Master::new(cfg, DataPlane::Direct).unwrap();
        let s1 = m.signin("a:1", 1);
        // s2 needs a second slot: it still holds the doomed reduce when it
        // later asks for the re-queued map.
        let s2 = m.signin("b:2", 2);
        let src = m.local_data(records(4), 1).unwrap();
        let mapped = m.map_data(src, 0, 1, false).unwrap();
        let _reduced = m.reduce_data(mapped, 0).unwrap();

        // s1 completes the map (its output lives on s1), then dies.
        let t = take1(m.get_task(s1));
        assert_eq!(t.kind, TaskKind::Map);
        m.task_done(s1, t.data, t.index, t.attempt, vec!["http://dead:1/data/x".into()]);
        // s2 picks up the now-ready reduce whose input lives on s1.
        let tr = take1(m.get_task(s2));
        assert_eq!(tr.kind, TaskKind::Reduce);
        std::thread::sleep(Duration::from_millis(40));
        // Touch s2 so only s1 is swept; then the lost map output forces the
        // map task to be re-queued (direct plane: data died with s1).
        assert_eq!(m.get_task(s2), Assignment::Wait);
        m.sweep();
        let t2 = take1(m.get_task(s2));
        assert_eq!(t2.kind, TaskKind::Map, "expected requeued map, got {t2:?}");
        assert_eq!((t2.data, t2.index), (t.data, t.index));
    }

    #[test]
    fn all_slaves_dead_fails_job() {
        let cfg =
            MasterConfig { slave_timeout: Duration::from_millis(10), ..MasterConfig::default() };
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let mut m = Master::new(cfg, DataPlane::SharedFs(store)).unwrap();
        let s = m.signin("a:1", 1);
        let src = m.local_data(records(4), 1).unwrap();
        let mapped = m.map_data(src, 0, 1, false).unwrap();
        let _t = take1(m.get_task(s));
        std::thread::sleep(Duration::from_millis(30));
        m.sweep();
        assert!(m.wait(mapped).is_err());
    }

    #[test]
    fn affinity_prefers_previous_owner() {
        let (mut m, store) = shared_master();
        let s0 = m.signin("a:1", 1);
        let s1 = m.signin("b:2", 1);

        // Iteration 1: two map tasks; s0 takes index 0, s1 takes index 1.
        let src = m.local_data(records(8), 2).unwrap();
        let m1 = m.map_data(src, 0, 2, false).unwrap();
        let r1 = m.reduce_data(m1, 0).unwrap();
        let t0 = take1(m.get_task(s0));
        let t1 = take1(m.get_task(s1));
        assert_eq!(t0.index, 0);
        assert_eq!(t1.index, 1);
        finish_task(&m, &store, s0, &t0);
        finish_task(&m, &store, s1, &t1);
        // Reduce round so iteration 2 maps become ready.
        while let Assignment::Tasks(ts) = m.get_task(s0) {
            for t in &ts {
                finish_task(&m, &store, s0, t);
            }
        }
        let _ = m.wait(r1);

        // Iteration 2 over the reduce output: with affinity, s1 should again
        // be preferred for map index 1 even if s0 asks first.
        let m2 = m.map_data(r1, 0, 2, false).unwrap();
        let t = take1(m.get_task(s0));
        assert_eq!(t.index, 0, "s0 must get its old index back, not steal s1's");
        let t = take1(m.get_task(s1));
        assert_eq!(t.index, 1);
        let _ = m2;
        let hits = m.metrics().affinity_hits();
        assert!(hits >= 2, "affinity hits {hits}");
    }

    fn finish_task(m: &Master, store: &Arc<dyn Store>, slave: SlaveId, t: &TaskMsg) {
        let urls: Vec<String> = (0..t.parts)
            .map(|p| {
                let path = format!("out/d{}t{}p{p}", t.data, t.index);
                store.put(&path, &write_bucket_bytes(&[])).unwrap();
                format!("file://{path}")
            })
            .collect();
        m.task_done(slave, t.data, t.index, t.attempt, urls);
    }

    #[test]
    fn duplicate_done_reports_are_ignored() {
        let (mut m, store) = shared_master();
        let s = m.signin("a:1", 1);
        let src = m.local_data(records(4), 1).unwrap();
        let mapped = m.map_data(src, 0, 1, false).unwrap();
        let t = take1(m.get_task(s));
        finish_task(&m, &store, s, &t);
        finish_task(&m, &store, s, &t); // duplicate
        m.wait(mapped).unwrap();
        assert_eq!(m.metrics().tasks_executed(), 1);
    }

    #[test]
    fn dispatch_batches_up_to_capacity() {
        let (mut m, _store) = shared_master();
        let s = m.signin("a:1", 4);
        let src = m.local_data(records(12), 6).unwrap();
        let _mapped = m.map_data(src, 0, 1, false).unwrap();

        // One poll with 4 free slots fills the slave in a single round trip.
        let Assignment::Tasks(ts) = m.get_tasks(s, 4) else { panic!() };
        assert_eq!(ts.len(), 4);
        // Capacity is exhausted even if the slave (wrongly) claims free slots.
        assert_eq!(m.get_tasks(s, 4), Assignment::Wait);
        // Finishing one task frees exactly one slot.
        m.task_done(s, ts[0].data, ts[0].index, ts[0].attempt, vec!["file://out/x".into()]);
        let Assignment::Tasks(ts2) = m.get_tasks(s, 4) else { panic!() };
        assert_eq!(ts2.len(), 1);
        // A poll asking for fewer slots than capacity is honored as-is.
        m.task_done(s, ts[1].data, ts[1].index, ts[1].attempt, vec!["file://out/y".into()]);
        let Assignment::Tasks(ts3) = m.get_tasks(s, 1) else { panic!() };
        assert_eq!(ts3.len(), 1);
        let metrics = m.metrics();
        assert_eq!(metrics.dispatched_tasks(), 6);
        assert_eq!(metrics.dispatch_polls(), 3);
        assert_eq!(metrics.peak_in_flight(), 4);
    }

    #[test]
    fn idle_claimant_keeps_its_task_busier_one_loses_it() {
        let (mut m, store) = shared_master();
        let s0 = m.signin("a:1", 1);
        let s1 = m.signin("b:2", 1);

        // Iteration 1 establishes affinity: s0 owns index 0, s1 owns index 1.
        let src = m.local_data(records(8), 2).unwrap();
        let m1 = m.map_data(src, 0, 2, false).unwrap();
        let r1 = m.reduce_data(m1, 0).unwrap();
        let t0 = take1(m.get_task(s0));
        let t1 = take1(m.get_task(s1));
        finish_task(&m, &store, s0, &t0);
        finish_task(&m, &store, s1, &t1);
        while let Assignment::Tasks(ts) = m.get_task(s0) {
            for t in &ts {
                finish_task(&m, &store, s0, t);
            }
        }
        m.wait(r1).unwrap();

        // Iteration 2: after s0 takes and finishes its own claim, only s1's
        // claimed task (index 1) is left. s0 is idle — but so is s1, so s0
        // must NOT steal: s1 will claim it on its own next poll, keeping
        // the iteration-to-iteration affinity the paper's scheduler is for.
        let m2 = m.map_data(r1, 0, 2, false).unwrap();
        let mine = take1(m.get_task(s0));
        assert_eq!(mine.index, 0);
        finish_task(&m, &store, s0, &mine);
        assert_eq!(m.get_task(s0), Assignment::Wait, "must not steal from an idle peer");
        assert_eq!(m.metrics().tasks_stolen(), 0);
        let theirs = take1(m.get_task(s1));
        assert_eq!(theirs.index, 1);
        let _ = m2;

        // Iteration 3: s1 still runs `theirs` (1/1 busy) while s0 is free
        // (0/1). Once s0 exhausts its own claim, stealing s1's is allowed
        // and counted.
        let m3 = m.map_data(r1, 0, 2, false).unwrap();
        let t = take1(m.get_task(s0));
        assert_eq!(t.index, 0);
        finish_task(&m, &store, s0, &t);
        let stolen = take1(m.get_task(s0));
        assert_eq!(stolen.index, 1);
        assert_eq!(m.metrics().tasks_stolen(), 1);
        let _ = m3;
    }

    #[test]
    fn parked_request_returns_wait_after_deadline() {
        let cfg = MasterConfig {
            long_poll_timeout: Duration::from_millis(30),
            ..MasterConfig::default()
        };
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let m = Master::new(cfg, DataPlane::SharedFs(store)).unwrap();
        let s = m.signin("a:1", 1);
        // Nothing queued: the request parks, the deadline expires, and the
        // timeout fallback is Wait — not a hang, not a busy poll.
        let start = Instant::now();
        let a = m.get_tasks_with(s, 1, Duration::from_millis(200), &[]);
        assert_eq!(a, Assignment::Wait);
        assert!(start.elapsed() >= Duration::from_millis(30), "{:?}", start.elapsed());
        let metrics = m.metrics();
        assert_eq!(metrics.longpoll_parks(), 1);
        assert_eq!(metrics.longpoll_timeouts(), 1);
    }

    #[test]
    fn parked_slave_woken_when_barrier_clears() {
        let (mut m, store) = shared_master();
        let s0 = m.signin("a:1", 1);
        let s1 = m.signin("b:2", 1);
        let src = m.local_data(records(4), 1).unwrap();
        let mapped = m.map_data(src, 0, 1, false).unwrap();
        let _reduced = m.reduce_data(mapped, 0).unwrap();

        // s0 holds the only map task; s1 has nothing runnable (the reduce
        // is blocked behind the map barrier) and parks.
        let t = take1(m.get_task(s0));
        assert_eq!(t.kind, TaskKind::Map);
        let m2 = m.clone();
        let parked = std::thread::spawn(move || {
            let start = Instant::now();
            (m2.get_tasks_with(s1, 1, Duration::from_millis(900), &[]), start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        // Completing the map crosses the barrier and must wake s1 with the
        // reduce task well before its long-poll deadline.
        finish_task(&m, &store, s0, &t);
        let (a, elapsed) = parked.join().unwrap();
        let got = take1(a);
        assert_eq!(got.kind, TaskKind::Reduce, "parked slave should receive the unblocked reduce");
        assert!(elapsed < Duration::from_millis(700), "woke by deadline, not event: {elapsed:?}");
        let metrics = m.metrics();
        assert_eq!(metrics.longpoll_parks(), 1);
        assert_eq!(metrics.longpoll_timeouts(), 0);
        assert!(metrics.wakeups() >= 1);
    }

    #[test]
    fn finish_unparks_with_exit() {
        let (m, _store) = shared_master();
        let s = m.signin("a:1", 1);
        let m2 = m.clone();
        let parked = std::thread::spawn(move || {
            let start = Instant::now();
            (m2.get_tasks_with(s, 1, Duration::from_millis(900), &[]), start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(20));
        m.finish();
        let (a, elapsed) = parked.join().unwrap();
        assert_eq!(a, Assignment::Exit);
        assert!(elapsed < Duration::from_millis(700), "finish must unpark promptly: {elapsed:?}");
    }

    #[test]
    fn piggybacked_report_frees_slot_in_same_poll() {
        let (mut m, store) = shared_master();
        let s = m.signin("a:1", 1);
        let src = m.local_data(records(8), 2).unwrap();
        let mapped = m.map_data(src, 0, 1, false).unwrap();

        let t1 = take1(m.get_task(s));
        // The slave is at capacity (1 slot). Reporting t1 inside the next
        // poll must free the slot *before* the budget is computed, so the
        // second task is granted in the same round trip.
        let path = format!("out/d{}t{}p0", t1.data, t1.index);
        store.put(&path, &write_bucket_bytes(&[])).unwrap();
        let report = TaskReport {
            data: t1.data,
            index: t1.index,
            attempt: t1.attempt,
            urls: vec![format!("file://{path}")],
        };
        let t2 = take1(m.get_tasks_with(s, 1, Duration::ZERO, &[report]));
        assert_ne!(t1.index, t2.index);
        finish_task(&m, &store, s, &t2);
        m.wait(mapped).unwrap();
        let metrics = m.metrics();
        assert_eq!(metrics.piggybacked_reports(), 1);
        assert_eq!(metrics.tasks_executed(), 2);
    }

    #[test]
    fn poll_mode_never_parks() {
        let cfg = MasterConfig { control: ControlMode::Poll, ..MasterConfig::default() };
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let m = Master::new(cfg, DataPlane::SharedFs(store)).unwrap();
        let s = m.signin("a:1", 1);
        let start = Instant::now();
        assert_eq!(m.get_tasks_with(s, 1, Duration::from_millis(500), &[]), Assignment::Wait);
        assert!(start.elapsed() < Duration::from_millis(100), "poll mode must not hold requests");
        assert_eq!(m.metrics().longpoll_parks(), 0);
    }

    #[test]
    fn sweeper_loop_requeues_dead_slave_work_and_stops_on_finish() {
        let cfg =
            MasterConfig { slave_timeout: Duration::from_millis(30), ..MasterConfig::default() };
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let mut m = Master::new(cfg, DataPlane::SharedFs(store)).unwrap();
        let s1 = m.signin("a:1", 1);
        let s2 = m.signin("b:2", 1);
        let src = m.local_data(records(4), 1).unwrap();
        let _mapped = m.map_data(src, 0, 1, false).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let m2 = m.clone();
        let stop2 = Arc::clone(&stop);
        let sweeper = std::thread::spawn(move || m2.sweeper_loop(&stop2));

        // s1 takes the task and goes silent; s2 keeps heartbeating. The
        // sweeper must declare s1 dead on its own (no manual sweep) and the
        // task must become grantable to s2.
        let t = take1(m.get_task(s1));
        let deadline = Instant::now() + Duration::from_secs(2);
        let t2 = loop {
            if let Assignment::Tasks(mut ts) = m.get_task(s2) {
                break ts.remove(0);
            }
            assert!(Instant::now() < deadline, "sweeper never requeued the dead slave's task");
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!((t2.data, t2.index), (t.data, t.index));
        assert_eq!(m.live_slaves(), 1);
        // finish() alone must end the loop (LocalCluster drops this way).
        m.finish();
        sweeper.join().unwrap();
    }

    #[test]
    fn reducemap_dispatches_after_map_barrier_with_fused_shape() {
        let (mut m, store) = shared_master();
        let s = m.signin("a:1", 1);
        let src = m.local_data(records(8), 2).unwrap();
        let mapped = m.map_data(src, 0, 3, false).unwrap();
        let fused = m.reduce_map_data(mapped, 1, 2, 4, true).unwrap();
        let _r = m.reduce_data(fused, 1).unwrap();

        // Two map tasks clear the barrier first.
        for _ in 0..2 {
            let a = fake_slave_step(&m, &store, s);
            assert!(matches!(a, Assignment::Tasks(ref ts) if ts[0].kind == TaskKind::Map), "{a:?}");
        }
        // Then one fused task per input partition, shaped like a map task
        // on the output side and a reduce task on the input side.
        for _ in 0..3 {
            let t = take1(m.get_task(s));
            assert_eq!(t.kind, TaskKind::ReduceMap);
            assert_eq!((t.func, t.map_func), (1, 2));
            assert_eq!(t.parts, 4);
            assert!(t.combine);
            assert_eq!(t.inputs.len(), 2, "gathers its partition from both map tasks");
            finish_task(&m, &store, s, &t);
        }
        // The final reduce gathers one partition from every fused task.
        let t = take1(m.get_task(s));
        assert_eq!(t.kind, TaskKind::Reduce);
        assert_eq!(t.inputs.len(), 3);
        let metrics = m.metrics();
        assert_eq!(metrics.fused_ops(), 1);
        assert_eq!(metrics.reducemap_tasks(), 3);
    }

    #[test]
    fn affinity_survives_fusion_across_iterations() {
        let (mut m, store) = shared_master();
        let s0 = m.signin("a:1", 1);
        let s1 = m.signin("b:2", 1);
        let src = m.local_data(records(8), 2).unwrap();
        let m1 = m.map_data(src, 0, 2, false).unwrap();

        // Iteration 1: a fused round; s0 ends up with index 0, s1 with 1.
        let f1 = m.reduce_map_data(m1, 0, 0, 2, false).unwrap();
        let t0 = take1(m.get_task(s0));
        let t1 = take1(m.get_task(s1));
        finish_task(&m, &store, s0, &t0);
        finish_task(&m, &store, s1, &t1);
        let t0 = take1(m.get_task(s0));
        let t1 = take1(m.get_task(s1));
        assert_eq!(t0.kind, TaskKind::ReduceMap);
        assert_eq!((t0.index, t1.index), (0, 1));
        finish_task(&m, &store, s0, &t0);
        finish_task(&m, &store, s1, &t1);

        // Iteration 2: another fused round. The claims recorded for the
        // fused shape hold — s0 gets its index back, and does not steal
        // s1's even when polling first.
        let f2 = m.reduce_map_data(f1, 0, 0, 2, false).unwrap();
        let t = take1(m.get_task(s0));
        assert_eq!(t.index, 0, "s0 keeps its fused index across iterations");
        finish_task(&m, &store, s0, &t);
        assert_eq!(m.get_task(s0), Assignment::Wait, "must not steal the idle peer's claim");
        let t = take1(m.get_task(s1));
        assert_eq!(t.index, 1);
        let _ = f2;
        assert!(m.metrics().affinity_hits() >= 2);
    }

    #[test]
    fn gc_frees_spent_datasets_and_queues_purge_orders() {
        let mut m = master_direct();
        let s = m.signin("a:1", 2);
        let src = m.local_data(records(6), 1).unwrap();
        let m1 = m.map_data(src, 0, 1, false).unwrap();
        let _r1 = m.reduce_data(m1, 0).unwrap();

        let t = take1(m.get_task(s));
        assert_eq!(t.kind, TaskKind::Map);
        m.task_done(
            s,
            t.data,
            t.index,
            t.attempt,
            vec![format!("http://a:1/data/s0/d{}/t0/b0.mrsb", t.data)],
        );
        let t = take1(m.get_task(s));
        assert_eq!(t.kind, TaskKind::Reduce);
        m.task_done(
            s,
            t.data,
            t.index,
            t.attempt,
            vec![format!("http://a:1/data/s0/d{}/t0/b0.mrsb", t.data)],
        );

        // The reduce's completion released the map output: a purge order
        // for the slave's copy rides the next dispatch, exactly once.
        let d = m.get_dispatch(s, 1, Duration::ZERO, &[]);
        assert_eq!(d.assignment, Assignment::Wait);
        assert!(d.purge.contains(&format!("s0/d{}/", m1.0)), "{:?}", d.purge);
        let d2 = m.get_dispatch(s, 1, Duration::ZERO, &[]);
        assert!(d2.purge.is_empty(), "purge orders are drained on delivery");
        let metrics = m.metrics();
        assert_eq!(metrics.datasets_freed(), 1);
        // The source is exempt from lifetime GC.
        assert!(m.wait(src).is_ok());
    }

    #[test]
    fn keep_data_config_disables_master_gc() {
        let cfg = MasterConfig { keep_data: true, ..Default::default() };
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let mut m = Master::new(cfg, DataPlane::SharedFs(Arc::clone(&store))).unwrap();
        let s = m.signin("a:1", 1);
        let src = m.local_data(records(4), 1).unwrap();
        let m1 = m.map_data(src, 0, 1, false).unwrap();
        let _r1 = m.reduce_data(m1, 0).unwrap();
        while let Assignment::Tasks(ts) = m.get_task(s) {
            for t in &ts {
                finish_task(&m, &store, s, t);
            }
        }
        assert_eq!(m.metrics().datasets_freed(), 0);
        assert!(m.fetch_all(m1).is_ok(), "intermediates stay fetchable with keep-data");
    }

    #[test]
    fn dead_multislot_slave_has_all_running_tasks_requeued() {
        let cfg =
            MasterConfig { slave_timeout: Duration::from_millis(20), ..MasterConfig::default() };
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let mut m = Master::new(cfg, DataPlane::SharedFs(store)).unwrap();
        let s1 = m.signin("a:1", 4);
        let s2 = m.signin("b:2", 4);
        let src = m.local_data(records(8), 3).unwrap();
        let _mapped = m.map_data(src, 0, 1, false).unwrap();

        // s1 grabs all three tasks in one poll, then goes silent.
        let Assignment::Tasks(ts) = m.get_tasks(s1, 4) else { panic!() };
        assert_eq!(ts.len(), 3);
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(m.get_tasks(s2, 4), Assignment::Wait);
        m.sweep();
        assert_eq!(m.live_slaves(), 1);
        // Every one of s1's running tasks is re-queued and lands on s2.
        let Assignment::Tasks(ts2) = m.get_tasks(s2, 4) else { panic!() };
        let mut got: Vec<usize> = ts2.iter().map(|t| t.index).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(m.metrics().tasks_retried(), 3);
    }

    #[test]
    fn eager_fragments_published_incrementally_with_affinity_prediction() {
        let mut m = master_direct();
        let s0 = m.signin("a:1", 1);
        let s1 = m.signin("b:2", 1);
        let src = m.local_data(records(4), 2).unwrap();
        let _mapped = m.map_data(src, 0, 2, false).unwrap();
        let _reduced = m.reduce_data(_mapped, 0).unwrap();

        // Slave 0 completes the first map task: its per-partition URLs are
        // published at once, keyed to the predicted reduce owner
        // (round-robin over live slaves: partition p → slave p % 2).
        let t = take1(m.get_tasks(s0, 1));
        assert_eq!(t.kind, TaskKind::Map);
        let urls: Vec<String> = (0..t.parts)
            .map(|p| format!("http://a:1/data/s0/d{}/t{}/b{p}.mrsb", t.data, t.index))
            .collect();
        m.task_done(s0, t.data, t.index, t.attempt, urls.clone());

        let d0 = m.get_dispatch(s0, 0, Duration::ZERO, &[]);
        assert_eq!(d0.eager.len(), 1, "{:?}", d0.eager);
        assert_eq!((d0.eager[0].data, d0.eager[0].partition), (t.data, 0));
        assert_eq!(d0.eager[0].url, urls[0]);
        let d1 = m.get_dispatch(s1, 0, Duration::ZERO, &[]);
        assert_eq!(d1.eager.len(), 1, "{:?}", d1.eager);
        assert_eq!(d1.eager[0].partition, 1);
        assert_eq!(d1.eager[0].url, urls[1]);

        // Slave 1 completes the second map; its fragments go to the
        // owners the first publication committed into the affinity map.
        let t2 = take1(m.get_tasks(s1, 1));
        let urls2: Vec<String> = (0..t2.parts)
            .map(|p| format!("http://b:2/data/s1/d{}/t{}/b{p}.mrsb", t2.data, t2.index))
            .collect();
        m.task_done(s1, t2.data, t2.index, t2.attempt, urls2.clone());

        // The barrier is clear: each slave is granted exactly the reduce
        // partition whose fragments were predicted onto it.
        let d0 = m.get_dispatch(s0, 1, Duration::ZERO, &[]);
        assert_eq!(d0.eager.len(), 1);
        assert_eq!(d0.eager[0].url, urls2[0]);
        let Assignment::Tasks(ts) = d0.assignment else { panic!("barrier should be clear") };
        assert_eq!((ts[0].kind, ts[0].index), (TaskKind::Reduce, 0));
        let d1 = m.get_dispatch(s1, 1, Duration::ZERO, &[]);
        assert_eq!(d1.eager[0].url, urls2[1]);
        let Assignment::Tasks(ts) = d1.assignment else { panic!("barrier should be clear") };
        assert_eq!((ts[0].kind, ts[0].index), (TaskKind::Reduce, 1));
    }

    #[test]
    fn eager_publication_waits_for_a_consumer_then_backfills() {
        let mut m = master_direct();
        let s0 = m.signin("a:1", 1);
        let s1 = m.signin("b:2", 1);
        let src = m.local_data(records(4), 1).unwrap();
        let mapped = m.map_data(src, 0, 2, false).unwrap();
        let t = take1(m.get_tasks(s0, 1));
        let urls: Vec<String> =
            (0..t.parts).map(|p| format!("http://a:1/data/s0/d{}/t0/b{p}.mrsb", t.data)).collect();
        m.task_done(s0, t.data, t.index, t.attempt, urls);
        // No reduce-like consumer yet: nothing to predict, nothing sent.
        assert!(m.get_dispatch(s0, 0, Duration::ZERO, &[]).eager.is_empty());
        assert!(m.get_dispatch(s1, 0, Duration::ZERO, &[]).eager.is_empty());
        // Submitting the reduce retroactively publishes the already-done
        // fragments (iterative drivers submit consumers late).
        let _r = m.reduce_data(mapped, 0).unwrap();
        let d0 = m.get_dispatch(s0, 0, Duration::ZERO, &[]);
        let d1 = m.get_dispatch(s1, 0, Duration::ZERO, &[]);
        assert_eq!(d0.eager.len() + d1.eager.len(), 2, "{:?} {:?}", d0.eager, d1.eager);
    }

    #[test]
    fn eager_shuffle_off_publishes_nothing() {
        let cfg = MasterConfig { eager_shuffle: false, ..MasterConfig::default() };
        let mut m = Master::new(cfg, DataPlane::Direct).unwrap();
        let s0 = m.signin("a:1", 1);
        let src = m.local_data(records(4), 1).unwrap();
        let _mapped = m.map_data(src, 0, 2, false).unwrap();
        let _reduced = m.reduce_data(_mapped, 0).unwrap();
        let t = take1(m.get_tasks(s0, 1));
        let urls: Vec<String> =
            (0..t.parts).map(|p| format!("http://a:1/data/s0/d{}/t0/b{p}.mrsb", t.data)).collect();
        m.task_done(s0, t.data, t.index, t.attempt, urls);
        assert!(m.get_dispatch(s0, 0, Duration::ZERO, &[]).eager.is_empty());
    }

    /// A four-task map wave where s1 holds every task and finishes all but
    /// the last, which keeps running long enough to cross the speculation
    /// cutoff. Returns the still-running straggler's TaskMsg.
    fn straggler_wave(
        m: &mut Master,
        store: &Arc<dyn Store>,
        s1: SlaveId,
    ) -> (DataId, Vec<TaskMsg>) {
        let src = m.local_data(records(8), 4).unwrap();
        let mapped = m.map_data(src, 0, 1, false).unwrap();
        let ts = match m.get_tasks(s1, 4) {
            Assignment::Tasks(ts) if ts.len() == 4 => ts,
            other => panic!("expected four tasks, got {other:?}"),
        };
        for t in &ts[..3] {
            finish_task(m, store, s1, t);
        }
        // Let the straggler run well past 1.5x the (tiny) median runtime.
        std::thread::sleep(Duration::from_millis(10));
        (mapped, ts)
    }

    #[test]
    fn backup_dispatched_for_straggler_and_first_completion_wins() {
        let (mut m, store) = shared_master();
        let s1 = m.signin("a:1", 4);
        let s2 = m.signin("b:2", 1);
        let (mapped, ts) = straggler_wave(&mut m, &store, s1);
        let straggler = &ts[3];

        // s2's idle poll is granted a speculative backup of the straggler,
        // under a fresh attempt id.
        let backup = take1(m.get_tasks(s2, 1));
        assert_eq!((backup.data, backup.index), (straggler.data, straggler.index));
        assert_ne!(backup.attempt, straggler.attempt);

        // The backup reports first: its completion is the commit point.
        finish_task(&m, &store, s2, &backup);
        m.wait(mapped).unwrap();
        let metrics = m.metrics();
        assert_eq!(metrics.speculative_launches(), 1);
        assert_eq!(metrics.speculative_wins(), 1);
        assert_eq!(metrics.speculative_losses(), 0);
        assert_eq!(metrics.cancelled_tasks(), 1);
        assert!(
            metrics.straggler_time_saved() > Duration::ZERO,
            "{:?}",
            metrics.straggler_time_saved()
        );

        // The loser's slave receives a cancel order on its next poll,
        // exactly once.
        let d = m.get_dispatch(s1, 0, Duration::ZERO, &[]);
        assert_eq!(d.cancel.len(), 1, "{:?}", d.cancel);
        assert_eq!(
            (d.cancel[0].data, d.cancel[0].index, d.cancel[0].attempt),
            (straggler.data, straggler.index, straggler.attempt)
        );
        assert!(m.get_dispatch(s1, 0, Duration::ZERO, &[]).cancel.is_empty());

        // The straggler's late report is stale: ignored entirely.
        finish_task(&m, &store, s1, straggler);
        assert_eq!(m.metrics().tasks_executed(), 4);
    }

    #[test]
    fn backup_loses_when_original_finishes_first() {
        let (mut m, store) = shared_master();
        let s1 = m.signin("a:1", 4);
        let s2 = m.signin("b:2", 1);
        let (mapped, ts) = straggler_wave(&mut m, &store, s1);
        let straggler = &ts[3];
        let backup = take1(m.get_tasks(s2, 1));

        // The original beats its backup: the backup is the cancelled loser.
        finish_task(&m, &store, s1, straggler);
        m.wait(mapped).unwrap();
        let metrics = m.metrics();
        assert_eq!(metrics.speculative_launches(), 1);
        assert_eq!(metrics.speculative_wins(), 0);
        assert_eq!(metrics.speculative_losses(), 1);
        assert_eq!(metrics.cancelled_tasks(), 1);
        let d = m.get_dispatch(s2, 0, Duration::ZERO, &[]);
        assert_eq!(d.cancel.len(), 1, "{:?}", d.cancel);
        assert_eq!(d.cancel[0].attempt, backup.attempt);

        // The backup's late report is stale.
        finish_task(&m, &store, s2, &backup);
        assert_eq!(m.metrics().tasks_executed(), 4);
    }

    #[test]
    fn stale_failure_from_cancelled_attempt_is_ignored() {
        let (mut m, store) = shared_master();
        let s1 = m.signin("a:1", 4);
        let s2 = m.signin("b:2", 1);
        let (mapped, ts) = straggler_wave(&mut m, &store, s1);
        let straggler = &ts[3];
        let backup = take1(m.get_tasks(s2, 1));
        finish_task(&m, &store, s2, &backup);
        m.wait(mapped).unwrap();

        // The loser aborts mid-run and reports a failure under its
        // superseded attempt id: the committed slot must stay untouched.
        m.task_failed(s1, straggler.data, straggler.index, straggler.attempt, "cancelled", None);
        assert_eq!(m.metrics().tasks_retried(), 0);
        assert_eq!(m.get_tasks(s1, 4), Assignment::Wait);
    }

    #[test]
    fn speculation_off_launches_no_backups() {
        let cfg = MasterConfig { speculate: SpeculateMode::Off, ..MasterConfig::default() };
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let mut m = Master::new(cfg, DataPlane::SharedFs(Arc::clone(&store))).unwrap();
        let s1 = m.signin("a:1", 4);
        let s2 = m.signin("b:2", 1);
        let _wave = straggler_wave(&mut m, &store, s1);
        assert_eq!(m.get_tasks(s2, 1), Assignment::Wait);
        assert_eq!(m.metrics().speculative_launches(), 0);
    }

    #[test]
    fn no_backup_before_wave_mostly_done() {
        let (mut m, store) = shared_master();
        let s1 = m.signin("a:1", 4);
        let s2 = m.signin("b:2", 1);
        let src = m.local_data(records(8), 4).unwrap();
        let _mapped = m.map_data(src, 0, 1, false).unwrap();
        let ts = match m.get_tasks(s1, 4) {
            Assignment::Tasks(ts) => ts,
            other => panic!("{other:?}"),
        };
        // Only half the wave is done: below the 75% speculation gate.
        for t in &ts[..2] {
            finish_task(&m, &store, s1, t);
        }
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(m.get_tasks(s2, 1), Assignment::Wait);
        assert_eq!(m.metrics().speculative_launches(), 0);
    }

    #[test]
    fn no_backup_on_the_stragglers_own_slave() {
        let (mut m, store) = shared_master();
        let s1 = m.signin("a:1", 4);
        let _wave = straggler_wave(&mut m, &store, s1);
        // s1 now has three free slots, but a backup on the same machine
        // as the original cannot dodge that machine's slowness.
        assert_eq!(m.get_tasks(s1, 3), Assignment::Wait);
        assert_eq!(m.metrics().speculative_launches(), 0);
    }

    #[test]
    fn stale_attempt_report_is_ignored_after_requeue() {
        let cfg =
            MasterConfig { slave_timeout: Duration::from_millis(20), ..MasterConfig::default() };
        let store: Arc<dyn Store> = Arc::new(MemFs::new());
        let mut m = Master::new(cfg, DataPlane::SharedFs(Arc::clone(&store))).unwrap();
        let s1 = m.signin("a:1", 1);
        let s2 = m.signin("b:2", 1);
        let src = m.local_data(records(4), 1).unwrap();
        let mapped = m.map_data(src, 0, 1, false).unwrap();

        // s1 takes the task and goes silent long enough to be swept.
        let t1 = take1(m.get_task(s1));
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(m.get_task(s2), Assignment::Wait);
        m.sweep();
        let t2 = take1(m.get_task(s2));
        assert_eq!((t2.data, t2.index), (t1.data, t1.index));
        assert_ne!(t2.attempt, t1.attempt, "attempt ids are never reused");

        // s1 was merely slow, not dead: its report names the superseded
        // attempt and must not commit (no double completion later).
        finish_task(&m, &store, s1, &t1);
        assert_eq!(m.metrics().tasks_executed(), 0);
        finish_task(&m, &store, s2, &t2);
        m.wait(mapped).unwrap();
        assert_eq!(m.metrics().tasks_executed(), 1);
    }

    #[test]
    fn legacy_report_without_attempt_id_is_accepted() {
        let (mut m, store) = shared_master();
        let s = m.signin("a:1", 1);
        let src = m.local_data(records(4), 1).unwrap();
        let mapped = m.map_data(src, 0, 1, false).unwrap();
        let t = take1(m.get_task(s));
        let urls: Vec<String> = (0..t.parts)
            .map(|p| {
                let path = format!("out/d{}t{}p{p}", t.data, t.index);
                store.put(&path, &write_bucket_bytes(&[])).unwrap();
                format!("file://{path}")
            })
            .collect();
        // Attempt 0 is the legacy wire value (decoder default for old
        // slaves): matched by slave identity alone.
        m.task_done(s, t.data, t.index, 0, urls);
        m.wait(mapped).unwrap();
        assert_eq!(m.metrics().tasks_executed(), 1);
    }

    #[test]
    fn parked_idle_slave_wakes_for_speculation_deadline() {
        let (mut m, store) = shared_master();
        let s1 = m.signin("a:1", 4);
        let s2 = m.signin("b:2", 1);
        let src = m.local_data(records(8), 4).unwrap();
        let _mapped = m.map_data(src, 0, 1, false).unwrap();
        let ts = match m.get_tasks(s1, 4) {
            Assignment::Tasks(ts) => ts,
            other => panic!("{other:?}"),
        };
        // Three tasks complete after ~40ms, so the median runtime is
        // ~40ms and the straggler crosses the 1.5x cutoff ~20ms from now.
        std::thread::sleep(Duration::from_millis(40));
        for t in &ts[..3] {
            finish_task(&m, &store, s1, t);
        }
        // An idle slave parking for 900ms must be woken at the
        // speculation deadline instead of sleeping out its park.
        let start = Instant::now();
        let a = m.get_tasks_with(s2, 1, Duration::from_millis(900), &[]);
        let elapsed = start.elapsed();
        let backup = take1(a);
        assert_eq!((backup.data, backup.index), (ts[3].data, ts[3].index));
        assert!(elapsed < Duration::from_millis(400), "woke too late: {elapsed:?}");
        assert_eq!(m.metrics().speculative_launches(), 1);
    }
}
