//! The job API a program's driver uses, shared by all implementations.
//!
//! Mirrors the Mrs `run(job)` interface: a driver submits datasets and
//! operations, *without waiting* between submissions — "Mrs allows a
//! program to queue up map and reduce operations so that each is ready to
//! begin as soon as the previous operation finishes" (§IV-A). `wait` blocks
//! only when the driver actually needs data (e.g. a convergence check), and
//! already-queued later operations keep running meanwhile.

use crate::data::DataId;
use mrs_core::{FuncId, Record, Result};

/// Object-safe job interface implemented by every runtime.
pub trait JobApi {
    /// Introduce a source dataset from in-memory records, split into
    /// `splits` map-task inputs.
    fn local_data(&mut self, records: Vec<Record>, splits: usize) -> Result<DataId>;

    /// Queue a map over `input` using the program's map function `func`,
    /// partitioning output into `parts` buckets (the reduce task count).
    /// `combine` runs the program's combiner after each map task.
    fn map_data(
        &mut self,
        input: DataId,
        func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId>;

    /// Queue a reduce over a map output using reduce function `func`.
    /// Produces one output split per partition of `input`.
    fn reduce_data(&mut self, input: DataId, func: FuncId) -> Result<DataId>;

    /// Queue a fused reduce+map over a map-like output: each partition of
    /// `input` is sorted, grouped, reduced with `reduce_func`, and every
    /// reduced record is fed straight into `map_func`, partitioning the
    /// output into `parts` buckets — one scheduling/shuffle round instead
    /// of two, and the reduce output is never materialized. The result is
    /// map-like: feed it to another `reduce_map_data` or a final
    /// `reduce_data`, byte-identical to the unfused pair.
    fn reduce_map_data(
        &mut self,
        input: DataId,
        reduce_func: FuncId,
        map_func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId>;

    /// Block until a dataset is fully materialized.
    fn wait(&mut self, data: DataId) -> Result<()>;

    /// Wait for and gather a dataset's records (splits concatenated in
    /// order).
    fn fetch_all(&mut self, data: DataId) -> Result<Vec<Record>>;

    /// Hint that a dataset's storage can be reclaimed. Runtimes may ignore
    /// it; iterative programs call it on data from finished iterations.
    fn discard(&mut self, data: DataId);

    /// Pin a dataset against automatic lifetime GC: the runtime must keep
    /// it fetchable after its last queued consumer finishes, until the
    /// driver explicitly discards it. Drivers that queue iteration `t+1`
    /// before fetching iteration `t`'s result pin that result first. The
    /// default is a no-op, correct for runtimes without lifetime GC.
    fn keep(&mut self, _data: DataId) {}
}

/// Convenience wrapper so drivers can be written against a concrete type.
pub struct Job<'a> {
    inner: &'a mut dyn JobApi,
}

impl<'a> Job<'a> {
    /// Wrap a runtime's job interface.
    pub fn new(inner: &'a mut dyn JobApi) -> Self {
        Job { inner }
    }

    /// See [`JobApi::local_data`].
    pub fn local_data(&mut self, records: Vec<Record>, splits: usize) -> Result<DataId> {
        self.inner.local_data(records, splits)
    }

    /// See [`JobApi::map_data`].
    pub fn map_data(
        &mut self,
        input: DataId,
        func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId> {
        self.inner.map_data(input, func, parts, combine)
    }

    /// See [`JobApi::reduce_data`].
    pub fn reduce_data(&mut self, input: DataId, func: FuncId) -> Result<DataId> {
        self.inner.reduce_data(input, func)
    }

    /// See [`JobApi::reduce_map_data`].
    pub fn reduce_map_data(
        &mut self,
        input: DataId,
        reduce_func: FuncId,
        map_func: FuncId,
        parts: usize,
        combine: bool,
    ) -> Result<DataId> {
        self.inner.reduce_map_data(input, reduce_func, map_func, parts, combine)
    }

    /// See [`JobApi::keep`].
    pub fn keep(&mut self, data: DataId) {
        self.inner.keep(data)
    }

    /// See [`JobApi::wait`].
    pub fn wait(&mut self, data: DataId) -> Result<()> {
        self.inner.wait(data)
    }

    /// See [`JobApi::fetch_all`].
    pub fn fetch_all(&mut self, data: DataId) -> Result<Vec<Record>> {
        self.inner.fetch_all(data)
    }

    /// See [`JobApi::discard`].
    pub fn discard(&mut self, data: DataId) {
        self.inner.discard(data)
    }

    /// The Mrs `file_data` call: read text files from a store and submit
    /// them as a source dataset of `(line_no, line)` records with globally
    /// distinct line numbers, split into `splits` map inputs. Missing
    /// paths are an error; order of `paths` defines line numbering.
    pub fn file_data(
        &mut self,
        store: &dyn mrs_fs::Store,
        paths: &[String],
        splits: usize,
    ) -> Result<DataId> {
        let mut records = Vec::new();
        let mut next_line = 0u64;
        for path in paths {
            let bytes = store.get(path)?;
            let text = String::from_utf8(bytes)
                .map_err(|e| mrs_core::Error::Codec(format!("{path}: not utf-8 text: {e}")))?;
            let recs = mrs_fs::format::text_to_records(&text, next_line);
            next_line += recs.len() as u64;
            records.extend(recs);
        }
        self.local_data(records, splits)
    }

    /// Checkpoint a dataset to a store as a bucket file under `prefix`.
    /// Returns the number of records saved. Together with
    /// [`Job::restore`], this lets long iterative jobs (thousands of PSO
    /// or EM iterations) survive driver restarts: because every Mrs
    /// program is deterministic given its state, resuming from a
    /// checkpoint continues the *exact* trajectory.
    pub fn save(&mut self, data: DataId, store: &dyn mrs_fs::Store, prefix: &str) -> Result<u64> {
        let records = self.fetch_all(data)?;
        let n = records.len() as u64;
        let path = format!("{prefix}/checkpoint.mrsb");
        store.put(&path, &mrs_fs::format::write_bucket_bytes(&records))?;
        Ok(n)
    }

    /// Load a dataset checkpointed by [`Job::save`] back into the job as a
    /// source dataset with `splits` map inputs.
    pub fn restore(
        &mut self,
        store: &dyn mrs_fs::Store,
        prefix: &str,
        splits: usize,
    ) -> Result<DataId> {
        let path = format!("{prefix}/checkpoint.mrsb");
        let mut bucket = mrs_core::Bucket::new();
        mrs_fs::format::read_bucket_into(&store.get(&path)?, &mut bucket)?;
        self.local_data(bucket.to_records(), splits)
    }

    /// The classic one-shot pattern: map then reduce with the `Simple`
    /// program's single function pair, returning the reduce output.
    pub fn map_reduce(
        &mut self,
        input: Vec<Record>,
        map_tasks: usize,
        reduce_tasks: usize,
        combine: bool,
    ) -> Result<Vec<Record>> {
        let src = self.local_data(input, map_tasks)?;
        let mapped = self.map_data(src, 0, reduce_tasks, combine)?;
        let reduced = self.reduce_data(mapped, 0)?;
        self.fetch_all(reduced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialRuntime;
    use mrs_core::{Datum, MapReduce, Simple};
    use mrs_fs::{MemFs, Store};
    use std::sync::Arc;

    struct LineCount;
    impl MapReduce for LineCount {
        type K1 = u64;
        type V1 = String;
        type K2 = u64;
        type V2 = u64;
        fn map(&self, _k: u64, _v: String, emit: &mut dyn FnMut(u64, u64)) {
            emit(0, 1);
        }
        fn reduce(&self, _k: &u64, vs: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
            emit(vs.sum());
        }
    }

    #[test]
    fn file_data_reads_and_numbers_lines_across_files() {
        let store = MemFs::new();
        store.put("a.txt", b"one\ntwo\n").unwrap();
        store.put("b.txt", b"three\n").unwrap();
        let mut rt = SerialRuntime::new(Arc::new(Simple(LineCount)));
        let mut job = Job::new(&mut rt);
        let src = job.file_data(&store, &["a.txt".into(), "b.txt".into()], 2).unwrap();
        let m = job.map_data(src, 0, 1, false).unwrap();
        let r = job.reduce_data(m, 0).unwrap();
        let out = job.fetch_all(r).unwrap();
        assert_eq!(u64::from_bytes(&out[0].1).unwrap(), 3);
    }

    #[test]
    fn file_data_missing_file_is_error() {
        let store = MemFs::new();
        let mut rt = SerialRuntime::new(Arc::new(Simple(LineCount)));
        let mut job = Job::new(&mut rt);
        assert!(job.file_data(&store, &["nope.txt".into()], 1).is_err());
    }

    #[test]
    fn file_data_rejects_non_utf8() {
        let store = MemFs::new();
        store.put("bin", &[0xff, 0xfe, 0x00]).unwrap();
        let mut rt = SerialRuntime::new(Arc::new(Simple(LineCount)));
        let mut job = Job::new(&mut rt);
        assert!(job.file_data(&store, &["bin".into()], 1).is_err());
    }
}
