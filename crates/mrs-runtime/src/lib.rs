//! Execution implementations for Mrs programs.
//!
//! The paper defines four run-time behaviours of one and the same program
//! (§IV-A), all reproduced here:
//!
//! * [`serial`] — everything sequential in one task per operation;
//!   deterministic reference semantics,
//! * [`local`] with one worker and file spill — **mock parallel**: the same
//!   task decomposition as the cluster, run on a single processor, with
//!   intermediate data saved to bucket files for debugging,
//! * [`local`] with N workers — thread-pool parallelism in one process,
//! * [`distributed`] — the real master/slave runtime over XML-RPC
//!   ([`master`], [`slave`]), with direct HTTP intermediate data or a
//!   shared filesystem, task→slave affinity, operation pipelining, and
//!   slave-failure recovery,
//!
//! The distributed runtime is capacity-aware: each slave advertises
//! `slots + 1` at signin ([`SlaveOptions::slots`] compute workers plus
//! one prefetch buffer) and asks for up to its free capacity per poll.
//! Inside the slave, the poll loop prefetches task inputs into a bounded
//! queue that a pool of worker threads drains — fetch, compute, and
//! report overlap (double buffering), and an idle slave backs off its
//! poll interval exponentially until work reappears. The master dispatches
//! batches up to each slave's capacity, breaks affinity ties toward
//! underloaded slaves, steals claims only from fractionally busier
//! owners, and on a slave death re-queues *all* of its in-flight tasks.
//!
//! Stragglers are handled by speculative execution
//! ([`proto::SpeculateMode`], `--mrs-speculate`, default on): when a wave
//! is mostly complete and idle slots exist, a task running past a
//! configurable multiple of the median completed-task runtime gets a
//! backup attempt on a different slave (preferring one whose
//! eager-shuffle cache is already warm for that partition). The first
//! completion wins at the master's commit point; every losing attempt is
//! cancelled cooperatively via an order piggybacked on its slave's next
//! poll, and a stale report from a loser is recognized by its attempt id
//! and ignored.
//!
//! Its control plane is event-driven ([`proto::ControlMode::LongPoll`],
//! the default): an idle slave's `get_task` parks server-side on a
//! condvar until a state transition makes work runnable (long-poll
//! dispatch), completion reports ride piggybacked on the next poll
//! instead of costing their own RPC, and the driver's `wait`/`fetch_all`
//! and the dead-slave sweeper sleep on the completion condvar with a
//! deadline at the earliest possible slave death. The legacy
//! sleep-and-poll plane remains available as `ControlMode::Poll`
//! (`--mrs-control=poll`) for comparison benchmarks.
//! * the **bypass** implementation is a plain function call in Rust: run
//!   your serial code directly (see `examples/`).
//!
//! All implementations must produce identical answers; the integration
//! tests enforce it.

pub mod cli;
pub mod data;
pub mod dataplane;
pub mod distributed;
pub mod job;
pub mod local;
pub mod master;
pub mod metrics;
pub mod proto;
pub mod serial;
pub mod slave;

pub use cli::{main_with, CliOptions, Implementation};
pub use data::{DataId, Dataset};
pub use dataplane::DataPlaneStats;
pub use distributed::LocalCluster;
pub use job::{Job, JobApi};
pub use local::LocalRuntime;
pub use master::{Master, MasterConfig};
pub use mrs_codec::CompressMode;
pub use mrs_core::MergeMode;
pub use proto::{ControlMode, DataPlane, SpeculateMode};
pub use serial::SerialRuntime;
pub use slave::SlaveOptions;
