//! Execution implementations for Mrs programs.
//!
//! The paper defines four run-time behaviours of one and the same program
//! (§IV-A), all reproduced here:
//!
//! * [`serial`] — everything sequential in one task per operation;
//!   deterministic reference semantics,
//! * [`local`] with one worker and file spill — **mock parallel**: the same
//!   task decomposition as the cluster, run on a single processor, with
//!   intermediate data saved to bucket files for debugging,
//! * [`local`] with N workers — thread-pool parallelism in one process,
//! * [`distributed`] — the real master/slave runtime over XML-RPC
//!   ([`master`], [`slave`]), with direct HTTP intermediate data or a
//!   shared filesystem, task→slave affinity, operation pipelining, and
//!   slave-failure recovery,
//! * the **bypass** implementation is a plain function call in Rust: run
//!   your serial code directly (see `examples/`).
//!
//! All implementations must produce identical answers; the integration
//! tests enforce it.

pub mod cli;
pub mod data;
pub mod distributed;
pub mod job;
pub mod local;
pub mod master;
pub mod metrics;
pub mod proto;
pub mod serial;
pub mod slave;

pub use cli::{main_with, CliOptions, Implementation};
pub use data::{DataId, Dataset};
pub use distributed::LocalCluster;
pub use job::{Job, JobApi};
pub use local::LocalRuntime;
pub use master::{Master, MasterConfig};
pub use proto::DataPlane;
pub use serial::SerialRuntime;
