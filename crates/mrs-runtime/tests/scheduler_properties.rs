//! Property tests over the schedulers: for *randomly shaped* operation
//! chains (split counts, partition counts, combiner flags, chain length,
//! wait/discard positions), the pool scheduler must produce exactly what
//! the serial runtime produces. This is the §IV-A identical-answers
//! invariant quantified over job shapes rather than one fixed program.

use mrs_core::kv::encode_record;
use mrs_core::{Datum, MapReduce, Record, Simple};
use mrs_runtime::{Job, LocalRuntime, SerialRuntime};
use proptest::prelude::*;
use std::sync::Arc;

/// A self-feeding program: key and value are both u64, map fans each
/// record out deterministically, reduce folds values. Output of reduce is
/// valid input to map, so arbitrary chains type-check.
struct FanFold;

impl MapReduce for FanFold {
    type K1 = u64;
    type V1 = u64;
    type K2 = u64;
    type V2 = u64;

    fn map(&self, k: u64, v: u64, emit: &mut dyn FnMut(u64, u64)) {
        // Deterministic fan-out of 1..=2 records with key mixing.
        emit(k.wrapping_mul(31).wrapping_add(v) % 64, v.wrapping_add(1));
        if v.is_multiple_of(3) {
            emit(k % 64, v / 2 + 1);
        }
    }

    fn reduce(&self, _k: &u64, vs: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
        // Order-insensitive fold (sum + count mixed in).
        let mut sum = 0u64;
        let mut count = 0u64;
        for v in vs {
            sum = sum.wrapping_add(v);
            count += 1;
        }
        emit(sum.wrapping_mul(2).wrapping_add(count));
    }

    fn has_combiner(&self) -> bool {
        false // folding twice would change results; keep reduce-only
    }
}

#[derive(Clone, Debug)]
struct Round {
    parts: usize,
    wait_after: bool,
    discard_map: bool,
}

fn arb_round() -> impl Strategy<Value = Round> {
    (1usize..6, any::<bool>(), any::<bool>()).prop_map(|(parts, wait_after, discard_map)| Round {
        parts,
        wait_after,
        discard_map,
    })
}

fn run_chain(job: &mut Job, input: Vec<Record>, splits: usize, rounds: &[Round]) -> Vec<Record> {
    let mut ds = job.local_data(input, splits).unwrap();
    for round in rounds {
        let m = job.map_data(ds, 0, round.parts, false).unwrap();
        let r = job.reduce_data(m, 0).unwrap();
        if round.wait_after {
            job.wait(r).unwrap();
        }
        if round.discard_map && round.wait_after {
            // Only safe to discard once its consumer finished.
            job.discard(m);
        }
        ds = r;
    }
    let mut out = job.fetch_all(ds).unwrap();
    out.sort();
    out
}

fn input_records(n: u64) -> Vec<Record> {
    (0..n).map(|i| encode_record(&(i % 16), &i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pool_matches_serial_on_random_chains(
        n in 1u64..60,
        splits in 1usize..7,
        workers in 1usize..6,
        rounds in proptest::collection::vec(arb_round(), 1..5),
    ) {
        let serial = {
            let mut rt = SerialRuntime::new(Arc::new(Simple(FanFold)));
            let mut job = Job::new(&mut rt);
            run_chain(&mut job, input_records(n), 1, &rounds)
        };
        let pool = {
            let mut rt = LocalRuntime::pool(Arc::new(Simple(FanFold)), workers);
            let mut job = Job::new(&mut rt);
            run_chain(&mut job, input_records(n), splits, &rounds)
        };
        prop_assert_eq!(serial, pool);
    }

    #[test]
    fn repeated_runs_are_deterministic(
        n in 1u64..40,
        splits in 1usize..5,
        rounds in proptest::collection::vec(arb_round(), 1..4),
    ) {
        let run_once = || {
            let mut rt = LocalRuntime::pool(Arc::new(Simple(FanFold)), 4);
            let mut job = Job::new(&mut rt);
            run_chain(&mut job, input_records(n), splits, &rounds)
        };
        prop_assert_eq!(run_once(), run_once());
    }

    #[test]
    fn record_count_is_conserved_by_reduce_keys(
        n in 1u64..50,
        parts in 1usize..8,
    ) {
        // After one map+reduce, the number of output records equals the
        // number of distinct intermediate keys, regardless of partitioning.
        let out = {
            let mut rt = SerialRuntime::new(Arc::new(Simple(FanFold)));
            let mut job = Job::new(&mut rt);
            let src = job.local_data(input_records(n), 1).unwrap();
            let m = job.map_data(src, 0, parts, false).unwrap();
            let r = job.reduce_data(m, 0).unwrap();
            job.fetch_all(r).unwrap()
        };
        let mut keys: Vec<u64> =
            out.iter().map(|(k, _)| u64::from_bytes(k).unwrap()).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        prop_assert_eq!(before, keys.len(), "duplicate key across partitions");
    }
}
