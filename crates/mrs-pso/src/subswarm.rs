//! Subswarm (island) batching — the Apiary-style granularity fix.
//!
//! "For computationally trivial objective functions, task granularity can
//! be too fine if each map task operates on a single particle. In this
//! case, a swarm can be divided into several subswarms or islands, and
//! each map task operates on several iterations of a subswarm of
//! particles" (§V-B, citing [10]–[12]). An island runs complete-topology
//! PSO internally for `inner_iters` iterations per task; islands exchange
//! bests along a ring between tasks.

use crate::functions::Objective;
use crate::motion::step_particle;
use crate::particle::Particle;
use mrs_core::{Datum, Result};
use mrs_rng::StreamFactory;

/// A subswarm: the unit of work of one island map task.
#[derive(Clone, Debug, PartialEq)]
pub struct Island(pub Vec<Particle>);

impl Datum for Island {
    fn encode(&self, buf: &mut Vec<u8>) {
        mrs_core::kv::write_varint(self.0.len() as u64, buf);
        for p in &self.0 {
            p.encode(buf);
        }
    }

    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (len, mut rest) = mrs_core::kv::read_varint(b)?;
        // Particles are ≥ 40 bytes each; bound preallocation by the input.
        let mut out = Vec::with_capacity((len as usize).min(rest.len() / 40 + 1));
        for _ in 0..len {
            let (p, r) = Particle::decode_from(rest)?;
            out.push(p);
            rest = r;
        }
        Ok((Island(out), rest))
    }
}

impl Island {
    /// Best (position, value) in the island.
    pub fn best(&self) -> (&[f64], f64) {
        let p = self
            .0
            .iter()
            .min_by(|a, b| a.pbest_val.total_cmp(&b.pbest_val))
            .expect("island must not be empty");
        (&p.pbest_pos, p.pbest_val)
    }

    /// Offer a foreign best to every member.
    pub fn offer(&mut self, pos: &[f64], val: f64) {
        for p in &mut self.0 {
            p.offer_nbest(pos, val);
        }
    }
}

/// Advance an island `inner_iters` iterations with complete-topology
/// exchange inside the island after every move phase. Returns the number
/// of function evaluations performed.
pub fn advance_island(
    island: &mut Island,
    objective: Objective,
    streams: &StreamFactory,
    inner_iters: u64,
) -> u64 {
    let mut evals = 0;
    for _ in 0..inner_iters {
        for p in &mut island.0 {
            step_particle(p, objective, streams);
            evals += 1;
        }
        // Complete exchange within the island (post-move, like the serial
        // driver's reduce step).
        let offers: Vec<(Vec<f64>, f64)> =
            island.0.iter().map(|p| (p.pbest_pos.clone(), p.pbest_val)).collect();
        for (pos, val) in offers {
            island.offer(&pos, val);
        }
    }
    evals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::init_particle;

    fn island(n: u64, seed: u64) -> Island {
        let streams = StreamFactory::new(seed);
        Island((0..n).map(|i| init_particle(Objective::Sphere, 8, i, &streams)).collect())
    }

    #[test]
    fn island_roundtrips_as_datum() {
        let isl = island(5, 3);
        assert_eq!(Island::from_bytes(&isl.to_bytes()).unwrap(), isl);
    }

    #[test]
    fn empty_island_roundtrips() {
        let isl = Island(vec![]);
        assert_eq!(Island::from_bytes(&isl.to_bytes()).unwrap(), isl);
    }

    #[test]
    fn advance_counts_evals_and_improves() {
        let mut isl = island(5, 9);
        let streams = StreamFactory::new(9);
        let before = isl.best().1;
        let evals = advance_island(&mut isl, Objective::Sphere, &streams, 100);
        assert_eq!(evals, 500);
        assert!(isl.best().1 < before);
    }

    #[test]
    fn advance_is_deterministic() {
        let streams = StreamFactory::new(4);
        let mut a = island(5, 4);
        let mut b = island(5, 4);
        advance_island(&mut a, Objective::Sphere, &streams, 20);
        advance_island(&mut b, Objective::Sphere, &streams, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn offer_improves_all_members() {
        let mut isl = island(4, 2);
        isl.offer(&[0.0; 8], -5.0);
        assert!(isl.0.iter().all(|p| p.nbest_val == -5.0));
    }

    #[test]
    fn best_picks_minimum() {
        let mut isl = island(4, 6);
        isl.0[2].pbest_val = -100.0;
        isl.0[2].pbest_pos = vec![1.0; 8];
        assert_eq!(isl.best().1, -100.0);
    }
}
