//! PSO as a MapReduce program, at both granularities the paper discusses.
//!
//! * **Per-particle** ([`FUNC_PARTICLE`]): "the map function performing
//!   motion simulation and evaluation of the objective function and the
//!   reduce function calculating the neighborhood best by combining the
//!   updated particle with messages from its neighbors" [5].
//! * **Per-island** ([`FUNC_ISLAND`]): each map task advances a whole
//!   subswarm for `inner_iters` iterations (Apiary granularity), and the
//!   reduce folds in the best exported by the ring-predecessor island.
//!
//! Keys are dense integers partitioned with the modulo partitioner, so the
//! scheduler's task→slave affinity keeps each particle/island on the same
//! slave across iterations — the paper's inter-iteration locality
//! optimization (§IV-A).

use crate::motion::{init_particle, step_particle};
use crate::particle::{Particle, PsoMessage};
use crate::serial::{IterRecord, PsoConfig};
use crate::subswarm::{advance_island, Island};
use crate::topology::Topology;
use mrs_core::kv::encode_record;
use mrs_core::partition::Partition;
use mrs_core::{Datum, Error, FuncId, Program, Record, Result};
use mrs_rng::StreamFactory;
use mrs_runtime::Job;

/// Function id: per-particle map/reduce.
pub const FUNC_PARTICLE: FuncId = 0;
/// Function id: per-island (subswarm-batched) map/reduce.
pub const FUNC_ISLAND: FuncId = 1;

/// Messages of the island-granularity stage.
#[derive(Clone, Debug, PartialEq)]
pub enum IslandMsg {
    /// A whole subswarm, keyed by its island id.
    Island(Island),
    /// A neighbor island's best, sent along the ring.
    Best {
        /// Best position.
        pos: Vec<f64>,
        /// Best value.
        val: f64,
    },
}

impl Datum for IslandMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            IslandMsg::Island(i) => {
                buf.push(0);
                i.encode(buf);
            }
            IslandMsg::Best { pos, val } => {
                buf.push(1);
                pos.encode(buf);
                val.encode(buf);
            }
        }
    }

    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (&tag, rest) = b.split_first().ok_or_else(|| Error::Codec("empty IslandMsg".into()))?;
        match tag {
            0 => {
                let (i, rest) = Island::decode_from(rest)?;
                Ok((IslandMsg::Island(i), rest))
            }
            1 => {
                let (pos, rest) = Vec::<f64>::decode_from(rest)?;
                let (val, rest) = f64::decode_from(rest)?;
                Ok((IslandMsg::Best { pos, val }, rest))
            }
            other => Err(Error::Codec(format!("bad IslandMsg tag {other}"))),
        }
    }
}

/// The PSO MapReduce program.
pub struct PsoProgram {
    /// Run parameters.
    pub config: PsoConfig,
    /// Inner iterations per island map task.
    pub inner_iters: u64,
    streams: StreamFactory,
}

impl PsoProgram {
    /// Build a program; `inner_iters` only affects the island functions.
    pub fn new(config: PsoConfig, inner_iters: u64) -> PsoProgram {
        assert!(inner_iters > 0, "need at least one inner iteration");
        let streams = StreamFactory::new(config.seed);
        PsoProgram { config, inner_iters, streams }
    }

    /// Number of islands under the configured topology.
    pub fn n_islands(&self) -> u64 {
        self.config.topology.islands(self.config.n_particles)
    }

    /// Initial records for the per-particle granularity.
    pub fn initial_particles(&self) -> Vec<Record> {
        (0..self.config.n_particles)
            .map(|i| {
                let p = init_particle(self.config.objective, self.config.dim, i, &self.streams);
                encode_record(&i, &PsoMessage::Particle(p))
            })
            .collect()
    }

    /// Initial records for the island granularity.
    pub fn initial_islands(&self) -> Vec<Record> {
        let Topology::Subswarms { size } = self.config.topology else {
            panic!("island granularity requires a Subswarms topology");
        };
        let n = self.config.n_particles;
        (0..self.n_islands())
            .map(|island| {
                let start = island * size as u64;
                let end = (start + size as u64).min(n);
                let members: Vec<Particle> = (start..end)
                    .map(|i| {
                        init_particle(self.config.objective, self.config.dim, i, &self.streams)
                    })
                    .collect();
                encode_record(&island, &IslandMsg::Island(Island(members)))
            })
            .collect()
    }

    fn map_particle(
        &self,
        key: &[u8],
        value: &[u8],
        emit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<()> {
        let id = u64::from_bytes(key)?;
        let PsoMessage::Particle(mut p) = PsoMessage::from_bytes(value)? else {
            return Err(Error::Invalid("map input must be a particle".into()));
        };
        step_particle(&mut p, self.config.objective, &self.streams);
        for nb in self.config.topology.neighbors(id, self.config.n_particles) {
            let msg = PsoMessage::Best { pos: p.pbest_pos.clone(), val: p.pbest_val };
            emit(&nb.to_bytes(), &msg.to_bytes());
        }
        emit(key, &PsoMessage::Particle(p).to_bytes());
        Ok(())
    }

    fn reduce_particle(
        &self,
        values: &mut dyn Iterator<Item = &[u8]>,
        emit: &mut dyn FnMut(&[u8], &[u8]),
        key: &[u8],
    ) -> Result<()> {
        let mut particle: Option<Particle> = None;
        let mut bests: Vec<(Vec<f64>, f64)> = Vec::new();
        for raw in values {
            match PsoMessage::from_bytes(raw)? {
                PsoMessage::Particle(p) => particle = Some(p),
                PsoMessage::Best { pos, val } => bests.push((pos, val)),
            }
        }
        let mut p =
            particle.ok_or_else(|| Error::Invalid("reduce group without its particle".into()))?;
        for (pos, val) in bests {
            p.offer_nbest(&pos, val);
        }
        emit(key, &PsoMessage::Particle(p).to_bytes());
        Ok(())
    }

    fn map_island(
        &self,
        key: &[u8],
        value: &[u8],
        emit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<()> {
        let id = u64::from_bytes(key)?;
        let IslandMsg::Island(mut island) = IslandMsg::from_bytes(value)? else {
            return Err(Error::Invalid("island map input must be an island".into()));
        };
        advance_island(&mut island, self.config.objective, &self.streams, self.inner_iters);
        let (pos, val) = island.best();
        let next = (id + 1) % self.n_islands();
        if next != id {
            let msg = IslandMsg::Best { pos: pos.to_vec(), val };
            emit(&next.to_bytes(), &msg.to_bytes());
        }
        emit(key, &IslandMsg::Island(island).to_bytes());
        Ok(())
    }

    fn reduce_island(
        &self,
        values: &mut dyn Iterator<Item = &[u8]>,
        emit: &mut dyn FnMut(&[u8], &[u8]),
        key: &[u8],
    ) -> Result<()> {
        let mut island: Option<Island> = None;
        let mut bests: Vec<(Vec<f64>, f64)> = Vec::new();
        for raw in values {
            match IslandMsg::from_bytes(raw)? {
                IslandMsg::Island(i) => island = Some(i),
                IslandMsg::Best { pos, val } => bests.push((pos, val)),
            }
        }
        let mut island =
            island.ok_or_else(|| Error::Invalid("reduce group without its island".into()))?;
        for (pos, val) in bests {
            island.offer(&pos, val);
        }
        emit(key, &IslandMsg::Island(island).to_bytes());
        Ok(())
    }

    /// Extract the best value from fetched per-particle records.
    pub fn best_of_particles(records: &[Record]) -> Result<f64> {
        let mut best = f64::INFINITY;
        for (_, v) in records {
            if let PsoMessage::Particle(p) = PsoMessage::from_bytes(v)? {
                best = best.min(p.pbest_val);
            }
        }
        Ok(best)
    }

    /// Extract the best value from fetched island records.
    pub fn best_of_islands(records: &[Record]) -> Result<f64> {
        let mut best = f64::INFINITY;
        for (_, v) in records {
            if let IslandMsg::Island(i) = IslandMsg::from_bytes(v)? {
                best = best.min(i.best().1);
            }
        }
        Ok(best)
    }

    /// Drive `outer_iters` island-granularity MapReduce iterations on any
    /// runtime, queueing the next iteration before fetching the previous
    /// one's result (the paper's operation pipelining: the convergence
    /// check overlaps the next iteration's computation).
    pub fn drive_islands(&self, job: &mut Job, outer_iters: u64) -> Result<Vec<IterRecord>> {
        let n_islands = self.n_islands() as usize;
        let n = self.config.n_particles;
        let mut history = Vec::with_capacity(outer_iters as usize + 1);
        history.push(IterRecord {
            iteration: 0,
            best_val: Self::best_of_islands(&self.initial_islands())?,
            func_evals: n,
        });
        let mut ds = job.local_data(self.initial_islands(), n_islands)?;
        // Pipelining discipline: iteration t+1's ops are queued *before*
        // iteration t's result is fetched. A dataset may only be discarded
        // once its consumer is complete: fetching r_t proves m_t complete,
        // which proves r_{t-1} fully consumed — so at that point r_{t-1}
        // and m_t (whose consumer r_t is complete) can both go. Each r_t
        // is pinned (`keep`) at creation because the convergence check
        // still needs to fetch it after iteration t+1's map — its only
        // plan consumer — completes; without the pin, lifetime GC would
        // reclaim it first. The m_t datasets carry no pin: GC may beat
        // the explicit discard, which is then a no-op.
        let mut pending: Option<(u64, mrs_runtime::DataId, mrs_runtime::DataId)> = None;
        let mut fetched_reduce: Option<mrs_runtime::DataId> = None;
        let record = |job: &mut Job,
                      history: &mut Vec<IterRecord>,
                      iter: u64,
                      r: mrs_runtime::DataId|
         -> Result<()> {
            let records = job.fetch_all(r)?;
            history.push(IterRecord {
                iteration: iter * self.inner_iters,
                best_val: Self::best_of_islands(&records)?,
                func_evals: n + iter * self.inner_iters * n,
            });
            Ok(())
        };
        for t in 1..=outer_iters {
            let m = job.map_data(ds, FUNC_ISLAND, n_islands, false)?;
            let r = job.reduce_data(m, FUNC_ISLAND)?;
            job.keep(r);
            if let Some((iter, r_prev, m_prev)) = pending.take() {
                record(job, &mut history, iter, r_prev)?;
                if let Some(old) = fetched_reduce.take() {
                    job.discard(old);
                }
                job.discard(m_prev);
                fetched_reduce = Some(r_prev);
            }
            ds = r;
            pending = Some((t, r, m));
        }
        if let Some((iter, r_last, m_last)) = pending {
            record(job, &mut history, iter, r_last)?;
            if let Some(old) = fetched_reduce.take() {
                job.discard(old);
            }
            job.discard(m_last);
        }
        Ok(history)
    }

    /// Run `iters` per-particle iterations as one op chain and fetch the
    /// final swarm records. With `fused`, interior rounds are fused
    /// ReduceMap ops (one task per iteration instead of two); the output
    /// is byte-identical either way.
    pub fn run_particles(&self, job: &mut Job, iters: u64, fused: bool) -> Result<Vec<Record>> {
        let parts = self.config.n_particles as usize;
        self.run_chain(job, FUNC_PARTICLE, self.initial_particles(), parts, iters, fused)
    }

    /// Run `outer_iters` island-granularity iterations as one op chain and
    /// fetch the final island records. See [`Self::run_particles`].
    pub fn run_islands(&self, job: &mut Job, outer_iters: u64, fused: bool) -> Result<Vec<Record>> {
        let parts = self.n_islands() as usize;
        self.run_chain(job, FUNC_ISLAND, self.initial_islands(), parts, outer_iters, fused)
    }

    /// The iterative chain both granularities share: map₀, then
    /// `iters - 1` interior rounds, then a final reduce. Interior rounds
    /// are either a materialized reduce followed by a map (unfused) or a
    /// single ReduceMap op (fused) — the shapes the iteration bench
    /// compares. No intermediate is fetched, so lifetime GC reclaims each
    /// dataset as its consumer completes and the chain holds O(1) live
    /// datasets regardless of `iters`.
    fn run_chain(
        &self,
        job: &mut Job,
        func: FuncId,
        initial: Vec<Record>,
        parts: usize,
        iters: u64,
        fused: bool,
    ) -> Result<Vec<Record>> {
        assert!(iters > 0, "need at least one iteration");
        let ds = job.local_data(initial, parts)?;
        let mut m = job.map_data(ds, func, parts, false)?;
        for _ in 1..iters {
            m = if fused {
                job.reduce_map_data(m, func, func, parts, false)?
            } else {
                let r = job.reduce_data(m, func)?;
                job.map_data(r, func, parts, false)?
            };
        }
        let r = job.reduce_data(m, func)?;
        job.fetch_all(r)
    }

    /// Drive `iters` per-particle MapReduce iterations.
    pub fn drive_particles(&self, job: &mut Job, iters: u64) -> Result<Vec<IterRecord>> {
        let n = self.config.n_particles;
        let parts = n as usize;
        let mut history = Vec::with_capacity(iters as usize + 1);
        history.push(IterRecord {
            iteration: 0,
            best_val: Self::best_of_particles(&self.initial_particles())?,
            func_evals: n,
        });
        let mut ds = job.local_data(self.initial_particles(), parts)?;
        for t in 1..=iters {
            let m = job.map_data(ds, FUNC_PARTICLE, parts, false)?;
            let r = job.reduce_data(m, FUNC_PARTICLE)?;
            let records = job.fetch_all(r)?;
            history.push(IterRecord {
                iteration: t,
                best_val: Self::best_of_particles(&records)?,
                func_evals: n + t * n,
            });
            job.discard(ds);
            ds = r;
        }
        Ok(history)
    }

    /// Fetch the final swarm of a per-particle run (for equivalence tests).
    pub fn particles_of(records: &[Record]) -> Result<Vec<Particle>> {
        let mut out = Vec::with_capacity(records.len());
        for (_, v) in records {
            if let PsoMessage::Particle(p) = PsoMessage::from_bytes(v)? {
                out.push(p);
            }
        }
        out.sort_by_key(|p| p.id);
        Ok(out)
    }
}

impl Program for PsoProgram {
    fn map_bytes(
        &self,
        func: FuncId,
        key: &[u8],
        value: &[u8],
        emit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<()> {
        match func {
            FUNC_PARTICLE => self.map_particle(key, value, emit),
            FUNC_ISLAND => self.map_island(key, value, emit),
            other => Err(Error::UnknownFunc(other)),
        }
    }

    fn reduce_bytes(
        &self,
        func: FuncId,
        key: &[u8],
        values: &mut dyn Iterator<Item = &[u8]>,
        emit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<()> {
        match func {
            FUNC_PARTICLE => self.reduce_particle(values, emit, key),
            FUNC_ISLAND => self.reduce_island(values, emit, key),
            other => Err(Error::UnknownFunc(other)),
        }
    }

    fn partition(&self, key: &[u8], n: usize) -> usize {
        Partition::Mod.index(key, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::Objective;
    use crate::serial::SerialPso;
    use mrs_runtime::{LocalRuntime, SerialRuntime};
    use std::sync::Arc;

    fn config(topology: Topology) -> PsoConfig {
        PsoConfig { objective: Objective::Sphere, dim: 6, n_particles: 12, topology, seed: 99 }
    }

    #[test]
    fn island_msg_roundtrip() {
        let streams = StreamFactory::new(1);
        let island = Island(vec![init_particle(Objective::Sphere, 4, 0, &streams)]);
        for m in [IslandMsg::Island(island), IslandMsg::Best { pos: vec![1.0, 2.0], val: 0.5 }] {
            assert_eq!(IslandMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn per_particle_mapreduce_matches_serial_exactly() {
        let cfg = config(Topology::Ring { k: 1 });
        let iters = 10u64;

        // Serial reference.
        let mut serial = SerialPso::new(cfg.clone());
        serial.run(iters);
        let expected: Vec<Particle> = serial.swarm().to_vec();

        // MapReduce on the serial runtime.
        let program = Arc::new(PsoProgram::new(cfg, 1));
        let mut rt = SerialRuntime::new(program.clone());
        let mut job = Job::new(&mut rt);
        let mut ds = job.local_data(program.initial_particles(), 1).unwrap();
        for _ in 0..iters {
            let m = job.map_data(ds, FUNC_PARTICLE, 3, false).unwrap();
            ds = job.reduce_data(m, FUNC_PARTICLE).unwrap();
        }
        let got = PsoProgram::particles_of(&job.fetch_all(ds).unwrap()).unwrap();
        assert_eq!(got, expected, "MapReduce swarm diverged from serial");
    }

    #[test]
    fn pool_and_serial_runtimes_agree_on_pso() {
        let cfg = config(Topology::Ring { k: 2 });
        let run = |job: &mut Job| -> Vec<Particle> {
            let program = PsoProgram::new(cfg.clone(), 1);
            let mut ds = job.local_data(program.initial_particles(), 4).unwrap();
            for _ in 0..8 {
                let m = job.map_data(ds, FUNC_PARTICLE, 4, false).unwrap();
                ds = job.reduce_data(m, FUNC_PARTICLE).unwrap();
            }
            PsoProgram::particles_of(&job.fetch_all(ds).unwrap()).unwrap()
        };
        let a = {
            let mut rt = SerialRuntime::new(Arc::new(PsoProgram::new(cfg.clone(), 1)));
            run(&mut Job::new(&mut rt))
        };
        let b = {
            let mut rt = LocalRuntime::pool(Arc::new(PsoProgram::new(cfg.clone(), 1)), 4);
            run(&mut Job::new(&mut rt))
        };
        assert_eq!(a, b);
    }

    #[test]
    fn island_drive_converges_and_counts_evals() {
        let cfg = config(Topology::Subswarms { size: 4 });
        let program = Arc::new(PsoProgram::new(cfg.clone(), 10));
        let mut rt = LocalRuntime::pool(program.clone(), 3);
        let mut job = Job::new(&mut rt);
        let history = program.drive_islands(&mut job, 20).unwrap();
        assert_eq!(history.len(), 21);
        let first = history.first().unwrap();
        let last = history.last().unwrap();
        assert_eq!(last.iteration, 200);
        assert_eq!(last.func_evals, 12 + 200 * 12);
        assert!(last.best_val < first.best_val / 100.0, "{first:?} -> {last:?}");
        // History is monotone non-increasing.
        for w in history.windows(2) {
            assert!(w[1].best_val <= w[0].best_val);
        }
    }

    #[test]
    fn island_drive_deterministic_across_runtimes() {
        let cfg = config(Topology::Subswarms { size: 3 });
        let drive = |mut job: Job| {
            let program = PsoProgram::new(cfg.clone(), 5);
            program.drive_islands(&mut job, 6).unwrap()
        };
        let a = {
            let mut rt = SerialRuntime::new(Arc::new(PsoProgram::new(cfg.clone(), 5)));
            drive(Job::new(&mut rt))
        };
        let b = {
            let mut rt = LocalRuntime::pool(Arc::new(PsoProgram::new(cfg.clone(), 5)), 4);
            drive(Job::new(&mut rt))
        };
        assert_eq!(a, b);
    }

    #[test]
    fn fused_chain_matches_unfused_byte_identically() {
        let cfg = config(Topology::Subswarms { size: 4 });
        let runs: Vec<Vec<Record>> = [false, true]
            .iter()
            .flat_map(|&fused| {
                let serial = {
                    let mut rt = SerialRuntime::new(Arc::new(PsoProgram::new(cfg.clone(), 3)));
                    let program = PsoProgram::new(cfg.clone(), 3);
                    program.run_islands(&mut Job::new(&mut rt), 5, fused).unwrap()
                };
                let pool = {
                    let mut rt = LocalRuntime::pool(Arc::new(PsoProgram::new(cfg.clone(), 3)), 4);
                    let program = PsoProgram::new(cfg.clone(), 3);
                    program.run_islands(&mut Job::new(&mut rt), 5, fused).unwrap()
                };
                [serial, pool]
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(&runs[0], r, "fused/unfused island chains must agree byte-for-byte");
        }
        assert!(PsoProgram::best_of_islands(&runs[0]).unwrap().is_finite());
    }

    #[test]
    fn fused_particle_chain_matches_unfused() {
        let cfg = config(Topology::Ring { k: 1 });
        let run = |fused: bool| {
            let mut rt = LocalRuntime::pool(Arc::new(PsoProgram::new(cfg.clone(), 1)), 3);
            let program = PsoProgram::new(cfg.clone(), 1);
            program.run_particles(&mut Job::new(&mut rt), 6, fused).unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn particle_drive_records_history() {
        let cfg = config(Topology::Complete);
        let program = Arc::new(PsoProgram::new(cfg, 1));
        let mut rt = SerialRuntime::new(program.clone());
        let mut job = Job::new(&mut rt);
        let history = program.drive_particles(&mut job, 5).unwrap();
        assert_eq!(history.len(), 6);
        assert_eq!(history[5].func_evals, 12 * 6);
    }

    #[test]
    fn unknown_func_rejected() {
        let cfg = config(Topology::Complete);
        let program = PsoProgram::new(cfg, 1);
        let r = program.map_bytes(9, &0u64.to_bytes(), &[], &mut |_, _| {});
        assert!(matches!(r, Err(Error::UnknownFunc(9))));
    }
}
