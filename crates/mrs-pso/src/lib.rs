//! Particle Swarm Optimization, serial and as MapReduce.
//!
//! The paper's flagship application (§V-B, Fig. 4): PSO "can be naturally
//! expressed as a MapReduce program, with the map function performing
//! motion simulation and evaluation of the objective function and the
//! reduce function calculating the neighborhood best". This crate
//! provides:
//!
//! * [`functions`] — the standard benchmark objectives (Sphere,
//!   Rosenbrock, Rastrigin, Griewank, Ackley) in any dimension,
//! * [`particle`] — the particle state and its wire encoding,
//! * [`motion`] — constriction-coefficient PSO dynamics (Clerc–Kennedy),
//! * [`topology`] — ring, complete, and **subswarm (Apiary-style)**
//!   neighborhoods,
//! * [`serial`] — the reference serial driver (the paper's bypass
//!   implementation),
//! * [`subswarm`] — island batching: one map task advances a whole
//!   subswarm several iterations (the granularity fix of [10–12]),
//! * [`mapreduce`] — the PSO `Program` and an iterative driver that runs
//!   on any Mrs runtime.
//!
//! Determinism: every stochastic draw comes from an `mrs-rng`
//! [`mrs_rng::StreamFactory`] stream keyed by `(particle, iteration)`, so
//! serial and every parallel execution produce bit-identical swarms.

pub mod functions;
pub mod mapreduce;
pub mod motion;
pub mod particle;
pub mod serial;
pub mod subswarm;
pub mod topology;

pub use functions::Objective;
pub use particle::Particle;
pub use serial::{PsoConfig, SerialPso};
pub use topology::Topology;
