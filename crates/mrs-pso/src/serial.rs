//! The serial PSO driver: the paper's bypass/serial implementation.
//!
//! Iteration order matches the MapReduce formulation exactly — first every
//! particle moves and evaluates using its *current* neighborhood best (the
//! map), then bests are exchanged along the topology (the reduce) — so the
//! distributed runs can be validated bit-for-bit against this driver.

use crate::functions::Objective;
use crate::motion::{init_particle, step_particle};
use crate::particle::Particle;
use crate::topology::Topology;
use mrs_rng::StreamFactory;

/// PSO run parameters.
#[derive(Clone, Debug)]
pub struct PsoConfig {
    /// Objective function.
    pub objective: Objective,
    /// Dimensionality (250 for the paper's Rosenbrock-250).
    pub dim: usize,
    /// Swarm size.
    pub n_particles: u64,
    /// Communication topology.
    pub topology: Topology,
    /// Program-level random seed.
    pub seed: u64,
}

impl PsoConfig {
    /// The paper's flagship configuration: Rosenbrock-250 with apiary-style
    /// subswarms of 5 particles.
    pub fn rosenbrock_250(n_particles: u64, seed: u64) -> PsoConfig {
        PsoConfig {
            objective: Objective::Rosenbrock,
            dim: 250,
            n_particles,
            topology: Topology::Subswarms { size: 5 },
            seed,
        }
    }
}

/// One sample of a convergence history.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterRecord {
    /// Iteration number (1-based; 0 is the initial evaluation).
    pub iteration: u64,
    /// Best objective value seen so far.
    pub best_val: f64,
    /// Cumulative objective-function evaluations.
    pub func_evals: u64,
}

/// The serial driver.
pub struct SerialPso {
    config: PsoConfig,
    streams: StreamFactory,
    swarm: Vec<Particle>,
    evals: u64,
    iteration: u64,
}

impl SerialPso {
    /// Initialize the swarm.
    pub fn new(config: PsoConfig) -> SerialPso {
        let streams = StreamFactory::new(config.seed);
        let swarm: Vec<Particle> = (0..config.n_particles)
            .map(|i| init_particle(config.objective, config.dim, i, &streams))
            .collect();
        let evals = config.n_particles;
        SerialPso { config, streams, swarm, evals, iteration: 0 }
    }

    /// The swarm (for equivalence tests against the MapReduce driver).
    pub fn swarm(&self) -> &[Particle] {
        &self.swarm
    }

    /// Best objective value found so far.
    pub fn best_val(&self) -> f64 {
        self.swarm.iter().map(|p| p.pbest_val).fold(f64::INFINITY, f64::min)
    }

    /// Cumulative function evaluations.
    pub fn func_evals(&self) -> u64 {
        self.evals
    }

    /// One iteration: move all particles (map), then exchange bests along
    /// the topology (reduce).
    pub fn step(&mut self) {
        self.iteration += 1;
        for p in &mut self.swarm {
            step_particle(p, self.config.objective, &self.streams);
            self.evals += 1;
        }
        // Exchange: particle j offers its post-move pbest to neighbors.
        let offers: Vec<(u64, Vec<f64>, f64)> =
            self.swarm.iter().map(|p| (p.id, p.pbest_pos.clone(), p.pbest_val)).collect();
        let n = self.config.n_particles;
        for (id, pos, val) in offers {
            for nb in self.config.topology.neighbors(id, n) {
                self.swarm[nb as usize].offer_nbest(&pos, val);
            }
        }
    }

    /// Run `iters` iterations, recording the convergence history.
    pub fn run(&mut self, iters: u64) -> Vec<IterRecord> {
        let mut history = Vec::with_capacity(iters as usize + 1);
        history.push(IterRecord {
            iteration: self.iteration,
            best_val: self.best_val(),
            func_evals: self.evals,
        });
        for _ in 0..iters {
            self.step();
            history.push(IterRecord {
                iteration: self.iteration,
                best_val: self.best_val(),
                func_evals: self.evals,
            });
        }
        history
    }

    /// Run until the best value drops below `target`, up to `max_iters`.
    /// Returns the number of iterations used, or `None` if not reached.
    pub fn run_until(&mut self, target: f64, max_iters: u64) -> Option<u64> {
        for _ in 0..max_iters {
            if self.best_val() <= target {
                return Some(self.iteration);
            }
            self.step();
        }
        (self.best_val() <= target).then_some(self.iteration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_config(topology: Topology) -> PsoConfig {
        PsoConfig { objective: Objective::Sphere, dim: 10, n_particles: 20, topology, seed: 42 }
    }

    #[test]
    fn converges_on_sphere_with_complete_topology() {
        let mut pso = SerialPso::new(sphere_config(Topology::Complete));
        let initial = pso.best_val();
        let history = pso.run(300);
        let last = history.last().expect("non-empty history");
        assert!(last.best_val < initial / 1e6, "{initial} -> {}", last.best_val);
        assert_eq!(last.func_evals, 20 + 300 * 20);
    }

    #[test]
    fn history_best_is_monotone() {
        let mut pso = SerialPso::new(sphere_config(Topology::Ring { k: 1 }));
        let history = pso.run(100);
        for w in history.windows(2) {
            assert!(w[1].best_val <= w[0].best_val);
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let h1 = SerialPso::new(sphere_config(Topology::Complete)).run(50);
        let h2 = SerialPso::new(sphere_config(Topology::Complete)).run(50);
        assert_eq!(h1, h2);
    }

    #[test]
    fn different_seeds_differ() {
        let mut c1 = sphere_config(Topology::Complete);
        c1.seed = 1;
        let mut c2 = sphere_config(Topology::Complete);
        c2.seed = 2;
        assert_ne!(SerialPso::new(c1).run(10), SerialPso::new(c2).run(10));
    }

    #[test]
    fn run_until_reaches_easy_target() {
        let mut pso = SerialPso::new(sphere_config(Topology::Complete));
        let initial = pso.best_val();
        let iters = pso.run_until(initial / 100.0, 2_000);
        assert!(iters.is_some());
    }

    #[test]
    fn run_until_gives_up_on_impossible_target() {
        let mut pso = SerialPso::new(sphere_config(Topology::Complete));
        assert_eq!(pso.run_until(-1.0, 20), None);
    }

    #[test]
    fn subswarm_topology_also_converges() {
        let mut pso = SerialPso::new(sphere_config(Topology::Subswarms { size: 5 }));
        let initial = pso.best_val();
        pso.run(300);
        assert!(pso.best_val() < initial / 1e3);
    }

    #[test]
    fn rosenbrock_250_makes_progress() {
        // 250 dimensions from a far-off asymmetric init is a hard problem;
        // early progress is steady but not dramatic (Fig. 4 runs thousands
        // of iterations). Check a solid improvement, not convergence.
        let mut pso = SerialPso::new(PsoConfig::rosenbrock_250(20, 7));
        let initial = pso.best_val();
        pso.run(500);
        assert!(pso.best_val() < initial * 0.7, "{initial} -> {}", pso.best_val());
    }
}
