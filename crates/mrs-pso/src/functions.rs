//! Benchmark objective functions.
//!
//! All are minimization problems with known optima, defined for any
//! dimension, with the standard initialization ranges used in the PSO
//! literature (Bratton & Kennedy, "Defining a standard for particle swarm
//! optimization", which the paper cites as [9]).

/// A benchmark objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Objective {
    /// `f(x) = Σ x_i²`, optimum 0 at the origin.
    Sphere,
    /// `f(x) = Σ [100 (x_{i+1} − x_i²)² + (1 − x_i)²]`, optimum 0 at 1⃗.
    /// "Rosenbrock-250" in the paper is this function in 250 dimensions.
    Rosenbrock,
    /// `f(x) = Σ [x_i² − 10 cos(2π x_i) + 10]`, optimum 0 at the origin.
    Rastrigin,
    /// `f(x) = 1 + Σ x_i²/4000 − Π cos(x_i/√i)`, optimum 0 at the origin.
    Griewank,
    /// The Ackley function, optimum 0 at the origin.
    Ackley,
}

impl Objective {
    /// Evaluate at a point.
    pub fn eval(&self, x: &[f64]) -> f64 {
        match self {
            Objective::Sphere => x.iter().map(|v| v * v).sum(),
            Objective::Rosenbrock => x
                .windows(2)
                .map(|w| {
                    let (a, b) = (w[0], w[1]);
                    100.0 * (b - a * a) * (b - a * a) + (1.0 - a) * (1.0 - a)
                })
                .sum(),
            Objective::Rastrigin => {
                x.iter().map(|v| v * v - 10.0 * (std::f64::consts::TAU * v).cos() + 10.0).sum()
            }
            Objective::Griewank => {
                let sum: f64 = x.iter().map(|v| v * v).sum::<f64>() / 4000.0;
                let prod: f64 = x
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v / ((i + 1) as f64).sqrt()).cos())
                    .product();
                1.0 + sum - prod
            }
            Objective::Ackley => {
                let n = x.len() as f64;
                let sum_sq: f64 = x.iter().map(|v| v * v).sum();
                let sum_cos: f64 = x.iter().map(|v| (std::f64::consts::TAU * v).cos()).sum();
                -20.0 * (-0.2 * (sum_sq / n).sqrt()).exp() - (sum_cos / n).exp()
                    + 20.0
                    + std::f64::consts::E
            }
        }
    }

    /// Standard initialization range `(lo, hi)` per coordinate.
    pub fn init_range(&self) -> (f64, f64) {
        match self {
            Objective::Sphere => (50.0, 100.0),
            Objective::Rosenbrock => (15.0, 30.0), // asymmetric, off-optimum
            Objective::Rastrigin => (2.56, 5.12),
            Objective::Griewank => (300.0, 600.0),
            Objective::Ackley => (16.0, 32.0),
        }
    }

    /// Location of the global optimum (same value per coordinate).
    pub fn optimum_coord(&self) -> f64 {
        match self {
            Objective::Rosenbrock => 1.0,
            _ => 0.0,
        }
    }

    /// Short machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Sphere => "sphere",
            Objective::Rosenbrock => "rosenbrock",
            Objective::Rastrigin => "rastrigin",
            Objective::Griewank => "griewank",
            Objective::Ackley => "ackley",
        }
    }

    /// All objectives, for sweeps.
    pub fn all() -> [Objective; 5] {
        [
            Objective::Sphere,
            Objective::Rosenbrock,
            Objective::Rastrigin,
            Objective::Griewank,
            Objective::Ackley,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optima_are_zero() {
        for f in Objective::all() {
            for dim in [2usize, 10, 250] {
                let x = vec![f.optimum_coord(); dim];
                let v = f.eval(&x);
                assert!(v.abs() < 1e-9, "{:?} dim {dim}: f(opt) = {v}", f);
            }
        }
    }

    #[test]
    fn off_optimum_is_positive() {
        for f in Objective::all() {
            let x = vec![f.optimum_coord() + 3.0; 10];
            assert!(f.eval(&x) > 0.1, "{:?}", f);
        }
    }

    #[test]
    fn rosenbrock_known_values() {
        // f(0, 0) = 1; f(1, 1) = 0; f(-1, 1) = 4.
        assert_eq!(Objective::Rosenbrock.eval(&[0.0, 0.0]), 1.0);
        assert_eq!(Objective::Rosenbrock.eval(&[1.0, 1.0]), 0.0);
        assert_eq!(Objective::Rosenbrock.eval(&[-1.0, 1.0]), 4.0);
    }

    #[test]
    fn sphere_known_value() {
        assert_eq!(Objective::Sphere.eval(&[3.0, 4.0]), 25.0);
    }

    #[test]
    fn rastrigin_period_structure() {
        // At integer coordinates cos(2πx)=1, so f = Σ x².
        assert!((Objective::Rastrigin.eval(&[1.0, 2.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn init_ranges_exclude_optimum() {
        // Standard practice: initialize away from the optimum so "found it
        // by luck at init" cannot happen.
        for f in Objective::all() {
            let (lo, hi) = f.init_range();
            assert!(lo < hi);
            let opt = f.optimum_coord();
            assert!(!(lo..=hi).contains(&opt), "{:?} init range contains optimum", f);
        }
    }
}
