//! Constriction-coefficient PSO dynamics (Clerc–Kennedy), the "standard
//! PSO" of Bratton & Kennedy [9].
//!
//! `v ← χ (v + φ₁ u₁ ⊙ (pbest − x) + φ₂ u₂ ⊙ (nbest − x))`,
//! `x ← x + v`, with χ ≈ 0.72984 and φ₁ = φ₂ = 2.05.
//!
//! Randomness comes from a caller-provided stream (keyed by particle and
//! iteration), which is what makes the serial and MapReduce drivers agree
//! bit for bit.

use crate::functions::Objective;
use crate::particle::Particle;
use mrs_rng::{Rng64, StreamFactory};

/// χ: the constriction coefficient for φ = 4.1.
pub const CHI: f64 = 0.729_843_788_127_783;
/// φ₁ = φ₂: attraction strengths.
pub const PHI: f64 = 2.05;

/// Create particle `id` of a swarm: position and velocity drawn uniformly
/// from the objective's init range, evaluated once.
pub fn init_particle(
    objective: Objective,
    dim: usize,
    id: u64,
    streams: &StreamFactory,
) -> Particle {
    let mut rng = streams.stream(&[0x696e_6974, id]); // "init"
    let (lo, hi) = objective.init_range();
    let pos: Vec<f64> = (0..dim).map(|_| rng.uniform(lo, hi)).collect();
    // Half-diff velocity initialization (standard PSO 2007 style).
    let vel: Vec<f64> = (0..dim).map(|_| rng.uniform(lo - hi, hi - lo) * 0.5).collect();
    let val = objective.eval(&pos);
    Particle {
        id,
        pbest_pos: pos.clone(),
        pbest_val: val,
        nbest_pos: pos.clone(),
        nbest_val: val,
        pos,
        vel,
        iteration: 0,
    }
}

/// Advance a particle one iteration: move, evaluate, update its personal
/// best (and fold the personal best into its own neighborhood view).
/// Returns the new objective value.
pub fn step_particle(
    particle: &mut Particle,
    objective: Objective,
    streams: &StreamFactory,
) -> f64 {
    particle.iteration += 1;
    let mut rng = streams.stream(&[0x6d6f_7665, particle.id, particle.iteration]); // "move"
    for i in 0..particle.pos.len() {
        let u1 = rng.next_f64();
        let u2 = rng.next_f64();
        let v = particle.vel[i]
            + PHI * u1 * (particle.pbest_pos[i] - particle.pos[i])
            + PHI * u2 * (particle.nbest_pos[i] - particle.pos[i]);
        particle.vel[i] = CHI * v;
        particle.pos[i] += particle.vel[i];
    }
    let val = objective.eval(&particle.pos);
    if val < particle.pbest_val {
        particle.pbest_val = val;
        particle.pbest_pos = particle.pos.clone();
    }
    if particle.pbest_val < particle.nbest_val {
        particle.nbest_val = particle.pbest_val;
        particle.nbest_pos = particle.pbest_pos.clone();
    }
    val
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic_per_id() {
        let streams = StreamFactory::new(42);
        let a = init_particle(Objective::Sphere, 10, 3, &streams);
        let b = init_particle(Objective::Sphere, 10, 3, &streams);
        let c = init_particle(Objective::Sphere, 10, 4, &streams);
        assert_eq!(a, b);
        assert_ne!(a.pos, c.pos);
    }

    #[test]
    fn init_within_range_and_evaluated() {
        let streams = StreamFactory::new(1);
        let p = init_particle(Objective::Rastrigin, 20, 0, &streams);
        let (lo, hi) = Objective::Rastrigin.init_range();
        assert!(p.pos.iter().all(|&x| (lo..hi).contains(&x)));
        assert_eq!(p.pbest_val, Objective::Rastrigin.eval(&p.pos));
        assert_eq!(p.nbest_val, p.pbest_val);
    }

    #[test]
    fn step_is_deterministic_and_updates_pbest_monotonically() {
        let streams = StreamFactory::new(7);
        let mut a = init_particle(Objective::Sphere, 5, 0, &streams);
        let mut b = a.clone();
        let mut last_best = a.pbest_val;
        for _ in 0..50 {
            step_particle(&mut a, Objective::Sphere, &streams);
            step_particle(&mut b, Objective::Sphere, &streams);
            assert_eq!(a, b, "same stream, same trajectory");
            assert!(a.pbest_val <= last_best, "pbest must never worsen");
            last_best = a.pbest_val;
        }
    }

    #[test]
    fn swarm_with_shared_best_converges_on_sphere() {
        let streams = StreamFactory::new(123);
        let mut swarm: Vec<Particle> =
            (0..10).map(|i| init_particle(Objective::Sphere, 5, i, &streams)).collect();
        let initial_best = swarm.iter().map(|p| p.pbest_val).fold(f64::INFINITY, f64::min);
        for _ in 0..200 {
            // gbest topology: everyone sees the global best
            let (bpos, bval) = swarm
                .iter()
                .map(|p| (p.pbest_pos.clone(), p.pbest_val))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty swarm");
            for p in &mut swarm {
                p.offer_nbest(&bpos, bval);
                step_particle(p, Objective::Sphere, &streams);
            }
        }
        let best = swarm.iter().map(|p| p.pbest_val).fold(f64::INFINITY, f64::min);
        assert!(best < initial_best / 1e6, "no convergence: {initial_best} -> {best}");
    }

    #[test]
    fn different_iterations_draw_different_randomness() {
        let streams = StreamFactory::new(5);
        let mut p = init_particle(Objective::Sphere, 3, 0, &streams);
        let v1 = p.vel.clone();
        step_particle(&mut p, Objective::Sphere, &streams);
        let v2 = p.vel.clone();
        step_particle(&mut p, Objective::Sphere, &streams);
        assert_ne!(v1, v2);
        assert_ne!(v2, p.vel);
    }
}
