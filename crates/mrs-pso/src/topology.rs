//! Swarm topologies: who hears whose personal best.
//!
//! The paper's PSO uses the "Apiary" subswarm arrangement [12]: particles
//! are grouped into islands (subswarms); within an island communication is
//! complete, and islands themselves exchange bests along a ring — the
//! island-model decomposition that fixes MapReduce task granularity
//! ("a swarm can be divided into several subswarms or islands, and each
//! map task operates on several iterations of a subswarm").

/// A communication topology over `n` particles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Every particle sees every other (gbest).
    Complete,
    /// Each particle sees `k` neighbors on each side of a ring (lbest).
    Ring {
        /// Neighbors on each side.
        k: usize,
    },
    /// Apiary-style islands: complete within a subswarm of `size`
    /// particles; subswarm `s` additionally exports its best to subswarm
    /// `s+1 (mod S)` at exchange points.
    Subswarms {
        /// Particles per subswarm.
        size: usize,
    },
}

impl Topology {
    /// The neighbors that particle `id` (of `n`) *sends its best to*.
    /// The particle itself is excluded.
    pub fn neighbors(&self, id: u64, n: u64) -> Vec<u64> {
        assert!(n > 0 && id < n, "particle {id} of {n}");
        match self {
            Topology::Complete => (0..n).filter(|&j| j != id).collect(),
            Topology::Ring { k } => {
                let k = *k as u64;
                let mut out = Vec::with_capacity(2 * k as usize);
                for d in 1..=k {
                    out.push((id + d) % n);
                    out.push((id + n - d % n) % n);
                }
                out.sort_unstable();
                out.dedup();
                out.retain(|&j| j != id);
                out
            }
            Topology::Subswarms { size } => {
                let size = *size as u64;
                assert!(size > 0, "empty subswarms");
                let island = id / size;
                let start = island * size;
                let end = (start + size).min(n);
                (start..end).filter(|&j| j != id).collect()
            }
        }
    }

    /// Number of subswarms for `n` particles (1 unless `Subswarms`).
    pub fn islands(&self, n: u64) -> u64 {
        match self {
            Topology::Subswarms { size } => n.div_ceil(*size as u64),
            _ => 1,
        }
    }

    /// The subswarm a particle belongs to (0 unless `Subswarms`).
    pub fn island_of(&self, id: u64) -> u64 {
        match self {
            Topology::Subswarms { size } => id / *size as u64,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_sees_everyone_else() {
        let t = Topology::Complete;
        assert_eq!(t.neighbors(2, 5), vec![0, 1, 3, 4]);
        assert_eq!(t.neighbors(0, 1), Vec::<u64>::new());
    }

    #[test]
    fn ring_k1_is_two_neighbors() {
        let t = Topology::Ring { k: 1 };
        assert_eq!(t.neighbors(0, 5), vec![1, 4]);
        assert_eq!(t.neighbors(2, 5), vec![1, 3]);
    }

    #[test]
    fn ring_wraps_and_dedups_small_swarms() {
        let t = Topology::Ring { k: 2 };
        // n = 3: neighborhoods collapse but never include self or dups.
        let nb = t.neighbors(0, 3);
        assert_eq!(nb, vec![1, 2]);
    }

    #[test]
    fn subswarms_are_complete_within_island() {
        let t = Topology::Subswarms { size: 3 };
        assert_eq!(t.neighbors(0, 9), vec![1, 2]);
        assert_eq!(t.neighbors(4, 9), vec![3, 5]);
        assert_eq!(t.neighbors(8, 9), vec![6, 7]);
    }

    #[test]
    fn subswarm_tail_island_may_be_short() {
        let t = Topology::Subswarms { size: 4 };
        assert_eq!(t.neighbors(9, 10), vec![8]);
        assert_eq!(t.islands(10), 3);
    }

    #[test]
    fn island_of_maps_contiguously() {
        let t = Topology::Subswarms { size: 5 };
        assert_eq!(t.island_of(0), 0);
        assert_eq!(t.island_of(4), 0);
        assert_eq!(t.island_of(5), 1);
        assert_eq!(t.island_of(14), 2);
    }

    #[test]
    #[should_panic(expected = "particle")]
    fn out_of_range_id_panics() {
        Topology::Complete.neighbors(5, 5);
    }
}
