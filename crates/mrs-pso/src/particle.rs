//! Particle state and its wire encoding.

use mrs_core::{Datum, Error, Result};

/// One particle of the swarm.
#[derive(Clone, Debug, PartialEq)]
pub struct Particle {
    /// Stable particle id (also its MapReduce key).
    pub id: u64,
    /// Current position.
    pub pos: Vec<f64>,
    /// Current velocity.
    pub vel: Vec<f64>,
    /// Personal best position.
    pub pbest_pos: Vec<f64>,
    /// Personal best value.
    pub pbest_val: f64,
    /// Best position seen in the neighborhood.
    pub nbest_pos: Vec<f64>,
    /// Best value seen in the neighborhood.
    pub nbest_val: f64,
    /// Iterations this particle has performed.
    pub iteration: u64,
}

impl Particle {
    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.pos.len()
    }

    /// Offer a (position, value) pair as a neighborhood-best candidate.
    /// Returns true if it improved the particle's `nbest`.
    pub fn offer_nbest(&mut self, pos: &[f64], val: f64) -> bool {
        if val < self.nbest_val {
            self.nbest_pos = pos.to_vec();
            self.nbest_val = val;
            true
        } else {
            false
        }
    }
}

/// A message flowing through the PSO reduce: either the particle itself or
/// a neighbor's personal best.
#[derive(Clone, Debug, PartialEq)]
pub enum PsoMessage {
    /// The moved particle, keyed by its own id.
    Particle(Particle),
    /// A neighbor's best, sent to another particle's key.
    Best {
        /// Position of the sender's personal best.
        pos: Vec<f64>,
        /// Value of the sender's personal best.
        val: f64,
    },
}

impl Datum for Particle {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.iteration.encode(buf);
        self.pos.encode(buf);
        self.vel.encode(buf);
        self.pbest_pos.encode(buf);
        self.pbest_val.encode(buf);
        self.nbest_pos.encode(buf);
        self.nbest_val.encode(buf);
    }

    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (id, b) = u64::decode_from(b)?;
        let (iteration, b) = u64::decode_from(b)?;
        let (pos, b) = Vec::<f64>::decode_from(b)?;
        let (vel, b) = Vec::<f64>::decode_from(b)?;
        let (pbest_pos, b) = Vec::<f64>::decode_from(b)?;
        let (pbest_val, b) = f64::decode_from(b)?;
        let (nbest_pos, b) = Vec::<f64>::decode_from(b)?;
        let (nbest_val, b) = f64::decode_from(b)?;
        Ok((Particle { id, pos, vel, pbest_pos, pbest_val, nbest_pos, nbest_val, iteration }, b))
    }
}

impl Datum for PsoMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PsoMessage::Particle(p) => {
                buf.push(0);
                p.encode(buf);
            }
            PsoMessage::Best { pos, val } => {
                buf.push(1);
                pos.encode(buf);
                val.encode(buf);
            }
        }
    }

    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (&tag, rest) =
            b.split_first().ok_or_else(|| Error::Codec("empty PsoMessage".into()))?;
        match tag {
            0 => {
                let (p, rest) = Particle::decode_from(rest)?;
                Ok((PsoMessage::Particle(p), rest))
            }
            1 => {
                let (pos, rest) = Vec::<f64>::decode_from(rest)?;
                let (val, rest) = f64::decode_from(rest)?;
                Ok((PsoMessage::Best { pos, val }, rest))
            }
            other => Err(Error::Codec(format!("bad PsoMessage tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn particle() -> Particle {
        Particle {
            id: 7,
            pos: vec![1.0, -2.5],
            vel: vec![0.1, 0.2],
            pbest_pos: vec![0.5, 0.5],
            pbest_val: 3.25,
            nbest_pos: vec![0.0, 0.0],
            nbest_val: 2.0,
            iteration: 42,
        }
    }

    #[test]
    fn particle_roundtrip() {
        let p = particle();
        assert_eq!(Particle::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn message_roundtrips() {
        for m in [PsoMessage::Particle(particle()), PsoMessage::Best { pos: vec![9.0], val: -1.5 }]
        {
            assert_eq!(PsoMessage::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(PsoMessage::from_bytes(&[9, 0, 0]).is_err());
        assert!(PsoMessage::from_bytes(&[]).is_err());
    }

    #[test]
    fn offer_nbest_improves_only_on_better() {
        let mut p = particle();
        assert!(!p.offer_nbest(&[1.0, 1.0], 5.0));
        assert_eq!(p.nbest_val, 2.0);
        assert!(p.offer_nbest(&[1.0, 1.0], 0.5));
        assert_eq!(p.nbest_val, 0.5);
        assert_eq!(p.nbest_pos, vec![1.0, 1.0]);
    }
}
