//! Adversarial-input robustness of the network layer: a malformed or
//! malicious peer must get an error response (or a dropped connection),
//! never crash the server or corrupt other requests.

use mrs_rpc::rpc::{Dispatch, RpcServer};
use mrs_rpc::{DataServer, HttpClient, RpcClient, Value};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn echo_rpc() -> RpcServer {
    RpcServer::serve(
        0,
        Dispatch::new()
            .register("echo", |params| Ok(params.first().cloned().unwrap_or(Value::Int(0)))),
    )
    .unwrap()
}

#[test]
fn garbage_post_body_yields_fault_not_crash() {
    let server = echo_rpc();
    let (status, body) =
        HttpClient::post(&server.authority(), "/RPC2", b"\xff\xfe not xml").unwrap();
    assert_eq!(status, 200); // XML-RPC faults ride on 200
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("fault"), "{text}");

    // Server still works afterwards.
    let client = RpcClient::new(server.authority());
    assert_eq!(client.call("echo", &[Value::Int(5)]).unwrap(), Value::Int(5));
}

#[test]
fn wrong_method_and_path_rejected() {
    let server = echo_rpc();
    let (status, _) = HttpClient::get(&server.authority(), "/RPC2").unwrap();
    assert_eq!(status, 404);
    let (status, _) = HttpClient::post(&server.authority(), "/other", b"x").unwrap();
    assert_eq!(status, 404);
}

#[test]
fn half_open_connection_does_not_wedge_server() {
    let server = echo_rpc();
    // Open a connection, send half a request line, and leave it hanging.
    let mut s = TcpStream::connect(server.authority()).unwrap();
    s.write_all(b"POST /RPC").unwrap();
    // Meanwhile a well-behaved client must still be served promptly.
    let client = RpcClient::new(server.authority());
    assert_eq!(client.call("echo", &[Value::Int(1)]).unwrap(), Value::Int(1));
    drop(s);
}

#[test]
fn lying_content_length_is_survivable() {
    let server = echo_rpc();
    let mut s = TcpStream::connect(server.authority()).unwrap();
    // Claims 10 bytes, sends 2, closes.
    s.write_all(b"POST /RPC2 HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi").unwrap();
    drop(s);
    let client = RpcClient::new(server.authority());
    assert_eq!(client.call("echo", &[Value::Int(2)]).unwrap(), Value::Int(2));
}

#[test]
fn deeply_nested_xml_is_rejected_cleanly() {
    let server = echo_rpc();
    // 10k nested arrays: the recursive-descent parser must error (or
    // succeed) without blowing the stack in a way that kills the server.
    let mut body = String::from("<methodCall><methodName>echo</methodName><params><param>");
    for _ in 0..10_000 {
        body.push_str("<value><array><data>");
    }
    let (status, _) = HttpClient::post(&server.authority(), "/RPC2", body.as_bytes()).unwrap();
    // Either a fault (200) or a dropped/errored response is fine; the
    // server must keep serving.
    let _ = status;
    let client = RpcClient::new(server.authority());
    assert_eq!(client.call("echo", &[Value::Int(3)]).unwrap(), Value::Int(3));
}

#[test]
fn data_server_rejects_path_traversal() {
    // Provider only serves the "secret" key; traversal-looking paths just
    // miss. The provider interface never touches the real filesystem.
    let server = DataServer::serve(
        0,
        Arc::new(|p: &str| (p == "ok").then(|| Arc::from(b"fine".as_slice()))),
    )
    .unwrap();
    let (status, body) = HttpClient::get(&server.authority(), "/data/ok").unwrap();
    assert_eq!((status, body.as_slice()), (200, b"fine".as_slice()));
    for path in ["/data/../etc/passwd", "/etc/passwd", "/data/", "/data/nope"] {
        let (status, _) = HttpClient::get(&server.authority(), path).unwrap();
        assert_ne!(status, 200, "{path} should not be served");
    }
}

#[test]
fn concurrent_mixed_good_and_bad_clients() {
    let server = echo_rpc();
    let authority = server.authority();
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let authority = authority.clone();
            std::thread::spawn(move || {
                if i % 3 == 0 {
                    // hostile: garbage bytes
                    let _ = HttpClient::post(&authority, "/RPC2", &[0u8; 64]);
                } else {
                    let client = RpcClient::new(authority);
                    let v = client.call("echo", &[Value::Int(i)]).unwrap();
                    assert_eq!(v, Value::Int(i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
