//! The bucket data server: direct slave-to-slave intermediate data.
//!
//! "For data communicated directly, the writer opens and writes a file on a
//! local filesystem, and requests from readers are served by a built-in
//! HTTP server" (§IV-B). A [`DataServer`] exposes a provider callback over
//! HTTP GET; the companion [`fetch`] retrieves a bucket by URL.

use crate::http::{Handler, HttpClient, HttpServer, Request, Response};
use mrs_core::{Error, Result};
use std::sync::Arc;

/// Callback resolving a bucket path to its bytes.
pub type Provider = Arc<dyn Fn(&str) -> Option<Vec<u8>> + Send + Sync>;

/// An HTTP GET server for bucket data.
pub struct DataServer {
    http: HttpServer,
}

impl DataServer {
    /// Serve buckets from `provider` on `127.0.0.1:port` (0 = ephemeral).
    /// Paths are served under `/data/`.
    pub fn serve(port: u16, provider: Provider) -> std::io::Result<DataServer> {
        let handler: Handler = Arc::new(move |req: Request| {
            if req.method != "GET" {
                return Response::error(400, "data server only answers GET");
            }
            let Some(path) = req.path.strip_prefix("/data/") else {
                return Response::error(404, "paths live under /data/");
            };
            match provider(path) {
                Some(bytes) => Response::ok("application/octet-stream", bytes),
                None => Response::error(404, "no such bucket"),
            }
        });
        Ok(DataServer { http: HttpServer::bind(port, handler)? })
    }

    /// `host:port` of the server.
    pub fn authority(&self) -> String {
        self.http.authority()
    }

    /// Full URL for a bucket path on this server.
    pub fn url_for(&self, path: &str) -> String {
        format!("http://{}/data/{}", self.authority(), path)
    }

    /// Total bucket bytes served (the direct-shuffle volume metric).
    pub fn bytes_served(&self) -> u64 {
        self.http.bytes_served()
    }
}

/// Fetch a bucket from a peer's data server given `host:port` and the
/// absolute path component of its URL.
pub fn fetch(authority: &str, path: &str) -> Result<Vec<u8>> {
    let (status, body) = HttpClient::get(authority, path)
        .map_err(|e| Error::Rpc(format!("fetch {authority}{path}: {e}")))?;
    if status != 200 {
        return Err(Error::MissingData(format!("{authority}{path}: http {status}")));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    fn server_with(files: Vec<(&str, Vec<u8>)>) -> DataServer {
        let map: HashMap<String, Vec<u8>> =
            files.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();
        let map = Arc::new(Mutex::new(map));
        DataServer::serve(0, Arc::new(move |p: &str| map.lock().get(p).cloned())).unwrap()
    }

    #[test]
    fn fetch_existing_bucket() {
        let s = server_with(vec![("op0/b1", vec![1, 2, 3])]);
        let got = fetch(&s.authority(), "/data/op0/b1").unwrap();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn missing_bucket_is_missing_data() {
        let s = server_with(vec![]);
        let err = fetch(&s.authority(), "/data/none").unwrap_err();
        assert!(matches!(err, Error::MissingData(_)));
    }

    #[test]
    fn url_for_is_fetchable() {
        let s = server_with(vec![("x", b"payload".to_vec())]);
        let url = s.url_for("x");
        let parsed = mrs_fs_like_parse(&url);
        let got = fetch(&parsed.0, &parsed.1).unwrap();
        assert_eq!(got, b"payload");
    }

    // Minimal inline URL split to avoid a dependency on mrs-fs from here.
    fn mrs_fs_like_parse(url: &str) -> (String, String) {
        let rest = url.strip_prefix("http://").unwrap();
        let (auth, path) = rest.split_once('/').unwrap();
        (auth.to_owned(), format!("/{path}"))
    }

    #[test]
    fn non_get_rejected() {
        let s = server_with(vec![("x", vec![1])]);
        let (status, _) = HttpClient::post(&s.authority(), "/data/x", b"").unwrap();
        assert_eq!(status, 400);
    }

    #[test]
    fn bytes_served_accumulates() {
        let s = server_with(vec![("a", vec![0; 100]), ("b", vec![0; 50])]);
        fetch(&s.authority(), "/data/a").unwrap();
        fetch(&s.authority(), "/data/b").unwrap();
        assert_eq!(s.bytes_served(), 150);
    }

    #[test]
    fn empty_bucket_fetches_as_empty() {
        let s = server_with(vec![("e", vec![])]);
        assert!(fetch(&s.authority(), "/data/e").unwrap().is_empty());
    }
}
