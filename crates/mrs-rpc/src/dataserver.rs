//! The bucket data server: direct slave-to-slave intermediate data.
//!
//! "For data communicated directly, the writer opens and writes a file on a
//! local filesystem, and requests from readers are served by a built-in
//! HTTP server" (§IV-B). A [`DataServer`] exposes a provider callback over
//! HTTP GET; the companion [`fetch`] retrieves a bucket by URL.
//!
//! The provider returns `Arc<[u8]>`, not owned bytes: producers encode
//! each bucket exactly once into a [`FrameCache`] and every reader is
//! served the same shared buffer straight to the socket (see
//! [`crate::http::Body::Shared`]). Paths are sanitized here — empty paths
//! and any `..` component 404 before the provider runs, so providers
//! backed by a real filesystem need no escaping logic of their own.

use crate::http::{Handler, HttpClient, HttpServer, Request, Response};
use mrs_core::{Error, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Callback resolving a bucket path to its (shared) bytes.
pub type Provider = Arc<dyn Fn(&str) -> Option<Arc<[u8]>> + Send + Sync>;

/// A shared cache of encoded shuffle frames keyed by bucket path.
///
/// This is the "serialize+compress exactly once" half of the zero-copy
/// data plane: the producer inserts the wire-ready frame, and the same
/// `Arc<[u8]>` is handed to the HTTP writer for remote readers and to
/// the short-circuit path for colocated readers.
#[derive(Default)]
pub struct FrameCache {
    frames: Mutex<HashMap<String, Arc<[u8]>>>,
}

impl FrameCache {
    /// An empty cache.
    pub fn new() -> Self {
        FrameCache::default()
    }

    /// Insert wire-ready bytes for `path`, returning the shared buffer.
    pub fn insert(&self, path: &str, bytes: Vec<u8>) -> Arc<[u8]> {
        let shared: Arc<[u8]> = bytes.into();
        self.frames.lock().insert(path.to_owned(), Arc::clone(&shared));
        shared
    }

    /// Look up the frame for `path`.
    pub fn get(&self, path: &str) -> Option<Arc<[u8]>> {
        self.frames.lock().get(path).cloned()
    }

    /// Drop every cached frame (end-of-job cleanup).
    pub fn clear(&self) {
        self.frames.lock().clear();
    }

    /// Drop every frame whose path starts with `prefix`, returning how
    /// many were removed. Dataset lifetime GC frees a whole dataset's
    /// buckets with one call (paths are laid out `.../d{data}/...`).
    pub fn remove_prefix(&self, prefix: &str) -> usize {
        let mut frames = self.frames.lock();
        let before = frames.len();
        frames.retain(|path, _| !path.starts_with(prefix));
        before - frames.len()
    }

    /// Number of cached frames.
    pub fn len(&self) -> usize {
        self.frames.lock().len()
    }

    /// True when no frames are cached.
    pub fn is_empty(&self) -> bool {
        self.frames.lock().is_empty()
    }

    /// Total bytes held across all cached frames.
    pub fn bytes(&self) -> usize {
        self.frames.lock().values().map(|f| f.len()).sum()
    }

    /// A [`Provider`] serving this cache.
    pub fn provider(self: &Arc<Self>) -> Provider {
        let cache = Arc::clone(self);
        Arc::new(move |path: &str| cache.get(path))
    }
}

/// True for paths safe to hand to a provider: non-empty and free of `..`
/// components (providers may be backed by a real directory tree, and a
/// crafted `../../etc/...` path must die here, not there).
fn path_is_clean(path: &str) -> bool {
    !path.is_empty() && path.split('/').all(|c| c != "..")
}

/// Callback serving non-bucket pages (`/status`, `/metrics`, …). Gets
/// the request path without its leading slash; `None` means 404.
pub type Pages = Arc<dyn Fn(&str) -> Option<Response> + Send + Sync>;

/// One routing decision for every request: parse the method and path
/// segments, then dispatch. Bucket fetches (`GET /data/<path>`) and
/// pages (`GET /<page>`) share the method check and the `..`/empty
/// rejection lives on the bucket route only — page names are a closed
/// set the `pages` callback controls.
fn route(req: &Request, provider: &Provider, pages: &Pages) -> Response {
    if req.method != "GET" {
        return Response::error(400, "data server only answers GET");
    }
    let path = req.path.strip_prefix('/').unwrap_or(&req.path);
    match path.split_once('/') {
        Some(("data", bucket)) => {
            if !path_is_clean(bucket) {
                return Response::error(404, "malformed bucket path");
            }
            match provider(bucket) {
                Some(bytes) => Response::ok("application/octet-stream", bytes),
                None => Response::error(404, "no such bucket"),
            }
        }
        _ => match pages(path) {
            Some(response) => response,
            None => Response::error(404, "paths live under /data/"),
        },
    }
}

/// An HTTP GET server for bucket data (and, optionally, live pages).
pub struct DataServer {
    http: HttpServer,
}

impl DataServer {
    /// Serve buckets from `provider` on `127.0.0.1:port` (0 = ephemeral).
    /// Paths are served under `/data/`.
    pub fn serve(port: u16, provider: Provider) -> std::io::Result<DataServer> {
        DataServer::serve_with_pages(port, provider, Arc::new(|_| None))
    }

    /// Like [`DataServer::serve`], additionally answering top-level GETs
    /// (e.g. `/status`, `/metrics`) from the `pages` callback.
    pub fn serve_with_pages(
        port: u16,
        provider: Provider,
        pages: Pages,
    ) -> std::io::Result<DataServer> {
        let handler: Handler = Arc::new(move |req: Request| route(&req, &provider, &pages));
        Ok(DataServer { http: HttpServer::bind(port, handler)? })
    }

    /// `host:port` of the server.
    pub fn authority(&self) -> String {
        self.http.authority()
    }

    /// Full URL for a bucket path on this server.
    pub fn url_for(&self, path: &str) -> String {
        format!("http://{}/data/{}", self.authority(), path)
    }

    /// Total bucket bytes served (the direct-shuffle wire-volume metric).
    pub fn bytes_served(&self) -> u64 {
        self.http.bytes_served()
    }
}

/// Fetch a bucket from a peer's data server given `host:port` and the
/// absolute path component of its URL.
pub fn fetch(authority: &str, path: &str) -> Result<Vec<u8>> {
    let (status, body) = HttpClient::get(authority, path)
        .map_err(|e| Error::Rpc(format!("fetch {authority}{path}: {e}")))?;
    if status != 200 {
        // The error body is the peer's own diagnosis ("no such bucket",
        // "malformed bucket path", a provider panic message…) — losing it
        // turns every peer failure into an opaque status code.
        let reason = String::from_utf8_lossy(&body);
        return Err(Error::MissingData(format!("{authority}{path}: http {status}: {reason}")));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_with(files: Vec<(&str, Vec<u8>)>) -> DataServer {
        let cache = Arc::new(FrameCache::new());
        for (k, v) in files {
            cache.insert(k, v);
        }
        DataServer::serve(0, cache.provider()).unwrap()
    }

    #[test]
    fn fetch_existing_bucket() {
        let s = server_with(vec![("op0/b1", vec![1, 2, 3])]);
        let got = fetch(&s.authority(), "/data/op0/b1").unwrap();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn missing_bucket_is_missing_data() {
        let s = server_with(vec![]);
        let err = fetch(&s.authority(), "/data/none").unwrap_err();
        assert!(matches!(err, Error::MissingData(_)));
    }

    #[test]
    fn error_message_carries_the_peer_body() {
        let s = server_with(vec![]);
        let err = fetch(&s.authority(), "/data/none").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("http 404"), "{msg}");
        assert!(msg.contains("no such bucket"), "missing peer diagnosis in {msg:?}");
    }

    #[test]
    fn dotdot_and_empty_paths_never_reach_the_provider() {
        let calls = Arc::new(Mutex::new(Vec::<String>::new()));
        let provider: Provider = {
            let calls = Arc::clone(&calls);
            Arc::new(move |p: &str| {
                calls.lock().push(p.to_owned());
                Some(Arc::from(b"leak".as_slice()))
            })
        };
        let s = DataServer::serve(0, provider).unwrap();
        for path in ["/data/", "/data/../secret", "/data/a/../../b", "/data/.."] {
            let err = fetch(&s.authority(), path).unwrap_err();
            assert!(matches!(err, Error::MissingData(_)), "{path} should 404");
        }
        assert!(calls.lock().is_empty(), "provider saw {:?}", calls.lock().clone());
        // Benign dots ('.', '..double', 'a..b') are not rejected.
        assert_eq!(fetch(&s.authority(), "/data/a..b/..c/v1").unwrap(), b"leak");
    }

    #[test]
    fn url_for_is_fetchable() {
        let s = server_with(vec![("x", b"payload".to_vec())]);
        let url = s.url_for("x");
        let parsed = mrs_fs_like_parse(&url);
        let got = fetch(&parsed.0, &parsed.1).unwrap();
        assert_eq!(got, b"payload");
    }

    // Minimal inline URL split to avoid a dependency on mrs-fs from here.
    fn mrs_fs_like_parse(url: &str) -> (String, String) {
        let rest = url.strip_prefix("http://").unwrap();
        let (auth, path) = rest.split_once('/').unwrap();
        (auth.to_owned(), format!("/{path}"))
    }

    #[test]
    fn non_get_rejected() {
        let s = server_with(vec![("x", vec![1])]);
        let (status, _) = HttpClient::post(&s.authority(), "/data/x", b"").unwrap();
        assert_eq!(status, 400);
    }

    #[test]
    fn pages_share_the_router_with_bucket_fetches() {
        let cache = Arc::new(FrameCache::new());
        cache.insert("b", vec![7]);
        let pages: Pages = Arc::new(|page: &str| match page {
            "status" => Some(Response::ok("text/plain", Arc::from(b"live".as_slice()))),
            _ => None,
        });
        let s = DataServer::serve_with_pages(0, cache.provider(), pages).unwrap();
        // Pages answer at the top level…
        let (status, body) = HttpClient::get(&s.authority(), "/status").unwrap();
        assert_eq!((status, body.as_slice()), (200, b"live".as_slice()));
        // …bucket fetches still work beside them…
        assert_eq!(fetch(&s.authority(), "/data/b").unwrap(), vec![7]);
        // …unknown pages 404, and pages are GET-only like everything else.
        assert_eq!(HttpClient::get(&s.authority(), "/nope").unwrap().0, 404);
        assert_eq!(HttpClient::post(&s.authority(), "/status", b"").unwrap().0, 400);
        // Page names never shadow the data route: /data/status is a bucket.
        assert!(matches!(
            fetch(&s.authority(), "/data/status").unwrap_err(),
            Error::MissingData(_)
        ));
    }

    #[test]
    fn bytes_served_accumulates() {
        let s = server_with(vec![("a", vec![0; 100]), ("b", vec![0; 50])]);
        fetch(&s.authority(), "/data/a").unwrap();
        fetch(&s.authority(), "/data/b").unwrap();
        assert_eq!(s.bytes_served(), 150);
    }

    #[test]
    fn empty_bucket_fetches_as_empty() {
        let s = server_with(vec![("e", vec![])]);
        assert!(fetch(&s.authority(), "/data/e").unwrap().is_empty());
    }

    #[test]
    fn frame_cache_shares_one_buffer() {
        let cache = Arc::new(FrameCache::new());
        let inserted = cache.insert("p", vec![9u8; 64]);
        let got = cache.get("p").unwrap();
        assert!(Arc::ptr_eq(&inserted, &got), "get must return the inserted buffer");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), 64);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get("p"), None);
    }
}
