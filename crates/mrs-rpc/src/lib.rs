//! Control- and data-plane networking, written against the standard library
//! only — the Rust analogue of the paper's decision to build on Python's
//! stdlib `xmlrpclib` and a built-in HTTP server (§IV-B):
//!
//! * [`base64`] — RFC 4648 codec (XML-RPC's binary payload encoding),
//! * [`xmlrpc`] — the XML-RPC value model, serializer, and parser,
//! * [`http`] — a minimal HTTP/1.1 server and client over `std::net`,
//! * [`rpc`] — typed request/response dispatch on top of both,
//! * [`dataserver`] — the HTTP GET server slaves use to hand buckets to
//!   each other directly ("small short-lived files … served and removed
//!   without ever being flushed").

pub mod base64;
pub mod dataserver;
pub mod http;
pub mod rpc;
pub mod xmlrpc;

pub use dataserver::{DataServer, FrameCache, Pages, Provider};
pub use http::{Body, HttpClient, HttpServer, Request, Response, ServerOptions};
pub use rpc::{RpcClient, RpcServer};
pub use xmlrpc::Value;
