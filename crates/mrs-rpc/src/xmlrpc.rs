//! XML-RPC value model, serializer, and parser.
//!
//! Mrs "uses XML-RPC because it is included in the Python standard library
//! even though other protocols are more efficient" (§IV-B). We reproduce
//! that choice: the master/slave control channel speaks genuine XML-RPC
//! (`<methodCall>`/`<methodResponse>` documents over HTTP POST). The parser
//! is a small recursive-descent reader for the XML subset XML-RPC uses —
//! elements without attributes, character data, and the five standard
//! entities.

use crate::base64;
use std::collections::BTreeMap;
use std::fmt;

/// An XML-RPC value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `<int>` / `<i4>` (we allow the full i64 range, like Python).
    Int(i64),
    /// `<boolean>`
    Bool(bool),
    /// `<string>`
    Str(String),
    /// `<double>`
    Double(f64),
    /// `<base64>`
    Bytes(Vec<u8>),
    /// `<array>`
    Array(Vec<Value>),
    /// `<struct>`
    Struct(BTreeMap<String, Value>),
}

impl Value {
    /// Convenience accessor: integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Convenience accessor: string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience accessor: byte payload.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Convenience accessor: array items.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience accessor: struct field.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Struct(m) => m.get(name),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

/// A parse or protocol error.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlError(pub String);

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml-rpc: {}", self.0)
    }
}

impl std::error::Error for XmlError {}

/// A decoded fault response.
#[derive(Debug, Clone, PartialEq)]
pub struct Fault {
    /// Application-defined fault code.
    pub code: i64,
    /// Human-readable description.
    pub message: String,
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

fn write_value(v: &Value, out: &mut String) {
    out.push_str("<value>");
    match v {
        Value::Int(i) => {
            out.push_str("<int>");
            out.push_str(&i.to_string());
            out.push_str("</int>");
        }
        Value::Bool(b) => {
            out.push_str("<boolean>");
            out.push(if *b { '1' } else { '0' });
            out.push_str("</boolean>");
        }
        Value::Str(s) => {
            out.push_str("<string>");
            escape_into(s, out);
            out.push_str("</string>");
        }
        Value::Double(d) => {
            out.push_str("<double>");
            // Display for f64 is shortest-round-trip; inf/nan spelled so
            // that f64::from_str reads them back.
            out.push_str(&d.to_string());
            out.push_str("</double>");
        }
        Value::Bytes(b) => {
            out.push_str("<base64>");
            out.push_str(&base64::encode(b));
            out.push_str("</base64>");
        }
        Value::Array(items) => {
            out.push_str("<array><data>");
            for item in items {
                write_value(item, out);
            }
            out.push_str("</data></array>");
        }
        Value::Struct(fields) => {
            out.push_str("<struct>");
            for (name, val) in fields {
                out.push_str("<member><name>");
                escape_into(name, out);
                out.push_str("</name>");
                write_value(val, out);
                out.push_str("</member>");
            }
            out.push_str("</struct>");
        }
    }
    out.push_str("</value>");
}

/// Serialize a `<methodCall>` document.
pub fn encode_request(method: &str, params: &[Value]) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n<methodCall><methodName>");
    escape_into(method, &mut out);
    out.push_str("</methodName><params>");
    for p in params {
        out.push_str("<param>");
        write_value(p, &mut out);
        out.push_str("</param>");
    }
    out.push_str("</params></methodCall>");
    out
}

/// Serialize a successful `<methodResponse>` document.
pub fn encode_response(value: &Value) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n<methodResponse><params><param>");
    write_value(value, &mut out);
    out.push_str("</param></params></methodResponse>");
    out
}

/// Serialize a fault `<methodResponse>` document.
pub fn encode_fault(code: i64, message: &str) -> String {
    let mut fields = BTreeMap::new();
    fields.insert("faultCode".to_owned(), Value::Int(code));
    fields.insert("faultString".to_owned(), Value::Str(message.to_owned()));
    let mut out = String::from("<?xml version=\"1.0\"?>\n<methodResponse><fault>");
    write_value(&Value::Struct(fields), &mut out);
    out.push_str("</fault></methodResponse>");
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    s: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor { s }
    }

    fn skip_ws(&mut self) {
        self.s = self.s.trim_start();
    }

    fn skip_prolog(&mut self) {
        self.skip_ws();
        if self.s.starts_with("<?") {
            if let Some(end) = self.s.find("?>") {
                self.s = &self.s[end + 2..];
            }
        }
        self.skip_ws();
    }

    /// Consume `<tag>`; error if the next tag is something else.
    fn open(&mut self, tag: &str) -> Result<(), XmlError> {
        self.skip_ws();
        let want = format!("<{tag}>");
        if let Some(rest) = self.s.strip_prefix(want.as_str()) {
            self.s = rest;
            Ok(())
        } else {
            Err(XmlError(format!("expected <{tag}> at {:?}", head(self.s))))
        }
    }

    /// True (and consumed) if the next tag is `<tag>`.
    fn try_open(&mut self, tag: &str) -> bool {
        self.skip_ws();
        let want = format!("<{tag}>");
        if let Some(rest) = self.s.strip_prefix(want.as_str()) {
            self.s = rest;
            true
        } else {
            false
        }
    }

    /// Consume `</tag>`.
    fn close(&mut self, tag: &str) -> Result<(), XmlError> {
        self.skip_ws();
        let want = format!("</{tag}>");
        if let Some(rest) = self.s.strip_prefix(want.as_str()) {
            self.s = rest;
            Ok(())
        } else {
            Err(XmlError(format!("expected </{tag}> at {:?}", head(self.s))))
        }
    }

    /// Peek whether `</tag>` is next.
    fn at_close(&mut self, tag: &str) -> bool {
        self.skip_ws();
        self.s.starts_with(&format!("</{tag}>"))
    }

    /// Read character data up to the next `<`, un-escaping entities.
    fn text(&mut self) -> Result<String, XmlError> {
        let end = self.s.find('<').unwrap_or(self.s.len());
        let raw = &self.s[..end];
        self.s = &self.s[end..];
        unescape(raw)
    }
}

fn head(s: &str) -> &str {
    let mut end = s.len().min(32);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

fn unescape(raw: &str) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let semi = rest.find(';').ok_or_else(|| XmlError("unterminated entity".into()))?;
        match &rest[..=semi] {
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&amp;" => out.push('&'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            e => return Err(XmlError(format!("unknown entity {e}"))),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Maximum element nesting the parser accepts. Deeper documents are
/// rejected instead of recursing toward a stack overflow — a malicious
/// peer must not be able to kill the server with `<array>` bombs.
const MAX_DEPTH: u32 = 64;

fn parse_value(c: &mut Cursor) -> Result<Value, XmlError> {
    parse_value_depth(c, 0)
}

fn parse_value_depth(c: &mut Cursor, depth: u32) -> Result<Value, XmlError> {
    if depth >= MAX_DEPTH {
        return Err(XmlError(format!("value nesting exceeds {MAX_DEPTH}")));
    }
    c.open("value")?;
    c.skip_ws();
    let v = if c.try_open("int") {
        let t = c.text()?;
        let i = t.trim().parse::<i64>().map_err(|e| XmlError(format!("bad int {t:?}: {e}")))?;
        c.close("int")?;
        Value::Int(i)
    } else if c.try_open("i4") {
        let t = c.text()?;
        let i = t.trim().parse::<i64>().map_err(|e| XmlError(format!("bad i4 {t:?}: {e}")))?;
        c.close("i4")?;
        Value::Int(i)
    } else if c.try_open("boolean") {
        let t = c.text()?;
        let b = match t.trim() {
            "0" => false,
            "1" => true,
            other => return Err(XmlError(format!("bad boolean {other:?}"))),
        };
        c.close("boolean")?;
        Value::Bool(b)
    } else if c.try_open("double") {
        let t = c.text()?;
        let d = t.trim().parse::<f64>().map_err(|e| XmlError(format!("bad double {t:?}: {e}")))?;
        c.close("double")?;
        Value::Double(d)
    } else if c.try_open("string") {
        let t = c.text()?;
        c.close("string")?;
        Value::Str(t)
    } else if c.try_open("base64") {
        let t = c.text()?;
        let b = base64::decode(&t).ok_or_else(|| XmlError("bad base64 payload".into()))?;
        c.close("base64")?;
        Value::Bytes(b)
    } else if c.try_open("array") {
        c.open("data")?;
        let mut items = Vec::new();
        while !c.at_close("data") {
            items.push(parse_value_depth(c, depth + 1)?);
        }
        c.close("data")?;
        c.close("array")?;
        Value::Array(items)
    } else if c.try_open("struct") {
        let mut fields = BTreeMap::new();
        while !c.at_close("struct") {
            c.open("member")?;
            c.open("name")?;
            let name = c.text()?;
            c.close("name")?;
            let val = parse_value_depth(c, depth + 1)?;
            c.close("member")?;
            fields.insert(name, val);
        }
        c.close("struct")?;
        Value::Struct(fields)
    } else {
        // Bare text inside <value> is a string, per the XML-RPC spec.
        Value::Str(c.text()?)
    };
    c.close("value")?;
    Ok(v)
}

/// Parse a `<methodCall>` document into `(method, params)`.
pub fn parse_request(xml: &str) -> Result<(String, Vec<Value>), XmlError> {
    let mut c = Cursor::new(xml);
    c.skip_prolog();
    c.open("methodCall")?;
    c.open("methodName")?;
    let method = c.text()?;
    c.close("methodName")?;
    let mut params = Vec::new();
    if c.try_open("params") {
        while !c.at_close("params") {
            c.open("param")?;
            params.push(parse_value(&mut c)?);
            c.close("param")?;
        }
        c.close("params")?;
    }
    c.close("methodCall")?;
    Ok((method, params))
}

/// Parse a `<methodResponse>` document into a value or a [`Fault`].
pub fn parse_response(xml: &str) -> Result<Result<Value, Fault>, XmlError> {
    let mut c = Cursor::new(xml);
    c.skip_prolog();
    c.open("methodResponse")?;
    if c.try_open("fault") {
        let v = parse_value(&mut c)?;
        c.close("fault")?;
        c.close("methodResponse")?;
        let code = v
            .field("faultCode")
            .and_then(Value::as_int)
            .ok_or_else(|| XmlError("fault missing faultCode".into()))?;
        let message = v
            .field("faultString")
            .and_then(Value::as_str)
            .ok_or_else(|| XmlError("fault missing faultString".into()))?
            .to_owned();
        return Ok(Err(Fault { code, message }));
    }
    c.open("params")?;
    c.open("param")?;
    let v = parse_value(&mut c)?;
    c.close("param")?;
    c.close("params")?;
    c.close("methodResponse")?;
    Ok(Ok(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_param(v: Value) {
        let xml = encode_request("m", std::slice::from_ref(&v));
        let (m, params) = parse_request(&xml).unwrap();
        assert_eq!(m, "m");
        assert_eq!(params, vec![v]);
    }

    #[test]
    fn roundtrip_scalars() {
        roundtrip_param(Value::Int(-42));
        roundtrip_param(Value::Int(i64::MAX));
        roundtrip_param(Value::Bool(true));
        roundtrip_param(Value::Str("hello <world> & \"friends\"".into()));
        roundtrip_param(Value::Double(-1.5e-7));
        roundtrip_param(Value::Bytes(vec![0, 1, 2, 255]));
    }

    #[test]
    fn roundtrip_nested() {
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), Value::Int(1));
        m.insert("b".to_owned(), Value::Array(vec![Value::Str("x".into()), Value::Bool(false)]));
        roundtrip_param(Value::Struct(m));
        roundtrip_param(Value::Array(vec![]));
        roundtrip_param(Value::Struct(BTreeMap::new()));
    }

    #[test]
    fn response_roundtrip() {
        let xml = encode_response(&Value::Str("ok".into()));
        assert_eq!(parse_response(&xml).unwrap().unwrap(), Value::Str("ok".into()));
    }

    #[test]
    fn fault_roundtrip() {
        let xml = encode_fault(7, "task <failed>");
        let fault = parse_response(&xml).unwrap().unwrap_err();
        assert_eq!(fault.code, 7);
        assert_eq!(fault.message, "task <failed>");
    }

    #[test]
    fn i4_alias_accepted() {
        let xml = "<methodCall><methodName>m</methodName><params><param>\
                   <value><i4>9</i4></value></param></params></methodCall>";
        let (_, params) = parse_request(xml).unwrap();
        assert_eq!(params, vec![Value::Int(9)]);
    }

    #[test]
    fn bare_text_value_is_string() {
        let xml = "<methodCall><methodName>m</methodName><params><param>\
                   <value>plain</value></param></params></methodCall>";
        let (_, params) = parse_request(xml).unwrap();
        assert_eq!(params, vec![Value::Str("plain".into())]);
    }

    #[test]
    fn whitespace_between_elements_tolerated() {
        let xml = "<?xml version=\"1.0\"?>\n<methodCall>\n  <methodName>ping</methodName>\n\
                   <params>\n <param>\n <value><int> 3 </int></value>\n </param>\n </params>\n\
                   </methodCall>";
        let (m, params) = parse_request(xml).unwrap();
        assert_eq!(m, "ping");
        assert_eq!(params, vec![Value::Int(3)]);
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(parse_request("<methodCall></methodCall>").is_err());
        assert!(parse_request("<wrong/>").is_err());
        assert!(parse_response("<methodResponse><params></params></methodResponse>").is_err());
        let bad_entity = "<methodCall><methodName>a&b;</methodName></methodCall>";
        assert!(parse_request(bad_entity).is_err());
    }

    #[test]
    fn nesting_bomb_is_rejected_not_overflowed() {
        let mut xml = String::from("<methodResponse><params><param>");
        for _ in 0..100_000 {
            xml.push_str("<value><array><data>");
        }
        assert!(parse_response(&xml).is_err());
    }

    #[test]
    fn method_with_no_params() {
        let xml = encode_request("ping", &[]);
        let (m, params) = parse_request(&xml).unwrap();
        assert_eq!(m, "ping");
        assert!(params.is_empty());
    }

    proptest! {
        #[test]
        fn prop_string_roundtrip(s in ".*") {
            // Strings whose text survives XML character-data rules: our
            // writer escapes everything needed, so any Unicode string works.
            roundtrip_param(Value::Str(s));
        }

        #[test]
        fn prop_int_roundtrip(i in any::<i64>()) {
            roundtrip_param(Value::Int(i));
        }

        #[test]
        fn prop_double_roundtrip(d in any::<f64>().prop_filter("finite", |d| d.is_finite())) {
            let xml = encode_response(&Value::Double(d));
            let v = parse_response(&xml).unwrap().unwrap();
            match v {
                Value::Double(back) => prop_assert_eq!(back.to_bits(), d.to_bits()),
                other => prop_assert!(false, "not a double: {:?}", other),
            }
        }

        #[test]
        fn prop_bytes_roundtrip(b in proptest::collection::vec(any::<u8>(), 0..128)) {
            roundtrip_param(Value::Bytes(b));
        }

        #[test]
        fn prop_parser_never_panics(s in ".*") {
            let _ = parse_request(&s);
            let _ = parse_response(&s);
        }
    }
}
