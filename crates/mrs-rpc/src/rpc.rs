//! Typed request/response RPC over HTTP POST + XML-RPC.
//!
//! This is the master↔slave control channel (§IV-B): the master runs an
//! [`RpcServer`] with registered methods (`signin`, `get_task`,
//! `task_done`, `ping`, …) and slaves call them through [`RpcClient`].

use crate::http::{Handler, HttpServer, Request, Response};
use crate::xmlrpc::{self, Value};
use mrs_core::{Error, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Result type for method handlers: `Err((code, message))` becomes an
/// XML-RPC fault.
pub type MethodResult = std::result::Result<Value, (i64, String)>;

/// A registered RPC method.
pub type Method = Box<dyn Fn(&[Value]) -> MethodResult + Send + Sync>;

/// Builder for the method table.
#[derive(Default)]
pub struct Dispatch {
    methods: HashMap<String, Method>,
}

impl Dispatch {
    /// An empty dispatch table.
    pub fn new() -> Self {
        Dispatch::default()
    }

    /// Register a method by name.
    pub fn register<F>(mut self, name: &str, f: F) -> Self
    where
        F: Fn(&[Value]) -> MethodResult + Send + Sync + 'static,
    {
        self.methods.insert(name.to_owned(), Box::new(f));
        self
    }
}

/// An XML-RPC server bound to `/RPC2`.
pub struct RpcServer {
    http: HttpServer,
}

impl RpcServer {
    /// Start serving the dispatch table on `127.0.0.1:port` (0 = ephemeral).
    pub fn serve(port: u16, dispatch: Dispatch) -> std::io::Result<RpcServer> {
        let methods = Arc::new(dispatch.methods);
        let handler: Handler = Arc::new(move |req: Request| {
            if req.method != "POST" || req.path != "/RPC2" {
                return Response::error(404, "rpc endpoint is POST /RPC2");
            }
            let xml = match std::str::from_utf8(&req.body) {
                Ok(s) => s,
                Err(_) => return rpc_fault(1, "request body is not utf-8"),
            };
            let (name, params) = match xmlrpc::parse_request(xml) {
                Ok(x) => x,
                Err(e) => return rpc_fault(1, &format!("malformed request: {e}")),
            };
            match methods.get(&name) {
                None => rpc_fault(2, &format!("unknown method {name:?}")),
                Some(m) => match m(&params) {
                    Ok(v) => Response::ok("text/xml", xmlrpc::encode_response(&v).into_bytes()),
                    Err((code, msg)) => rpc_fault(code, &msg),
                },
            }
        });
        Ok(RpcServer { http: HttpServer::bind(port, handler)? })
    }

    /// `host:port` of the server.
    pub fn authority(&self) -> String {
        self.http.authority()
    }

    /// Port the server is listening on.
    pub fn port(&self) -> u16 {
        self.http.addr().port()
    }

    /// Total RPC requests served so far. The control-plane bench reads
    /// this to count round trips per job.
    pub fn request_count(&self) -> u64 {
        self.http.request_count()
    }
}

fn rpc_fault(code: i64, msg: &str) -> Response {
    Response::ok("text/xml", xmlrpc::encode_fault(code, msg).into_bytes())
}

/// Client side of the control channel.
#[derive(Clone, Debug)]
pub struct RpcClient {
    authority: String,
}

impl RpcClient {
    /// A client for `host:port`.
    pub fn new(authority: impl Into<String>) -> Self {
        RpcClient { authority: authority.into() }
    }

    /// Call a remote method. Transport errors and faults both surface as
    /// [`Error::Rpc`].
    pub fn call(&self, method: &str, params: &[Value]) -> Result<Value> {
        let body = xmlrpc::encode_request(method, params);
        let (status, resp) =
            crate::http::HttpClient::post(&self.authority, "/RPC2", body.as_bytes())
                .map_err(|e| Error::Rpc(format!("{method} -> {}: {e}", self.authority)))?;
        if status != 200 {
            return Err(Error::Rpc(format!("{method}: http status {status}")));
        }
        let xml = std::str::from_utf8(&resp)
            .map_err(|_| Error::Rpc(format!("{method}: non-utf8 response")))?;
        match xmlrpc::parse_response(xml)
            .map_err(|e| Error::Rpc(format!("{method}: bad response: {e}")))?
        {
            Ok(v) => Ok(v),
            Err(fault) => {
                Err(Error::Rpc(format!("{method}: fault {}: {}", fault.code, fault.message)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder_server() -> RpcServer {
        let dispatch = Dispatch::new()
            .register("add", |params| {
                let a =
                    params.first().and_then(Value::as_int).ok_or((3, "missing a".to_owned()))?;
                let b = params.get(1).and_then(Value::as_int).ok_or((3, "missing b".to_owned()))?;
                Ok(Value::Int(a + b))
            })
            .register("echo_bytes", |params| {
                let b = params
                    .first()
                    .and_then(Value::as_bytes)
                    .ok_or((3, "missing bytes".to_owned()))?;
                Ok(Value::Bytes(b.to_vec()))
            })
            .register("boom", |_| Err((42, "kaboom".to_owned())));
        RpcServer::serve(0, dispatch).unwrap()
    }

    #[test]
    fn call_roundtrip() {
        let server = adder_server();
        let client = RpcClient::new(server.authority());
        let v = client.call("add", &[Value::Int(2), Value::Int(40)]).unwrap();
        assert_eq!(v, Value::Int(42));
    }

    #[test]
    fn binary_payloads_survive() {
        let server = adder_server();
        let client = RpcClient::new(server.authority());
        let payload: Vec<u8> = (0..=255).collect();
        let v = client.call("echo_bytes", &[Value::Bytes(payload.clone())]).unwrap();
        assert_eq!(v.as_bytes().unwrap(), payload.as_slice());
    }

    #[test]
    fn fault_is_an_error_with_message() {
        let server = adder_server();
        let client = RpcClient::new(server.authority());
        let err = client.call("boom", &[]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("42") && msg.contains("kaboom"), "{msg}");
    }

    #[test]
    fn unknown_method_is_a_fault() {
        let server = adder_server();
        let client = RpcClient::new(server.authority());
        let err = client.call("nope", &[]).unwrap_err();
        assert!(err.to_string().contains("unknown method"), "{err}");
    }

    #[test]
    fn bad_argument_fault() {
        let server = adder_server();
        let client = RpcClient::new(server.authority());
        let err = client.call("add", &[Value::Str("x".into())]).unwrap_err();
        assert!(err.to_string().contains("missing a"), "{err}");
    }

    #[test]
    fn connection_refused_is_rpc_error() {
        // Port 1 is essentially never listening.
        let client = RpcClient::new("127.0.0.1:1");
        assert!(matches!(client.call("x", &[]), Err(Error::Rpc(_))));
    }

    #[test]
    fn handler_may_block_without_stalling_other_connections() {
        // Long-poll dispatch parks `get_task` handlers server-side. Each
        // connection gets its own handler thread, so one held request must
        // not delay requests arriving on other connections.
        use std::sync::mpsc;
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = std::sync::Mutex::new(release_rx);
        let dispatch = Dispatch::new()
            .register("park", move |_| {
                let rx = release_rx.lock().unwrap();
                rx.recv_timeout(std::time::Duration::from_secs(5)).ok();
                Ok(Value::Str("released".into()))
            })
            .register("ping", |_| Ok(Value::Bool(true)));
        let server = RpcServer::serve(0, dispatch).unwrap();
        let authority = server.authority();

        let parked = {
            let authority = authority.clone();
            std::thread::spawn(move || RpcClient::new(authority).call("park", &[]).unwrap())
        };
        // While `park` is held, a second connection is served immediately.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let start = std::time::Instant::now();
        let v = RpcClient::new(authority).call("ping", &[]).unwrap();
        assert_eq!(v, Value::Bool(true));
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
        release_tx.send(()).unwrap();
        assert_eq!(parked.join().unwrap(), Value::Str("released".into()));
        assert_eq!(server.request_count(), 2);
    }

    #[test]
    fn concurrent_clients() {
        let server = adder_server();
        let authority = server.authority();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let authority = authority.clone();
                std::thread::spawn(move || {
                    let client = RpcClient::new(authority);
                    let v = client.call("add", &[Value::Int(i), Value::Int(1)]).unwrap();
                    assert_eq!(v, Value::Int(i + 1));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
