//! Minimal HTTP/1.1 over `std::net`: enough for XML-RPC POSTs and bucket
//! GETs, nothing more.
//!
//! Connections are persistent on both sides. The server answers any number
//! of requests per connection (HTTP/1.1 keep-alive), honouring a client's
//! `Connection: close`; the client keeps a process-wide pool of open
//! connections keyed by authority and transparently retries once on a
//! stale pooled connection (one the server closed while it sat idle).
//! Persistent connections matter here for the same reason they matter in
//! any shuffle: a job issues O(tasks × partitions) bucket fetches and
//! O(tasks) control RPCs, and paying a TCP handshake for each turns the
//! data plane into a connection churn benchmark. With pooling, the number
//! of sockets is O(peers).
//!
//! The server counts payload bytes, requests, and *connections accepted* —
//! the last is the measurement hook for the keep-alive ablation (A4): with
//! pooling on, connections stay flat as request count grows.
//!
//! The server is thread-per-connection, and that is load-bearing for the
//! control plane: a handler may block — the long-poll `get_task` parks
//! its handler thread on the master's dispatch condvar until work appears
//! — and requests on other connections are still served concurrently.
//! Handlers must release well inside the client's I/O timeout
//! ([`IO_TIMEOUT`], 10s) or the held request reads as a dead server.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Absolute path, e.g. `/RPC2`.
    pub path: String,
    /// Request body (empty for GET).
    pub body: Vec<u8>,
}

/// A response body: either owned bytes or a shared reference-counted
/// buffer. The `Shared` arm is the zero-copy serve path — a cached
/// shuffle frame is handed to the socket writer without cloning, so N
/// readers of one bucket cost one serialization and zero re-copies.
#[derive(Debug, Clone)]
pub enum Body {
    /// Bytes owned by this response.
    Vec(Vec<u8>),
    /// Bytes shared with a cache (and possibly other in-flight responses).
    Shared(Arc<[u8]>),
}

impl Body {
    /// The body bytes, wherever they live.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Body::Vec(v) => v,
            Body::Shared(s) => s,
        }
    }

    /// Body length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the body is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Convert into owned bytes (copies only the `Shared` arm).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            Body::Vec(v) => v,
            Body::Shared(s) => s.to_vec(),
        }
    }
}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Self {
        Body::Vec(v)
    }
}

impl From<Arc<[u8]>> for Body {
    fn from(s: Arc<[u8]>) -> Self {
        Body::Shared(s)
    }
}

/// An HTTP response to send.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, 500, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: Body,
}

impl Response {
    /// A 200 response.
    pub fn ok(content_type: &str, body: impl Into<Body>) -> Self {
        Response { status: 200, content_type: content_type.into(), body: body.into() }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, msg: &str) -> Self {
        Response {
            status,
            content_type: "text/plain".into(),
            body: Body::Vec(msg.as_bytes().to_vec()),
        }
    }
}

/// Handler invoked for each request.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// Keep connections open between requests (HTTP/1.1 default). When
    /// false every response carries `Connection: close` — the pre-overhaul
    /// behaviour, kept for the keep-alive ablation.
    pub keep_alive: bool,
    /// Close the connection (without warning) after this many requests;
    /// 0 means unlimited. A nonzero value makes pooled client connections
    /// go stale deterministically, which is how the failover tests force
    /// the retry path.
    pub max_requests_per_connection: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions { keep_alive: true, max_requests_per_connection: 0 }
    }
}

/// A running HTTP server.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    bytes_served: Arc<AtomicU64>,
    requests: Arc<AtomicU64>,
    connections: Arc<AtomicU64>,
    /// Live connection sockets; shut down hard on drop so no thread keeps
    /// serving this handler after the server object is gone.
    live: Arc<Mutex<Vec<TcpStream>>>,
}

const IO_TIMEOUT: Duration = Duration::from_secs(10);

impl HttpServer {
    /// Bind to `127.0.0.1:port` (0 = ephemeral) and start serving with
    /// default options (keep-alive on).
    pub fn bind(port: u16, handler: Handler) -> std::io::Result<HttpServer> {
        Self::bind_with(port, handler, ServerOptions::default())
    }

    /// [`HttpServer::bind`] with explicit [`ServerOptions`].
    pub fn bind_with(
        port: u16,
        handler: Handler,
        options: ServerOptions,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let bytes_served = Arc::new(AtomicU64::new(0));
        let requests = Arc::new(AtomicU64::new(0));
        let connections = Arc::new(AtomicU64::new(0));
        let live = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let bytes_served = Arc::clone(&bytes_served);
            let requests = Arc::clone(&requests);
            let connections = Arc::clone(&connections);
            let live = Arc::clone(&live);
            std::thread::Builder::new().name(format!("http-{}", addr.port())).spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Responses are written as header + body segments; with
                    // Nagle on, the trailing segment waits out the peer's
                    // delayed ACK (~40 ms) — per-RPC poison for the
                    // long-poll control plane's round-trip latency.
                    let _ = stream.set_nodelay(true);
                    connections.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        let mut reg = live.lock().unwrap_or_else(|e| e.into_inner());
                        // Opportunistically drop entries whose connection
                        // thread already finished, keeping the registry
                        // proportional to live peers.
                        reg.retain(|s: &TcpStream| s.take_error().is_ok() && s.peer_addr().is_ok());
                        reg.push(clone);
                    }
                    let handler = Arc::clone(&handler);
                    let bytes_served = Arc::clone(&bytes_served);
                    let requests = Arc::clone(&requests);
                    std::thread::spawn(move || {
                        let _ =
                            serve_connection(&stream, &handler, &bytes_served, &requests, options);
                        // The registry above holds a duplicate fd, so merely
                        // dropping `stream` would not send FIN; shut the
                        // socket down so the peer sees the close promptly.
                        let _ = stream.shutdown(Shutdown::Both);
                    });
                }
            })?
        };
        Ok(HttpServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            bytes_served,
            requests,
            connections,
            live,
        })
    }

    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `host:port` string for building URLs.
    pub fn authority(&self) -> String {
        format!("{}", self.addr)
    }

    /// Total response-body bytes served so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served.load(Ordering::Relaxed)
    }

    /// Total requests handled so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total TCP connections accepted so far. With keep-alive this grows
    /// with the number of *peers*, not the number of requests.
    pub fn connection_count(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so `incoming()` returns and observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Hard-close persistent connections so their threads stop serving
        // this handler (otherwise a pooled client could keep talking to a
        // "dropped" server until the idle timeout).
        let live = self.live.lock().unwrap_or_else(|e| e.into_inner());
        for s in live.iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

fn serve_connection(
    stream: &TcpStream,
    handler: &Handler,
    bytes_served: &AtomicU64,
    requests: &AtomicU64,
    options: ServerOptions,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut served = 0usize;
    loop {
        let Some((req, client_closes)) = read_request(&mut reader)? else {
            return Ok(()); // peer closed (or went idle past the timeout)
        };
        requests.fetch_add(1, Ordering::Relaxed);
        let resp = handler(req);
        bytes_served.fetch_add(resp.body.len() as u64, Ordering::Relaxed);
        served += 1;
        let keep = options.keep_alive && !client_closes;
        let budget_exhausted = options.max_requests_per_connection != 0
            && served >= options.max_requests_per_connection;
        // When the per-connection request budget runs out, close *without*
        // advertising it: the pooled client only discovers the connection
        // is stale on its next request, which is exactly the failover path
        // the tests need to exercise deterministically.
        write_response(stream, &resp, keep)?;
        if !keep || budget_exhausted {
            return Ok(());
        }
    }
}

/// Read one request. Returns `None` on a clean EOF before a request line.
/// The boolean is true when the client asked for `Connection: close` (or
/// spoke HTTP/1.0 without opting in to keep-alive).
fn read_request<R: BufRead>(reader: &mut R) -> std::io::Result<Option<(Request, bool)>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_owned(), p.to_owned()),
        _ => return Err(std::io::Error::other(format!("bad request line {line:?}"))),
    };
    let http10 = parts.next() == Some("HTTP/1.0");
    let mut content_length = 0usize;
    let mut connection = String::new();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|e| std::io::Error::other(format!("bad content-length: {e}")))?;
            } else if name.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_ascii_lowercase();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let closes = connection.contains("close") || (http10 && !connection.contains("keep-alive"));
    Ok(Some((Request { method, path, body }, closes)))
}

fn write_response(
    mut stream: &TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        500 => "Internal Server Error",
        _ => "Status",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len(),
        connection,
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_slice())?;
    stream.flush()
}

/// How many idle connections the pool keeps per authority. More than the
/// worst-case fan-in of one slave is wasted sockets.
const POOL_PER_AUTHORITY: usize = 4;

/// Process-wide pool of persistent client connections, keyed by
/// `host:port`. All [`HttpClient`] traffic flows through it, so the
/// control channel (every `get_task` poll) and the data plane (every
/// bucket fetch) reuse the same few sockets per peer.
struct ConnectionPool {
    idle: Mutex<HashMap<String, Vec<TcpStream>>>,
    opened: AtomicU64,
    reused: AtomicU64,
}

impl ConnectionPool {
    fn global() -> &'static ConnectionPool {
        static POOL: OnceLock<ConnectionPool> = OnceLock::new();
        POOL.get_or_init(|| ConnectionPool {
            idle: Mutex::new(HashMap::new()),
            opened: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        })
    }

    fn checkout(&self, authority: &str) -> Option<TcpStream> {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        let conn = idle.get_mut(authority)?.pop();
        if conn.is_some() {
            self.reused.fetch_add(1, Ordering::Relaxed);
        }
        conn
    }

    fn checkin(&self, authority: &str, conn: TcpStream) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        let slot = idle.entry(authority.to_owned()).or_default();
        if slot.len() < POOL_PER_AUTHORITY {
            slot.push(conn);
        }
        // else: drop, closing the socket.
    }

    fn dial(&self, authority: &str) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(authority)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        stream.set_nodelay(true)?;
        self.opened.fetch_add(1, Ordering::Relaxed);
        Ok(stream)
    }
}

/// Blocking HTTP client. Stateless to callers; connections persist in the
/// process-wide pool behind the scenes.
pub struct HttpClient;

impl HttpClient {
    /// Issue a request and return `(status, body)`.
    ///
    /// A request on a pooled connection that fails (the server closed it
    /// while idle, or it died with the server) is retried exactly once on
    /// a freshly dialled connection. Fresh-connection failures propagate:
    /// those are real errors, not staleness.
    pub fn request(
        authority: &str,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let pool = ConnectionPool::global();
        if let Some(conn) = pool.checkout(authority) {
            if let Ok(result) = Self::request_on(&conn, authority, method, path, body) {
                return Self::finish(pool, authority, conn, result);
            }
            // Stale pooled connection: fall through to a fresh dial.
        }
        let conn = pool.dial(authority)?;
        let result = Self::request_on(&conn, authority, method, path, body)?;
        Self::finish(pool, authority, conn, result)
    }

    fn finish(
        pool: &ConnectionPool,
        authority: &str,
        conn: TcpStream,
        (status, body, reusable): (u16, Vec<u8>, bool),
    ) -> std::io::Result<(u16, Vec<u8>)> {
        if reusable {
            pool.checkin(authority, conn);
        }
        Ok((status, body))
    }

    /// One request/response exchange on an open connection. The extra
    /// boolean says whether the server agreed to keep the connection open.
    fn request_on(
        mut conn: &TcpStream,
        authority: &str,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>, bool)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {authority}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        conn.write_all(head.as_bytes())?;
        conn.write_all(body)?;
        conn.flush()?;

        // A fresh BufReader per request is safe: the server sends exactly
        // one response per request, and we consume it fully below, so no
        // buffered bytes are lost when the reader is dropped.
        let mut reader = BufReader::new(conn);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        if status_line.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before response",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad status line {status_line:?}")))?;
        let mut content_length: Option<usize> = None;
        let mut keep_alive = status_line.starts_with("HTTP/1.1");
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                break;
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok();
                } else if name.eq_ignore_ascii_case("connection") {
                    keep_alive = !value.trim().eq_ignore_ascii_case("close");
                }
            }
        }
        let mut body = Vec::new();
        match content_length {
            Some(n) => {
                body.resize(n, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                // Without a length the body runs to EOF, which also means
                // the connection cannot be reused.
                keep_alive = false;
                reader.read_to_end(&mut body)?;
            }
        }
        Ok((status, body, keep_alive))
    }

    /// GET a path.
    pub fn get(authority: &str, path: &str) -> std::io::Result<(u16, Vec<u8>)> {
        Self::request(authority, "GET", path, &[])
    }

    /// POST a body.
    pub fn post(authority: &str, path: &str, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
        Self::request(authority, "POST", path, body)
    }

    /// `(connections opened, requests served by a reused connection)` for
    /// the process-wide pool. Counters are cumulative; callers interested
    /// in one job take deltas.
    pub fn pool_stats() -> (u64, u64) {
        let pool = ConnectionPool::global();
        (pool.opened.load(Ordering::Relaxed), pool.reused.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        echo_server_with(ServerOptions::default())
    }

    fn echo_server_with(options: ServerOptions) -> HttpServer {
        HttpServer::bind_with(
            0,
            Arc::new(|req: Request| {
                if req.path == "/missing" {
                    Response::error(404, "nope")
                } else {
                    let mut body = format!("{} {} ", req.method, req.path).into_bytes();
                    body.extend_from_slice(&req.body);
                    Response::ok("text/plain", body)
                }
            }),
            options,
        )
        .unwrap()
    }

    #[test]
    fn get_roundtrip() {
        let server = echo_server();
        let (status, body) = HttpClient::get(&server.authority(), "/hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"GET /hello ");
    }

    #[test]
    fn post_roundtrip_with_binary_body() {
        let server = echo_server();
        let payload = vec![0u8, 1, 2, 253, 254, 255];
        let (status, body) = HttpClient::post(&server.authority(), "/p", &payload).unwrap();
        assert_eq!(status, 200);
        assert_eq!(&body[b"POST /p ".len()..], payload.as_slice());
    }

    #[test]
    fn not_found_status_propagates() {
        let server = echo_server();
        let (status, body) = HttpClient::get(&server.authority(), "/missing").unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, b"nope");
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = echo_server();
        let authority = server.authority();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let authority = authority.clone();
                std::thread::spawn(move || {
                    let (status, body) = HttpClient::get(&authority, &format!("/r{i}")).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(body, format!("GET /r{i} ").into_bytes());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.request_count(), 8);
    }

    #[test]
    fn byte_counter_tracks_payloads() {
        let server = echo_server();
        let before = server.bytes_served();
        let (_, body) = HttpClient::get(&server.authority(), "/x").unwrap();
        assert_eq!(server.bytes_served() - before, body.len() as u64);
    }

    #[test]
    fn server_shuts_down_cleanly() {
        let server = echo_server();
        let authority = server.authority();
        drop(server);
        // After drop the port no longer accepts requests (give the OS a moment).
        std::thread::sleep(Duration::from_millis(50));
        let r = HttpClient::get(&authority, "/x");
        assert!(r.is_err() || r.unwrap().0 != 200);
    }

    #[test]
    fn large_body_roundtrips() {
        let server = echo_server();
        let payload = vec![7u8; 1 << 20];
        let (status, body) = HttpClient::post(&server.authority(), "/big", &payload).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.len(), payload.len() + b"POST /big ".len());
    }

    #[test]
    fn sequential_requests_reuse_one_connection() {
        let server = echo_server();
        let authority = server.authority();
        const N: u64 = 12;
        for i in 0..N {
            let (status, _) = HttpClient::get(&authority, &format!("/seq{i}")).unwrap();
            assert_eq!(status, 200);
        }
        assert_eq!(server.request_count(), N);
        // All N requests came from this single (serial) client: one TCP
        // connection, reused throughout.
        assert_eq!(server.connection_count(), 1, "keep-alive should reuse the connection");
    }

    #[test]
    fn keep_alive_disabled_opens_one_connection_per_request() {
        let server =
            echo_server_with(ServerOptions { keep_alive: false, ..ServerOptions::default() });
        let authority = server.authority();
        const N: u64 = 5;
        for _ in 0..N {
            HttpClient::get(&authority, "/x").unwrap();
        }
        assert_eq!(server.connection_count(), N);
    }

    #[test]
    fn stale_pooled_connection_fails_over_to_a_fresh_dial() {
        // The server hangs up after every 2nd request on a connection; the
        // pooled client must notice mid-stream and transparently redial.
        let server =
            echo_server_with(ServerOptions { keep_alive: true, max_requests_per_connection: 2 });
        let authority = server.authority();
        for i in 0..10 {
            let (status, body) = HttpClient::get(&authority, &format!("/f{i}")).unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, format!("GET /f{i} ").into_bytes());
        }
        assert_eq!(server.request_count(), 10);
        assert!(server.connection_count() >= 5, "2-request budget forces at least 5 connections");
    }

    #[test]
    fn explicit_connection_close_is_honored() {
        let server = echo_server();
        let authority = server.authority();
        // Hand-rolled HTTP/1.1 request asking to close: the server must
        // not leave the connection half-open.
        let mut conn = TcpStream::connect(&authority).unwrap();
        conn.write_all(b"GET /bye HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut resp = Vec::new();
        conn.read_to_end(&mut resp).unwrap(); // EOF proves the server closed
        let text = String::from_utf8_lossy(&resp);
        assert!(text.contains("200 OK"));
        assert!(text.to_lowercase().contains("connection: close"));
    }

    #[test]
    fn pool_stats_reflect_reuse() {
        let server = echo_server();
        let authority = server.authority();
        let (o0, r0) = HttpClient::pool_stats();
        for _ in 0..6 {
            HttpClient::get(&authority, "/s").unwrap();
        }
        let (o1, r1) = HttpClient::pool_stats();
        // This client dialled once and reused five times (other tests may
        // add to the counters concurrently, so compare deltas loosely).
        assert!(o1 - o0 >= 1);
        assert!(r1 - r0 >= 5, "expected >=5 reuses, got {}", r1 - r0);
    }
}
