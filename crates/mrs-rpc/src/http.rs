//! Minimal HTTP/1.1 over `std::net`: enough for XML-RPC POSTs and bucket
//! GETs, nothing more.
//!
//! The server accepts on an ephemeral (or fixed) port, handles each
//! connection on its own thread, answers exactly one request per connection
//! (`Connection: close`), and counts payload bytes served — the measurement
//! hook for the direct-vs-filesystem shuffle ablation (A4).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Absolute path, e.g. `/RPC2`.
    pub path: String,
    /// Request body (empty for GET).
    pub body: Vec<u8>,
}

/// An HTTP response to send.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, 500, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 response.
    pub fn ok(content_type: &str, body: Vec<u8>) -> Self {
        Response { status: 200, content_type: content_type.into(), body }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, msg: &str) -> Self {
        Response { status, content_type: "text/plain".into(), body: msg.as_bytes().to_vec() }
    }
}

/// Handler invoked for each request.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// A running HTTP server.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    bytes_served: Arc<AtomicU64>,
    requests: Arc<AtomicU64>,
}

const IO_TIMEOUT: Duration = Duration::from_secs(10);

impl HttpServer {
    /// Bind to `127.0.0.1:port` (0 = ephemeral) and start serving.
    pub fn bind(port: u16, handler: Handler) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let bytes_served = Arc::new(AtomicU64::new(0));
        let requests = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let bytes_served = Arc::clone(&bytes_served);
            let requests = Arc::clone(&requests);
            std::thread::Builder::new().name(format!("http-{}", addr.port())).spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let handler = Arc::clone(&handler);
                    let bytes_served = Arc::clone(&bytes_served);
                    let requests = Arc::clone(&requests);
                    std::thread::spawn(move || {
                        let _ = serve_connection(stream, &handler, &bytes_served, &requests);
                    });
                }
            })?
        };
        Ok(HttpServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            bytes_served,
            requests,
        })
    }

    /// Address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `host:port` string for building URLs.
    pub fn authority(&self) -> String {
        format!("{}", self.addr)
    }

    /// Total response-body bytes served so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served.load(Ordering::Relaxed)
    }

    /// Total requests handled so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so `incoming()` returns and observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    handler: &Handler,
    bytes_served: &AtomicU64,
    requests: &AtomicU64,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let Some(req) = read_request(&mut reader)? else {
        return Ok(()); // connection opened and closed without a request
    };
    requests.fetch_add(1, Ordering::Relaxed);
    let resp = handler(req);
    bytes_served.fetch_add(resp.body.len() as u64, Ordering::Relaxed);
    write_response(stream, &resp)
}

fn read_request<R: BufRead>(reader: &mut R) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_owned(), p.to_owned()),
        _ => return Err(std::io::Error::other(format!("bad request line {line:?}"))),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|e| std::io::Error::other(format!("bad content-length: {e}")))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method, path, body }))
}

fn write_response(mut stream: TcpStream, resp: &Response) -> std::io::Result<()> {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        500 => "Internal Server Error",
        _ => "Status",
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Blocking HTTP client for one-shot requests.
pub struct HttpClient;

impl HttpClient {
    /// Issue a request and return `(status, body)`.
    pub fn request(
        authority: &str,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> std::io::Result<(u16, Vec<u8>)> {
        let mut stream = TcpStream::connect(authority)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {authority}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad status line {status_line:?}")))?;
        let mut content_length: Option<usize> = None;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                break;
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok();
                }
            }
        }
        let mut body = Vec::new();
        match content_length {
            Some(n) => {
                body.resize(n, 0);
                reader.read_exact(&mut body)?;
            }
            None => {
                reader.read_to_end(&mut body)?;
            }
        }
        Ok((status, body))
    }

    /// GET a path.
    pub fn get(authority: &str, path: &str) -> std::io::Result<(u16, Vec<u8>)> {
        Self::request(authority, "GET", path, &[])
    }

    /// POST a body.
    pub fn post(authority: &str, path: &str, body: &[u8]) -> std::io::Result<(u16, Vec<u8>)> {
        Self::request(authority, "POST", path, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        HttpServer::bind(
            0,
            Arc::new(|req: Request| {
                if req.path == "/missing" {
                    Response::error(404, "nope")
                } else {
                    let mut body = format!("{} {} ", req.method, req.path).into_bytes();
                    body.extend_from_slice(&req.body);
                    Response::ok("text/plain", body)
                }
            }),
        )
        .unwrap()
    }

    #[test]
    fn get_roundtrip() {
        let server = echo_server();
        let (status, body) = HttpClient::get(&server.authority(), "/hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"GET /hello ");
    }

    #[test]
    fn post_roundtrip_with_binary_body() {
        let server = echo_server();
        let payload = vec![0u8, 1, 2, 253, 254, 255];
        let (status, body) = HttpClient::post(&server.authority(), "/p", &payload).unwrap();
        assert_eq!(status, 200);
        assert_eq!(&body[b"POST /p ".len()..], payload.as_slice());
    }

    #[test]
    fn not_found_status_propagates() {
        let server = echo_server();
        let (status, body) = HttpClient::get(&server.authority(), "/missing").unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, b"nope");
    }

    #[test]
    fn concurrent_requests_are_served() {
        let server = echo_server();
        let authority = server.authority();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let authority = authority.clone();
                std::thread::spawn(move || {
                    let (status, body) =
                        HttpClient::get(&authority, &format!("/r{i}")).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(body, format!("GET /r{i} ").into_bytes());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.request_count(), 8);
    }

    #[test]
    fn byte_counter_tracks_payloads() {
        let server = echo_server();
        let before = server.bytes_served();
        let (_, body) = HttpClient::get(&server.authority(), "/x").unwrap();
        assert_eq!(server.bytes_served() - before, body.len() as u64);
    }

    #[test]
    fn server_shuts_down_cleanly() {
        let server = echo_server();
        let authority = server.authority();
        drop(server);
        // After drop the port no longer accepts requests (give the OS a moment).
        std::thread::sleep(Duration::from_millis(50));
        let r = HttpClient::get(&authority, "/x");
        assert!(r.is_err() || r.unwrap().0 != 200);
    }

    #[test]
    fn large_body_roundtrips() {
        let server = echo_server();
        let payload = vec![7u8; 1 << 20];
        let (status, body) = HttpClient::post(&server.authority(), "/big", &payload).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.len(), payload.len() + b"POST /big ".len());
    }
}
