//! RFC 4648 base64 (standard alphabet, `=` padding).
//!
//! XML-RPC carries binary payloads as `<base64>` elements; this is the
//! codec for them, written from scratch like the rest of the wire layer.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes to base64 text.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    let mut chunks = data.chunks_exact(3);
    for c in &mut chunks {
        let n = u32::from(c[0]) << 16 | u32::from(c[1]) << 8 | u32::from(c[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(ALPHABET[(n >> 6) as usize & 63] as char);
        out.push(ALPHABET[n as usize & 63] as char);
    }
    match chunks.remainder() {
        [a] => {
            let n = u32::from(*a) << 16;
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
            out.push_str("==");
        }
        [a, b] => {
            let n = u32::from(*a) << 16 | u32::from(*b) << 8;
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
            out.push(ALPHABET[(n >> 6) as usize & 63] as char);
            out.push('=');
        }
        _ => {}
    }
    out
}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decode base64 text (whitespace tolerated, as XML often wraps lines).
pub fn decode(text: &str) -> Option<Vec<u8>> {
    let mut syms: Vec<u8> = Vec::with_capacity(text.len());
    let mut padding = 0usize;
    for &b in text.as_bytes() {
        if b.is_ascii_whitespace() {
            continue;
        }
        if b == b'=' {
            padding += 1;
            continue;
        }
        if padding > 0 {
            return None; // data after padding
        }
        syms.push(decode_char(b)?);
    }
    if !(syms.len() + padding).is_multiple_of(4) || padding > 2 {
        return None;
    }
    let mut out = Vec::with_capacity(syms.len() * 3 / 4);
    let mut chunks = syms.chunks_exact(4);
    for c in &mut chunks {
        let n =
            u32::from(c[0]) << 18 | u32::from(c[1]) << 12 | u32::from(c[2]) << 6 | u32::from(c[3]);
        out.extend_from_slice(&[(n >> 16) as u8, (n >> 8) as u8, n as u8]);
    }
    match *chunks.remainder() {
        [] => {}
        [a, b] => {
            let n = u32::from(a) << 18 | u32::from(b) << 12;
            out.push((n >> 16) as u8);
        }
        [a, b, c] => {
            let n = u32::from(a) << 18 | u32::from(b) << 12 | u32::from(c) << 6;
            out.push((n >> 16) as u8);
            out.push((n >> 8) as u8);
        }
        _ => return None, // single leftover symbol is invalid
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rfc_vectors() {
        // RFC 4648 §10 test vectors.
        let cases = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(encode(plain.as_bytes()), enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn decode_tolerates_whitespace() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode("!!!!").is_none());
        assert!(decode("Zg=").is_none()); // wrong length
        assert!(decode("Zg==Zg==").is_none()); // data after padding
        assert!(decode("Z===").is_none()); // too much padding
        assert!(decode("A").is_none()); // dangling symbol
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assert_eq!(decode(&encode(&data)).unwrap(), data);
        }
    }
}
