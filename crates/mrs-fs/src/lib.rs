//! Storage layer for intermediate and input data.
//!
//! The paper (§IV-B) stresses that Mrs works with *any* filesystem — NFS,
//! Lustre, HDFS-over-FUSE, or plain local disk — instead of requiring a
//! dedicated distributed filesystem. This crate provides:
//!
//! * [`store::Store`] — the minimal filesystem interface the runtimes need,
//! * [`local::LocalFs`] — a directory-rooted store on the real filesystem
//!   (with [`local::TempFs`] for run-scoped scratch space),
//! * [`mem::MemFs`] — an in-memory shared store standing in for the
//!   cluster-wide NFS/Lustre mount, with injectable latency and failures
//!   for testing fault tolerance,
//! * [`url::BucketUrl`] — `file://`, `mem://`, and `http://` URLs naming
//!   bucket data wherever it lives,
//! * [`format`] — the on-disk record formats (binary KV bucket files and
//!   line-oriented text).

pub mod format;
pub mod local;
pub mod mem;
pub mod store;
pub mod url;

pub use local::{LocalFs, TempFs};
pub use mem::MemFs;
pub use store::Store;
pub use url::BucketUrl;
