//! Directory-rooted store on the real filesystem.

use crate::store::{check_path, Store};
use mrs_core::{Error, Result};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`Store`] rooted at a directory of the host filesystem.
#[derive(Debug, Clone)]
pub struct LocalFs {
    root: PathBuf,
}

impl LocalFs {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(LocalFs { root })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn full(&self, path: &str) -> Result<PathBuf> {
        Ok(self.root.join(check_path(path)?))
    }
}

impl Store for LocalFs {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        let full = self.full(path)?;
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Write-then-rename so concurrent readers never observe a torn file.
        let tmp = full.with_extension("tmp~");
        std::fs::write(&tmp, data)?;
        std::fs::rename(&tmp, &full)?;
        Ok(())
    }

    fn get(&self, path: &str) -> Result<Vec<u8>> {
        Ok(std::fs::read(self.full(path)?)?)
    }

    fn exists(&self, path: &str) -> bool {
        self.full(path).map(|p| p.is_file()).unwrap_or(false)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let base = if prefix.is_empty() { self.root.clone() } else { self.full(prefix)? };
        let mut out = Vec::new();
        if base.is_dir() {
            walk(&base, &self.root, &mut out)?;
        }
        // Paths are distinct, so the unstable sort is order-preserving.
        out.sort_unstable();
        Ok(out)
    }

    fn delete(&self, path: &str) -> Result<()> {
        match std::fs::remove_file(self.full(path)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            walk(&p, root, out)?;
        } else {
            let rel = p
                .strip_prefix(root)
                .map_err(|_| Error::Url(format!("path escape: {}", p.display())))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A [`LocalFs`] in a unique scratch directory, removed on drop — the
/// "small short-lived files … served and removed without ever being
/// flushed" pattern of §IV-B.
#[derive(Debug)]
pub struct TempFs {
    fs: LocalFs,
}

impl TempFs {
    /// Create a fresh scratch store under the system temp directory.
    pub fn new(tag: &str) -> Result<Self> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mrs-{tag}-{}-{n}", std::process::id()));
        Ok(TempFs { fs: LocalFs::new(dir)? })
    }

    /// Borrow the underlying store.
    pub fn fs(&self) -> &LocalFs {
        &self.fs
    }
}

impl Drop for TempFs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(self.fs.root());
    }
}

impl Store for TempFs {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        self.fs.put(path, data)
    }
    fn get(&self, path: &str) -> Result<Vec<u8>> {
        self.fs.get(path)
    }
    fn exists(&self, path: &str) -> bool {
        self.fs.exists(path)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.fs.list(prefix)
    }
    fn delete(&self, path: &str) -> Result<()> {
        self.fs.delete(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let t = TempFs::new("t1").unwrap();
        t.put("a/b/c.dat", b"hello").unwrap();
        assert_eq!(t.get("a/b/c.dat").unwrap(), b"hello");
        assert!(t.exists("a/b/c.dat"));
        assert!(!t.exists("a/b/d.dat"));
    }

    #[test]
    fn put_overwrites() {
        let t = TempFs::new("t2").unwrap();
        t.put("x", b"one").unwrap();
        t.put("x", b"two").unwrap();
        assert_eq!(t.get("x").unwrap(), b"two");
    }

    #[test]
    fn list_is_recursive_and_sorted() {
        let t = TempFs::new("t3").unwrap();
        t.put("b/2", b"").unwrap();
        t.put("a/1", b"").unwrap();
        t.put("a/sub/3", b"").unwrap();
        assert_eq!(t.list("").unwrap(), vec!["a/1", "a/sub/3", "b/2"]);
        assert_eq!(t.list("a").unwrap(), vec!["a/1", "a/sub/3"]);
    }

    #[test]
    fn delete_is_idempotent() {
        let t = TempFs::new("t4").unwrap();
        t.put("x", b"1").unwrap();
        t.delete("x").unwrap();
        t.delete("x").unwrap();
        assert!(!t.exists("x"));
    }

    #[test]
    fn get_missing_is_error() {
        let t = TempFs::new("t5").unwrap();
        assert!(t.get("missing").is_err());
    }

    #[test]
    fn rejects_path_escape() {
        let t = TempFs::new("t6").unwrap();
        assert!(t.put("../evil", b"x").is_err());
        assert!(t.get("/etc/passwd").is_err());
    }

    #[test]
    fn tempfs_cleans_up_on_drop() {
        let root;
        {
            let t = TempFs::new("t7").unwrap();
            t.put("f", b"data").unwrap();
            root = t.fs().root().to_path_buf();
            assert!(root.exists());
        }
        assert!(!root.exists());
    }
}
