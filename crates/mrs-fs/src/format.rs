//! On-disk record formats.
//!
//! * **Bucket files** (`.mrsb`): a small magic header followed by
//!   varint-length-prefixed key/value byte strings — the format written by
//!   map tasks and read by reduce tasks in the mock-parallel and
//!   distributed implementations.
//! * **Text input**: newline-separated text turned into `(line_no, line)`
//!   records, the WordCount input convention (§V-A: "the input key is …
//!   generally arbitrarily set to be the line number").
//!
//! Both readers are transparent to the `MRSF1` shuffle frame (mrs-codec):
//! a bucket that was framed for the wire — compressed and checksummed —
//! decodes here just like a raw one, so shared-filesystem stores and
//! checkpoints can hold framed bytes without every call site caring.

use mrs_core::kv::{encode_record, read_varint, write_varint};
use mrs_core::{Bucket, Datum, Error, Record, Result};

/// Magic prefix of bucket files (format version 1).
pub const BUCKET_MAGIC: &[u8; 5] = b"MRSB1";

/// Unwrap an `MRSF1` frame if present (verifying its checksum), or borrow
/// the input unchanged. Raw input costs nothing.
fn unframe(b: &[u8]) -> Result<std::borrow::Cow<'_, [u8]>> {
    if !mrs_codec::is_framed(b) {
        return Ok(std::borrow::Cow::Borrowed(b));
    }
    mrs_codec::decode_frame(b).map(std::borrow::Cow::Owned).map_err(|e| Error::Codec(e.to_string()))
}

fn write_bucket_iter<'a>(
    count: usize,
    payload: usize,
    records: impl Iterator<Item = (&'a [u8], &'a [u8])>,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(BUCKET_MAGIC.len() + payload + 20 * count);
    buf.extend_from_slice(BUCKET_MAGIC);
    write_varint(count as u64, &mut buf);
    for (k, v) in records {
        write_varint(k.len() as u64, &mut buf);
        buf.extend_from_slice(k);
        write_varint(v.len() as u64, &mut buf);
        buf.extend_from_slice(v);
    }
    buf
}

/// Serialize a [`Bucket`] into the bucket file format without converting
/// through owned records.
pub fn write_bucket(bucket: &Bucket) -> Vec<u8> {
    write_bucket_iter(bucket.len(), bucket.byte_size(), bucket.iter())
}

/// Serialize records into the bucket file format.
pub fn write_bucket_bytes(records: &[Record]) -> Vec<u8> {
    let payload: usize = records.iter().map(|(k, v)| k.len() + v.len()).sum();
    write_bucket_iter(
        records.len(),
        payload,
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
    )
}

/// Parse a bucket file, appending its records to `out`'s arena. Amortizes
/// to zero per-record allocations on the reduce input path.
pub fn read_bucket_into(b: &[u8], out: &mut Bucket) -> Result<()> {
    read_bucket_run(b, out).map(|_| ())
}

/// What [`read_bucket_run`] learned about one decoded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunInfo {
    /// The wire bytes advertised a sorted run (`MRSF1` sorted-run flag,
    /// spot-check passed). Raw/legacy payloads never claim.
    pub claimed_sorted: bool,
    /// Ground truth: the parsed records are in non-decreasing key order.
    /// Established during the arena fill (one adjacent-key compare per
    /// record), so the merge path never has to trust the claim.
    pub sorted: bool,
}

/// Parse one bucket file as a *merge run*: like [`read_bucket_into`], but
/// also reports whether the records arrived in sorted key order (and
/// whether the producer advertised them as such). The sortedness verdict
/// covers only the records this call appended.
pub fn read_bucket_run(b: &[u8], out: &mut Bucket) -> Result<RunInfo> {
    let (unframed, claimed_sorted) = if mrs_codec::is_framed(b) {
        let (v, s) = mrs_codec::decode_frame_sorted(b).map_err(|e| Error::Codec(e.to_string()))?;
        (std::borrow::Cow::Owned(v), s)
    } else {
        (unframe(b)?, false)
    };
    let mut b = unframed.as_ref();
    let magic =
        b.get(..BUCKET_MAGIC.len()).ok_or_else(|| Error::Codec("bucket file too short".into()))?;
    if magic != BUCKET_MAGIC {
        return Err(Error::Codec(format!("bad bucket magic {magic:?}")));
    }
    b = &b[BUCKET_MAGIC.len()..];
    let (count, mut rest) = read_varint(b)?;
    let mut sorted = true;
    let mut prev: Option<&[u8]> = None;
    for _ in 0..count {
        let (klen, r) = read_varint(rest)?;
        if klen > r.len() as u64 {
            return Err(Error::Codec("truncated bucket key".into()));
        }
        let (k, r) = r.split_at(klen as usize);
        let (vlen, r) = read_varint(r)?;
        if vlen > r.len() as u64 {
            return Err(Error::Codec("truncated bucket value".into()));
        }
        let (v, r) = r.split_at(vlen as usize);
        if prev.is_some_and(|p| p > k) {
            sorted = false;
        }
        prev = Some(k);
        out.push(k, v);
        rest = r;
    }
    if !rest.is_empty() {
        return Err(Error::Codec(format!("{} trailing bytes in bucket file", rest.len())));
    }
    Ok(RunInfo { claimed_sorted, sorted })
}

/// Turn text into `(line_no, line)` records. Line numbers start at
/// `first_line` so that multi-file inputs can keep globally distinct keys.
pub fn text_to_records(text: &str, first_line: u64) -> Vec<Record> {
    text.lines()
        .enumerate()
        .map(|(i, line)| encode_record(&(first_line + i as u64), &line.to_string()))
        .collect()
}

/// Decode `(line_no, line)` records back to text lines (for tests and the
/// bypass implementation).
pub fn records_to_lines(records: &[Record]) -> Result<Vec<(u64, String)>> {
    records.iter().map(|(k, v)| Ok((u64::from_bytes(k)?, String::from_bytes(v)?))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Decode through the arena path and hand back owned records — what
    /// every former `read_bucket_bytes` caller actually wanted.
    fn read_records(b: &[u8]) -> Result<Vec<Record>> {
        let mut bucket = Bucket::new();
        read_bucket_into(b, &mut bucket)?;
        Ok(bucket.to_records())
    }

    #[test]
    fn bucket_roundtrip() {
        let records: Vec<Record> = vec![
            (b"k1".to_vec(), b"v1".to_vec()),
            (vec![], vec![0, 255]),
            (b"k3".to_vec(), vec![]),
        ];
        let bytes = write_bucket_bytes(&records);
        assert_eq!(read_records(&bytes).unwrap(), records);
    }

    #[test]
    fn arena_bucket_roundtrip_matches_record_format() {
        let records: Vec<Record> = vec![
            (b"k1".to_vec(), b"v1".to_vec()),
            (vec![], vec![0, 255]),
            (b"k3".to_vec(), vec![]),
        ];
        let bucket = Bucket::from_records(records.clone());
        let bytes = write_bucket(&bucket);
        // Same wire format either way.
        assert_eq!(bytes, write_bucket_bytes(&records));
        let mut back = Bucket::new();
        read_bucket_into(&bytes, &mut back).unwrap();
        assert_eq!(back, bucket);
        // Appending a second file accumulates into the same arena.
        read_bucket_into(&bytes, &mut back).unwrap();
        assert_eq!(back.len(), 2 * bucket.len());
    }

    #[test]
    fn empty_bucket_roundtrip() {
        let bytes = write_bucket_bytes(&[]);
        assert!(read_records(&bytes).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = write_bucket_bytes(&[]);
        bytes[0] = b'X';
        assert!(read_records(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        let records = vec![(b"key".to_vec(), b"value".to_vec())];
        let bytes = write_bucket_bytes(&records);
        assert!(read_records(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(read_records(&extended).is_err());
    }

    #[test]
    fn text_records_number_lines() {
        let recs = text_to_records("alpha\nbeta\n\ngamma", 10);
        let lines = records_to_lines(&recs).unwrap();
        assert_eq!(
            lines,
            vec![
                (10, "alpha".to_string()),
                (11, "beta".to_string()),
                (12, "".to_string()),
                (13, "gamma".to_string())
            ]
        );
    }

    #[test]
    fn empty_text_is_empty_records() {
        assert!(text_to_records("", 0).is_empty());
    }

    #[test]
    fn framed_buckets_decode_transparently() {
        let records: Vec<Record> =
            (0..40).map(|i| (format!("key{i}").into_bytes(), vec![i as u8; 16])).collect();
        let raw = write_bucket_bytes(&records);
        let framed = mrs_codec::encode_vec(raw.clone(), mrs_codec::CompressMode::On);
        assert_ne!(framed, raw, "this payload should have been framed");
        let mut arena = Bucket::new();
        read_bucket_into(&framed, &mut arena).unwrap();
        assert_eq!(arena, Bucket::from_records(records));
        // A corrupted frame surfaces as a codec error, not a panic.
        let mut bad = framed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(read_records(&bad), Err(Error::Codec(_))));
    }

    #[test]
    fn run_info_detects_sortedness_and_claims() {
        let sorted_recs: Vec<Record> =
            vec![(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), b"2".to_vec())];
        let unsorted_recs: Vec<Record> =
            vec![(b"b".to_vec(), b"2".to_vec()), (b"a".to_vec(), b"1".to_vec())];

        // Raw sorted bytes: no claim, but auto-detected sorted.
        let mut out = Bucket::new();
        let info = read_bucket_run(&write_bucket_bytes(&sorted_recs), &mut out).unwrap();
        assert_eq!(info, RunInfo { claimed_sorted: false, sorted: true });

        // Raw unsorted bytes: neither.
        let mut out = Bucket::new();
        let info = read_bucket_run(&write_bucket_bytes(&unsorted_recs), &mut out).unwrap();
        assert_eq!(info, RunInfo { claimed_sorted: false, sorted: false });

        // Framed with the sorted-run flag: claim survives and matches.
        let framed = mrs_codec::encode_vec_sorted(
            write_bucket_bytes(&sorted_recs),
            mrs_codec::CompressMode::On,
            true,
        );
        let mut out = Bucket::new();
        let info = read_bucket_run(&framed, &mut out).unwrap();
        assert_eq!(info, RunInfo { claimed_sorted: true, sorted: true });
        assert_eq!(out.to_records(), sorted_recs);

        // An empty bucket counts as sorted.
        let mut out = Bucket::new();
        let info = read_bucket_run(&write_bucket_bytes(&[]), &mut out).unwrap();
        assert!(info.sorted);
    }

    proptest! {
        #[test]
        fn prop_bucket_roundtrip(
            records in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..32),
                 proptest::collection::vec(any::<u8>(), 0..32)),
                0..32,
            )
        ) {
            let bytes = write_bucket_bytes(&records);
            prop_assert_eq!(read_records(&bytes).unwrap(), records);
        }

        #[test]
        fn prop_garbage_never_panics(b in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = read_records(&b);
        }
    }
}
