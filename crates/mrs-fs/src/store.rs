//! The minimal filesystem interface used by the runtimes.
//!
//! Paths are `/`-separated relative paths. A store only needs whole-file
//! put/get semantics: bucket files are written once and read whole, exactly
//! how Mrs uses a shared filesystem for intermediate data.

use mrs_core::Result;
use std::sync::Arc;

/// Whole-file key-value storage with directory-style listing.
pub trait Store: Send + Sync {
    /// Write (or overwrite) a file.
    fn put(&self, path: &str, data: &[u8]) -> Result<()>;

    /// Read a whole file.
    fn get(&self, path: &str) -> Result<Vec<u8>>;

    /// Whether a file exists.
    fn exists(&self, path: &str) -> bool;

    /// All file paths under a prefix, in sorted order.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Remove a file (idempotent: missing files are not an error).
    fn delete(&self, path: &str) -> Result<()>;
}

impl<S: Store + ?Sized> Store for Arc<S> {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        (**self).put(path, data)
    }
    fn get(&self, path: &str) -> Result<Vec<u8>> {
        (**self).get(path)
    }
    fn exists(&self, path: &str) -> bool {
        (**self).exists(path)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        (**self).list(prefix)
    }
    fn delete(&self, path: &str) -> Result<()> {
        (**self).delete(path)
    }
}

/// Validate a store path: relative, `/`-separated, no empty or `..`
/// segments. Returns the normalised path.
pub fn check_path(path: &str) -> Result<&str> {
    if path.is_empty() || path.starts_with('/') {
        return Err(mrs_core::Error::Url(format!("path must be relative: {path:?}")));
    }
    for seg in path.split('/') {
        if seg.is_empty() || seg == "." || seg == ".." {
            return Err(mrs_core::Error::Url(format!("bad path segment in {path:?}")));
        }
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_path_accepts_normal_paths() {
        assert!(check_path("a").is_ok());
        assert!(check_path("a/b/c.dat").is_ok());
        assert!(check_path("op0/task3/bucket_2.mrsb").is_ok());
    }

    #[test]
    fn check_path_rejects_escapes() {
        assert!(check_path("").is_err());
        assert!(check_path("/abs").is_err());
        assert!(check_path("a//b").is_err());
        assert!(check_path("a/../b").is_err());
        assert!(check_path("./a").is_err());
    }
}
