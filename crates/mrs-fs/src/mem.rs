//! In-memory shared store: the stand-in for a cluster-wide NFS/Lustre mount.
//!
//! Cloning a [`MemFs`] clones a handle to the *same* shared state, exactly
//! like every node mounting the same export. Latency injection models the
//! per-operation round-trip of networked storage; failure injection lets
//! tests exercise the runtimes' error paths without a real flaky disk.

use crate::store::{check_path, Store};
use mrs_core::{Error, Result};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Default)]
struct Shared {
    files: Mutex<BTreeMap<String, Arc<Vec<u8>>>>,
    /// Nanoseconds of simulated latency per operation.
    latency_ns: AtomicU64,
    /// Number of upcoming operations that must fail.
    fail_next: AtomicU64,
    /// Counters for observability in tests and ablations.
    reads: AtomicU64,
    writes: AtomicU64,
}

/// A shared in-memory filesystem handle.
#[derive(Clone, Default)]
pub struct MemFs {
    shared: Arc<Shared>,
}

impl MemFs {
    /// A fresh, empty shared filesystem.
    pub fn new() -> Self {
        MemFs::default()
    }

    /// Inject a fixed latency into every subsequent operation.
    pub fn set_latency(&self, latency: Duration) {
        self.shared.latency_ns.store(latency.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Make the next `n` operations fail with an I/O error.
    pub fn fail_next(&self, n: u64) {
        self.shared.fail_next.store(n, Ordering::SeqCst);
    }

    /// Number of completed read operations.
    pub fn read_count(&self) -> u64 {
        self.shared.reads.load(Ordering::Relaxed)
    }

    /// Number of completed write operations.
    pub fn write_count(&self) -> u64 {
        self.shared.writes.load(Ordering::Relaxed)
    }

    /// Total bytes currently stored.
    pub fn total_bytes(&self) -> usize {
        self.shared.files.lock().values().map(|v| v.len()).sum()
    }

    fn op(&self) -> Result<()> {
        let lat = self.shared.latency_ns.load(Ordering::Relaxed);
        if lat > 0 {
            std::thread::sleep(Duration::from_nanos(lat));
        }
        // Decrement-if-positive without underflow.
        let mut cur = self.shared.fail_next.load(Ordering::SeqCst);
        while cur > 0 {
            match self.shared.fail_next.compare_exchange(
                cur,
                cur - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Err(Error::Io(std::io::Error::other("injected memfs failure")));
                }
                Err(now) => cur = now,
            }
        }
        Ok(())
    }
}

impl Store for MemFs {
    fn put(&self, path: &str, data: &[u8]) -> Result<()> {
        let path = check_path(path)?;
        self.op()?;
        self.shared.writes.fetch_add(1, Ordering::Relaxed);
        self.shared.files.lock().insert(path.to_owned(), Arc::new(data.to_vec()));
        Ok(())
    }

    fn get(&self, path: &str) -> Result<Vec<u8>> {
        let path = check_path(path)?;
        self.op()?;
        self.shared.reads.fetch_add(1, Ordering::Relaxed);
        self.shared
            .files
            .lock()
            .get(path)
            .map(|v| v.as_ref().clone())
            .ok_or_else(|| Error::MissingData(format!("mem://{path}")))
    }

    fn exists(&self, path: &str) -> bool {
        self.shared.files.lock().contains_key(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.op()?;
        let files = self.shared.files.lock();
        let out = files
            .keys()
            .filter(|k| {
                prefix.is_empty() || k.as_str() == prefix || k.starts_with(&format!("{prefix}/"))
            })
            .cloned()
            .collect();
        Ok(out)
    }

    fn delete(&self, path: &str) -> Result<()> {
        let path = check_path(path)?;
        self.op()?;
        self.shared.files.lock().remove(path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = MemFs::new();
        let b = a.clone();
        a.put("x", b"1").unwrap();
        assert_eq!(b.get("x").unwrap(), b"1");
    }

    #[test]
    fn get_missing_reports_path() {
        let fs = MemFs::new();
        let err = fs.get("nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn list_respects_prefix_boundaries() {
        let fs = MemFs::new();
        fs.put("a/1", b"").unwrap();
        fs.put("ab/2", b"").unwrap();
        fs.put("a/sub/3", b"").unwrap();
        assert_eq!(fs.list("a").unwrap(), vec!["a/1", "a/sub/3"]);
        assert_eq!(fs.list("").unwrap().len(), 3);
    }

    #[test]
    fn failure_injection_fails_exactly_n_ops() {
        let fs = MemFs::new();
        fs.put("x", b"1").unwrap();
        fs.fail_next(2);
        assert!(fs.get("x").is_err());
        assert!(fs.put("y", b"2").is_err());
        assert_eq!(fs.get("x").unwrap(), b"1");
    }

    #[test]
    fn counters_track_operations() {
        let fs = MemFs::new();
        fs.put("x", b"abc").unwrap();
        fs.get("x").unwrap();
        fs.get("x").unwrap();
        assert_eq!(fs.write_count(), 1);
        assert_eq!(fs.read_count(), 2);
        assert_eq!(fs.total_bytes(), 3);
    }

    #[test]
    fn latency_injection_slows_ops() {
        let fs = MemFs::new();
        fs.set_latency(Duration::from_millis(5));
        let t = std::time::Instant::now();
        fs.put("x", b"1").unwrap();
        assert!(t.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn delete_then_get_fails() {
        let fs = MemFs::new();
        fs.put("x", b"1").unwrap();
        fs.delete("x").unwrap();
        assert!(fs.get("x").is_err());
    }
}
