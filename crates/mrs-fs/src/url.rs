//! Bucket URLs: naming intermediate data wherever it lives.
//!
//! "the writer opens and writes a file and then sends the master the
//! corresponding URL, which is used for any future reads" (§IV-B). A
//! [`BucketUrl`] is that name: `file://` for shared-filesystem data,
//! `mem://` for the in-memory shared store, and `http://host:port/path`
//! for direct slave-to-slave transfer via the data server.

use mrs_core::{Error, Result};

/// A parsed bucket URL.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BucketUrl {
    /// Data in a store mounted by all nodes, named by store-relative path.
    File(String),
    /// Data in the shared in-memory filesystem.
    Mem(String),
    /// Data served by a peer's HTTP data server.
    Http {
        /// `host:port` of the serving peer.
        authority: String,
        /// Absolute path component (starts with `/`).
        path: String,
    },
}

impl BucketUrl {
    /// Parse from string form.
    pub fn parse(s: &str) -> Result<BucketUrl> {
        if let Some(rest) = s.strip_prefix("file://") {
            if rest.is_empty() {
                return Err(Error::Url("empty file path".into()));
            }
            return Ok(BucketUrl::File(rest.to_owned()));
        }
        if let Some(rest) = s.strip_prefix("mem://") {
            if rest.is_empty() {
                return Err(Error::Url("empty mem path".into()));
            }
            return Ok(BucketUrl::Mem(rest.to_owned()));
        }
        if let Some(rest) = s.strip_prefix("http://") {
            let (authority, path) = rest
                .split_once('/')
                .ok_or_else(|| Error::Url(format!("http url missing path: {s}")))?;
            if authority.is_empty() {
                return Err(Error::Url(format!("http url missing authority: {s}")));
            }
            return Ok(BucketUrl::Http {
                authority: authority.to_owned(),
                path: format!("/{path}"),
            });
        }
        Err(Error::Url(format!("unsupported scheme: {s}")))
    }

    /// Render to string form (inverse of [`BucketUrl::parse`]).
    pub fn to_url_string(&self) -> String {
        match self {
            BucketUrl::File(p) => format!("file://{p}"),
            BucketUrl::Mem(p) => format!("mem://{p}"),
            BucketUrl::Http { authority, path } => format!("http://{authority}{path}"),
        }
    }
}

impl std::fmt::Display for BucketUrl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_url_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_file() {
        assert_eq!(
            BucketUrl::parse("file://op0/b1.mrsb").unwrap(),
            BucketUrl::File("op0/b1.mrsb".into())
        );
    }

    #[test]
    fn parse_mem() {
        assert_eq!(BucketUrl::parse("mem://x/y").unwrap(), BucketUrl::Mem("x/y".into()));
    }

    #[test]
    fn parse_http() {
        let u = BucketUrl::parse("http://10.0.0.1:8080/data/b0").unwrap();
        assert_eq!(
            u,
            BucketUrl::Http { authority: "10.0.0.1:8080".into(), path: "/data/b0".into() }
        );
    }

    #[test]
    fn roundtrip_display() {
        for s in ["file://a/b", "mem://q", "http://h:1/p/q"] {
            assert_eq!(BucketUrl::parse(s).unwrap().to_url_string(), s);
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in ["", "ftp://x", "file://", "mem://", "http://", "http://hostonly"] {
            assert!(BucketUrl::parse(s).is_err(), "{s} should fail");
        }
    }
}
