//! Distribution helpers layered over any 64-bit generator.
//!
//! Mrs application code (PSO motion, corpus synthesis, Monte-Carlo tests)
//! needs uniforms, ranges, Gaussians, and shuffles. All of these are
//! provided as provided methods on the [`Rng64`] trait so they work
//! identically over [`crate::Mt19937_64`] and [`crate::SplitMix64`].

/// A source of 64-bit random words, with derived distribution helpers.
pub trait Rng64 {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A double on `[0, 1)` with 53-bit resolution.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform integer on `[0, n)` by rejection sampling (unbiased).
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Classic rejection: throw away the biased tail of the 2^64 range.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform integer on `[lo, hi)`.
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform double on `[lo, hi)`.
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal via Box–Muller (one value per call, no caching so the
    /// stream consumption is predictable and reproducible).
    fn normal(&mut self) -> f64 {
        // Avoid ln(0) by shifting the first uniform into (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// In-place Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Sample an index from unnormalised non-negative weights.
    fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // floating-point slack: fall into the last bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mt19937_64, SplitMix64};

    #[test]
    fn below_is_in_range() {
        let mut g = SplitMix64::new(1);
        for n in [1u64, 2, 3, 7, 10, 1000, 1 << 32] {
            for _ in 0..200 {
                assert!(g.below(n) < n);
            }
        }
    }

    #[test]
    fn below_one_is_always_zero() {
        let mut g = SplitMix64::new(9);
        for _ in 0..32 {
            assert_eq!(g.below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn range_bounds_inclusive_exclusive() {
        let mut g = SplitMix64::new(3);
        for _ in 0..500 {
            let v = g.range_u64(10, 13);
            assert!((10..13).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut g = Mt19937_64::new(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| g.uniform(-1.0, 1.0)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut g = Mt19937_64::new(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| g.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = SplitMix64::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        g.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut g = SplitMix64::new(12);
        for _ in 0..200 {
            let i = g.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_rough_proportions() {
        let mut g = Mt19937_64::new(1);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[g.weighted(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }
}
