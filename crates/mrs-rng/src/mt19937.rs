//! 32-bit Mersenne Twister (MT19937), after Matsumoto & Nishimura's
//! reference implementation `mt19937ar.c`.
//!
//! This is the generator underlying CPython's `random` module, which is what
//! the original Mrs used for its deterministic streams. The implementation
//! is validated against the reference outputs (see tests), including the
//! value the C++ standard mandates for the 10000th draw from the default
//! seed.

const N: usize = 624;
const M: usize = 397;
const MATRIX_A: u32 = 0x9908_b0df;
const UPPER_MASK: u32 = 0x8000_0000;
const LOWER_MASK: u32 = 0x7fff_ffff;

/// The classic 32-bit Mersenne Twister.
#[derive(Clone)]
pub struct Mt19937 {
    mt: [u32; N],
    mti: usize,
}

impl std::fmt::Debug for Mt19937 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt19937").field("mti", &self.mti).finish_non_exhaustive()
    }
}

impl Mt19937 {
    /// Seed with a single 32-bit value (`init_genrand`).
    pub fn new(seed: u32) -> Self {
        let mut mt = [0u32; N];
        mt[0] = seed;
        for i in 1..N {
            mt[i] =
                1_812_433_253u32.wrapping_mul(mt[i - 1] ^ (mt[i - 1] >> 30)).wrapping_add(i as u32);
        }
        Mt19937 { mt, mti: N }
    }

    /// Seed with an array of 32-bit values (`init_by_array`). This is how
    /// large or structured seeds — such as the argument tuples of the Mrs
    /// `random()` method — are absorbed into the 19937-bit state.
    pub fn from_key(key: &[u32]) -> Self {
        let mut g = Mt19937::new(19_650_218);
        let mut i = 1usize;
        let mut j = 0usize;
        let mut k = N.max(key.len());
        while k > 0 {
            let prev = g.mt[i - 1];
            g.mt[i] = (g.mt[i] ^ (prev ^ (prev >> 30)).wrapping_mul(1_664_525))
                .wrapping_add(key[j])
                .wrapping_add(j as u32);
            i += 1;
            j += 1;
            if i >= N {
                g.mt[0] = g.mt[N - 1];
                i = 1;
            }
            if j >= key.len() {
                j = 0;
            }
            k -= 1;
        }
        k = N - 1;
        while k > 0 {
            let prev = g.mt[i - 1];
            g.mt[i] = (g.mt[i] ^ (prev ^ (prev >> 30)).wrapping_mul(1_566_083_941))
                .wrapping_sub(i as u32);
            i += 1;
            if i >= N {
                g.mt[0] = g.mt[N - 1];
                i = 1;
            }
            k -= 1;
        }
        g.mt[0] = 0x8000_0000; // MSB is 1, assuring a non-zero initial state
        g
    }

    fn refill(&mut self) {
        const MAG01: [u32; 2] = [0, MATRIX_A];
        for kk in 0..N - M {
            let y = (self.mt[kk] & UPPER_MASK) | (self.mt[kk + 1] & LOWER_MASK);
            self.mt[kk] = self.mt[kk + M] ^ (y >> 1) ^ MAG01[(y & 1) as usize];
        }
        for kk in N - M..N - 1 {
            let y = (self.mt[kk] & UPPER_MASK) | (self.mt[kk + 1] & LOWER_MASK);
            self.mt[kk] = self.mt[kk + M - N] ^ (y >> 1) ^ MAG01[(y & 1) as usize];
        }
        let y = (self.mt[N - 1] & UPPER_MASK) | (self.mt[0] & LOWER_MASK);
        self.mt[N - 1] = self.mt[M - 1] ^ (y >> 1) ^ MAG01[(y & 1) as usize];
        self.mti = 0;
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        if self.mti >= N {
            self.refill();
        }
        let mut y = self.mt[self.mti];
        self.mti += 1;
        y ^= y >> 11;
        y ^= (y << 7) & 0x9d2c_5680;
        y ^= (y << 15) & 0xefc6_0000;
        y ^= y >> 18;
        y
    }

    /// A double on `[0, 1)` with 53-bit resolution (`genrand_res53`),
    /// matching CPython's `random.random()`.
    pub fn next_f64(&mut self) -> f64 {
        let a = (self.next_u32() >> 5) as f64; // 27 bits
        let b = (self.next_u32() >> 6) as f64; // 26 bits
        (a * 67_108_864.0 + b) * (1.0 / 9_007_199_254_740_992.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_default_seed() {
        // First draws from seed 5489 (the C++ std::mt19937 default).
        let mut g = Mt19937::new(5489);
        let first: Vec<u32> = (0..5).map(|_| g.next_u32()).collect();
        assert_eq!(
            first,
            vec![3_499_211_612, 581_869_302, 3_890_346_734, 3_586_334_585, 545_404_204]
        );
    }

    #[test]
    fn cpp_standard_10000th_value() {
        // [rand.predef]: the 10000th consecutive invocation of a default-
        // constructed std::mt19937 shall produce 4123659995.
        let mut g = Mt19937::new(5489);
        let mut last = 0;
        for _ in 0..10_000 {
            last = g.next_u32();
        }
        assert_eq!(last, 4_123_659_995);
    }

    #[test]
    fn reference_vector_init_by_array() {
        // mt19937ar.out: init_by_array {0x123, 0x234, 0x345, 0x456}.
        let mut g = Mt19937::from_key(&[0x123, 0x234, 0x345, 0x456]);
        let first: Vec<u32> = (0..5).map(|_| g.next_u32()).collect();
        assert_eq!(
            first,
            vec![1_067_595_299, 955_945_823, 477_289_528, 4_107_218_783, 4_228_976_476]
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Mt19937::new(1);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = Mt19937::new(1);
        let mut b = Mt19937::new(2);
        let va: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = Mt19937::new(42);
        for _ in 0..700 {
            a.next_u32(); // crosses a refill boundary
        }
        let mut b = a.clone();
        assert_eq!(a.next_u32(), b.next_u32());
    }
}
