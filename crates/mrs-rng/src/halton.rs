//! Halton quasi-random sequences.
//!
//! The paper's π estimator (§V-B, Fig. 3) mirrors Hadoop's `PiEstimator`:
//! sample points come from 2-D Halton sequences (bases 2 and 3), which are
//! deterministic but cover the unit square more evenly than pseudorandom
//! points. The paper notes the inner loop was "optimized to minimize the
//! number of function calls and the number of comparison operations" — that
//! optimisation is the *incremental* digit-counter update implemented by
//! [`HaltonSeq`], as opposed to the direct radical-inverse of [`halton`].

/// Direct radical-inverse evaluation: the `i`-th element of the Halton
/// sequence in the given base. O(log_base i) per call.
pub fn halton(mut index: u64, base: u64) -> f64 {
    assert!(base >= 2, "Halton base must be >= 2");
    let mut f = 1.0;
    let mut r = 0.0;
    let b = base as f64;
    while index > 0 {
        f /= b;
        r += f * (index % base) as f64;
        index /= base;
    }
    r
}

/// Incremental Halton generator for one base.
///
/// Maintains the digit expansion of the current index so that advancing to
/// the next element costs O(1) amortised — the paper's optimised inner loop.
#[derive(Clone, Debug)]
pub struct HaltonSeq {
    base: u64,
    /// digit[i] is the i-th base-`base` digit of the current index.
    digits: Vec<u64>,
    /// q[i] = base^-(i+1)
    weights: Vec<f64>,
    value: f64,
    index: u64,
}

impl HaltonSeq {
    /// Start a sequence in `base` at index 0 (value 0).
    pub fn new(base: u64) -> Self {
        assert!(base >= 2, "Halton base must be >= 2");
        HaltonSeq { base, digits: Vec::new(), weights: Vec::new(), value: 0.0, index: 0 }
    }

    /// Start at an arbitrary index (used to give each map task its own
    /// disjoint slab of the sequence).
    pub fn with_start(base: u64, start: u64) -> Self {
        let mut s = HaltonSeq::new(base);
        s.seek(start);
        s
    }

    /// Jump to an absolute index.
    pub fn seek(&mut self, index: u64) {
        self.digits.clear();
        self.weights.clear();
        self.index = index;
        let mut i = index;
        let mut w = 1.0;
        let b = self.base as f64;
        let mut value = 0.0;
        while i > 0 {
            w /= b;
            self.digits.push(i % self.base);
            self.weights.push(w);
            value += w * (i % self.base) as f64;
            i /= self.base;
        }
        self.value = value;
    }

    /// Current index.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Advance to the next element and return it.
    ///
    /// Incremental update: add base^-(k+1) at the lowest digit; on carry,
    /// zero the digit (subtracting its contribution) and move up.
    pub fn next_value(&mut self) -> f64 {
        self.index += 1;
        let b = self.base as f64;
        let mut k = 0usize;
        loop {
            if k == self.digits.len() {
                let prev = if k == 0 { 1.0 } else { self.weights[k - 1] };
                self.digits.push(0);
                self.weights.push(prev / b);
            }
            self.digits[k] += 1;
            self.value += self.weights[k];
            if self.digits[k] < self.base {
                break;
            }
            // carry: digit wraps from base to 0; remove its whole column
            self.value -= self.weights[k] * self.base as f64;
            self.digits[k] = 0;
            k += 1;
        }
        // Clamp tiny negative drift from float cancellation.
        if self.value < 0.0 {
            self.value = 0.0;
        }
        self.value
    }
}

/// A 2-D Halton point generator in bases (2, 3), as used by `PiEstimator`.
#[derive(Clone, Debug)]
pub struct Halton2D {
    x: HaltonSeq,
    y: HaltonSeq,
}

impl Halton2D {
    /// Start at an absolute point index.
    pub fn new(start: u64) -> Self {
        Halton2D { x: HaltonSeq::with_start(2, start), y: HaltonSeq::with_start(3, start) }
    }

    /// Next 2-D point in the unit square.
    pub fn next_point(&mut self) -> (f64, f64) {
        (self.x.next_value(), self.y.next_value())
    }
}

/// Count how many of `n` consecutive Halton points starting at `start` fall
/// inside the unit quarter-circle — the natural-Rust ("C") tier of the π
/// kernel. Returns (inside, total).
pub fn pi_kernel_native(start: u64, n: u64) -> (u64, u64) {
    let mut h = Halton2D::new(start);
    let mut inside = 0u64;
    for _ in 0..n {
        let (x, y) = h.next_point();
        if x * x + y * y <= 1.0 {
            inside += 1;
        }
    }
    (inside, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_base2_prefix() {
        // Halton base 2: 1/2, 1/4, 3/4, 1/8, 5/8, 3/8, 7/8, ...
        let expect = [0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875];
        for (i, &e) in expect.iter().enumerate() {
            assert!((halton(i as u64 + 1, 2) - e).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn direct_base3_prefix() {
        // Halton base 3: 1/3, 2/3, 1/9, 4/9, 7/9, 2/9, 5/9, 8/9
        let expect = [1.0 / 3.0, 2.0 / 3.0, 1.0 / 9.0, 4.0 / 9.0, 7.0 / 9.0, 2.0 / 9.0, 5.0 / 9.0];
        for (i, &e) in expect.iter().enumerate() {
            assert!((halton(i as u64 + 1, 3) - e).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn incremental_matches_direct() {
        for base in [2u64, 3, 5] {
            let mut s = HaltonSeq::new(base);
            for i in 1..2000u64 {
                let inc = s.next_value();
                let dir = halton(i, base);
                assert!((inc - dir).abs() < 1e-9, "base={base} i={i} inc={inc} dir={dir}");
            }
        }
    }

    #[test]
    fn seek_matches_fresh_iteration() {
        let mut a = HaltonSeq::with_start(2, 1000);
        let mut b = HaltonSeq::new(2);
        for _ in 0..1000 {
            b.next_value();
        }
        for _ in 0..100 {
            assert!((a.next_value() - b.next_value()).abs() < 1e-9);
        }
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let mut s = HaltonSeq::new(3);
        for _ in 0..10_000 {
            let v = s.next_value();
            assert!((0.0..1.0).contains(&v), "v={v}");
        }
    }

    #[test]
    fn pi_estimate_converges() {
        let (inside, total) = pi_kernel_native(0, 200_000);
        let pi = 4.0 * inside as f64 / total as f64;
        assert!((pi - std::f64::consts::PI).abs() < 1e-2, "pi={pi}");
    }

    #[test]
    fn pi_kernel_slabs_compose() {
        // Splitting the sample range across "tasks" must give the same count
        // as one big run — this is what makes the MapReduce decomposition of
        // PiEstimator exact.
        let (whole, _) = pi_kernel_native(0, 10_000);
        let (a, _) = pi_kernel_native(0, 2_500);
        let (b, _) = pi_kernel_native(2_500, 2_500);
        let (c, _) = pi_kernel_native(5_000, 5_000);
        assert_eq!(whole, a + b + c);
    }
}
