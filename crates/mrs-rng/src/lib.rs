//! Deterministic pseudorandom substrate for the Mrs reproduction.
//!
//! The paper (§IV-A) stresses that stochastic MapReduce programs must be
//! reproducible across *all* execution implementations. Mrs achieves this by
//! deriving an **independent random stream** from any tuple of integers
//! (program seed, operation id, task id, …) by folding them into the large
//! internal state of a Mersenne Twister. This crate reimplements that
//! machinery from scratch:
//!
//! * [`Mt19937`] / [`Mt19937_64`] — the reference Mersenne Twister
//!   generators, validated against the published test vectors,
//! * [`StreamFactory`] — the `random(*args)` equivalent: an independent
//!   generator for every distinct argument tuple,
//! * [`SplitMix64`] — a small, fast generator used for hashing and seeding,
//! * [`halton`] — quasi-random Halton sequences used by the π estimator
//!   (§V-B), in both direct and incremental forms.

pub mod dist;
pub mod halton;
pub mod mt19937;
pub mod mt19937_64;
pub mod splitmix;
pub mod streams;

pub use dist::Rng64;
pub use halton::{halton, Halton2D, HaltonSeq};
pub use mt19937::Mt19937;
pub use mt19937_64::Mt19937_64;
pub use splitmix::SplitMix64;
pub use streams::StreamFactory;
