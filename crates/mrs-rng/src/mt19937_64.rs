//! 64-bit Mersenne Twister (MT19937-64), after Nishimura & Matsumoto's
//! reference implementation `mt19937-64.c`.
//!
//! The Mrs `random()` method exploits the large Mersenne Twister state to
//! absorb "around 300 arguments that are each 64-bit integers" (§IV-A); the
//! 64-bit variant's 312-word state is what makes that bound concrete, so the
//! [`crate::StreamFactory`] is built on this generator.

const NN: usize = 312;
const MM: usize = 156;
const MATRIX_A: u64 = 0xB502_6F5A_A966_19E9;
const UM: u64 = 0xFFFF_FFFF_8000_0000;
const LM: u64 = 0x0000_0000_7FFF_FFFF;

/// The 64-bit Mersenne Twister.
#[derive(Clone)]
pub struct Mt19937_64 {
    mt: [u64; NN],
    mti: usize,
}

impl std::fmt::Debug for Mt19937_64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt19937_64").field("mti", &self.mti).finish_non_exhaustive()
    }
}

impl Mt19937_64 {
    /// Seed with a single 64-bit value (`init_genrand64`).
    pub fn new(seed: u64) -> Self {
        let mut mt = [0u64; NN];
        mt[0] = seed;
        for i in 1..NN {
            mt[i] = 6_364_136_223_846_793_005u64
                .wrapping_mul(mt[i - 1] ^ (mt[i - 1] >> 62))
                .wrapping_add(i as u64);
        }
        Mt19937_64 { mt, mti: NN }
    }

    /// Seed with an array of 64-bit values (`init_by_array64`).
    ///
    /// The state is 312 words, so key tuples of up to ~312 distinct 64-bit
    /// values are folded in without aliasing — this is the paper's "around
    /// 300 arguments" bound.
    pub fn from_key(key: &[u64]) -> Self {
        let mut g = Mt19937_64::new(19_650_218);
        let mut i = 1usize;
        let mut j = 0usize;
        let mut k = NN.max(key.len());
        while k > 0 {
            let prev = g.mt[i - 1];
            g.mt[i] = (g.mt[i] ^ (prev ^ (prev >> 62)).wrapping_mul(3_935_559_000_370_003_845))
                .wrapping_add(key[j])
                .wrapping_add(j as u64);
            i += 1;
            j += 1;
            if i >= NN {
                g.mt[0] = g.mt[NN - 1];
                i = 1;
            }
            if j >= key.len() {
                j = 0;
            }
            k -= 1;
        }
        k = NN - 1;
        while k > 0 {
            let prev = g.mt[i - 1];
            g.mt[i] = (g.mt[i] ^ (prev ^ (prev >> 62)).wrapping_mul(2_862_933_555_777_941_757))
                .wrapping_sub(i as u64);
            i += 1;
            if i >= NN {
                g.mt[0] = g.mt[NN - 1];
                i = 1;
            }
            k -= 1;
        }
        g.mt[0] = 1u64 << 63; // MSB is 1, assuring a non-zero initial state
        g
    }

    fn refill(&mut self) {
        const MAG01: [u64; 2] = [0, MATRIX_A];
        for i in 0..NN - MM {
            let x = (self.mt[i] & UM) | (self.mt[i + 1] & LM);
            self.mt[i] = self.mt[i + MM] ^ (x >> 1) ^ MAG01[(x & 1) as usize];
        }
        for i in NN - MM..NN - 1 {
            let x = (self.mt[i] & UM) | (self.mt[i + 1] & LM);
            self.mt[i] = self.mt[i + MM - NN] ^ (x >> 1) ^ MAG01[(x & 1) as usize];
        }
        let x = (self.mt[NN - 1] & UM) | (self.mt[0] & LM);
        self.mt[NN - 1] = self.mt[MM - 1] ^ (x >> 1) ^ MAG01[(x & 1) as usize];
        self.mti = 0;
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        if self.mti >= NN {
            self.refill();
        }
        let mut x = self.mt[self.mti];
        self.mti += 1;
        x ^= (x >> 29) & 0x5555_5555_5555_5555;
        x ^= (x << 17) & 0x71D6_7FFF_EDA6_0000;
        x ^= (x << 37) & 0xFFF7_EEE0_0000_0000;
        x ^= x >> 43;
        x
    }
}

impl crate::dist::Rng64 for Mt19937_64 {
    fn next_u64(&mut self) -> u64 {
        Mt19937_64::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpp_standard_10000th_value() {
        // [rand.predef]: the 10000th consecutive invocation of a default-
        // constructed std::mt19937_64 shall produce 9981545732273789042.
        let mut g = Mt19937_64::new(5489);
        let mut last = 0;
        for _ in 0..10_000 {
            last = g.next_u64();
        }
        assert_eq!(last, 9_981_545_732_273_789_042);
    }

    #[test]
    fn key_seeding_differs_from_scalar_seeding() {
        let mut a = Mt19937_64::new(7);
        let mut b = Mt19937_64::from_key(&[7]);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn key_order_matters() {
        let mut a = Mt19937_64::from_key(&[1, 2]);
        let mut b = Mt19937_64::from_key(&[2, 1]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn long_keys_are_absorbed() {
        // Two 300-word keys differing only in the last element must produce
        // different streams — the paper's ~300-argument claim.
        let mut k1: Vec<u64> = (0..300).collect();
        let k2 = {
            let mut v = k1.clone();
            *v.last_mut().unwrap() = 999;
            v
        };
        k1[0] = 0;
        let mut a = Mt19937_64::from_key(&k1);
        let mut b = Mt19937_64::from_key(&k2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
