//! SplitMix64: a tiny, fast generator and mixing function.
//!
//! Used where a full Mersenne Twister would be overkill: hashing partition
//! keys, perturbing seeds, and cheap synthetic-data generation in the corpus
//! generator. The finalizer is Stafford's "Mix13" variant as used by
//! `java.util.SplittableRandom`.

/// SplitMix64 generator state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

impl crate::dist::Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// Stafford Mix13 finalizer: a strong 64-bit bijective mixing function.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary byte slice to a u64 using a SplitMix-based accumulator.
/// Deterministic across platforms; used for hash partitioning.
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = mix64(seed ^ GOLDEN_GAMMA);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
        h = mix64(h ^ w);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = mix64(h ^ u64::from_le_bytes(tail) ^ (rem.len() as u64) << 56);
    }
    mix64(h ^ bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_first_output() {
        // SplitMix64 with seed 0: first output is the mix of GOLDEN_GAMMA.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), mix64(GOLDEN_GAMMA));
    }

    #[test]
    fn mix64_is_not_identity_and_spreads_bits() {
        // mix64 is a bijection fixing 0; any nonzero input must move.
        assert_eq!(mix64(0), 0);
        assert_ne!(mix64(1), 1);
        assert_ne!(mix64(1), mix64(2));
        // One-bit input changes should flip roughly half the output bits.
        let d = (mix64(1) ^ mix64(3)).count_ones();
        assert!(d > 16 && d < 48, "poor avalanche: {d} bits");
    }

    #[test]
    fn hash_bytes_distinguishes_length_and_content() {
        assert_ne!(hash_bytes(0, b"a"), hash_bytes(0, b"b"));
        assert_ne!(hash_bytes(0, b"ab"), hash_bytes(0, b"ab\0"));
        assert_ne!(hash_bytes(0, b""), hash_bytes(1, b""));
        // 8-byte boundary cases
        assert_ne!(hash_bytes(0, b"12345678"), hash_bytes(0, b"123456789"));
    }

    #[test]
    fn hash_bytes_is_deterministic() {
        assert_eq!(hash_bytes(42, b"hello world"), hash_bytes(42, b"hello world"));
    }
}
