//! Independent pseudorandom streams keyed by argument tuples.
//!
//! This reproduces the `mrs.MapReduce.random(*args)` method (§IV-A): every
//! distinct tuple of integers yields an *independent* generator, so that
//!
//! * each task can deterministically derive its own stream
//!   (`random(op_id, task_id)`), and
//! * two tasks that must duplicate a calculation can construct *identical*
//!   generators by passing identical arguments.
//!
//! The tuple — prefixed with the program-level seed — is absorbed into the
//! MT19937-64 state via `init_by_array64`, exactly the mechanism that lets
//! the paper claim "around 300 arguments that are each 64-bit integers".

use crate::Mt19937_64;

/// Maximum number of key words that can be absorbed without aliasing: the
/// MT19937-64 state is 312 words; one is reserved for the base seed.
pub const MAX_STREAM_ARGS: usize = 311;

/// Factory deriving independent generators from argument tuples.
#[derive(Clone, Debug)]
pub struct StreamFactory {
    base: u64,
}

impl StreamFactory {
    /// Create a factory for a program-level seed.
    pub fn new(seed: u64) -> Self {
        StreamFactory { base: seed }
    }

    /// The program-level seed this factory was constructed with.
    pub fn seed(&self) -> u64 {
        self.base
    }

    /// Derive the generator for an argument tuple. Identical `(seed, args)`
    /// always produce identical generators; tuples differing in any element
    /// or in length produce independent streams.
    pub fn stream(&self, args: &[u64]) -> Mt19937_64 {
        assert!(
            args.len() <= MAX_STREAM_ARGS,
            "stream(): at most {MAX_STREAM_ARGS} arguments (got {})",
            args.len()
        );
        let mut key = Vec::with_capacity(args.len() + 2);
        key.push(self.base);
        key.extend_from_slice(args);
        // Length tag prevents (a) and (a, 0) from colliding when a trailing
        // zero would otherwise be indistinguishable under key cycling.
        key.push(0x6d72_735f_7374_7265 ^ args.len() as u64); // "mrs_stre" ^ len
        Mt19937_64::from_key(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_args_identical_streams() {
        let f = StreamFactory::new(42);
        let mut a = f.stream(&[1, 2, 3]);
        let mut b = f.stream(&[1, 2, 3]);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = StreamFactory::new(1).stream(&[5]);
        let mut b = StreamFactory::new(2).stream(&[5]);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn trailing_zero_does_not_collide() {
        let f = StreamFactory::new(0);
        let mut a = f.stream(&[7]);
        let mut b = f.stream(&[7, 0]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn empty_tuple_is_valid() {
        let f = StreamFactory::new(3);
        let mut a = f.stream(&[]);
        let mut b = f.stream(&[]);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn max_args_accepted() {
        let f = StreamFactory::new(0);
        let args: Vec<u64> = (0..MAX_STREAM_ARGS as u64).collect();
        let _ = f.stream(&args);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_args_panics() {
        let f = StreamFactory::new(0);
        let args = vec![0u64; MAX_STREAM_ARGS + 1];
        let _ = f.stream(&args);
    }

    proptest! {
        #[test]
        fn distinct_tuples_distinct_streams(
            a in proptest::collection::vec(any::<u64>(), 0..8),
            b in proptest::collection::vec(any::<u64>(), 0..8),
        ) {
            prop_assume!(a != b);
            let f = StreamFactory::new(99);
            let mut ga = f.stream(&a);
            let mut gb = f.stream(&b);
            let va: Vec<u64> = (0..4).map(|_| ga.next_u64()).collect();
            let vb: Vec<u64> = (0..4).map(|_| gb.next_u64()).collect();
            prop_assert_ne!(va, vb);
        }

        #[test]
        fn stream_is_pure(args in proptest::collection::vec(any::<u64>(), 0..16), seed in any::<u64>()) {
            let f = StreamFactory::new(seed);
            let mut a = f.stream(&args);
            let mut b = f.stream(&args);
            for _ in 0..8 {
                prop_assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }
}
