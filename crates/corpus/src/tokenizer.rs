//! The WordCount tokenizer and a framework-independent reference counter.
//!
//! Program 1 tokenizes with `value.split()`; this module provides the same
//! splitting plus an exact reference count so every runtime's WordCount
//! output can be validated against ground truth.

use std::collections::HashMap;

/// Split a line exactly like the paper's `value.split()`.
pub fn tokenize(line: &str) -> impl Iterator<Item = &str> {
    line.split_whitespace()
}

/// Reference word counts over any sequence of lines (the bypass
/// implementation of WordCount).
pub fn reference_counts<'a, I: IntoIterator<Item = &'a str>>(lines: I) -> HashMap<String, u64> {
    let mut counts = HashMap::new();
    for line in lines {
        for w in tokenize(line) {
            *counts.entry(w.to_owned()).or_insert(0) += 1;
        }
    }
    counts
}

/// Total tokens in a text.
pub fn token_count(text: &str) -> u64 {
    text.lines().map(|l| tokenize(l).count() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_collapses_whitespace() {
        let toks: Vec<&str> = tokenize("  a\t b   c ").collect();
        assert_eq!(toks, vec!["a", "b", "c"]);
    }

    #[test]
    fn reference_counts_sum() {
        let counts = reference_counts(["a b a", "b c", ""]);
        assert_eq!(counts.get("a"), Some(&2));
        assert_eq!(counts.get("b"), Some(&2));
        assert_eq!(counts.get("c"), Some(&1));
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn token_count_matches_reference_total() {
        let text = "x y z\nx x\n";
        let total: u64 = reference_counts(text.lines()).values().sum();
        assert_eq!(token_count(text), total);
        assert_eq!(total, 5);
    }
}
