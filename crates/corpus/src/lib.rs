//! Deterministic synthetic Gutenberg-like corpus.
//!
//! The WordCount experiment (§V-B) uses "all of the text works from
//! Project Gutenberg … 31,173 files" whose *directory structure* — many
//! small files scattered through a deep tree — is what breaks Hadoop's
//! input loader. This crate synthesizes a corpus with the properties that
//! matter:
//!
//! * [`zipf`] — Zipf-distributed vocabulary (natural-language word
//!   frequencies),
//! * [`generator`] — deterministic per-file document synthesis (same seed
//!   → same corpus, any subset reproducible independently),
//! * [`tree`] — the nested numeric directory layout (like Gutenberg's
//!   `etext` tree) plus the flat layout Hadoop prefers,
//! * [`tokenizer`] — the whitespace tokenizer WordCount uses, shared so
//!   expected counts can be computed independently of the framework.

pub mod generator;
pub mod tokenizer;
pub mod tree;
pub mod zipf;

pub use generator::{Corpus, CorpusConfig};
pub use zipf::Zipf;
