//! Directory layouts: Gutenberg-like nesting vs the flat layout Hadoop's
//! input loader prefers.
//!
//! "the directory structure from Project Gutenberg is not very amenable to
//! Hadoop. The input file loader for the Hadoop system expects all of the
//! files to be located in a single directory" (§V-B). The nested layout
//! spreads files through a numeric tree (like `etext/1/2/3/123.txt`), so a
//! scan must list thousands of directories.

use crate::generator::Corpus;
use mrs_core::Result;
use mrs_fs::Store;
use std::collections::BTreeSet;

/// How files are arranged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Everything in one directory: `flat/<id>.txt`.
    Flat,
    /// Gutenberg-style nesting by digits: `etext/1/2/3/123.txt`.
    Nested,
}

/// The store path for file `id` under a layout.
pub fn path_for(layout: Layout, id: u64) -> String {
    match layout {
        Layout::Flat => format!("flat/{id}.txt"),
        Layout::Nested => {
            let digits = id.to_string();
            let mut path = String::from("etext");
            for d in digits.chars() {
                path.push('/');
                path.push(d);
            }
            format!("{path}/{digits}.txt")
        }
    }
}

/// Count of distinct directories a scan of `n_files` must list.
pub fn directory_count(layout: Layout, n_files: u64) -> u64 {
    match layout {
        Layout::Flat => 1,
        Layout::Nested => {
            let mut dirs: BTreeSet<String> = BTreeSet::new();
            for id in 0..n_files {
                let p = path_for(layout, id);
                let dir = p.rsplit_once('/').map(|(d, _)| d.to_owned()).unwrap_or_default();
                // every ancestor is also listed
                let mut acc = String::new();
                for seg in dir.split('/') {
                    if !acc.is_empty() {
                        acc.push('/');
                    }
                    acc.push_str(seg);
                    dirs.insert(acc.clone());
                }
            }
            dirs.len() as u64
        }
    }
}

/// Materialize the corpus into a store under the given layout. Returns the
/// written paths in file-id order.
pub fn write_corpus(corpus: &Corpus, store: &dyn Store, layout: Layout) -> Result<Vec<String>> {
    let n = corpus.config().n_files;
    let mut paths = Vec::with_capacity(n as usize);
    for id in 0..n {
        let path = path_for(layout, id);
        store.put(&path, corpus.document(id).as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusConfig;
    use mrs_fs::MemFs;

    #[test]
    fn nested_paths_spread_by_digits() {
        assert_eq!(path_for(Layout::Nested, 123), "etext/1/2/3/123.txt");
        assert_eq!(path_for(Layout::Nested, 0), "etext/0/0.txt");
        assert_eq!(path_for(Layout::Flat, 123), "flat/123.txt");
    }

    #[test]
    fn nested_layout_has_many_directories() {
        let nested = directory_count(Layout::Nested, 1000);
        let flat = directory_count(Layout::Flat, 1000);
        assert_eq!(flat, 1);
        assert!(nested > 100, "nested dirs: {nested}");
    }

    #[test]
    fn paths_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..2_000 {
            assert!(seen.insert(path_for(Layout::Nested, id)), "dup at {id}");
        }
    }

    #[test]
    fn write_corpus_materializes_all_files() {
        let corpus = Corpus::new(CorpusConfig {
            n_files: 12,
            mean_tokens: 50,
            vocab: 100,
            ..CorpusConfig::default()
        });
        let store = MemFs::new();
        let paths = write_corpus(&corpus, &store, Layout::Nested).unwrap();
        assert_eq!(paths.len(), 12);
        for (id, p) in paths.iter().enumerate() {
            let data = store.get(p).unwrap();
            assert_eq!(data, corpus.document(id as u64).into_bytes());
        }
    }
}
