//! Deterministic document synthesis.
//!
//! Every document is generated from `(seed, file_id)` alone, so any subset
//! of the corpus can be produced independently (a map task can synthesize
//! its own input) and the full corpus never has to exist in memory at once.

use crate::zipf::{word_for_rank, Zipf};
use mrs_rng::{Rng64, SplitMix64};

/// Corpus shape parameters.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of files. Paper scale: 31,173 (full) / 8,316 (subset).
    pub n_files: u64,
    /// Random seed.
    pub seed: u64,
    /// Mean tokens per document (documents vary ±50%).
    pub mean_tokens: u64,
    /// Vocabulary size.
    pub vocab: usize,
    /// Zipf exponent (≈1.0 for natural text).
    pub zipf_s: f64,
    /// Words per output line.
    pub words_per_line: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_files: 100,
            seed: 42,
            mean_tokens: 2_000,
            vocab: 50_000,
            zipf_s: 1.05,
            words_per_line: 12,
        }
    }
}

/// A corpus generator.
#[derive(Clone, Debug)]
pub struct Corpus {
    config: CorpusConfig,
    zipf: Zipf,
}

impl Corpus {
    /// Build a generator.
    pub fn new(config: CorpusConfig) -> Corpus {
        assert!(config.n_files > 0, "empty corpus");
        assert!(config.mean_tokens > 0 && config.words_per_line > 0, "degenerate document shape");
        let zipf = Zipf::new(config.vocab, config.zipf_s);
        Corpus { config, zipf }
    }

    /// The configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Number of tokens document `file_id` will contain.
    pub fn doc_tokens(&self, file_id: u64) -> u64 {
        let mut rng = SplitMix64::new(self.config.seed ^ file_id.wrapping_mul(0x9E37_79B9));
        let mean = self.config.mean_tokens;
        // Uniform in [mean/2, 3*mean/2] — bounded, deterministic.
        mean / 2 + rng.below(mean.max(1)) + 1
    }

    /// Generate document `file_id` as text lines.
    pub fn document(&self, file_id: u64) -> String {
        let tokens = self.doc_tokens(file_id);
        let mut rng = SplitMix64::new(self.config.seed.wrapping_add(file_id));
        let mut out = String::with_capacity(tokens as usize * 6);
        for t in 0..tokens {
            let rank = self.zipf.sample(&mut rng);
            out.push_str(&word_for_rank(rank));
            if (t + 1) % self.config.words_per_line as u64 == 0 {
                out.push('\n');
            } else {
                out.push(' ');
            }
        }
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }

    /// Total corpus size in bytes (generates every document; use sampled
    /// estimates for very large corpora).
    pub fn total_bytes(&self) -> u64 {
        (0..self.config.n_files).map(|f| self.document(f).len() as u64).sum()
    }

    /// Estimate total bytes by generating `samples` documents.
    pub fn estimate_bytes(&self, samples: u64) -> u64 {
        let samples = samples.clamp(1, self.config.n_files);
        let stride = self.config.n_files / samples;
        let total: u64 = (0..samples).map(|i| self.document(i * stride).len() as u64).sum();
        total / samples * self.config.n_files
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small() -> Corpus {
        Corpus::new(CorpusConfig {
            n_files: 20,
            seed: 7,
            mean_tokens: 300,
            vocab: 2_000,
            zipf_s: 1.0,
            words_per_line: 10,
        })
    }

    #[test]
    fn documents_are_deterministic() {
        let c = small();
        assert_eq!(c.document(3), c.document(3));
        assert_ne!(c.document(3), c.document(4));
    }

    #[test]
    fn token_counts_match_declared() {
        let c = small();
        for f in 0..20 {
            let doc = c.document(f);
            let words: usize = doc.split_whitespace().count();
            assert_eq!(words as u64, c.doc_tokens(f), "file {f}");
        }
    }

    #[test]
    fn doc_sizes_vary_within_bounds() {
        let c = small();
        for f in 0..20 {
            let t = c.doc_tokens(f);
            assert!((150..=451).contains(&t), "file {f}: {t} tokens");
        }
    }

    #[test]
    fn lines_have_configured_width() {
        let c = small();
        let doc = c.document(0);
        for line in doc.lines().take(5) {
            assert_eq!(line.split_whitespace().count(), 10);
        }
    }

    #[test]
    fn word_distribution_is_skewed() {
        let c = small();
        let mut counts: HashMap<String, usize> = HashMap::new();
        for f in 0..20 {
            for w in c.document(f).split_whitespace() {
                *counts.entry(w.to_owned()).or_default() += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Zipfian head: the most common word is much more frequent than the
        // 50th.
        assert!(freqs[0] > freqs.get(50).copied().unwrap_or(1) * 5, "{:?}", &freqs[..5]);
    }

    #[test]
    fn estimate_bytes_close_to_actual() {
        let c = small();
        let actual = c.total_bytes();
        let est = c.estimate_bytes(10);
        let ratio = est as f64 / actual as f64;
        assert!((0.6..1.4).contains(&ratio), "est {est} vs actual {actual}");
    }
}
