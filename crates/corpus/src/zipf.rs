//! Zipf-distributed sampling and a synthetic vocabulary.
//!
//! Word frequencies in natural text follow Zipf's law: the r-th most
//! common word has probability ∝ 1/r^s with s ≈ 1. Sampling uses a
//! precomputed cumulative table with binary search — O(log V) per draw,
//! deterministic given the generator.

use mrs_rng::Rng64;

/// A Zipf distribution over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf(s) distribution over `n` ranks. `n` must be nonzero and `s`
    /// non-negative (s = 0 is uniform).
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "empty support");
        assert!(s >= 0.0 && s.is_finite(), "bad exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the support is empty (never: `new` forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n` (0 = most frequent).
    pub fn sample<R: Rng64>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        // First index with cdf >= u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// The synthetic vocabulary: word for rank `r`, generated from the rank so
/// the whole vocabulary never needs materializing. Common ranks get short
/// words, rare ranks long ones (roughly like real text).
pub fn word_for_rank(rank: usize) -> String {
    const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwz";
    const VOWELS: &[u8] = b"aeiou";
    let mut n = rank as u64;
    let mut w = String::new();
    loop {
        let c = CONSONANTS[(n % CONSONANTS.len() as u64) as usize] as char;
        n /= CONSONANTS.len() as u64;
        let v = VOWELS[(n % VOWELS.len() as u64) as usize] as char;
        n /= VOWELS.len() as u64;
        w.push(c);
        w.push(v);
        if n == 0 {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_rng::SplitMix64;

    #[test]
    fn samples_in_range_and_deterministic() {
        let z = Zipf::new(100, 1.0);
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = z.sample(&mut a);
            assert!(x < 100);
            assert_eq!(x, z.sample(&mut b));
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SplitMix64::new(1);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "{} vs {}", counts[0], counts[9]);
        assert!(counts[0] > 1000, "rank 0 should be common: {}", counts[0]);
    }

    #[test]
    fn s_zero_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SplitMix64::new(3);
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.2);
        let mut rng = SplitMix64::new(5);
        for _ in 0..32 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn words_are_distinct_and_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for r in 0..5_000 {
            let w = word_for_rank(r);
            assert!(!w.is_empty());
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
            assert!(seen.insert(w), "collision at rank {r}");
        }
    }

    #[test]
    fn common_words_are_short() {
        assert!(word_for_rank(0).len() <= 2);
        assert!(word_for_rank(50_000).len() >= 6);
    }
}
