//! Error type shared across the framework crates.

use std::fmt;

/// Framework-level result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the data plane and the runtimes.
#[derive(Debug)]
pub enum Error {
    /// A record or datum failed to decode.
    Codec(String),
    /// An I/O failure in the storage or network layer.
    Io(std::io::Error),
    /// A malformed or unsupported URL for a bucket.
    Url(String),
    /// Protocol-level failure talking to a peer.
    Rpc(String),
    /// The program referenced an unknown map/reduce function id.
    UnknownFunc(u32),
    /// The plan referenced data that does not exist.
    MissingData(String),
    /// A task failed on every slave it was attempted on.
    TaskFailed(String),
    /// A task attempt was cancelled cooperatively (another attempt won the
    /// race); the partial output must be discarded, never reported.
    Cancelled,
    /// The cluster lost all of its slaves.
    NoSlaves,
    /// Generic invariant violation.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Url(m) => write!(f, "bad url: {m}"),
            Error::Rpc(m) => write!(f, "rpc error: {m}"),
            Error::UnknownFunc(id) => write!(f, "unknown function id {id}"),
            Error::MissingData(m) => write!(f, "missing data: {m}"),
            Error::TaskFailed(m) => write!(f, "task failed: {m}"),
            Error::Cancelled => write!(f, "task attempt cancelled"),
            Error::NoSlaves => write!(f, "no live slaves remain"),
            Error::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Codec("truncated varint".into());
        assert!(e.to_string().contains("truncated varint"));
        let e = Error::UnknownFunc(7);
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
