//! Sort-and-group: the step between map and reduce.
//!
//! "this intermediate output is sorted and grouped by key, and the reduce
//! function is called once for each key" (§II). [`group_sorted`] iterates
//! over maximal runs of equal keys in an already-sorted record slice without
//! copying values.

use crate::kv::Record;

/// Iterator over `(key, values)` groups of a key-sorted record slice.
pub struct Groups<'a> {
    records: &'a [Record],
    pos: usize,
}

impl<'a> Iterator for Groups<'a> {
    type Item = (&'a [u8], GroupValues<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.records.len() {
            return None;
        }
        let start = self.pos;
        let key = &self.records[start].0;
        let mut end = start + 1;
        while end < self.records.len() && &self.records[end].0 == key {
            end += 1;
        }
        self.pos = end;
        Some((key.as_slice(), GroupValues { records: &self.records[start..end], pos: 0 }))
    }
}

/// The values associated with one key group.
pub struct GroupValues<'a> {
    records: &'a [Record],
    pos: usize,
}

impl<'a> Iterator for GroupValues<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<Self::Item> {
        let r = self.records.get(self.pos)?;
        self.pos += 1;
        Some(r.1.as_slice())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.records.len() - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for GroupValues<'_> {}

/// Group a *sorted* slice of records by key.
///
/// Debug builds assert sortedness; release builds trust the caller (the
/// runtimes always sort first).
pub fn group_sorted(records: &[Record]) -> Groups<'_> {
    debug_assert!(records.windows(2).all(|w| w[0].0 <= w[1].0), "records must be key-sorted");
    Groups { records, pos: 0 }
}

/// Sort records and merge-count distinct keys — a helper for tests and
/// shuffle statistics. Only the grouping key order matters here, so the
/// cheaper unstable sort suffices.
pub fn distinct_keys(records: &mut [Record]) -> usize {
    records.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    group_sorted(records).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &str, v: &str) -> Record {
        (k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn groups_adjacent_equal_keys() {
        let records =
            vec![rec("a", "1"), rec("a", "2"), rec("b", "3"), rec("c", "4"), rec("c", "5")];
        let groups: Vec<(Vec<u8>, Vec<Vec<u8>>)> = group_sorted(&records)
            .map(|(k, vs)| (k.to_vec(), vs.map(|v| v.to_vec()).collect()))
            .collect();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, b"a");
        assert_eq!(groups[0].1, vec![b"1".to_vec(), b"2".to_vec()]);
        assert_eq!(groups[1].1.len(), 1);
        assert_eq!(groups[2].1.len(), 2);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let records: Vec<Record> = vec![];
        assert_eq!(group_sorted(&records).count(), 0);
    }

    #[test]
    fn single_key_single_group() {
        let records = vec![rec("k", "1"), rec("k", "2"), rec("k", "3")];
        let mut it = group_sorted(&records);
        let (k, vs) = it.next().unwrap();
        assert_eq!(k, b"k");
        assert_eq!(vs.len(), 3);
        assert!(it.next().is_none());
    }

    #[test]
    fn values_preserve_insertion_order_within_group() {
        let records = vec![rec("k", "z"), rec("k", "a"), rec("k", "m")];
        let (_, vs) = group_sorted(&records).next().unwrap();
        let vals: Vec<&[u8]> = vs.collect();
        assert_eq!(vals, vec![b"z".as_slice(), b"a", b"m"]);
    }

    #[test]
    fn group_values_reports_exact_size() {
        let records = vec![rec("k", "1"), rec("k", "2")];
        let (_, vs) = group_sorted(&records).next().unwrap();
        assert_eq!(vs.size_hint(), (2, Some(2)));
    }

    #[test]
    fn distinct_keys_counts_unique() {
        let mut records = vec![rec("b", "1"), rec("a", "2"), rec("b", "3"), rec("c", "1")];
        assert_eq!(distinct_keys(&mut records), 3);
    }
}
