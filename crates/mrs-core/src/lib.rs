//! Core MapReduce programming model and data plane.
//!
//! This crate defines everything the paper's §II formalises, independent of
//! *how* a program is executed (see `mrs-runtime` for the four execution
//! implementations and `hadoop-sim` for the baseline):
//!
//! * [`kv`] — the record model: byte-oriented key/value pairs plus the
//!   [`kv::Datum`] codec trait that gives programs a typed view,
//! * [`program`] — the user-facing [`program::MapReduce`] trait
//!   (`map : (K1,V1) → list((K2,V2))`, `reduce : (K2, list(V2)) → list(V2)`)
//!   and the object-safe [`program::Program`] layer the runtimes drive,
//! * [`bucket`] / [`sortgroup`] — intermediate data containers, sorting and
//!   grouping by key,
//! * [`partition`] — hash and modulo partitioners,
//! * [`plan`] — operation descriptors (map/reduce DAG) shared by all
//!   runtimes, including the iterative chains of Fig. 2.

pub mod bucket;
pub mod error;
pub mod kv;
pub mod merge;
pub mod partition;
pub mod plan;
pub mod program;
pub mod sortgroup;
pub mod task;

pub use bucket::Bucket;
pub use error::{Error, Result};
pub use kv::{Datum, Record};
pub use merge::{merge_runs, RunMerger};
pub use plan::{DataRef, FuncId, OpId, OpKind, OpSpec, Plan};
pub use program::{MapReduce, Program, Simple};
pub use task::MergeMode;
