//! Operation plans: the map/reduce dependency graphs of Figs. 1 and 2.
//!
//! A [`Plan`] is a straight-line description of the datasets a job will
//! produce: each [`OpSpec`] consumes either a *source* dataset (job input)
//! or the output of an earlier operation, and produces a new dataset split
//! into `parts` pieces. Iterative programs are simply long chains of
//! alternating map and reduce ops over the same function ids — the runtimes
//! (`mrs-runtime`) exploit the structure for pipelining and task affinity.

use crate::error::{Error, Result};

/// Identifies one of a program's map/reduce functions.
pub type FuncId = u32;

/// Identifies an operation (and thus its output dataset) within a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

/// The input of an operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataRef {
    /// The job's source dataset (index into the runtime's source list).
    Source(u32),
    /// The output dataset of a previous operation.
    Op(OpId),
}

/// What an operation does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Apply a map function to every record of the input; partition the
    /// output into `parts` buckets per task.
    Map {
        /// Which of the program's map functions to run.
        func: FuncId,
    },
    /// Sort-and-group each partition of the input and apply a reduce
    /// function to each group.
    Reduce {
        /// Which of the program's reduce functions to run.
        func: FuncId,
    },
}

/// One operation in a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpSpec {
    /// This op's id; equals its index in the plan.
    pub id: OpId,
    /// Map or reduce, and which program function.
    pub kind: OpKind,
    /// Input dataset.
    pub input: DataRef,
    /// Number of output partitions (map) or tasks (reduce).
    pub parts: usize,
    /// For map ops with a combiner-capable function: run the combiner.
    pub combine: bool,
}

/// An ordered list of operations forming a DAG (inputs always refer
/// backwards).
#[derive(Clone, Debug, Default)]
pub struct Plan {
    ops: Vec<OpSpec>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Append a map operation reading `input`, producing `parts` partitions.
    pub fn map(&mut self, func: FuncId, input: DataRef, parts: usize) -> OpId {
        self.push(OpKind::Map { func }, input, parts, false)
    }

    /// Append a map operation that also runs the program's combiner.
    pub fn map_with_combiner(&mut self, func: FuncId, input: DataRef, parts: usize) -> OpId {
        self.push(OpKind::Map { func }, input, parts, true)
    }

    /// Append a reduce operation reading `input`, producing `parts`
    /// output splits (one per reduce task).
    pub fn reduce(&mut self, func: FuncId, input: DataRef, parts: usize) -> OpId {
        self.push(OpKind::Reduce { func }, input, parts, false)
    }

    fn push(&mut self, kind: OpKind, input: DataRef, parts: usize, combine: bool) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpSpec { id, kind, input, parts, combine });
        id
    }

    /// All operations in submission order.
    pub fn ops(&self) -> &[OpSpec] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the plan has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Look up an operation.
    pub fn op(&self, id: OpId) -> Option<&OpSpec> {
        self.ops.get(id.0 as usize)
    }

    /// Validate the plan: inputs must refer to earlier ops, every op must
    /// have at least one partition, and a reduce's input must be a map
    /// (reduce consumes partitioned, shuffled data).
    pub fn validate(&self, n_sources: u32) -> Result<()> {
        for (i, op) in self.ops.iter().enumerate() {
            if op.parts == 0 {
                return Err(Error::Invalid(format!("op {i}: zero partitions")));
            }
            match op.input {
                DataRef::Source(s) if s >= n_sources => {
                    return Err(Error::Invalid(format!(
                        "op {i}: source {s} out of range ({n_sources} sources)"
                    )));
                }
                DataRef::Op(OpId(p)) if p as usize >= i => {
                    return Err(Error::Invalid(format!("op {i}: input op {p} is not earlier")));
                }
                _ => {}
            }
            if let (OpKind::Reduce { .. }, DataRef::Source(_)) = (op.kind, op.input) {
                return Err(Error::Invalid(format!(
                    "op {i}: reduce must consume a map output, not a raw source"
                )));
            }
        }
        Ok(())
    }

    /// Build the canonical single-stage plan used by `Simple` programs:
    /// map (with combiner if the program has one) then reduce.
    pub fn map_reduce(map_parts: usize, reduce_parts: usize, combine: bool) -> Plan {
        let mut p = Plan::new();
        let m = if combine {
            p.map_with_combiner(0, DataRef::Source(0), reduce_parts)
        } else {
            p.map(0, DataRef::Source(0), reduce_parts)
        };
        // `map_parts` is implied by the source's split count; record it for
        // documentation via the reduce input.
        let _ = map_parts;
        p.reduce(0, DataRef::Op(m), reduce_parts);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut p = Plan::new();
        let a = p.map(0, DataRef::Source(0), 4);
        let b = p.reduce(0, DataRef::Op(a), 4);
        assert_eq!(a, OpId(0));
        assert_eq!(b, OpId(1));
        assert_eq!(p.len(), 2);
        assert_eq!(p.op(b).unwrap().input, DataRef::Op(a));
    }

    #[test]
    fn valid_chain_passes_validation() {
        let mut p = Plan::new();
        let mut prev = p.map(0, DataRef::Source(0), 2);
        for _ in 0..5 {
            let r = p.reduce(0, DataRef::Op(prev), 2);
            prev = p.map(1, DataRef::Op(r), 2);
        }
        p.reduce(0, DataRef::Op(prev), 2);
        assert!(p.validate(1).is_ok());
    }

    #[test]
    fn zero_parts_rejected() {
        let mut p = Plan::new();
        p.map(0, DataRef::Source(0), 0);
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn out_of_range_source_rejected() {
        let mut p = Plan::new();
        p.map(0, DataRef::Source(2), 1);
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn forward_reference_rejected() {
        let mut p = Plan::new();
        p.map(0, DataRef::Op(OpId(1)), 1); // refers to itself/future
        p.map(0, DataRef::Source(0), 1);
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn reduce_from_source_rejected() {
        let mut p = Plan::new();
        p.reduce(0, DataRef::Source(0), 1);
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn canonical_map_reduce_shape() {
        let p = Plan::map_reduce(4, 3, true);
        assert_eq!(p.len(), 2);
        assert!(matches!(p.ops()[0].kind, OpKind::Map { func: 0 }));
        assert!(p.ops()[0].combine);
        assert_eq!(p.ops()[0].parts, 3);
        assert!(matches!(p.ops()[1].kind, OpKind::Reduce { func: 0 }));
        assert!(p.validate(1).is_ok());
    }
}
