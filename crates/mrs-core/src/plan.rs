//! Operation plans: the map/reduce dependency graphs of Figs. 1 and 2.
//!
//! A [`Plan`] is a straight-line description of the datasets a job will
//! produce: each [`OpSpec`] consumes either a *source* dataset (job input)
//! or the output of an earlier operation, and produces a new dataset split
//! into `parts` pieces. Iterative programs are simply long chains of
//! alternating map and reduce ops over the same function ids — the runtimes
//! (`mrs-runtime`) exploit the structure for pipelining and task affinity.

use crate::error::{Error, Result};

/// Identifies one of a program's map/reduce functions.
pub type FuncId = u32;

/// Identifies an operation (and thus its output dataset) within a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

/// The input of an operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataRef {
    /// The job's source dataset (index into the runtime's source list).
    Source(u32),
    /// The output dataset of a previous operation.
    Op(OpId),
}

/// What an operation does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Apply a map function to every record of the input; partition the
    /// output into `parts` buckets per task.
    Map {
        /// Which of the program's map functions to run.
        func: FuncId,
    },
    /// Sort-and-group each partition of the input and apply a reduce
    /// function to each group.
    Reduce {
        /// Which of the program's reduce functions to run.
        func: FuncId,
    },
    /// Fused reduce+map: sort-and-group each partition, reduce each group,
    /// and feed every reduced record straight into a map function without
    /// materializing the intermediate reduce output. One task does the
    /// work of a whole reduce round plus the next iteration's map round.
    ReduceMap {
        /// Which of the program's reduce functions to run.
        reduce_func: FuncId,
        /// Which of the program's map functions the reduced records feed.
        map_func: FuncId,
    },
}

impl OpKind {
    /// True for ops whose output is partitioned shuffle data (consumable
    /// by a reduce), false for ops producing final materialized records.
    pub fn is_map_like(&self) -> bool {
        matches!(self, OpKind::Map { .. } | OpKind::ReduceMap { .. })
    }
}

/// One operation in a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpSpec {
    /// This op's id; equals its index in the plan.
    pub id: OpId,
    /// Map or reduce, and which program function.
    pub kind: OpKind,
    /// Input dataset.
    pub input: DataRef,
    /// Number of output partitions (map) or tasks (reduce).
    pub parts: usize,
    /// For map ops with a combiner-capable function: run the combiner.
    pub combine: bool,
}

/// An ordered list of operations forming a DAG (inputs always refer
/// backwards).
#[derive(Clone, Debug, Default)]
pub struct Plan {
    ops: Vec<OpSpec>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Append a map operation reading `input`, producing `parts` partitions.
    pub fn map(&mut self, func: FuncId, input: DataRef, parts: usize) -> OpId {
        self.push(OpKind::Map { func }, input, parts, false)
    }

    /// Append a map operation that also runs the program's combiner.
    pub fn map_with_combiner(&mut self, func: FuncId, input: DataRef, parts: usize) -> OpId {
        self.push(OpKind::Map { func }, input, parts, true)
    }

    /// Append a reduce operation reading `input`, producing `parts`
    /// output splits (one per reduce task).
    pub fn reduce(&mut self, func: FuncId, input: DataRef, parts: usize) -> OpId {
        self.push(OpKind::Reduce { func }, input, parts, false)
    }

    /// Append a fused reduce+map operation reading `input`, producing
    /// `parts` shuffle partitions per task (one task per input partition).
    pub fn reduce_map(
        &mut self,
        reduce_func: FuncId,
        map_func: FuncId,
        input: DataRef,
        parts: usize,
    ) -> OpId {
        self.push(OpKind::ReduceMap { reduce_func, map_func }, input, parts, false)
    }

    fn push(&mut self, kind: OpKind, input: DataRef, parts: usize, combine: bool) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(OpSpec { id, kind, input, parts, combine });
        id
    }

    /// All operations in submission order.
    pub fn ops(&self) -> &[OpSpec] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the plan has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Look up an operation.
    pub fn op(&self, id: OpId) -> Option<&OpSpec> {
        self.ops.get(id.0 as usize)
    }

    /// Validate the plan: inputs must refer to earlier ops, every op must
    /// have at least one partition, and a reduce's input must be a map
    /// (reduce consumes partitioned, shuffled data).
    pub fn validate(&self, n_sources: u32) -> Result<()> {
        for (i, op) in self.ops.iter().enumerate() {
            if op.parts == 0 {
                return Err(Error::Invalid(format!("op {i}: zero partitions")));
            }
            match op.input {
                DataRef::Source(s) if s >= n_sources => {
                    return Err(Error::Invalid(format!(
                        "op {i}: source {s} out of range ({n_sources} sources)"
                    )));
                }
                DataRef::Op(OpId(p)) if p as usize >= i => {
                    return Err(Error::Invalid(format!("op {i}: input op {p} is not earlier")));
                }
                _ => {}
            }
            if let (OpKind::Reduce { .. } | OpKind::ReduceMap { .. }, DataRef::Source(_)) =
                (op.kind, op.input)
            {
                return Err(Error::Invalid(format!(
                    "op {i}: reduce must consume a map output, not a raw source"
                )));
            }
        }
        Ok(())
    }

    /// Build the canonical single-stage plan used by `Simple` programs:
    /// map (with combiner if the program has one) then reduce. The map's
    /// task count is implied by the source's split count, so the plan only
    /// carries the partition count shared by the map output and the reduce.
    pub fn map_reduce(reduce_parts: usize, combine: bool) -> Plan {
        let mut p = Plan::new();
        let m = if combine {
            p.map_with_combiner(0, DataRef::Source(0), reduce_parts)
        } else {
            p.map(0, DataRef::Source(0), reduce_parts)
        };
        p.reduce(0, DataRef::Op(m), reduce_parts);
        p
    }

    /// Number of ops consuming `of`'s output within this plan.
    fn consumers_of(&self, of: OpId) -> usize {
        self.ops.iter().filter(|o| o.input == DataRef::Op(of)).count()
    }

    /// The fusion pass: rewrite every adjacent `Reduce(f)` → `Map(g)` pair
    /// where the map is the reduce's *only* consumer, both ops use the
    /// same partition count, and the map runs no combiner, into a single
    /// `ReduceMap { f, g }` op. Iterative chains (`map, reduce, map,
    /// reduce, …`) collapse to `map, reducemap, …, reduce`, halving the
    /// scheduling/shuffle rounds per iteration.
    ///
    /// Returns the rewritten plan and the number of pairs fused. Output
    /// datasets are preserved op-for-op except the fused reduce outputs,
    /// which are never materialized.
    pub fn fused(&self) -> (Plan, usize) {
        // Map from old op index to its id in the new plan, for rewiring
        // inputs of retained ops.
        let mut remap: Vec<Option<OpId>> = vec![None; self.ops.len()];
        let mut out = Plan::new();
        let mut fused = 0usize;
        let mut skip = vec![false; self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            if skip[i] {
                continue;
            }
            let input = match op.input {
                DataRef::Source(s) => DataRef::Source(s),
                DataRef::Op(p) => {
                    DataRef::Op(remap[p.0 as usize].expect("validated plans only refer backwards"))
                }
            };
            // Try to fuse this reduce with its sole consumer, the very
            // next map over its output.
            if let OpKind::Reduce { func: rf } = op.kind {
                let next = self.ops.get(i + 1);
                if let Some(m) = next {
                    let fusable = matches!(m.kind, OpKind::Map { .. })
                        && m.input == DataRef::Op(op.id)
                        && m.parts == op.parts
                        && !m.combine
                        && self.consumers_of(op.id) == 1;
                    if fusable {
                        let OpKind::Map { func: mf } = m.kind else { unreachable!() };
                        let id = out.reduce_map(rf, mf, input, m.parts);
                        remap[i] = Some(id); // reduce output is gone; point at the fused op
                        remap[i + 1] = Some(id);
                        skip[i + 1] = true;
                        fused += 1;
                        continue;
                    }
                }
            }
            let id = out.push(op.kind, input, op.parts, op.combine);
            remap[i] = Some(id);
        }
        (out, fused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut p = Plan::new();
        let a = p.map(0, DataRef::Source(0), 4);
        let b = p.reduce(0, DataRef::Op(a), 4);
        assert_eq!(a, OpId(0));
        assert_eq!(b, OpId(1));
        assert_eq!(p.len(), 2);
        assert_eq!(p.op(b).unwrap().input, DataRef::Op(a));
    }

    #[test]
    fn valid_chain_passes_validation() {
        let mut p = Plan::new();
        let mut prev = p.map(0, DataRef::Source(0), 2);
        for _ in 0..5 {
            let r = p.reduce(0, DataRef::Op(prev), 2);
            prev = p.map(1, DataRef::Op(r), 2);
        }
        p.reduce(0, DataRef::Op(prev), 2);
        assert!(p.validate(1).is_ok());
    }

    #[test]
    fn zero_parts_rejected() {
        let mut p = Plan::new();
        p.map(0, DataRef::Source(0), 0);
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn out_of_range_source_rejected() {
        let mut p = Plan::new();
        p.map(0, DataRef::Source(2), 1);
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn forward_reference_rejected() {
        let mut p = Plan::new();
        p.map(0, DataRef::Op(OpId(1)), 1); // refers to itself/future
        p.map(0, DataRef::Source(0), 1);
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn reduce_from_source_rejected() {
        let mut p = Plan::new();
        p.reduce(0, DataRef::Source(0), 1);
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn canonical_map_reduce_shape() {
        let p = Plan::map_reduce(3, true);
        assert_eq!(p.len(), 2);
        assert!(matches!(p.ops()[0].kind, OpKind::Map { func: 0 }));
        assert!(p.ops()[0].combine);
        assert_eq!(p.ops()[0].parts, 3);
        assert!(matches!(p.ops()[1].kind, OpKind::Reduce { func: 0 }));
        assert!(p.validate(1).is_ok());
    }

    #[test]
    fn reduce_map_from_source_rejected() {
        let mut p = Plan::new();
        p.reduce_map(0, 1, DataRef::Source(0), 2);
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn iterative_chain_fuses_interior_rounds() {
        // map, (reduce, map) x 3, reduce — the PSO shape.
        let mut p = Plan::new();
        let mut prev = p.map(0, DataRef::Source(0), 4);
        for _ in 0..3 {
            let r = p.reduce(1, DataRef::Op(prev), 4);
            prev = p.map(0, DataRef::Op(r), 4);
        }
        p.reduce(1, DataRef::Op(prev), 4);
        assert!(p.validate(1).is_ok());

        let (f, n) = p.fused();
        assert_eq!(n, 3, "all three interior reduce+map pairs fuse");
        assert_eq!(f.len(), p.len() - 3);
        assert!(matches!(f.ops()[0].kind, OpKind::Map { func: 0 }));
        for op in &f.ops()[1..4] {
            assert!(matches!(op.kind, OpKind::ReduceMap { reduce_func: 1, map_func: 0 }), "{op:?}");
            assert!(op.kind.is_map_like());
        }
        assert!(matches!(f.ops()[4].kind, OpKind::Reduce { func: 1 }));
        // Rewired chain still validates and still refers strictly backwards.
        assert!(f.validate(1).is_ok());
        for (i, op) in f.ops().iter().enumerate().skip(1) {
            assert_eq!(op.input, DataRef::Op(OpId(i as u32 - 1)));
        }
    }

    #[test]
    fn partition_mismatch_blocks_fusion() {
        let mut p = Plan::new();
        let m = p.map(0, DataRef::Source(0), 4);
        let r = p.reduce(0, DataRef::Op(m), 4);
        p.map(0, DataRef::Op(r), 8); // repartitioning map: not fusable
        let (f, n) = p.fused();
        assert_eq!(n, 0);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn multi_consumer_reduce_blocks_fusion() {
        let mut p = Plan::new();
        let m = p.map(0, DataRef::Source(0), 2);
        let r = p.reduce(0, DataRef::Op(m), 2);
        p.map(0, DataRef::Op(r), 2);
        p.map(1, DataRef::Op(r), 2); // second consumer needs the reduce output
        let (f, n) = p.fused();
        assert_eq!(n, 0);
        assert_eq!(f.len(), 4);
        // Unfused rewrite is a faithful copy.
        assert_eq!(f.ops(), p.ops());
    }

    #[test]
    fn combiner_map_blocks_fusion() {
        let mut p = Plan::new();
        let m = p.map(0, DataRef::Source(0), 2);
        let r = p.reduce(0, DataRef::Op(m), 2);
        p.map_with_combiner(0, DataRef::Op(r), 2);
        let (f, n) = p.fused();
        assert_eq!(n, 0);
        assert_eq!(f.len(), 3);
    }
}
