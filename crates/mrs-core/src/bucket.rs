//! Buckets: the unit of intermediate data.
//!
//! Map output is partitioned into one bucket per reduce partition (Fig. 1);
//! each reduce task consumes all same-numbered buckets from every map task.
//! A bucket is simply an ordered collection of raw records plus bookkeeping
//! (byte size, sortedness) that the runtimes use for shuffle accounting.

use crate::kv::Record;

/// An append-only collection of records destined for one partition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bucket {
    records: Vec<Record>,
    bytes: usize,
}

impl Bucket {
    /// An empty bucket.
    pub fn new() -> Self {
        Bucket::default()
    }

    /// Build from existing records.
    pub fn from_records(records: Vec<Record>) -> Self {
        let bytes = records.iter().map(|(k, v)| k.len() + v.len()).sum();
        Bucket { records, bytes }
    }

    /// Append one record.
    pub fn push(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.bytes += key.len() + value.len();
        self.records.push((key, value));
    }

    /// Append all records from another bucket.
    pub fn extend_from(&mut self, other: Bucket) {
        self.bytes += other.bytes;
        self.records.extend(other.records);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total payload bytes (keys + values), the shuffle-volume metric used
    /// by the combiner ablation (A3).
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Borrow the records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consume into the raw record vector.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }

    /// Stable sort by encoded key (the shuffle sort step).
    pub fn sort(&mut self) {
        self.records.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// True if records are in non-decreasing key order.
    pub fn is_sorted(&self) -> bool {
        self.records.windows(2).all(|w| w[0].0 <= w[1].0)
    }
}

impl FromIterator<Record> for Bucket {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> Self {
        Bucket::from_records(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &str, v: &str) -> Record {
        (k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn push_tracks_bytes_and_len() {
        let mut b = Bucket::new();
        assert!(b.is_empty());
        b.push(b"ab".to_vec(), b"cde".to_vec());
        b.push(b"".to_vec(), b"x".to_vec());
        assert_eq!(b.len(), 2);
        assert_eq!(b.byte_size(), 6);
    }

    #[test]
    fn from_records_counts_bytes() {
        let b = Bucket::from_records(vec![rec("k", "vv"), rec("kk", "v")]);
        assert_eq!(b.byte_size(), 6);
    }

    #[test]
    fn sort_is_stable_for_equal_keys() {
        let mut b = Bucket::from_records(vec![rec("b", "1"), rec("a", "2"), rec("b", "3")]);
        b.sort();
        assert!(b.is_sorted());
        let recs = b.records();
        assert_eq!(recs[0], rec("a", "2"));
        // stability: the two "b" records keep their original relative order
        assert_eq!(recs[1], rec("b", "1"));
        assert_eq!(recs[2], rec("b", "3"));
    }

    #[test]
    fn extend_from_merges_bytes() {
        let mut a = Bucket::from_records(vec![rec("x", "1")]);
        let b = Bucket::from_records(vec![rec("y", "22")]);
        a.extend_from(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.byte_size(), 5);
    }

    #[test]
    fn empty_bucket_is_sorted() {
        assert!(Bucket::new().is_sorted());
    }

    #[test]
    fn collect_from_iterator() {
        let b: Bucket = vec![rec("a", "1"), rec("b", "2")].into_iter().collect();
        assert_eq!(b.len(), 2);
    }
}
