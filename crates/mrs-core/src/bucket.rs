//! Buckets: the unit of intermediate data.
//!
//! Map output is partitioned into one bucket per reduce partition (Fig. 1);
//! each reduce task consumes all same-numbered buckets from every map task.
//!
//! Storage is a flat arena: one contiguous byte buffer holding every key and
//! value back to back, plus a compact offset table. Appending a record is
//! two `extend_from_slice` calls and one 12-byte table entry — no per-record
//! heap allocation — so a bucket performs O(1) amortized allocations no
//! matter how many records flow through it. Sorting permutes only the
//! offset table; the payload bytes never move.

use crate::kv::Record;

/// One record in the arena: `[off .. off+klen)` is the key,
/// `[off+klen .. off+klen+vlen)` the value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Entry {
    off: u32,
    klen: u32,
    vlen: u32,
}

/// An append-only collection of records destined for one partition.
#[derive(Clone, Debug, Default)]
pub struct Bucket {
    data: Vec<u8>,
    entries: Vec<Entry>,
}

impl Bucket {
    /// An empty bucket.
    pub fn new() -> Self {
        Bucket::default()
    }

    /// An empty bucket with pre-sized arena capacity.
    pub fn with_capacity(records: usize, bytes: usize) -> Self {
        Bucket { data: Vec::with_capacity(bytes), entries: Vec::with_capacity(records) }
    }

    /// Build from existing records.
    pub fn from_records(records: Vec<Record>) -> Self {
        let bytes = records.iter().map(|(k, v)| k.len() + v.len()).sum();
        let mut b = Bucket::with_capacity(records.len(), bytes);
        for (k, v) in &records {
            b.push(k, v);
        }
        b
    }

    /// Append one record by copying it into the arena.
    pub fn push(&mut self, key: &[u8], value: &[u8]) {
        let off = self.data.len();
        assert!(
            off + key.len() + value.len() <= u32::MAX as usize,
            "bucket exceeds 4 GiB arena limit"
        );
        self.data.extend_from_slice(key);
        self.data.extend_from_slice(value);
        self.entries.push(Entry {
            off: off as u32,
            klen: key.len() as u32,
            vlen: value.len() as u32,
        });
    }

    /// Drop all records but keep the arena and offset-table allocations,
    /// so a long-lived scratch bucket stops allocating once it has grown
    /// to the working-set size (the slave worker pool reuses one per
    /// worker across tasks).
    pub fn clear(&mut self) {
        self.data.clear();
        self.entries.clear();
    }

    /// Append all records from another bucket.
    pub fn extend_from(&mut self, other: &Bucket) {
        for (k, v) in other.iter() {
            self.push(k, v);
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes (keys + values), the shuffle-volume metric used
    /// by the combiner ablation (A3).
    pub fn byte_size(&self) -> usize {
        self.data.len()
    }

    /// The record at position `i` as borrowed (key, value) slices.
    pub fn get(&self, i: usize) -> (&[u8], &[u8]) {
        let e = self.entries[i];
        let k = e.off as usize;
        let v = k + e.klen as usize;
        (&self.data[k..v], &self.data[v..v + e.vlen as usize])
    }

    /// The key of the record at position `i` (the merge machinery walks
    /// keys without touching values).
    pub fn key_at(&self, i: usize) -> &[u8] {
        let e = self.entries[i];
        &self.data[e.off as usize..(e.off + e.klen) as usize]
    }

    /// Iterate records as borrowed (key, value) slices, in current order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (&[u8], &[u8])> + '_ {
        (0..self.entries.len()).map(move |i| self.get(i))
    }

    /// Copy out into owned records (compat/serialization boundary).
    pub fn to_records(&self) -> Vec<Record> {
        self.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect()
    }

    /// Consume into owned records.
    pub fn into_records(self) -> Vec<Record> {
        self.to_records()
    }

    /// Sort by encoded key, preserving arrival order among equal keys (the
    /// shuffle sort step). Implemented as an unstable sort over the pair
    /// (key bytes, arrival index): arrival index is a total tiebreaker, so
    /// the result is byte-for-byte identical to a stable sort by key while
    /// permuting only the 12-byte offset entries, never the payload.
    pub fn sort(&mut self) {
        let mut order: Vec<u32> = (0..self.entries.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            self.key_at(a as usize).cmp(self.key_at(b as usize)).then(a.cmp(&b))
        });
        self.entries = order.iter().map(|&i| self.entries[i as usize]).collect();
    }

    /// True if records are in non-decreasing key order.
    pub fn is_sorted(&self) -> bool {
        (1..self.entries.len()).all(|i| self.key_at(i - 1) <= self.key_at(i))
    }

    /// Iterate key groups of a sorted bucket: each item is one distinct key
    /// with an iterator over its values in arrival order.
    ///
    /// The bucket must be sorted; debug builds assert this.
    pub fn groups(&self) -> BucketGroups<'_> {
        debug_assert!(self.is_sorted(), "groups() requires a sorted bucket");
        BucketGroups { bucket: self, pos: 0 }
    }
}

/// Iterator over the key groups of a sorted [`Bucket`].
pub struct BucketGroups<'a> {
    bucket: &'a Bucket,
    pos: usize,
}

impl<'a> Iterator for BucketGroups<'a> {
    type Item = (&'a [u8], BucketValues<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.bucket.len() {
            return None;
        }
        let start = self.pos;
        let key = self.bucket.key_at(start);
        let mut end = start + 1;
        while end < self.bucket.len() && self.bucket.key_at(end) == key {
            end += 1;
        }
        self.pos = end;
        Some((key, BucketValues { bucket: self.bucket, pos: start, end }))
    }
}

/// Iterator over the values of one key group.
pub struct BucketValues<'a> {
    bucket: &'a Bucket,
    pos: usize,
    end: usize,
}

impl<'a> Iterator for BucketValues<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.pos >= self.end {
            return None;
        }
        let (_, v) = self.bucket.get(self.pos);
        self.pos += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.pos;
        (n, Some(n))
    }
}

/// Buckets compare by logical record sequence, not arena layout: two buckets
/// holding the same records in the same order are equal even if their
/// arenas differ (e.g. one was sorted in place, the other built pre-sorted).
impl PartialEq for Bucket {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for Bucket {}

impl FromIterator<Record> for Bucket {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> Self {
        let mut b = Bucket::new();
        for (k, v) in iter {
            b.push(&k, &v);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: &str, v: &str) -> Record {
        (k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn push_tracks_bytes_and_len() {
        let mut b = Bucket::new();
        assert!(b.is_empty());
        b.push(b"ab", b"cde");
        b.push(b"", b"x");
        assert_eq!(b.len(), 2);
        assert_eq!(b.byte_size(), 6);
        assert_eq!(b.get(0), (&b"ab"[..], &b"cde"[..]));
        assert_eq!(b.get(1), (&b""[..], &b"x"[..]));
    }

    #[test]
    fn from_records_counts_bytes() {
        let b = Bucket::from_records(vec![rec("k", "vv"), rec("kk", "v")]);
        assert_eq!(b.byte_size(), 6);
    }

    #[test]
    fn sort_is_stable_for_equal_keys() {
        let mut b = Bucket::from_records(vec![rec("b", "1"), rec("a", "2"), rec("b", "3")]);
        b.sort();
        assert!(b.is_sorted());
        assert_eq!(b.get(0), (&b"a"[..], &b"2"[..]));
        // stability: the two "b" records keep their original relative order
        assert_eq!(b.get(1), (&b"b"[..], &b"1"[..]));
        assert_eq!(b.get(2), (&b"b"[..], &b"3"[..]));
    }

    #[test]
    fn sort_keeps_arrival_order_for_empty_key_runs() {
        // Zero-length records share arena offsets; the arrival-index
        // tiebreaker must still keep them in emit order.
        let mut b = Bucket::new();
        b.push(b"", b"");
        b.push(b"", b"x");
        b.push(b"", b"");
        b.push(b"a", b"y");
        b.sort();
        let vals: Vec<&[u8]> = b.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![&b""[..], &b"x"[..], &b""[..], &b"y"[..]]);
    }

    #[test]
    fn extend_from_merges_bytes() {
        let mut a = Bucket::from_records(vec![rec("x", "1")]);
        let b = Bucket::from_records(vec![rec("y", "22")]);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.byte_size(), 5);
    }

    #[test]
    fn empty_bucket_is_sorted() {
        assert!(Bucket::new().is_sorted());
    }

    #[test]
    fn collect_from_iterator() {
        let b: Bucket = vec![rec("a", "1"), rec("b", "2")].into_iter().collect();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn groups_iterate_sorted_runs() {
        let mut b =
            Bucket::from_records(vec![rec("b", "1"), rec("a", "2"), rec("b", "3"), rec("c", "")]);
        b.sort();
        let got: Vec<(Vec<u8>, Vec<Vec<u8>>)> =
            b.groups().map(|(k, vs)| (k.to_vec(), vs.map(<[u8]>::to_vec).collect())).collect();
        assert_eq!(
            got,
            vec![
                (b"a".to_vec(), vec![b"2".to_vec()]),
                (b"b".to_vec(), vec![b"1".to_vec(), b"3".to_vec()]),
                (b"c".to_vec(), vec![b"".to_vec()]),
            ]
        );
    }

    #[test]
    fn equality_ignores_arena_layout() {
        let mut a = Bucket::from_records(vec![rec("b", "1"), rec("a", "2")]);
        a.sort();
        let b = Bucket::from_records(vec![rec("a", "2"), rec("b", "1")]);
        assert_eq!(a, b);
        let c = Bucket::from_records(vec![rec("a", "2"), rec("b", "x")]);
        assert_ne!(a, c);
    }

    #[test]
    fn roundtrip_through_records() {
        let recs = vec![rec("k1", "v1"), rec("", ""), rec("k2", "")];
        let b = Bucket::from_records(recs.clone());
        assert_eq!(b.to_records(), recs);
        assert_eq!(b.into_records(), recs);
    }
}
