//! Task kernels: the actual work of a map task or a reduce task.
//!
//! Every execution implementation — serial, mock-parallel, thread pool,
//! master/slave, and the Hadoop baseline — funnels through these two
//! functions, which is what guarantees the paper's property that all
//! implementations "produce identical answers" (§IV-A): the runtimes differ
//! only in *where and when* tasks run, never in what a task computes.
//!
//! Combining comes in two flavours selected by [`CombineStrategy`]:
//!
//! * [`CombineStrategy::Sort`] — the classic post-pass: buffer the whole
//!   map output, sort each bucket, combine each key group. O(n log n)
//!   comparisons and peak memory proportional to the raw map output.
//! * [`CombineStrategy::Hash`] (default) — an in-mapper streaming
//!   combiner: records are folded into a hash table *as they are emitted*,
//!   so duplicate-heavy workloads (Zipf-distributed WordCount) never
//!   materialize the raw output. O(n) expected work; the final sort only
//!   touches distinct keys. Groups are emitted in sorted key order, so the
//!   output is byte-for-byte identical to the sort path for the
//!   associative, key-preserving combiners the paper's contract requires
//!   ("the reduce function can function as a combiner").
//!
//! Every map kernel emits each output bucket as a **sorted run** (the
//! combiner paths do so inherently; the raw path sorts in place), which
//! lets the reduce-side kernels choose via [`MergeMode`] between the
//! classic concatenate+sort and a streaming k-way merge
//! ([`run_reduce_task_merge`], [`run_reduce_map_task_merge`]) that never
//! materializes the concatenated partition. Both reduce paths are
//! byte-identical; the sort path is kept as the oracle.

use crate::bucket::Bucket;
use crate::error::{Error, Result};
use crate::kv::Record;
use crate::merge::RunMerger;
use crate::plan::FuncId;
use crate::program::Program;
use std::sync::atomic::{AtomicBool, Ordering};

/// Check a cooperative-cancellation flag (if any); raise [`Error::Cancelled`]
/// when it is set. Called at record boundaries in the map kernels and at
/// group boundaries in the reduce kernels, so a losing speculative attempt
/// abandons its work within one record/group of the cancel order landing.
#[inline]
fn check_cancel(cancel: Option<&AtomicBool>) -> Result<()> {
    match cancel {
        Some(flag) if flag.load(Ordering::Relaxed) => Err(Error::Cancelled),
        _ => Ok(()),
    }
}

/// How a map task applies its combiner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CombineStrategy {
    /// Streaming in-mapper hash combining (default).
    #[default]
    Hash,
    /// Buffer, sort, then combine key groups (the pre-overhaul behaviour;
    /// kept for the A4 ablation and as the reference implementation).
    Sort,
}

/// How a reduce-side task assembles its gathered partition. Every map
/// kernel emits each output bucket as a *sorted run*, so the reduce input
/// is k sorted runs either way; the mode only chooses between streaming
/// them through a k-way merge and the classic concatenate+sort.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergeMode {
    /// Stream key groups out of a k-way merge of the fetched runs
    /// (default): O(n log k) comparisons, no concatenated bucket.
    #[default]
    Merge,
    /// Concatenate all runs and sort — the pre-merge behaviour, kept as
    /// the byte-identity oracle behind `--mrs-merge=sort`.
    Sort,
}

impl MergeMode {
    /// Parse a `--mrs-merge` value.
    pub fn parse(s: &str) -> Result<MergeMode> {
        match s {
            "merge" => Ok(MergeMode::Merge),
            "sort" => Ok(MergeMode::Sort),
            other => Err(Error::Invalid(format!("unknown merge mode {other:?} (merge|sort)"))),
        }
    }
}

/// Run one map task: apply map function `func` to every input record and
/// partition the output into `parts` buckets. When `combine` is set and the
/// function has a combiner, map output is combined locally — the "local
/// reduce" optimisation of §V-A — using the default [`CombineStrategy`].
pub fn run_map_task(
    program: &dyn Program,
    func: FuncId,
    input: &[Record],
    parts: usize,
    combine: bool,
) -> Result<Vec<Bucket>> {
    run_map_task_with(program, func, input, parts, combine, CombineStrategy::default())
}

/// [`run_map_task`] reading its input straight from a [`Bucket`] arena:
/// the distributed slave decodes fetched input files into one reused
/// bucket and maps over the borrowed slices, so the hot map path never
/// materializes a `Vec<Record>`.
pub fn run_map_task_bucket(
    program: &dyn Program,
    func: FuncId,
    input: &Bucket,
    parts: usize,
    combine: bool,
) -> Result<Vec<Bucket>> {
    run_map_task_bucket_cancellable(program, func, input, parts, combine, None)
}

/// [`run_map_task_bucket`] with a cooperative-cancellation flag checked at
/// every input-record boundary: when `cancel` becomes set, the kernel stops
/// and returns [`Error::Cancelled`], discarding all partial output. Used by
/// the distributed slave to abandon a speculative attempt that lost the
/// first-completion race.
pub fn run_map_task_bucket_cancellable(
    program: &dyn Program,
    func: FuncId,
    input: &Bucket,
    parts: usize,
    combine: bool,
    cancel: Option<&AtomicBool>,
) -> Result<Vec<Bucket>> {
    run_map_records_cancellable(
        program,
        func,
        input.iter(),
        parts,
        combine,
        CombineStrategy::default(),
        cancel,
    )
}

/// [`run_map_task`] with an explicit combining strategy.
pub fn run_map_task_with(
    program: &dyn Program,
    func: FuncId,
    input: &[Record],
    parts: usize,
    combine: bool,
    strategy: CombineStrategy,
) -> Result<Vec<Bucket>> {
    let records = input.iter().map(|(k, v)| (k.as_slice(), v.as_slice()));
    run_map_records_cancellable(program, func, records, parts, combine, strategy, None)
}

fn run_map_records_cancellable<'a>(
    program: &dyn Program,
    func: FuncId,
    input: impl Iterator<Item = (&'a [u8], &'a [u8])>,
    parts: usize,
    combine: bool,
    strategy: CombineStrategy,
    cancel: Option<&AtomicBool>,
) -> Result<Vec<Bucket>> {
    let combining = combine && program.has_combiner(func);
    if combining && strategy == CombineStrategy::Hash {
        return run_map_task_hash_combine(program, func, input, parts, cancel);
    }
    let mut buckets: Vec<Bucket> = (0..parts).map(|_| Bucket::new()).collect();
    for (key, value) in input {
        check_cancel(cancel)?;
        program.map_bytes(func, key, value, &mut |k2, v2| {
            let p = program.partition(k2, parts);
            buckets[p].push(k2, v2);
        })?;
    }
    if combining {
        for b in &mut buckets {
            let taken = std::mem::take(b);
            *b = combine_bucket(program, func, taken)?;
        }
    } else {
        sort_runs(&mut buckets);
    }
    Ok(buckets)
}

/// Uphold the sorted-run output guarantee on the raw (no-combiner) path:
/// both combiner strategies already emit each bucket in sorted key order,
/// so this key-stable in-place sort makes *every* map output bucket a
/// sorted run. Reduce output is unchanged — the reduce side's stable
/// sort/merge preserves each bucket's per-key value order either way.
fn sort_runs(buckets: &mut [Bucket]) {
    for b in buckets {
        b.sort();
    }
}

fn run_map_task_hash_combine<'a>(
    program: &dyn Program,
    func: FuncId,
    input: impl Iterator<Item = (&'a [u8], &'a [u8])>,
    parts: usize,
    cancel: Option<&AtomicBool>,
) -> Result<Vec<Bucket>> {
    let mut combiners: Vec<StreamCombiner> = (0..parts).map(|_| StreamCombiner::new()).collect();
    for (key, value) in input {
        check_cancel(cancel)?;
        // `emit` cannot return an error, so a failing partial fold inside
        // the combiner is stashed and re-raised after the map call.
        let mut deferred: Option<Error> = None;
        program.map_bytes(func, key, value, &mut |k2, v2| {
            if deferred.is_some() {
                return;
            }
            let p = program.partition(k2, parts);
            if let Err(e) = combiners[p].insert(program, func, k2, v2) {
                deferred = Some(e);
            }
        })?;
        if let Some(e) = deferred {
            return Err(e);
        }
    }
    combiners.into_iter().map(|c| c.finalize(program, func)).collect()
}

/// Locally sort a bucket and apply the combiner to each key group.
pub fn combine_bucket(program: &dyn Program, func: FuncId, mut bucket: Bucket) -> Result<Bucket> {
    bucket.sort();
    let mut out = Bucket::new();
    for (key, values) in bucket.groups() {
        let mut iter = values;
        program.combine_bytes(func, key, &mut iter, &mut |k, v| out.push(k, v))?;
    }
    Ok(out)
}

/// Run one reduce task: sort the gathered records of one partition, group
/// by key, and apply reduce function `func` to each group.
pub fn run_reduce_task(program: &dyn Program, func: FuncId, input: Bucket) -> Result<Bucket> {
    run_reduce_task_cancellable(program, func, input, None)
}

/// [`run_reduce_task`] with a cooperative-cancellation flag checked at every
/// key-group boundary.
pub fn run_reduce_task_cancellable(
    program: &dyn Program,
    func: FuncId,
    mut input: Bucket,
    cancel: Option<&AtomicBool>,
) -> Result<Bucket> {
    input.sort();
    let mut out = Bucket::new();
    for (key, values) in input.groups() {
        check_cancel(cancel)?;
        let mut iter = values;
        program.reduce_bytes(func, key, &mut iter, &mut |k, v| out.push(k, v))?;
    }
    Ok(out)
}

/// [`run_reduce_task`] over pre-sorted runs: stream key groups out of a
/// k-way [`RunMerger`] straight into the reduce function, never
/// materializing the concatenated partition. Byte-identical to the
/// concatenate+sort kernel — the merge breaks equal keys by run index,
/// reproducing exactly the stable sort's value order.
pub fn run_reduce_task_merge(
    program: &dyn Program,
    func: FuncId,
    runs: &[Bucket],
) -> Result<Bucket> {
    run_reduce_task_merge_cancellable(program, func, runs, None)
}

/// [`run_reduce_task_merge`] with a cooperative-cancellation flag checked
/// at every key-group boundary.
pub fn run_reduce_task_merge_cancellable(
    program: &dyn Program,
    func: FuncId,
    runs: &[Bucket],
    cancel: Option<&AtomicBool>,
) -> Result<Bucket> {
    let mut merger = RunMerger::new(runs);
    let mut spans = Vec::new();
    let mut out = Bucket::new();
    while let Some(key) = merger.next_group(&mut spans) {
        check_cancel(cancel)?;
        let mut iter = spans.iter().flat_map(|&(r, s, e)| (s..e).map(move |i| runs[r].get(i).1));
        program.reduce_bytes(func, key, &mut iter, &mut |k, v| out.push(k, v))?;
    }
    Ok(out)
}

/// Run one fused reduce+map task: sort the gathered records of one
/// partition, reduce each key group, and feed every reduced record
/// straight into map function `map_func`, partitioning the map output into
/// `parts` buckets — without ever materializing the reduce output. This is
/// the `reducemap` operation of the paper's iterative pipeline: one task
/// does the work of a reduce round plus the following map round.
///
/// Because the reduced records are produced in sorted-group order — the
/// exact order [`run_reduce_task`]'s output bucket would hold them — the
/// buckets returned here are byte-identical to running the reduce task and
/// then a map task over its output.
pub fn run_reduce_map_task(
    program: &dyn Program,
    reduce_func: FuncId,
    map_func: FuncId,
    input: Bucket,
    parts: usize,
    combine: bool,
) -> Result<Vec<Bucket>> {
    run_reduce_map_task_cancellable(program, reduce_func, map_func, input, parts, combine, None)
}

/// [`run_reduce_map_task`] with a cooperative-cancellation flag checked at
/// every key-group boundary of the reduce pass.
pub fn run_reduce_map_task_cancellable(
    program: &dyn Program,
    reduce_func: FuncId,
    map_func: FuncId,
    mut input: Bucket,
    parts: usize,
    combine: bool,
    cancel: Option<&AtomicBool>,
) -> Result<Vec<Bucket>> {
    input.sort();
    run_reduce_map_groups(program, reduce_func, map_func, parts, combine, cancel, &mut |sink| {
        for (key, values) in input.groups() {
            let mut iter = values;
            sink(key, &mut iter)?;
        }
        Ok(())
    })
}

/// [`run_reduce_map_task`] over pre-sorted runs: the k-way-merge twin of
/// [`run_reduce_task_merge`], streaming merged key groups through the fused
/// reduce+map pipeline without concatenating the partition.
pub fn run_reduce_map_task_merge(
    program: &dyn Program,
    reduce_func: FuncId,
    map_func: FuncId,
    runs: &[Bucket],
    parts: usize,
    combine: bool,
) -> Result<Vec<Bucket>> {
    run_reduce_map_task_merge_cancellable(
        program,
        reduce_func,
        map_func,
        runs,
        parts,
        combine,
        None,
    )
}

/// [`run_reduce_map_task_merge`] with a cooperative-cancellation flag
/// checked at every key-group boundary of the reduce pass.
pub fn run_reduce_map_task_merge_cancellable(
    program: &dyn Program,
    reduce_func: FuncId,
    map_func: FuncId,
    runs: &[Bucket],
    parts: usize,
    combine: bool,
    cancel: Option<&AtomicBool>,
) -> Result<Vec<Bucket>> {
    run_reduce_map_groups(program, reduce_func, map_func, parts, combine, cancel, &mut |sink| {
        let mut merger = RunMerger::new(runs);
        let mut spans = Vec::new();
        while let Some(key) = merger.next_group(&mut spans) {
            let mut iter =
                spans.iter().flat_map(|&(r, s, e)| (s..e).map(move |i| runs[r].get(i).1));
            sink(key, &mut iter)?;
        }
        Ok(())
    })
}

/// Sink handed one sorted `(key, values)` group at a time by a group
/// source (see [`run_reduce_map_groups`]).
type GroupSink<'a> = &'a mut dyn FnMut(&[u8], &mut dyn Iterator<Item = &[u8]>) -> Result<()>;

/// The fused reduce+map pipeline, factored over its group source: `drive`
/// walks the sorted key groups (from one sorted bucket or a k-way merge)
/// and hands each to the sink, which reduces it and feeds the reduced
/// records straight into the map function. Sharing this body is what keeps
/// the merge and concatenate+sort paths byte-identical by construction.
fn run_reduce_map_groups(
    program: &dyn Program,
    reduce_func: FuncId,
    map_func: FuncId,
    parts: usize,
    combine: bool,
    cancel: Option<&AtomicBool>,
    drive: &mut dyn FnMut(GroupSink<'_>) -> Result<()>,
) -> Result<Vec<Bucket>> {
    use std::cell::RefCell;
    let combining = combine && program.has_combiner(map_func);
    // Emit closures cannot return errors, and here two of them nest
    // (reduce emit wrapping map emit), so failures from either layer are
    // stashed in one shared slot and re-raised after each reduce call.
    let deferred: RefCell<Option<Error>> = RefCell::new(None);
    if combining && CombineStrategy::default() == CombineStrategy::Hash {
        let combiners: RefCell<Vec<StreamCombiner>> =
            RefCell::new((0..parts).map(|_| StreamCombiner::new()).collect());
        drive(&mut |key, values| {
            check_cancel(cancel)?;
            program.reduce_bytes(reduce_func, key, values, &mut |rk, rv| {
                if deferred.borrow().is_some() {
                    return;
                }
                let r = program.map_bytes(map_func, rk, rv, &mut |k2, v2| {
                    if deferred.borrow().is_some() {
                        return;
                    }
                    let p = program.partition(k2, parts);
                    if let Err(e) = combiners.borrow_mut()[p].insert(program, map_func, k2, v2) {
                        *deferred.borrow_mut() = Some(e);
                    }
                });
                if let Err(e) = r {
                    *deferred.borrow_mut() = Some(e);
                }
            })?;
            match deferred.borrow_mut().take() {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })?;
        return combiners.into_inner().into_iter().map(|c| c.finalize(program, map_func)).collect();
    }
    let buckets: RefCell<Vec<Bucket>> = RefCell::new((0..parts).map(|_| Bucket::new()).collect());
    drive(&mut |key, values| {
        check_cancel(cancel)?;
        program.reduce_bytes(reduce_func, key, values, &mut |rk, rv| {
            if deferred.borrow().is_some() {
                return;
            }
            let r = program.map_bytes(map_func, rk, rv, &mut |k2, v2| {
                let p = program.partition(k2, parts);
                buckets.borrow_mut()[p].push(k2, v2);
            });
            if let Err(e) = r {
                *deferred.borrow_mut() = Some(e);
            }
        })?;
        match deferred.borrow_mut().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;
    let mut buckets = buckets.into_inner();
    if combining {
        for b in &mut buckets {
            let taken = std::mem::take(b);
            *b = combine_bucket(program, map_func, taken)?;
        }
    } else {
        sort_runs(&mut buckets);
    }
    Ok(buckets)
}

/// Fold a group's pending values eagerly once this many have accumulated.
/// Bounds the per-group memory of hot keys while keeping fold calls rare
/// enough that the combiner cost stays amortized.
const FOLD_EVERY: usize = 64;

/// Sentinel for "no entry" in the combiner's table and span chains.
const NONE: u32 = u32::MAX;

/// One key group inside a [`StreamCombiner`].
struct Group {
    /// Key bytes live at `koff..koff + klen` in the key arena.
    koff: u32,
    klen: u32,
    /// Most recent span id for this group (`NONE` when empty); spans chain
    /// backwards through [`Span::prev`], newest first.
    tail: u32,
    /// Pending span count (chain length from `tail`).
    pending: u32,
    /// Set when a trial fold showed this combiner is not key-preserving
    /// for this group; its raw values are then kept until finalize.
    no_fold: bool,
}

/// One pending value: a slice of the value arena plus a link to the
/// previous span of the same group. Chaining through one global vector
/// keeps the per-group bookkeeping allocation-free no matter how many
/// distinct keys a map task produces.
#[derive(Clone, Copy)]
struct Span {
    off: u32,
    len: u32,
    prev: u32,
}

/// Streaming in-mapper combiner: an open-addressing hash index over key
/// bytes with arena storage, folding hot groups incrementally via the
/// program's combiner. Everything lives in flat vectors — inserting a
/// record is hash + probe + two arena appends, no allocation.
struct StreamCombiner {
    /// Power-of-two open-addressing table of group ids (`NONE` = empty).
    /// Key comparison is always by bytes, never by hash alone.
    table: Vec<u32>,
    /// Cached key hash per group (avoids re-hashing on table growth).
    hashes: Vec<u64>,
    groups: Vec<Group>,
    spans: Vec<Span>,
    keys: Vec<u8>,
    vals: Vec<u8>,
    /// Reusable fold scratch: the group's spans in arrival order.
    span_scratch: Vec<(u32, u32)>,
    /// Reusable fold scratch: folded output bytes and their spans.
    out_scratch: Vec<u8>,
    out_spans: Vec<(u32, u32)>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl StreamCombiner {
    fn new() -> Self {
        StreamCombiner {
            table: vec![NONE; 16],
            hashes: Vec::new(),
            groups: Vec::new(),
            spans: Vec::new(),
            keys: Vec::new(),
            vals: Vec::new(),
            span_scratch: Vec::new(),
            out_scratch: Vec::new(),
            out_spans: Vec::new(),
        }
    }

    fn key_of(&self, g: &Group) -> &[u8] {
        &self.keys[g.koff as usize..(g.koff + g.klen) as usize]
    }

    /// Append a value span to a group's chain.
    fn push_val(&mut self, gid: usize, value: &[u8]) {
        let off = self.vals.len();
        assert!(off + value.len() <= u32::MAX as usize, "combiner arena exceeds 4 GiB");
        self.vals.extend_from_slice(value);
        let g = &mut self.groups[gid];
        self.spans.push(Span { off: off as u32, len: value.len() as u32, prev: g.tail });
        g.tail = (self.spans.len() - 1) as u32;
        g.pending += 1;
    }

    /// Double the table and re-seat every group (hashes are cached, keys
    /// are never re-read).
    fn grow_table(&mut self) {
        let mask = self.table.len() * 2 - 1;
        let mut table = vec![NONE; mask + 1];
        for (gid, &h) in self.hashes.iter().enumerate() {
            let mut i = h as usize & mask;
            while table[i] != NONE {
                i = (i + 1) & mask;
            }
            table[i] = gid as u32;
        }
        self.table = table;
    }

    /// Find the group for `key`, creating it if new.
    fn group_for(&mut self, key: &[u8]) -> usize {
        if (self.groups.len() + 1) * 8 > self.table.len() * 7 {
            self.grow_table();
        }
        let h = fnv1a(key);
        let mask = self.table.len() - 1;
        let mut i = h as usize & mask;
        loop {
            match self.table[i] {
                slot if slot == NONE => {
                    let koff = self.keys.len();
                    assert!(koff + key.len() <= u32::MAX as usize, "combiner arena exceeds 4 GiB");
                    self.keys.extend_from_slice(key);
                    self.groups.push(Group {
                        koff: koff as u32,
                        klen: key.len() as u32,
                        tail: NONE,
                        pending: 0,
                        no_fold: false,
                    });
                    self.hashes.push(h);
                    let gid = self.groups.len() - 1;
                    self.table[i] = gid as u32;
                    return gid;
                }
                slot => {
                    let gid = slot as usize;
                    if self.hashes[gid] == h && self.key_of(&self.groups[gid]) == key {
                        return gid;
                    }
                    i = (i + 1) & mask;
                }
            }
        }
    }

    fn insert(
        &mut self,
        program: &dyn Program,
        func: FuncId,
        key: &[u8],
        value: &[u8],
    ) -> Result<()> {
        let gid = self.group_for(key);
        self.push_val(gid, value);
        let g = &self.groups[gid];
        if g.pending as usize >= FOLD_EVERY && !g.no_fold {
            self.fold_group(program, func, gid)?;
        }
        Ok(())
    }

    /// Walk a group's span chain into `span_scratch` in arrival order.
    fn collect_spans(&mut self, gid: usize) {
        self.span_scratch.clear();
        let mut s = self.groups[gid].tail;
        while s != NONE {
            let sp = self.spans[s as usize];
            self.span_scratch.push((sp.off, sp.len));
            s = sp.prev;
        }
        self.span_scratch.reverse();
    }

    /// Collapse a group's pending values through the combiner. The fold is
    /// a trial: if the combiner emits any key other than the group key it
    /// is not key-preserving, so the fold is rolled back and the group
    /// keeps raw values until finalize (where emitting foreign keys is
    /// handled by the ordinary output path).
    fn fold_group(&mut self, program: &dyn Program, func: FuncId, gid: usize) -> Result<()> {
        self.collect_spans(gid);
        self.out_scratch.clear();
        self.out_spans.clear();
        let g = &self.groups[gid];
        let key = &self.keys[g.koff as usize..(g.koff + g.klen) as usize];
        let vals = &self.vals;
        let mut iter =
            self.span_scratch.iter().map(|&(off, len)| &vals[off as usize..(off + len) as usize]);
        let out_scratch = &mut self.out_scratch;
        let out_spans = &mut self.out_spans;
        let mut preserved = true;
        program.combine_bytes(func, key, &mut iter, &mut |k, v| {
            if k != key {
                preserved = false;
            }
            let off = out_scratch.len() as u32;
            out_scratch.extend_from_slice(v);
            out_spans.push((off, v.len() as u32));
        })?;
        if preserved {
            // Replace the chain with the folded values. The superseded
            // value bytes and span entries stay behind in the arenas until
            // finalize — bounded by input size, the price of never moving
            // live data.
            self.groups[gid].tail = NONE;
            self.groups[gid].pending = 0;
            let out_spans = std::mem::take(&mut self.out_spans);
            for &(off, len) in &out_spans {
                let voff = self.vals.len();
                assert!(voff + len as usize <= u32::MAX as usize, "combiner arena exceeds 4 GiB");
                self.vals.extend_from_slice(&self.out_scratch[off as usize..(off + len) as usize]);
                let g = &mut self.groups[gid];
                self.spans.push(Span { off: voff as u32, len, prev: g.tail });
                g.tail = (self.spans.len() - 1) as u32;
                g.pending += 1;
            }
            self.out_spans = out_spans;
        } else {
            self.groups[gid].no_fold = true;
        }
        Ok(())
    }

    /// Sort groups by key bytes and run the combiner over each, emitting
    /// into the output bucket — the same visit order as the sort path, so
    /// both strategies produce identical buckets.
    fn finalize(mut self, program: &dyn Program, func: FuncId) -> Result<Bucket> {
        let mut order: Vec<u32> = (0..self.groups.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            self.key_of(&self.groups[a as usize]).cmp(self.key_of(&self.groups[b as usize]))
        });
        let mut out = Bucket::with_capacity(self.groups.len(), self.keys.len());
        for gid in order {
            self.collect_spans(gid as usize);
            let g = &self.groups[gid as usize];
            let key = &self.keys[g.koff as usize..(g.koff + g.klen) as usize];
            let vals = &self.vals;
            let mut iter = self
                .span_scratch
                .iter()
                .map(|&(off, len)| &vals[off as usize..(off + len) as usize]);
            program.combine_bytes(func, key, &mut iter, &mut |k, v| out.push(k, v))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{encode_record, Datum};
    use crate::program::{MapReduce, Simple};

    struct WordCount;

    impl MapReduce for WordCount {
        type K1 = u64;
        type V1 = String;
        type K2 = String;
        type V2 = u64;

        fn map(&self, _k: u64, v: String, emit: &mut dyn FnMut(String, u64)) {
            for w in v.split_whitespace() {
                emit(w.to_owned(), 1);
            }
        }

        fn reduce(
            &self,
            _k: &String,
            vs: &mut dyn Iterator<Item = u64>,
            emit: &mut dyn FnMut(u64),
        ) {
            emit(vs.sum());
        }

        fn has_combiner(&self) -> bool {
            true
        }
    }

    fn lines(texts: &[&str]) -> Vec<Record> {
        texts.iter().enumerate().map(|(i, t)| encode_record(&(i as u64), &t.to_string())).collect()
    }

    fn counts(bucket: &Bucket) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = bucket
            .iter()
            .map(|(k, val)| (String::from_bytes(k).unwrap(), u64::from_bytes(val).unwrap()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn map_then_reduce_counts_words() {
        let p = Simple(WordCount);
        let input = lines(&["the cat sat", "the cat"]);
        let buckets = run_map_task(&p, 0, &input, 3, false).unwrap();
        assert_eq!(buckets.len(), 3);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 5);

        // Gather all partitions and reduce each.
        let mut all = Bucket::new();
        for b in buckets {
            let out = run_reduce_task(&p, 0, b).unwrap();
            all.extend_from(&out);
        }
        assert_eq!(counts(&all), vec![("cat".into(), 2), ("sat".into(), 1), ("the".into(), 2)]);
    }

    #[test]
    fn combiner_shrinks_map_output_but_preserves_result() {
        let p = Simple(WordCount);
        let input = lines(&["a a a a b", "a b b"]);
        let plain = run_map_task(&p, 0, &input, 2, false).unwrap();
        let combined = run_map_task(&p, 0, &input, 2, true).unwrap();
        let plain_n: usize = plain.iter().map(|b| b.len()).sum();
        let comb_n: usize = combined.iter().map(|b| b.len()).sum();
        assert_eq!(plain_n, 8);
        assert_eq!(comb_n, 2, "one record per distinct word after combining");
        assert!(
            combined.iter().map(|b| b.byte_size()).sum::<usize>()
                < plain.iter().map(|b| b.byte_size()).sum::<usize>()
        );

        // Same final counts either way.
        let reduce_all = |buckets: Vec<Bucket>| {
            let mut all = Bucket::new();
            for b in buckets {
                all.extend_from(&run_reduce_task(&p, 0, b).unwrap());
            }
            counts(&all)
        };
        assert_eq!(reduce_all(plain), reduce_all(combined));
    }

    #[test]
    fn bucket_input_matches_record_input() {
        let p = Simple(WordCount);
        let input = lines(&["the cat sat", "the cat", "on the mat"]);
        let bucket = Bucket::from_records(input.clone());
        for combine in [false, true] {
            let from_records = run_map_task(&p, 0, &input, 3, combine).unwrap();
            let from_bucket = run_map_task_bucket(&p, 0, &bucket, 3, combine).unwrap();
            assert_eq!(from_records, from_bucket, "combine={combine}");
        }
    }

    #[test]
    fn hash_and_sort_combining_produce_identical_buckets() {
        let p = Simple(WordCount);
        // Zipf-ish duplicate-heavy input plus singletons, across partitions.
        let input = lines(&[
            "the the the the quick brown fox the the",
            "the quick dog jumps over the lazy dog",
            "zebra apple the quick the",
        ]);
        for parts in [1, 2, 5] {
            let hash =
                run_map_task_with(&p, 0, &input, parts, true, CombineStrategy::Hash).unwrap();
            let sort =
                run_map_task_with(&p, 0, &input, parts, true, CombineStrategy::Sort).unwrap();
            assert_eq!(hash, sort, "strategies diverged at parts={parts}");
        }
    }

    #[test]
    fn hash_combiner_folds_hot_keys_incrementally() {
        // One key emitted far past FOLD_EVERY: partial folds must keep the
        // pending-span count bounded and still sum correctly.
        let p = Simple(WordCount);
        let line = "hot ".repeat(10 * FOLD_EVERY);
        let input = lines(&[line.trim()]);
        let buckets = run_map_task_with(&p, 0, &input, 1, true, CombineStrategy::Hash).unwrap();
        assert_eq!(counts(&buckets[0]), vec![("hot".into(), 10 * FOLD_EVERY as u64)]);
    }

    /// A combiner that is *not* key-preserving: it re-keys every group to a
    /// constant. The trial-fold rollback must detect this and defer to
    /// finalize, where output matches the sort path.
    struct Rekey;

    impl Program for Rekey {
        fn map_bytes(
            &self,
            _func: FuncId,
            _key: &[u8],
            _value: &[u8],
            _emit: &mut dyn FnMut(&[u8], &[u8]),
        ) -> Result<()> {
            unreachable!("helper impl only used for combine_bytes")
        }

        fn reduce_bytes(
            &self,
            _func: FuncId,
            _key: &[u8],
            _values: &mut dyn Iterator<Item = &[u8]>,
            _emit: &mut dyn FnMut(&[u8], &[u8]),
        ) -> Result<()> {
            unreachable!("helper impl only used for combine_bytes")
        }

        fn combine_bytes(
            &self,
            _func: FuncId,
            _key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            emit: &mut dyn FnMut(&[u8], &[u8]),
        ) -> Result<()> {
            let n: u64 = values.map(|v| u64::from_bytes(v).unwrap()).sum();
            emit(&"ALL".to_string().to_bytes(), &n.to_bytes());
            Ok(())
        }

        fn has_combiner(&self, _func: FuncId) -> bool {
            true
        }
    }

    #[test]
    fn non_key_preserving_combiner_rolls_back_partial_folds() {
        let p = Rekey;
        let mut c = StreamCombiner::new();
        let key = "hot".to_string().to_bytes();
        for _ in 0..(2 * FOLD_EVERY) {
            c.insert(&p, 0, &key, &1u64.to_bytes()).unwrap();
        }
        // The trial fold re-keyed, so raw values must all still be pending.
        assert!(c.groups[0].no_fold);
        assert_eq!(c.groups[0].pending as usize, 2 * FOLD_EVERY);
        let out = c.finalize(&p, 0).unwrap();
        assert_eq!(out.len(), 1);
        let (k, v) = out.get(0);
        assert_eq!(String::from_bytes(k).unwrap(), "ALL");
        assert_eq!(u64::from_bytes(v).unwrap(), 2 * FOLD_EVERY as u64);
    }

    #[test]
    fn partitioning_is_consistent_for_same_key() {
        let p = Simple(WordCount);
        let input = lines(&["x y z x y z x"]);
        let buckets = run_map_task(&p, 0, &input, 4, false).unwrap();
        // Every occurrence of a word must land in the same bucket: reducing
        // each bucket independently must never split a key.
        for b in &buckets {
            let mut sorted = b.clone();
            sorted.sort();
            for (key, values) in sorted.groups() {
                let n = values.count();
                let word = String::from_bytes(key).unwrap();
                let expect = match word.as_str() {
                    "x" => 3,
                    _ => 2,
                };
                assert_eq!(n, expect, "word {word} split across buckets");
            }
        }
    }

    #[test]
    fn empty_input_produces_empty_buckets() {
        let p = Simple(WordCount);
        for strategy in [CombineStrategy::Hash, CombineStrategy::Sort] {
            let buckets = run_map_task_with(&p, 0, &[], 2, true, strategy).unwrap();
            assert!(buckets.iter().all(|b| b.is_empty()));
        }
        let out = run_reduce_task(&p, 0, Bucket::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn map_error_propagates() {
        let p = Simple(WordCount);
        let bad = vec![(vec![1u8, 2], b"not a string".to_vec())];
        assert!(run_map_task(&p, 0, &bad, 1, false).is_err());
        assert!(run_map_task_with(&p, 0, &bad, 1, true, CombineStrategy::Hash).is_err());
    }

    /// A chainable iterative program over `u64` records: reduce output
    /// feeds map input, like PSO's particle messages. Map fans each record
    /// out to its own key and a neighbor key; reduce sums each group.
    struct Chain;

    impl Program for Chain {
        fn map_bytes(
            &self,
            _func: FuncId,
            key: &[u8],
            value: &[u8],
            emit: &mut dyn FnMut(&[u8], &[u8]),
        ) -> Result<()> {
            let k = u64::from_bytes(key)?;
            let v = u64::from_bytes(value)?;
            emit(&k.to_bytes(), &(v + 1).to_bytes());
            emit(&((k * 7 + 1) % 5).to_bytes(), &v.to_bytes());
            Ok(())
        }

        fn reduce_bytes(
            &self,
            _func: FuncId,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            emit: &mut dyn FnMut(&[u8], &[u8]),
        ) -> Result<()> {
            let mut sum = 0u64;
            for v in values {
                sum += u64::from_bytes(v)?;
            }
            emit(key, &sum.to_bytes());
            Ok(())
        }

        fn combine_bytes(
            &self,
            func: FuncId,
            key: &[u8],
            values: &mut dyn Iterator<Item = &[u8]>,
            emit: &mut dyn FnMut(&[u8], &[u8]),
        ) -> Result<()> {
            self.reduce_bytes(func, key, values, emit)
        }

        fn has_combiner(&self, _func: FuncId) -> bool {
            true
        }
    }

    fn chain_input() -> Bucket {
        let mut b = Bucket::new();
        for i in 0..40u64 {
            b.push(&(i % 5).to_bytes(), &(i * 3).to_bytes());
        }
        b
    }

    #[test]
    fn fused_kernel_matches_reduce_then_map() {
        let p = Chain;
        for parts in [1, 3, 5] {
            for combine in [false, true] {
                let fused = run_reduce_map_task(&p, 0, 0, chain_input(), parts, combine).unwrap();
                let reduced = run_reduce_task(&p, 0, chain_input()).unwrap();
                let unfused = run_map_task_bucket(&p, 0, &reduced, parts, combine).unwrap();
                assert_eq!(fused, unfused, "parts={parts} combine={combine}");
                assert_eq!(fused.len(), parts);
            }
        }
    }

    #[test]
    fn fused_kernel_on_empty_input_is_empty() {
        let fused = run_reduce_map_task(&Chain, 0, 0, Bucket::new(), 2, false).unwrap();
        assert!(fused.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn pre_set_cancel_flag_aborts_every_kernel() {
        let p = Simple(WordCount);
        let flag = AtomicBool::new(true);
        let input = Bucket::from_records(lines(&["the cat sat", "on the mat"]));
        for combine in [false, true] {
            let r = run_map_task_bucket_cancellable(&p, 0, &input, 2, combine, Some(&flag));
            assert!(matches!(r, Err(Error::Cancelled)), "map combine={combine}");
        }
        let mut gathered = Bucket::new();
        gathered.push(&"w".to_string().to_bytes(), &1u64.to_bytes());
        let r = run_reduce_task_cancellable(&p, 0, gathered, Some(&flag));
        assert!(matches!(r, Err(Error::Cancelled)), "reduce");
        for combine in [false, true] {
            let r = run_reduce_map_task_cancellable(
                &Chain,
                0,
                0,
                chain_input(),
                2,
                combine,
                Some(&flag),
            );
            assert!(matches!(r, Err(Error::Cancelled)), "reducemap combine={combine}");
        }
    }

    #[test]
    fn unset_cancel_flag_leaves_outputs_identical() {
        let p = Simple(WordCount);
        let flag = AtomicBool::new(false);
        let input = Bucket::from_records(lines(&["the cat sat", "the cat"]));
        for combine in [false, true] {
            let plain = run_map_task_bucket(&p, 0, &input, 3, combine).unwrap();
            let flagged =
                run_map_task_bucket_cancellable(&p, 0, &input, 3, combine, Some(&flag)).unwrap();
            assert_eq!(plain, flagged, "combine={combine}");
        }
        let fused = run_reduce_map_task(&Chain, 0, 0, chain_input(), 3, true).unwrap();
        let flagged =
            run_reduce_map_task_cancellable(&Chain, 0, 0, chain_input(), 3, true, Some(&flag))
                .unwrap();
        assert_eq!(fused, flagged);
    }

    #[test]
    fn map_output_buckets_are_sorted_runs() {
        let p = Simple(WordCount);
        let input = lines(&["zebra the mat cat", "the cat apple zebra"]);
        for combine in [false, true] {
            for strategy in [CombineStrategy::Hash, CombineStrategy::Sort] {
                let buckets = run_map_task_with(&p, 0, &input, 3, combine, strategy).unwrap();
                for b in &buckets {
                    assert!(b.is_sorted(), "combine={combine} strategy={strategy:?}");
                }
            }
        }
        // The fused kernel's map output upholds the same guarantee.
        for combine in [false, true] {
            let fused = run_reduce_map_task(&Chain, 0, 0, chain_input(), 3, combine).unwrap();
            assert!(fused.iter().all(Bucket::is_sorted), "fused combine={combine}");
        }
    }

    /// Partition the map output of both input lines into per-task runs —
    /// the shape the reduce side sees after a shuffle.
    fn shuffled_runs(parts: usize) -> Vec<Vec<Bucket>> {
        let p = Simple(WordCount);
        let task_a = lines(&["the cat sat on the mat", "the cat"]);
        let task_b = lines(&["a mat for the cat", "the the the"]);
        let runs_a = run_map_task(&p, 0, &task_a, parts, false).unwrap();
        let runs_b = run_map_task(&p, 0, &task_b, parts, false).unwrap();
        (0..parts).map(|part| vec![runs_a[part].clone(), runs_b[part].clone()]).collect()
    }

    #[test]
    fn merge_reduce_matches_concat_sort_reduce() {
        let p = Simple(WordCount);
        for runs in shuffled_runs(3) {
            let mut concat = Bucket::new();
            for r in &runs {
                concat.extend_from(r);
            }
            let oracle = run_reduce_task(&p, 0, concat).unwrap();
            let merged = run_reduce_task_merge(&p, 0, &runs).unwrap();
            assert_eq!(merged, oracle);
        }
    }

    #[test]
    fn merge_reduce_map_matches_concat_sort_reduce_map() {
        // Chain records keyed 0..5 across two producer runs, per partition.
        let runs_a = run_map_task_bucket(&Chain, 0, &chain_input(), 2, false).unwrap();
        let runs_b = run_map_task_bucket(&Chain, 0, &chain_input(), 2, false).unwrap();
        for part in 0..2 {
            let runs = vec![runs_a[part].clone(), runs_b[part].clone()];
            for parts in [1, 3] {
                for combine in [false, true] {
                    let mut concat = Bucket::new();
                    for r in &runs {
                        concat.extend_from(r);
                    }
                    let oracle = run_reduce_map_task(&Chain, 0, 0, concat, parts, combine).unwrap();
                    let merged =
                        run_reduce_map_task_merge(&Chain, 0, 0, &runs, parts, combine).unwrap();
                    assert_eq!(merged, oracle, "part={part} parts={parts} combine={combine}");
                }
            }
        }
    }

    #[test]
    fn merge_kernels_honor_cancellation() {
        let p = Simple(WordCount);
        let flag = AtomicBool::new(true);
        let runs = shuffled_runs(1).remove(0);
        let r = run_reduce_task_merge_cancellable(&p, 0, &runs, Some(&flag));
        assert!(matches!(r, Err(Error::Cancelled)));
        let chain_runs = run_map_task_bucket(&Chain, 0, &chain_input(), 1, false).unwrap();
        let r =
            run_reduce_map_task_merge_cancellable(&Chain, 0, 0, &chain_runs, 2, true, Some(&flag));
        assert!(matches!(r, Err(Error::Cancelled)));
    }

    #[test]
    fn merge_kernels_on_empty_runs_are_empty() {
        let p = Simple(WordCount);
        assert!(run_reduce_task_merge(&p, 0, &[]).unwrap().is_empty());
        assert!(run_reduce_task_merge(&p, 0, &[Bucket::new(), Bucket::new()]).unwrap().is_empty());
        let fused = run_reduce_map_task_merge(&Chain, 0, 0, &[], 2, false).unwrap();
        assert!(fused.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn merge_mode_parses() {
        assert_eq!(MergeMode::parse("merge").unwrap(), MergeMode::Merge);
        assert_eq!(MergeMode::parse("sort").unwrap(), MergeMode::Sort);
        assert!(MergeMode::parse("bogus").is_err());
        assert_eq!(MergeMode::default(), MergeMode::Merge);
    }

    #[test]
    fn fused_kernel_propagates_map_errors() {
        // Reduce emits (key, sum) but the WordCount map expects a String
        // value, so the inner map fails; the error must surface through the
        // nested emit closures.
        let p = Simple(WordCount);
        let mut input = Bucket::new();
        input.push(&"w".to_string().to_bytes(), &1u64.to_bytes());
        for combine in [false, true] {
            assert!(run_reduce_map_task(&p, 0, 0, input.clone(), 1, combine).is_err());
        }
    }
}
