//! Task kernels: the actual work of a map task or a reduce task.
//!
//! Every execution implementation — serial, mock-parallel, thread pool,
//! master/slave, and the Hadoop baseline — funnels through these two
//! functions, which is what guarantees the paper's property that all
//! implementations "produce identical answers" (§IV-A): the runtimes differ
//! only in *where and when* tasks run, never in what a task computes.

use crate::bucket::Bucket;
use crate::error::Result;
use crate::kv::Record;
use crate::plan::FuncId;
use crate::program::Program;
use crate::sortgroup::group_sorted;

/// Run one map task: apply map function `func` to every input record and
/// partition the output into `parts` buckets. When `combine` is set and the
/// function has a combiner, each bucket is locally sorted and combined
/// before being returned — the "local reduce" optimisation of §V-A.
pub fn run_map_task(
    program: &dyn Program,
    func: FuncId,
    input: &[Record],
    parts: usize,
    combine: bool,
) -> Result<Vec<Bucket>> {
    let mut buckets: Vec<Bucket> = (0..parts).map(|_| Bucket::new()).collect();
    for (key, value) in input {
        program.map_bytes(func, key, value, &mut |k2, v2| {
            let p = program.partition(&k2, parts);
            buckets[p].push(k2, v2);
        })?;
    }
    if combine && program.has_combiner(func) {
        for b in &mut buckets {
            let taken = std::mem::take(b);
            *b = combine_bucket(program, func, taken)?;
        }
    }
    Ok(buckets)
}

/// Locally sort a bucket and apply the combiner to each key group.
pub fn combine_bucket(program: &dyn Program, func: FuncId, mut bucket: Bucket) -> Result<Bucket> {
    bucket.sort();
    let mut out = Bucket::new();
    for (key, values) in group_sorted(bucket.records()) {
        let mut iter = values;
        program.combine_bytes(func, key, &mut iter, &mut |k, v| out.push(k, v))?;
    }
    Ok(out)
}

/// Run one reduce task: sort the gathered records of one partition, group
/// by key, and apply reduce function `func` to each group.
pub fn run_reduce_task(
    program: &dyn Program,
    func: FuncId,
    records: Vec<Record>,
) -> Result<Bucket> {
    let mut bucket = Bucket::from_records(records);
    bucket.sort();
    let mut out = Bucket::new();
    for (key, values) in group_sorted(bucket.records()) {
        let mut iter = values;
        program.reduce_bytes(func, key, &mut iter, &mut |k, v| out.push(k, v))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{encode_record, Datum};
    use crate::program::{MapReduce, Simple};

    struct WordCount;

    impl MapReduce for WordCount {
        type K1 = u64;
        type V1 = String;
        type K2 = String;
        type V2 = u64;

        fn map(&self, _k: u64, v: String, emit: &mut dyn FnMut(String, u64)) {
            for w in v.split_whitespace() {
                emit(w.to_owned(), 1);
            }
        }

        fn reduce(&self, _k: &String, vs: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
            emit(vs.sum());
        }

        fn has_combiner(&self) -> bool {
            true
        }
    }

    fn lines(texts: &[&str]) -> Vec<Record> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| encode_record(&(i as u64), &t.to_string()))
            .collect()
    }

    fn counts(bucket: &Bucket) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = bucket
            .records()
            .iter()
            .map(|(k, val)| {
                (String::from_bytes(k).unwrap(), u64::from_bytes(val).unwrap())
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn map_then_reduce_counts_words() {
        let p = Simple(WordCount);
        let input = lines(&["the cat sat", "the cat"]);
        let buckets = run_map_task(&p, 0, &input, 3, false).unwrap();
        assert_eq!(buckets.len(), 3);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 5);

        // Gather all partitions and reduce each.
        let mut all = Vec::new();
        for b in buckets {
            let out = run_reduce_task(&p, 0, b.into_records()).unwrap();
            all.extend(out.into_records());
        }
        let got = counts(&Bucket::from_records(all));
        assert_eq!(
            got,
            vec![("cat".into(), 2), ("sat".into(), 1), ("the".into(), 2)]
        );
    }

    #[test]
    fn combiner_shrinks_map_output_but_preserves_result() {
        let p = Simple(WordCount);
        let input = lines(&["a a a a b", "a b b"]);
        let plain = run_map_task(&p, 0, &input, 2, false).unwrap();
        let combined = run_map_task(&p, 0, &input, 2, true).unwrap();
        let plain_n: usize = plain.iter().map(|b| b.len()).sum();
        let comb_n: usize = combined.iter().map(|b| b.len()).sum();
        assert_eq!(plain_n, 8);
        assert_eq!(comb_n, 2, "one record per distinct word after combining");
        assert!(
            combined.iter().map(|b| b.byte_size()).sum::<usize>()
                < plain.iter().map(|b| b.byte_size()).sum::<usize>()
        );

        // Same final counts either way.
        let reduce_all = |buckets: Vec<Bucket>| {
            let mut recs = Vec::new();
            for b in buckets {
                recs.extend(run_reduce_task(&p, 0, b.into_records()).unwrap().into_records());
            }
            counts(&Bucket::from_records(recs))
        };
        assert_eq!(reduce_all(plain), reduce_all(combined));
    }

    #[test]
    fn partitioning_is_consistent_for_same_key() {
        let p = Simple(WordCount);
        let input = lines(&["x y z x y z x"]);
        let buckets = run_map_task(&p, 0, &input, 4, false).unwrap();
        // Every occurrence of a word must land in the same bucket: reducing
        // each bucket independently must never split a key.
        for b in &buckets {
            let mut sorted = b.clone();
            sorted.sort();
            for (key, values) in group_sorted(sorted.records()) {
                let n = values.count();
                let word = String::from_bytes(key).unwrap();
                let expect = match word.as_str() {
                    "x" => 3,
                    _ => 2,
                };
                assert_eq!(n, expect, "word {word} split across buckets");
            }
        }
    }

    #[test]
    fn empty_input_produces_empty_buckets() {
        let p = Simple(WordCount);
        let buckets = run_map_task(&p, 0, &[], 2, true).unwrap();
        assert!(buckets.iter().all(|b| b.is_empty()));
        let out = run_reduce_task(&p, 0, vec![]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn map_error_propagates() {
        let p = Simple(WordCount);
        let bad = vec![(vec![1u8, 2], b"not a string".to_vec())];
        assert!(run_map_task(&p, 0, &bad, 1, false).is_err());
    }
}
