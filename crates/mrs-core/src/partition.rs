//! Partitioners: assign intermediate keys to reduce partitions.
//!
//! The default is a platform-independent hash partitioner (so the serial,
//! mock-parallel, pool, and distributed implementations split data
//! identically — a prerequisite for the paper's "all implementations produce
//! identical answers" debugging discipline). A modulo partitioner is
//! provided for dense integer keys such as PSO particle ids, where keeping
//! key `i` on partition `i mod n` gives the task-affinity scheduler stable
//! locality across iterations.

use mrs_rng::splitmix::hash_bytes;

/// Strategy mapping an encoded key to one of `n` partitions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Partition {
    /// SplitMix-based byte hash; balanced for arbitrary keys.
    #[default]
    Hash,
    /// Interpret the key's trailing 8 bytes as a big-endian `u64` and take
    /// it modulo `n`. Intended for `u64`-encoded keys.
    Mod,
}

const PARTITION_HASH_SEED: u64 = 0x6d72_735f_7061_7274; // "mrs_part"

impl Partition {
    /// The partition index for an encoded key. `n` must be nonzero.
    pub fn index(&self, key: &[u8], n: usize) -> usize {
        assert!(n > 0, "cannot partition into 0 parts");
        match self {
            Partition::Hash => (hash_bytes(PARTITION_HASH_SEED, key) % n as u64) as usize,
            Partition::Mod => {
                let mut tail = [0u8; 8];
                let take = key.len().min(8);
                tail[8 - take..].copy_from_slice(&key[key.len() - take..]);
                (u64::from_be_bytes(tail) % n as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::Datum;

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let p = Partition::Hash;
        for n in [1usize, 2, 7, 64] {
            for k in 0..200u64 {
                let key = k.to_bytes();
                let i = p.index(&key, n);
                assert!(i < n);
                assert_eq!(i, p.index(&key, n));
            }
        }
    }

    #[test]
    fn hash_is_reasonably_balanced() {
        let p = Partition::Hash;
        let n = 8;
        let mut counts = vec![0usize; n];
        for k in 0..8000u64 {
            counts[p.index(&k.to_bytes(), n)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn mod_maps_dense_u64_keys_cyclically() {
        let p = Partition::Mod;
        for k in 0..100u64 {
            assert_eq!(p.index(&k.to_bytes(), 7), (k % 7) as usize);
        }
    }

    #[test]
    fn mod_handles_short_keys() {
        let p = Partition::Mod;
        // Key shorter than 8 bytes: zero-extended on the left.
        assert_eq!(p.index(&[5], 16), 5);
        assert_eq!(p.index(&[], 16), 0);
    }

    #[test]
    fn single_partition_takes_everything() {
        for p in [Partition::Hash, Partition::Mod] {
            assert_eq!(p.index(b"anything", 1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "0 parts")]
    fn zero_parts_panics() {
        Partition::Hash.index(b"k", 0);
    }
}
