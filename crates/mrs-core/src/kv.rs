//! The record model and the `Datum` codec.
//!
//! Python Mrs moves pickled objects; the Rust data plane moves raw bytes and
//! gives programs a typed view through [`Datum`], a small deterministic
//! binary codec (little-endian fixed ints, varint-length-prefixed strings
//! and sequences). Two properties matter for MapReduce correctness:
//!
//! 1. round-trip fidelity (`decode(encode(x)) == x`), and
//! 2. **order preservation for numeric keys**: encoded `u64`/`i64` keys
//!    compare byte-wise in the same order as the integers (big-endian with a
//!    sign-bias for `i64`). Sorting encoded records is always a *consistent*
//!    grouping order for any key type (equal keys are adjacent because the
//!    codec is deterministic), which is all that sort-and-group requires;
//!    byte order coincides with semantic order only for the integer keys.

use crate::error::{Error, Result};

/// A serialized key-value record: the unit of data-plane traffic.
pub type Record = (Vec<u8>, Vec<u8>);

/// Types that can serve as MapReduce keys or values.
pub trait Datum: Sized {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode a value from the front of `b`, returning it and the rest.
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decode, requiring the entire slice to be consumed.
    fn from_bytes(b: &[u8]) -> Result<Self> {
        let (v, rest) = Self::decode_from(b)?;
        if rest.is_empty() {
            Ok(v)
        } else {
            Err(Error::Codec(format!("{} trailing bytes", rest.len())))
        }
    }
}

/// LEB128 unsigned varint.
pub fn write_varint(mut v: u64, buf: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 unsigned varint from the front of `b`.
pub fn read_varint(b: &[u8]) -> Result<(u64, &[u8])> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in b.iter().enumerate() {
        if shift >= 64 {
            return Err(Error::Codec("varint overflow".into()));
        }
        let bits = (byte & 0x7f) as u64;
        if shift == 63 && bits > 1 {
            return Err(Error::Codec("varint overflow".into()));
        }
        v |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok((v, &b[i + 1..]));
        }
        shift += 7;
    }
    Err(Error::Codec("truncated varint".into()))
}

fn take<'a>(b: &'a [u8], n: usize, what: &str) -> Result<(&'a [u8], &'a [u8])> {
    if b.len() < n {
        return Err(Error::Codec(format!("truncated {what}: need {n}, have {}", b.len())));
    }
    Ok(b.split_at(n))
}

impl Datum for u64 {
    // Big-endian so that byte-wise ordering of encoded keys matches numeric
    // ordering — required by sort-and-group.
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_be_bytes());
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (head, rest) = take(b, 8, "u64")?;
        Ok((u64::from_be_bytes(head.try_into().expect("len checked")), rest))
    }
}

impl Datum for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_be_bytes());
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (head, rest) = take(b, 4, "u32")?;
        Ok((u32::from_be_bytes(head.try_into().expect("len checked")), rest))
    }
}

impl Datum for i64 {
    // Sign-flip bias keeps byte order == numeric order.
    fn encode(&self, buf: &mut Vec<u8>) {
        ((*self as u64) ^ (1u64 << 63)).encode(buf);
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (raw, rest) = u64::decode_from(b)?;
        Ok(((raw ^ (1u64 << 63)) as i64, rest))
    }
}

impl Datum for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (head, rest) = take(b, 8, "f64")?;
        Ok((f64::from_bits(u64::from_le_bytes(head.try_into().expect("len checked"))), rest))
    }
}

impl Datum for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (head, rest) = take(b, 1, "bool")?;
        match head[0] {
            0 => Ok((false, rest)),
            1 => Ok((true, rest)),
            x => Err(Error::Codec(format!("bad bool byte {x}"))),
        }
    }
}

impl Datum for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(self.len() as u64, buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (len, rest) = read_varint(b)?;
        let (head, rest) = take(rest, len as usize, "string")?;
        let s =
            std::str::from_utf8(head).map_err(|e| Error::Codec(format!("invalid utf-8: {e}")))?;
        Ok((s.to_owned(), rest))
    }
}

impl Datum for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(self.len() as u64, buf);
        buf.extend_from_slice(self);
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (len, rest) = read_varint(b)?;
        let (head, rest) = take(rest, len as usize, "bytes")?;
        Ok((head.to_vec(), rest))
    }
}

impl Datum for Vec<f64> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(self.len() as u64, buf);
        for x in self {
            x.encode(buf);
        }
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (len, mut rest) = read_varint(b)?;
        // Each element takes 8 bytes: reject (and never allocate for) a
        // length claim that the remaining input cannot possibly satisfy.
        if len > rest.len() as u64 / 8 {
            return Err(Error::Codec(format!("f64 seq length {len} exceeds input")));
        }
        let mut v = Vec::with_capacity(len as usize);
        for _ in 0..len {
            let (x, r) = f64::decode_from(rest)?;
            v.push(x);
            rest = r;
        }
        Ok((v, rest))
    }
}

impl Datum for Vec<u64> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(self.len() as u64, buf);
        for x in self {
            x.encode(buf);
        }
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (len, mut rest) = read_varint(b)?;
        if len > rest.len() as u64 / 8 {
            return Err(Error::Codec(format!("u64 seq length {len} exceeds input")));
        }
        let mut v = Vec::with_capacity(len as usize);
        for _ in 0..len {
            let (x, r) = u64::decode_from(rest)?;
            v.push(x);
            rest = r;
        }
        Ok((v, rest))
    }
}

impl Datum for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        Ok(((), b))
    }
}

impl<A: Datum, B: Datum> Datum for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (a, rest) = A::decode_from(b)?;
        let (bb, rest) = B::decode_from(rest)?;
        Ok(((a, bb), rest))
    }
}

impl<A: Datum, B: Datum, C: Datum> Datum for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (a, rest) = A::decode_from(b)?;
        let (bb, rest) = B::decode_from(rest)?;
        let (c, rest) = C::decode_from(rest)?;
        Ok(((a, bb, c), rest))
    }
}

/// Encode a typed pair into a raw [`Record`].
pub fn encode_record<K: Datum, V: Datum>(k: &K, v: &V) -> Record {
    (k.to_bytes(), v.to_bytes())
}

/// Decode a raw [`Record`] into a typed pair.
pub fn decode_record<K: Datum, V: Datum>(r: &Record) -> Result<(K, V)> {
    Ok((K::from_bytes(&r.0)?, V::from_bytes(&r.1)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round<T: Datum + PartialEq + std::fmt::Debug>(x: T) {
        let b = x.to_bytes();
        assert_eq!(T::from_bytes(&b).unwrap(), x);
    }

    #[test]
    fn roundtrip_primitives() {
        round(0u64);
        round(u64::MAX);
        round(42u32);
        round(-17i64);
        round(i64::MIN);
        round(3.25f64);
        round(f64::NEG_INFINITY);
        round(true);
        round(false);
        round(String::from("héllo, wörld"));
        round(String::new());
        round(vec![0u8, 255, 3]);
        round(vec![1.5f64, -2.5]);
        round(vec![7u64, 8, 9]);
        round(());
        round((1u64, String::from("x")));
        round((1u64, 2.0f64, String::from("z")));
    }

    #[test]
    fn u64_encoding_preserves_order() {
        let pairs = [(0u64, 1u64), (1, 2), (255, 256), (u64::MAX - 1, u64::MAX), (7, 70)];
        for (a, b) in pairs {
            assert!(a.to_bytes() < b.to_bytes(), "{a} vs {b}");
        }
    }

    #[test]
    fn i64_encoding_preserves_order() {
        let vals = [i64::MIN, -1000, -1, 0, 1, 1000, i64::MAX];
        for w in vals.windows(2) {
            assert!(w[0].to_bytes() < w[1].to_bytes(), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut b = 5u64.to_bytes();
        b.push(0);
        assert!(u64::from_bytes(&b).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let b = String::from("hello").to_bytes();
        assert!(String::from_bytes(&b[..3]).is_err());
        assert!(u64::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let mut b = Vec::new();
        write_varint(2, &mut b);
        b.extend_from_slice(&[0xff, 0xfe]);
        assert!(String::from_bytes(&b).is_err());
    }

    #[test]
    fn bad_bool_byte_rejected() {
        assert!(bool::from_bytes(&[2]).is_err());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut b = Vec::new();
            write_varint(v, &mut b);
            let (back, rest) = read_varint(&b).unwrap();
            assert_eq!(back, v);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 bytes of continuation encodes > 64 bits.
        let b = [0xffu8; 11];
        assert!(read_varint(&b).is_err());
    }

    #[test]
    fn varint_tenth_byte_boundary_at_shift_63() {
        // u64::MAX is the largest representable value: nine full bytes plus
        // a tenth carrying the single remaining bit (shift == 63).
        let mut b = Vec::new();
        write_varint(u64::MAX, &mut b);
        assert_eq!(b, [&[0xffu8; 9][..], &[0x01]].concat());
        let (v, rest) = read_varint(&b).unwrap();
        assert_eq!(v, u64::MAX);
        assert!(rest.is_empty());
        // Any payload beyond that one bit in the tenth byte overflows and
        // must be rejected, not silently wrapped.
        for tenth in [0x02u8, 0x03, 0x7f] {
            let over = [&[0xffu8; 9][..], &[tenth]].concat();
            assert!(read_varint(&over).is_err(), "tenth byte {tenth:#x}");
        }
    }

    #[test]
    fn varint_truncated_continuation_rejected() {
        // A continuation bit promising more bytes than the input has is a
        // truncation error at every length, including empty input.
        assert!(read_varint(&[]).is_err());
        for n in 1..10 {
            let b = vec![0x80u8; n];
            assert!(read_varint(&b).is_err(), "{n} dangling continuation bytes");
        }
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let x = f64::from_bits(0x7ff8_0000_0000_1234);
        let b = x.to_bytes();
        assert_eq!(f64::from_bytes(&b).unwrap().to_bits(), x.to_bits());
    }

    proptest! {
        #[test]
        fn prop_roundtrip_u64(x in any::<u64>()) {
            round(x);
        }

        #[test]
        fn prop_roundtrip_string(s in ".*") {
            round(s);
        }

        #[test]
        fn prop_roundtrip_f64_vec(v in proptest::collection::vec(any::<f64>(), 0..64)) {
            let b = v.to_bytes();
            let back = Vec::<f64>::from_bytes(&b).unwrap();
            prop_assert_eq!(v.len(), back.len());
            for (a, bb) in v.iter().zip(&back) {
                prop_assert_eq!(a.to_bits(), bb.to_bits());
            }
        }

        #[test]
        fn prop_u64_order(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(a.cmp(&b), a.to_bytes().cmp(&b.to_bytes()));
        }

        #[test]
        fn prop_string_encoding_injective(a in ".*", b in ".*") {
            // Grouping correctness needs the codec to be injective: distinct
            // keys must have distinct encodings (and equal keys equal ones).
            prop_assert_eq!(a == b, a.to_bytes() == b.to_bytes());
        }

        #[test]
        fn prop_varint_roundtrip(v in any::<u64>()) {
            let mut b = Vec::new();
            write_varint(v, &mut b);
            let (back, rest) = read_varint(&b).unwrap();
            prop_assert_eq!(back, v);
            prop_assert!(rest.is_empty());
        }

        #[test]
        fn prop_varint_prefixes_always_rejected(v in any::<u64>()) {
            // Every byte of a varint except the last carries a continuation
            // bit, so every strict prefix must fail as truncated — a reader
            // can never mistake a cut-off length header for a short value.
            let mut b = Vec::new();
            write_varint(v, &mut b);
            for cut in 0..b.len() {
                prop_assert!(read_varint(&b[..cut]).is_err());
            }
        }

        #[test]
        fn prop_decode_garbage_never_panics(b in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = u64::from_bytes(&b);
            let _ = String::from_bytes(&b);
            let _ = Vec::<f64>::from_bytes(&b);
            let _ = <(u64, String)>::from_bytes(&b);
        }
    }
}
