//! Streaming k-way merge over sorted runs (the shuffle merge step).
//!
//! The paper's contract is that reduce sees its partition "sorted and
//! grouped by key" (§II). The concatenate-then-sort path honors it with
//! O(n log n) comparisons over the whole partition; when every fetched
//! bucket is already a *sorted run* (map kernels sort their output
//! map-side), a k-way merge produces the same grouped stream in
//! O(n log k) — and never materializes the concatenated bucket.
//!
//! The merger is a classic loser tree (tournament tree storing the loser
//! of each internal match, winner at the root): advancing a run costs one
//! replay along its leaf-to-root path, ⌈log₂ k⌉ comparisons. Two
//! refinements keep constant factors down:
//!
//! * equal keys break ties by **run index**, so the merged stream is
//!   byte-identical to a *stable* sort of the runs concatenated in input
//!   order — the exact order the concatenate+sort oracle produces;
//! * the winner's whole equal-key prefix is consumed in one linear scan
//!   before the tree is replayed, so the tree pays per *group-span*, not
//!   per record, and a single-run merge degenerates to plain group
//!   iteration with no comparisons in the tree at all.

use crate::bucket::Bucket;

/// One contiguous slice of a run contributing to the current group:
/// `(run, start, end)` — records `start..end` of `runs[run]`.
pub type GroupSpan = (usize, usize, usize);

/// Streaming merger over `k` sorted runs, yielding `(key, spans)` groups
/// in ascending key order with values ordered exactly as the stable
/// concatenate+sort oracle orders them (run index, then in-run position).
///
/// Every run must be sorted (`Bucket::is_sorted`); debug builds assert it.
pub struct RunMerger<'a> {
    runs: &'a [Bucket],
    /// Next unconsumed record per run.
    pos: Vec<usize>,
    /// Loser tree: `tree[0]` is the current overall winner, `tree[1..k]`
    /// hold the loser of the match played at each internal node. Leaves
    /// are implicit at `k..2k` (leaf of run `r` at `k + r`).
    tree: Vec<usize>,
}

impl<'a> RunMerger<'a> {
    /// Build a merger over `runs`. Empty runs are handled (they start
    /// exhausted); an empty slice yields no groups.
    pub fn new(runs: &'a [Bucket]) -> Self {
        debug_assert!(runs.iter().all(|r| r.is_sorted()), "RunMerger requires sorted runs");
        let k = runs.len();
        let mut m = RunMerger { runs, pos: vec![0; k], tree: vec![0; k.max(1)] };
        if k == 0 {
            return m;
        }
        // Initial tournament, bottom-up: `winners[i]` is the winner of the
        // subtree rooted at node i, losers are committed into the tree.
        let mut winners = vec![0usize; 2 * k];
        for (r, w) in winners[k..].iter_mut().enumerate() {
            *w = r;
        }
        for i in (1..k).rev() {
            let (a, b) = (winners[2 * i], winners[2 * i + 1]);
            let (w, l) = if m.beats(a, b) { (a, b) } else { (b, a) };
            winners[i] = w;
            m.tree[i] = l;
        }
        m.tree[0] = winners[1];
        m
    }

    fn exhausted(&self, r: usize) -> bool {
        self.pos[r] >= self.runs[r].len()
    }

    /// Does run `a` win against run `b`? Smaller head key wins; an
    /// exhausted run always loses; equal keys go to the smaller run index
    /// (the stability tiebreak).
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.exhausted(a), self.exhausted(b)) {
            (true, _) => false,
            (false, true) => true,
            (false, false) => {
                let ka = self.runs[a].key_at(self.pos[a]);
                let kb = self.runs[b].key_at(self.pos[b]);
                match ka.cmp(kb) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => a < b,
                }
            }
        }
    }

    /// Replay the leaf-to-root path of run `r` after its head advanced:
    /// ⌈log₂ k⌉ comparisons re-seat it in the tournament.
    fn replay(&mut self, r: usize) {
        let k = self.runs.len();
        let mut cur = r;
        let mut i = (k + r) / 2;
        while i >= 1 {
            if self.beats(self.tree[i], cur) {
                std::mem::swap(&mut self.tree[i], &mut cur);
            }
            i /= 2;
        }
        self.tree[0] = cur;
    }

    /// Produce the next key group. Returns the key, and fills `spans`
    /// with the contributing run slices in oracle order (ascending run
    /// index; each span's records are consecutive in its run). Returns
    /// `None` when all runs are exhausted.
    pub fn next_group(&mut self, spans: &mut Vec<GroupSpan>) -> Option<&'a [u8]> {
        spans.clear();
        if self.runs.is_empty() || self.exhausted(self.tree[0]) {
            return None;
        }
        let key: &'a [u8] = {
            let w = self.tree[0];
            self.runs[w].key_at(self.pos[w])
        };
        loop {
            let w = self.tree[0];
            if self.exhausted(w) || self.runs[w].key_at(self.pos[w]) != key {
                break;
            }
            // Consume the winner's whole equal-key prefix in one scan.
            let run = &self.runs[w];
            let start = self.pos[w];
            let mut end = start + 1;
            while end < run.len() && run.key_at(end) == key {
                end += 1;
            }
            self.pos[w] = end;
            spans.push((w, start, end));
            self.replay(w);
        }
        Some(key)
    }

    /// Total records remaining across all runs.
    pub fn remaining(&self) -> usize {
        self.runs.iter().zip(&self.pos).map(|(r, &p)| r.len() - p).sum()
    }
}

/// Merge sorted runs into one sorted bucket (reference/oracle helper for
/// tests and the background pre-merge: the streaming kernels consume
/// [`RunMerger`] directly and never materialize this).
pub fn merge_runs(runs: &[Bucket]) -> Bucket {
    let bytes = runs.iter().map(Bucket::byte_size).sum();
    let records = runs.iter().map(Bucket::len).sum();
    let mut out = Bucket::with_capacity(records, bytes);
    let mut merger = RunMerger::new(runs);
    let mut spans = Vec::new();
    while let Some(key) = merger.next_group(&mut spans) {
        for &(r, s, e) in spans.iter() {
            for i in s..e {
                out.push(key, runs[r].get(i).1);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::Record;
    use proptest::prelude::*;

    fn bucket(recs: &[(&str, &str)]) -> Bucket {
        recs.iter().map(|(k, v)| (k.as_bytes().to_vec(), v.as_bytes().to_vec())).collect()
    }

    /// The oracle: concatenate in run order, stable-sort by key.
    fn concat_sort(runs: &[Bucket]) -> Bucket {
        let mut all = Bucket::new();
        for r in runs {
            all.extend_from(r);
        }
        all.sort();
        all
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert_eq!(merge_runs(&[]), Bucket::new());
        assert_eq!(merge_runs(&[Bucket::new(), Bucket::new()]), Bucket::new());
        let mut m = RunMerger::new(&[]);
        assert_eq!(m.next_group(&mut Vec::new()), None);
    }

    #[test]
    fn single_run_fast_path_is_identity() {
        let run = bucket(&[("a", "1"), ("a", "2"), ("c", "3")]);
        assert_eq!(merge_runs(std::slice::from_ref(&run)), run);
    }

    #[test]
    fn equal_keys_come_out_in_run_order() {
        let runs = [
            bucket(&[("k", "r0a"), ("k", "r0b")]),
            bucket(&[("a", "x"), ("k", "r1a")]),
            bucket(&[("k", "r2a")]),
        ];
        let merged = merge_runs(&runs);
        assert_eq!(merged, concat_sort(&runs));
        let vals: Vec<&[u8]> = merged.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![&b"x"[..], b"r0a", b"r0b", b"r1a", b"r2a"]);
    }

    #[test]
    fn empty_and_nonempty_runs_mix() {
        let runs = [Bucket::new(), bucket(&[("b", "1")]), Bucket::new(), bucket(&[("a", "2")])];
        assert_eq!(merge_runs(&runs), concat_sort(&runs));
    }

    #[test]
    fn group_spans_cover_each_key_once() {
        let runs = [bucket(&[("a", "1"), ("b", "2")]), bucket(&[("a", "3"), ("c", "4")])];
        let mut m = RunMerger::new(&runs);
        let mut spans = Vec::new();
        let mut keys = Vec::new();
        while let Some(k) = m.next_group(&mut spans) {
            keys.push(k.to_vec());
            assert!(!spans.is_empty());
        }
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        assert_eq!(m.remaining(), 0);
    }

    proptest! {
        /// merge(runs) == concat+sort over random run splits: random
        /// record lists (small key alphabet forces cross-run duplicates)
        /// cut at random points into runs — including empty runs at
        /// either end and the single-run case — each run sorted, then
        /// merged.
        #[test]
        fn merge_agrees_with_concat_sort(
            recs in proptest::collection::vec(
                ((0u8..6), proptest::collection::vec(any::<u8>(), 0..4)),
                0..120,
            ),
            cuts in proptest::collection::vec(any::<usize>(), 0..8),
        ) {
            let records: Vec<Record> =
                recs.iter().map(|(k, v)| (vec![*k], v.clone())).collect();
            // Random split points (duplicates allowed => empty runs).
            let mut bounds: Vec<usize> =
                cuts.iter().map(|c| c % (records.len() + 1)).collect();
            bounds.push(0);
            bounds.push(records.len());
            bounds.sort_unstable();
            let mut runs: Vec<Bucket> = Vec::new();
            for w in bounds.windows(2) {
                let mut b: Bucket =
                    records[w[0]..w[1]].iter().cloned().collect();
                b.sort();
                runs.push(b);
            }
            // The oracle concatenates the *sorted* runs in run order —
            // exactly what the reduce path sees arriving off the wire.
            prop_assert_eq!(merge_runs(&runs), concat_sort(&runs));
        }
    }
}
