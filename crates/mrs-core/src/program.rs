//! The programming model: typed map/reduce functions over the byte plane.
//!
//! Two layers, mirroring the paper's design:
//!
//! * [`MapReduce`] — what a user writes: a typed `map` and `reduce` (and an
//!   optional `combine`), the Rust analogue of Program 1. Like the paper's
//!   API, functions *emit* records one at a time rather than returning
//!   lists.
//! * [`Program`] — the object-safe, byte-level interface every runtime
//!   drives. Iterative programs (PSO) implement it directly so one program
//!   can expose several map/reduce functions addressed by [`FuncId`]
//!   (the paper passes bound methods to `job.map_data`; a function id is the
//!   serializable equivalent).
//!
//! [`Simple`] adapts any [`MapReduce`] into a [`Program`] as function id 0.
//!
//! Emission is by borrowed slices: `emit(&[u8], &[u8])` lets the runtime
//! copy records straight into its bucket arena, so the hot map path makes
//! no per-record heap allocation. [`Simple`] encodes typed pairs into a
//! pair of thread-local scratch buffers that are reused across every emit
//! of a task.

use crate::error::{Error, Result};
use crate::kv::Datum;
use crate::partition::Partition;
use crate::plan::FuncId;
use std::cell::Cell;

/// A typed, single-stage MapReduce program.
///
/// `map : (K1, V1) → list((K2, V2))` and
/// `reduce : (K2, list(V2)) → list(V2)` exactly as defined in §II. The
/// reduce output keeps its input key, so a reduce dataset is again a
/// key-value dataset and can feed another map (Fig. 2).
pub trait MapReduce: Send + Sync + 'static {
    /// Input key type (often a line number or file offset).
    type K1: Datum;
    /// Input value type.
    type V1: Datum;
    /// Intermediate/output key type.
    type K2: Datum;
    /// Intermediate/output value type.
    type V2: Datum;

    /// Called once per input record; may emit any number of pairs.
    fn map(&self, key: Self::K1, value: Self::V1, emit: &mut dyn FnMut(Self::K2, Self::V2));

    /// Called once per distinct key with all its values; may emit any
    /// number of output values for that key.
    fn reduce(
        &self,
        key: &Self::K2,
        values: &mut dyn Iterator<Item = Self::V2>,
        emit: &mut dyn FnMut(Self::V2),
    );

    /// Optional combiner ("local reduce", §V-A). Only invoked when
    /// [`MapReduce::has_combiner`] returns true. The default delegates to
    /// [`MapReduce::reduce`], which is correct whenever the reduction is
    /// associative and type-preserving — as in WordCount, where "the reduce
    /// function can function as a combiner without any modifications".
    fn combine(
        &self,
        key: &Self::K2,
        values: &mut dyn Iterator<Item = Self::V2>,
        emit: &mut dyn FnMut(Self::V2),
    ) {
        self.reduce(key, values, emit);
    }

    /// Whether a combiner should run after map tasks.
    fn has_combiner(&self) -> bool {
        false
    }

    /// Partitioning strategy for intermediate keys.
    fn partition(&self) -> Partition {
        Partition::Hash
    }

    /// Fully custom partitioning over the *encoded* key: return
    /// `Some(index)` to override [`MapReduce::partition`]. Programs that
    /// need data-dependent placement (e.g. range partitioning for a
    /// distributed sort) implement this; the default defers to the
    /// strategy enum.
    fn custom_partition(&self, _key: &[u8], _parts: usize) -> Option<usize> {
        None
    }
}

/// The object-safe byte-level program interface driven by runtimes.
///
/// All methods take a [`FuncId`] so that a single program can expose
/// multiple map and reduce functions for multi-stage/iterative jobs.
///
/// Emitted slices are only valid for the duration of the `emit` call; the
/// receiver copies what it wants to keep (typically into a bucket arena).
pub trait Program: Send + Sync + 'static {
    /// Apply map function `func` to one encoded record.
    fn map_bytes(
        &self,
        func: FuncId,
        key: &[u8],
        value: &[u8],
        emit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<()>;

    /// Apply reduce function `func` to one key group.
    fn reduce_bytes(
        &self,
        func: FuncId,
        key: &[u8],
        values: &mut dyn Iterator<Item = &[u8]>,
        emit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<()>;

    /// Apply the combiner for map function `func`, if any.
    fn combine_bytes(
        &self,
        func: FuncId,
        _key: &[u8],
        _values: &mut dyn Iterator<Item = &[u8]>,
        _emit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<()> {
        Err(Error::UnknownFunc(func))
    }

    /// Whether map function `func` has a combiner.
    fn has_combiner(&self, _func: FuncId) -> bool {
        false
    }

    /// Partition an encoded intermediate key into one of `n` parts.
    fn partition(&self, key: &[u8], n: usize) -> usize {
        Partition::Hash.index(key, n)
    }
}

/// Adapter: any typed [`MapReduce`] is a [`Program`] whose single map and
/// reduce function are both function id 0.
pub struct Simple<P>(pub P);

/// The function id used by [`Simple`] for both map and reduce.
pub const SIMPLE_FUNC: FuncId = 0;

/// A pair of reusable (key, value) encode buffers.
type ScratchBufs = Box<(Vec<u8>, Vec<u8>)>;

thread_local! {
    /// Reusable (key, value) encode buffers for [`Simple`]'s emit path.
    /// Taken for the duration of one `*_bytes` call and put back after, so
    /// a task's emits share two buffers instead of allocating two fresh
    /// `Vec<u8>` per record. Re-entrant calls (a map that drives another
    /// program) find the slot empty and fall back to fresh buffers.
    static SCRATCH: Cell<Option<ScratchBufs>> = const { Cell::new(None) };
}

fn with_scratch<R>(f: impl FnOnce(&mut Vec<u8>, &mut Vec<u8>) -> R) -> R {
    let mut buf = SCRATCH.take().unwrap_or_default();
    let r = f(&mut buf.0, &mut buf.1);
    buf.0.clear();
    buf.1.clear();
    SCRATCH.set(Some(buf));
    r
}

impl<P: MapReduce> Simple<P> {
    fn check(func: FuncId) -> Result<()> {
        if func == SIMPLE_FUNC {
            Ok(())
        } else {
            Err(Error::UnknownFunc(func))
        }
    }
}

/// Decoding iterator adapter: lazily decodes each value of a group. The
/// first decode failure is stashed in `error` and ends the iteration, so the
/// typed reduce never sees corrupt data.
struct DecodeValues<'i, 'd, V: Datum> {
    inner: &'i mut dyn Iterator<Item = &'d [u8]>,
    error: &'i mut Option<Error>,
    _marker: std::marker::PhantomData<V>,
}

impl<V: Datum> Iterator for DecodeValues<'_, '_, V> {
    type Item = V;

    fn next(&mut self) -> Option<V> {
        if self.error.is_some() {
            return None;
        }
        let raw = self.inner.next()?;
        match V::from_bytes(raw) {
            Ok(v) => Some(v),
            Err(e) => {
                *self.error = Some(e);
                None
            }
        }
    }
}

impl<P: MapReduce> Program for Simple<P> {
    fn map_bytes(
        &self,
        func: FuncId,
        key: &[u8],
        value: &[u8],
        emit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<()> {
        Self::check(func)?;
        let k = P::K1::from_bytes(key)?;
        let v = P::V1::from_bytes(value)?;
        with_scratch(|kbuf, vbuf| {
            self.0.map(k, v, &mut |k2, v2| {
                kbuf.clear();
                vbuf.clear();
                k2.encode(kbuf);
                v2.encode(vbuf);
                emit(kbuf, vbuf);
            });
        });
        Ok(())
    }

    fn reduce_bytes(
        &self,
        func: FuncId,
        key: &[u8],
        values: &mut dyn Iterator<Item = &[u8]>,
        emit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<()> {
        Self::check(func)?;
        let k = P::K2::from_bytes(key)?;
        let mut error = None;
        let mut dec = DecodeValues::<P::V2> {
            inner: values,
            error: &mut error,
            _marker: std::marker::PhantomData,
        };
        with_scratch(|_, vbuf| {
            self.0.reduce(&k, &mut dec, &mut |v2| {
                vbuf.clear();
                v2.encode(vbuf);
                emit(key, vbuf);
            });
        });
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn combine_bytes(
        &self,
        func: FuncId,
        key: &[u8],
        values: &mut dyn Iterator<Item = &[u8]>,
        emit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<()> {
        Self::check(func)?;
        let k = P::K2::from_bytes(key)?;
        let mut error = None;
        let mut dec = DecodeValues::<P::V2> {
            inner: values,
            error: &mut error,
            _marker: std::marker::PhantomData,
        };
        with_scratch(|_, vbuf| {
            self.0.combine(&k, &mut dec, &mut |v2| {
                vbuf.clear();
                v2.encode(vbuf);
                emit(key, vbuf);
            });
        });
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn has_combiner(&self, func: FuncId) -> bool {
        func == SIMPLE_FUNC && self.0.has_combiner()
    }

    fn partition(&self, key: &[u8], n: usize) -> usize {
        match self.0.custom_partition(key, n) {
            Some(i) => {
                assert!(i < n, "custom_partition returned {i} for {n} parts");
                i
            }
            None => self.0.partition().index(key, n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::encode_record;

    /// The canonical WordCount of Program 1.
    struct WordCount;

    impl MapReduce for WordCount {
        type K1 = u64;
        type V1 = String;
        type K2 = String;
        type V2 = u64;

        fn map(&self, _key: u64, value: String, emit: &mut dyn FnMut(String, u64)) {
            for word in value.split_whitespace() {
                emit(word.to_owned(), 1);
            }
        }

        fn reduce(
            &self,
            _key: &String,
            values: &mut dyn Iterator<Item = u64>,
            emit: &mut dyn FnMut(u64),
        ) {
            emit(values.sum());
        }

        fn has_combiner(&self) -> bool {
            true
        }
    }

    #[test]
    fn map_bytes_emits_encoded_pairs() {
        let p = Simple(WordCount);
        let (k, v) = encode_record(&0u64, &"the cat the".to_string());
        let mut out = Vec::new();
        p.map_bytes(0, &k, &v, &mut |k2, v2| out.push((k2.to_vec(), v2.to_vec()))).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(String::from_bytes(&out[0].0).unwrap(), "the");
        assert_eq!(u64::from_bytes(&out[0].1).unwrap(), 1);
    }

    #[test]
    fn reduce_bytes_sums_and_keeps_key() {
        let p = Simple(WordCount);
        let key = "cat".to_string().to_bytes();
        let vals: Vec<Vec<u8>> = vec![1u64.to_bytes(), 1u64.to_bytes(), 1u64.to_bytes()];
        let mut it = vals.iter().map(|v| v.as_slice());
        let mut out = Vec::new();
        p.reduce_bytes(0, &key, &mut it, &mut |k, v| out.push((k.to_vec(), v.to_vec()))).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, key);
        assert_eq!(u64::from_bytes(&out[0].1).unwrap(), 3);
    }

    #[test]
    fn combiner_defaults_to_reduce() {
        let p = Simple(WordCount);
        assert!(Program::has_combiner(&p, 0));
        let key = "k".to_string().to_bytes();
        let vals = [2u64.to_bytes(), 5u64.to_bytes()];
        let mut it = vals.iter().map(|v| v.as_slice());
        let mut out = Vec::new();
        p.combine_bytes(0, &key, &mut it, &mut |k, v| out.push((k.to_vec(), v.to_vec()))).unwrap();
        assert_eq!(u64::from_bytes(&out[0].1).unwrap(), 7);
    }

    #[test]
    fn unknown_func_is_rejected() {
        let p = Simple(WordCount);
        let (k, v) = encode_record(&0u64, &"x".to_string());
        let r = p.map_bytes(3, &k, &v, &mut |_, _| {});
        assert!(matches!(r, Err(Error::UnknownFunc(3))));
    }

    #[test]
    fn corrupt_input_key_is_reported() {
        let p = Simple(WordCount);
        let r = p.map_bytes(0, &[1, 2], b"bad", &mut |_, _| {});
        assert!(matches!(r, Err(Error::Codec(_))));
    }

    #[test]
    fn corrupt_value_in_reduce_is_reported() {
        let p = Simple(WordCount);
        let key = "w".to_string().to_bytes();
        let vals: [Vec<u8>; 2] = [1u64.to_bytes(), vec![9]]; // second is truncated
        let mut it = vals.iter().map(|v| v.as_slice());
        let r = p.reduce_bytes(0, &key, &mut it, &mut |_, _| {});
        assert!(matches!(r, Err(Error::Codec(_))));
    }

    #[test]
    fn default_partition_is_stable_across_calls() {
        let p = Simple(WordCount);
        let k = "word".to_string().to_bytes();
        assert_eq!(Program::partition(&p, &k, 13), Program::partition(&p, &k, 13));
        assert!(Program::partition(&p, &k, 13) < 13);
    }

    #[test]
    fn emitted_slices_are_reused_scratch_buffers() {
        // Two consecutive emits hand out the same buffer addresses: the
        // encode path recycles its scratch rather than allocating.
        let p = Simple(WordCount);
        let (k, v) = encode_record(&0u64, &"aa bb".to_string());
        let mut ptrs = Vec::new();
        p.map_bytes(0, &k, &v, &mut |k2, v2| ptrs.push((k2.as_ptr(), v2.as_ptr()))).unwrap();
        assert_eq!(ptrs.len(), 2);
        assert_eq!(ptrs[0], ptrs[1]);
    }
}
