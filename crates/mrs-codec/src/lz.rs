//! A dependency-free LZ4-style block codec.
//!
//! Same token scheme as the LZ4 block format: each sequence is a token
//! byte whose high nibble is the literal-run length and low nibble the
//! match length minus [`MIN_MATCH`] (both nibbles saturate at 15 and
//! continue in 255-steps), followed by the literals, a 2-byte
//! little-endian backwards offset, and any match-length continuation.
//! The final sequence carries literals only. The compressor uses a
//! single-probe hash table over 4-byte windows — the classic
//! fast-compressor design point: compression is one pass and
//! decompression is a straight memcpy loop, which is what a shuffle
//! payload path wants (compress once, decompress on every fetch).
//!
//! The decompressor is fully bounds-checked and never panics on corrupt
//! input; callers pass the expected output size (recorded in the frame
//! header) so a corrupt stream cannot trigger unbounded allocation.

/// Shortest match worth encoding; offsets below this never pay.
const MIN_MATCH: usize = 4;

/// Hash-table size (log2). 4096 entries keeps the table L1-resident.
const HASH_BITS: u32 = 12;

/// Last bytes of a block are always emitted as literals (matching them
/// would complicate the tail bounds checks for no measurable gain).
const TAIL_LITERALS: usize = 5;

#[inline]
fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Append `n` in the nibble-then-255s length encoding: callers have
/// already written the nibble (min(n,15)); this emits the continuation
/// bytes for `n >= 15`.
fn push_length(mut n: usize, out: &mut Vec<u8>) {
    if n < 15 {
        return;
    }
    n -= 15;
    while n >= 255 {
        out.push(255);
        n -= 255;
    }
    out.push(n as u8);
}

/// Compress `input` into a fresh buffer. Always succeeds; incompressible
/// input degrades to one literal run with ~1 byte of overhead per 255
/// bytes of input.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n == 0 {
        return out;
    }
    let mut table = [0usize; 1 << HASH_BITS];
    let mut anchor = 0usize; // start of the pending literal run
    let mut pos = 0usize;
    let match_limit = n.saturating_sub(TAIL_LITERALS);
    while pos + MIN_MATCH <= match_limit {
        let h = hash4(&input[pos..]);
        let candidate = table[h];
        table[h] = pos + 1; // store pos+1 so 0 means "empty"
        let cand = candidate.wrapping_sub(1);
        let is_match = candidate != 0
            && pos - cand <= u16::MAX as usize
            && input[cand..cand + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if !is_match {
            pos += 1;
            continue;
        }
        // Extend the match as far as it goes (bounded by the tail guard).
        let mut len = MIN_MATCH;
        while pos + len < match_limit && input[cand + len] == input[pos + len] {
            len += 1;
        }
        let literals = pos - anchor;
        let token = ((literals.min(15) as u8) << 4) | (len - MIN_MATCH).min(15) as u8;
        out.push(token);
        push_length(literals, &mut out);
        out.extend_from_slice(&input[anchor..pos]);
        out.extend_from_slice(&((pos - cand) as u16).to_le_bytes());
        push_length(len - MIN_MATCH, &mut out);
        pos += len;
        anchor = pos;
    }
    // Final literal-only sequence.
    let literals = n - anchor;
    out.push((literals.min(15) as u8) << 4);
    push_length(literals, &mut out);
    out.extend_from_slice(&input[anchor..]);
    out
}

/// Why a block failed to decompress. All variants indicate a corrupt or
/// truncated stream; none can panic or over-allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzError {
    /// Ran off the end of the compressed stream.
    Truncated,
    /// A match offset points before the start of the output.
    BadOffset,
    /// Output did not come out exactly `expected` bytes long.
    WrongLength { expected: usize, got: usize },
}

impl std::fmt::Display for LzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzError::Truncated => write!(f, "truncated compressed block"),
            LzError::BadOffset => write!(f, "match offset before start of output"),
            LzError::WrongLength { expected, got } => {
                write!(f, "decompressed to {got} bytes, header said {expected}")
            }
        }
    }
}

fn read_length(base: usize, input: &[u8], pos: &mut usize) -> Result<usize, LzError> {
    let mut n = base;
    if base == 15 {
        loop {
            let b = *input.get(*pos).ok_or(LzError::Truncated)?;
            *pos += 1;
            n += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(n)
}

/// Decompress a block produced by [`compress`]. `expected` is the
/// original length (from the frame header); it bounds the output
/// allocation and is verified at the end.
pub fn decompress(input: &[u8], expected: usize) -> Result<Vec<u8>, LzError> {
    let mut out = Vec::with_capacity(expected);
    let mut pos = 0usize;
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        let literals = read_length((token >> 4) as usize, input, &mut pos)?;
        let lit_end = pos.checked_add(literals).ok_or(LzError::Truncated)?;
        if lit_end > input.len() {
            return Err(LzError::Truncated);
        }
        if out.len() + literals > expected {
            return Err(LzError::WrongLength { expected, got: out.len() + literals });
        }
        out.extend_from_slice(&input[pos..lit_end]);
        pos = lit_end;
        if pos == input.len() {
            break; // final literal-only sequence
        }
        let off_bytes = input.get(pos..pos + 2).ok_or(LzError::Truncated)?;
        let offset = u16::from_le_bytes([off_bytes[0], off_bytes[1]]) as usize;
        pos += 2;
        let len = MIN_MATCH + read_length((token & 0x0f) as usize, input, &mut pos)?;
        if offset == 0 || offset > out.len() {
            return Err(LzError::BadOffset);
        }
        if out.len() + len > expected {
            return Err(LzError::WrongLength { expected, got: out.len() + len });
        }
        // Overlapping copies are the point (offset < len repeats a
        // pattern), so this must be byte-by-byte from the back reference.
        let start = out.len() - offset;
        for i in 0..len {
            let b = out[start + i];
            out.push(b);
        }
    }
    if out.len() != expected {
        return Err(LzError::WrongLength { expected, got: out.len() });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c, data.len()).unwrap(), data, "len {}", data.len());
    }

    #[test]
    fn roundtrips_basic_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcd");
        roundtrip(b"the quick brown fox jumps over the lazy dog");
        roundtrip(&vec![0u8; 100_000]);
        roundtrip("ratatatatatatatata".repeat(50).as_bytes());
    }

    #[test]
    fn repetitive_input_shrinks() {
        let data = "alpha beta gamma delta ".repeat(500);
        let c = compress(data.as_bytes());
        assert!(c.len() * 4 < data.len(), "{} vs {}", c.len(), data.len());
    }

    #[test]
    fn incompressible_input_has_bounded_overhead() {
        // A pseudo-random byte string: no 4-byte window repeats usefully.
        let mut x = 0x9e3779b97f4a7c15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 255 + 16);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn long_literal_runs_and_long_matches() {
        // >15 literals (nibble continuation) and >19-byte match
        // (match-length continuation) in one stream.
        let mut data = Vec::new();
        data.extend((0..300u32).flat_map(|i| i.to_le_bytes())); // literals
        data.extend(std::iter::repeat_n(7u8, 1000)); // one huge match
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let data = "repeat repeat repeat repeat repeat".repeat(20);
        let good = compress(data.as_bytes());
        // Truncations at every length.
        for cut in 0..good.len() {
            let _ = decompress(&good[..cut], data.len());
        }
        // Wrong expected size is caught.
        assert!(decompress(&good, data.len() + 1).is_err());
        assert!(decompress(&good, data.len().saturating_sub(1)).is_err());
    }
}
