//! The `MRSF1` shuffle frame: a checksummed, optionally-compressed
//! envelope around `MRSB1` bucket bytes.
//!
//! Layout (18-byte header, all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     5  magic  b"MRSF1"
//!      5     1  flags  (bit 0: payload is LZ-compressed)
//!      6     4  uncompressed length (u32)
//!     10     8  xxHash64 of the payload bytes as stored
//!     18     –  payload
//! ```
//!
//! The checksum covers the payload *as stored* (compressed bytes when
//! flag 0 is set), so corruption is detected before the decompressor
//! ever runs. Decoding is transparently backwards-compatible: input
//! that does not start with the frame magic is returned as-is, which is
//! exactly the old raw `MRSB1` wire format — a compressing producer and
//! a raw producer can coexist in one cluster with no negotiation.

use crate::lz;
use crate::xxhash::xxh64;

/// Frame magic. Deliberately distinct from the `MRSB1` bucket magic so
/// a decoder can tell framed from raw bytes by the first five bytes.
pub const FRAME_MAGIC: &[u8; 5] = b"MRSF1";

/// Total header size preceding the payload.
pub const FRAME_HEADER_LEN: usize = 18;

const FLAG_COMPRESSED: u8 = 1;

/// Compression policy for produced shuffle payloads.
///
/// `Off` and below-threshold buckets are emitted as raw `MRSB1` bytes
/// (no frame at all), keeping tiny payloads free of header overhead and
/// permanently exercising the compat decode path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressMode {
    /// Frame and compress every bucket regardless of size.
    On,
    /// Emit raw bucket bytes, exactly the pre-frame wire format.
    Off,
    /// Frame and compress buckets of at least this many bytes.
    Threshold(usize),
}

/// Default threshold: below ~half a kilobyte the 18-byte header plus
/// compression call costs more than the wire bytes it saves.
pub const DEFAULT_COMPRESS_THRESHOLD: usize = 512;

impl Default for CompressMode {
    fn default() -> Self {
        CompressMode::Threshold(DEFAULT_COMPRESS_THRESHOLD)
    }
}

impl CompressMode {
    /// Parse a `--mrs-compress` value: `on`, `off`, or `threshold=N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "on" => Ok(CompressMode::On),
            "off" => Ok(CompressMode::Off),
            _ => match s.strip_prefix("threshold=") {
                Some(n) => n
                    .parse::<usize>()
                    .map(CompressMode::Threshold)
                    .map_err(|_| format!("bad compression threshold: {n:?}")),
                None => Err(format!("bad --mrs-compress value {s:?} (want on|off|threshold=N)")),
            },
        }
    }

    fn applies_to(self, len: usize) -> bool {
        match self {
            CompressMode::On => true,
            CompressMode::Off => false,
            CompressMode::Threshold(t) => len >= t,
        }
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Frame shorter than its fixed header.
    Truncated,
    /// Flags field has bits set that this decoder does not know — a
    /// newer producer or a corrupted header byte.
    UnknownFlags(u8),
    /// Stored checksum does not match the payload — the frame was
    /// corrupted in transit or at rest. Remote fetchers retry once on
    /// exactly this variant.
    Checksum { expected: u64, actual: u64 },
    /// Checksum was fine but the compressed payload is malformed — this
    /// indicates a producer bug, not wire corruption, so it is not
    /// retried.
    Compression(lz::LzError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated MRSF1 frame"),
            FrameError::UnknownFlags(flags) => {
                write!(f, "frame has unknown flag bits: {flags:#04x}")
            }
            FrameError::Checksum { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#018x}, payload {actual:#018x}"
                )
            }
            FrameError::Compression(e) => write!(f, "frame payload corrupt: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// True if `bytes` begin with the `MRSF1` magic.
pub fn is_framed(bytes: &[u8]) -> bool {
    bytes.len() >= FRAME_MAGIC.len() && &bytes[..FRAME_MAGIC.len()] == FRAME_MAGIC
}

/// Encode `raw` bucket bytes for the wire under `mode`.
///
/// Returns the input unchanged (moved, not copied) when the mode says
/// raw; otherwise builds a frame, storing the compressed payload only
/// when compression actually won — incompressible buckets are framed
/// uncompressed so the checksum still protects them without inflating
/// them past `raw.len() + FRAME_HEADER_LEN`.
pub fn encode_vec(raw: Vec<u8>, mode: CompressMode) -> Vec<u8> {
    if !mode.applies_to(raw.len()) {
        return raw;
    }
    // Buckets beyond u32 range cannot be framed (header field width);
    // fall back to raw, which every decoder accepts.
    if raw.len() > u32::MAX as usize {
        return raw;
    }
    let compressed = lz::compress(&raw);
    let (flags, payload) =
        if compressed.len() < raw.len() { (FLAG_COMPRESSED, compressed) } else { (0, raw.clone()) };
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(FRAME_MAGIC);
    out.push(flags);
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    out.extend_from_slice(&xxh64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode wire bytes back to raw bucket bytes.
///
/// Non-framed input (anything not starting with the `MRSF1` magic) is
/// passed through untouched — that is the legacy raw format. Framed
/// input is checksum-verified and decompressed.
pub fn decode_vec(bytes: Vec<u8>) -> Result<Vec<u8>, FrameError> {
    if !is_framed(&bytes) {
        return Ok(bytes);
    }
    decode_frame(&bytes)
}

/// Decode a frame from a shared or borrowed buffer (the zero-copy serve
/// path hands out `Arc<[u8]>` frames; consumers decode from the slice).
pub fn decode_frame(bytes: &[u8]) -> Result<Vec<u8>, FrameError> {
    if !is_framed(bytes) {
        return Ok(bytes.to_vec());
    }
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let flags = bytes[5];
    if flags & !FLAG_COMPRESSED != 0 {
        return Err(FrameError::UnknownFlags(flags));
    }
    let ulen = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
    let expected = u64::from_le_bytes(bytes[10..18].try_into().unwrap());
    let payload = &bytes[FRAME_HEADER_LEN..];
    let actual = xxh64(payload);
    if actual != expected {
        return Err(FrameError::Checksum { expected, actual });
    }
    if flags & FLAG_COMPRESSED != 0 {
        lz::decompress(payload, ulen).map_err(FrameError::Compression)
    } else if payload.len() != ulen {
        Err(FrameError::Compression(lz::LzError::WrongLength {
            expected: ulen,
            got: payload.len(),
        }))
    } else {
        Ok(payload.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(CompressMode::parse("on"), Ok(CompressMode::On));
        assert_eq!(CompressMode::parse("off"), Ok(CompressMode::Off));
        assert_eq!(CompressMode::parse("threshold=4096"), Ok(CompressMode::Threshold(4096)));
        assert!(CompressMode::parse("sometimes").is_err());
        assert!(CompressMode::parse("threshold=four").is_err());
    }

    #[test]
    fn off_mode_is_identity() {
        let raw = b"MRSB1 pretend bucket bytes".to_vec();
        assert_eq!(encode_vec(raw.clone(), CompressMode::Off), raw);
    }

    #[test]
    fn threshold_gates_framing() {
        let small = vec![7u8; 100];
        let big = vec![7u8; 1000];
        let mode = CompressMode::Threshold(512);
        assert_eq!(encode_vec(small.clone(), mode), small, "below threshold stays raw");
        let framed = encode_vec(big.clone(), mode);
        assert!(is_framed(&framed));
        assert!(framed.len() < big.len(), "repetitive payload compresses");
        assert_eq!(decode_vec(framed).unwrap(), big);
    }

    #[test]
    fn incompressible_payload_framed_uncompressed() {
        let mut x = 88172645463325252u64;
        let raw: Vec<u8> = (0..2048)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 40) as u8
            })
            .collect();
        let framed = encode_vec(raw.clone(), CompressMode::On);
        assert!(is_framed(&framed));
        assert_eq!(framed.len(), raw.len() + FRAME_HEADER_LEN, "stored, not inflated");
        assert_eq!(framed[5] & FLAG_COMPRESSED, 0);
        assert_eq!(decode_vec(framed).unwrap(), raw);
    }

    #[test]
    fn raw_passthrough_on_decode() {
        let raw = b"anything that is not the frame magic".to_vec();
        assert_eq!(decode_vec(raw.clone()).unwrap(), raw);
        assert_eq!(decode_frame(&raw).unwrap(), raw);
    }

    #[test]
    fn truncated_header_is_an_error() {
        let framed = encode_vec(vec![1u8; 600], CompressMode::On);
        for cut in FRAME_MAGIC.len()..FRAME_HEADER_LEN {
            assert_eq!(decode_vec(framed[..cut].to_vec()), Err(FrameError::Truncated));
        }
    }

    #[test]
    fn empty_input_roundtrips_in_every_mode() {
        for mode in [CompressMode::On, CompressMode::Off, CompressMode::Threshold(0)] {
            assert_eq!(decode_vec(encode_vec(Vec::new(), mode)).unwrap(), Vec::<u8>::new());
        }
    }
}
