//! The `MRSF1` shuffle frame: a checksummed, optionally-compressed
//! envelope around `MRSB1` bucket bytes.
//!
//! Layout (18-byte header, all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     5  magic  b"MRSF1"
//!      5     1  flags  (bit 0: payload is LZ-compressed)
//!      6     4  uncompressed length (u32)
//!     10     8  xxHash64 of the payload bytes as stored
//!     18     –  payload
//! ```
//!
//! The checksum covers the payload *as stored* (compressed bytes when
//! flag 0 is set), so corruption is detected before the decompressor
//! ever runs. Decoding is transparently backwards-compatible: input
//! that does not start with the frame magic is returned as-is, which is
//! exactly the old raw `MRSB1` wire format — a compressing producer and
//! a raw producer can coexist in one cluster with no negotiation.

use crate::lz;
use crate::xxhash::xxh64;
use std::sync::atomic::{AtomicU64, Ordering};

/// Frame magic. Deliberately distinct from the `MRSB1` bucket magic so
/// a decoder can tell framed from raw bytes by the first five bytes.
pub const FRAME_MAGIC: &[u8; 5] = b"MRSF1";

/// Total header size preceding the payload.
pub const FRAME_HEADER_LEN: usize = 18;

const FLAG_COMPRESSED: u8 = 1;

/// Flag bit 1: the payload decodes to an `MRSB1` bucket whose records
/// are in non-decreasing key order — a *sorted run* the consumer may
/// feed straight into a k-way merge instead of re-sorting. Advisory:
/// decoders spot-check the claim ([`decode_frame_sorted`]) and the merge
/// path independently verifies full sortedness on arrival, so a buggy
/// producer can never corrupt merge output.
pub const FLAG_SORTED_RUN: u8 = 2;

const KNOWN_FLAGS: u8 = FLAG_COMPRESSED | FLAG_SORTED_RUN;

/// Adjacent key pairs examined by the monotonicity spot-check. Bounded:
/// the check exists to reject obviously-bogus sorted claims cheaply at
/// decode; exact sortedness is (re-)established by the bucket parser.
const SPOT_CHECK_PAIRS: usize = 64;

static SORTED_CLAIM_REJECTS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of frames that set [`FLAG_SORTED_RUN`] but failed
/// the monotonicity spot-check and were demoted to unsorted.
pub fn sorted_claim_rejects() -> u64 {
    SORTED_CLAIM_REJECTS.load(Ordering::Relaxed)
}

/// Compression policy for produced shuffle payloads.
///
/// `Off` and below-threshold buckets are emitted as raw `MRSB1` bytes
/// (no frame at all), keeping tiny payloads free of header overhead and
/// permanently exercising the compat decode path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressMode {
    /// Frame and compress every bucket regardless of size.
    On,
    /// Emit raw bucket bytes, exactly the pre-frame wire format.
    Off,
    /// Frame and compress buckets of at least this many bytes.
    Threshold(usize),
}

/// Default threshold: below ~half a kilobyte the 18-byte header plus
/// compression call costs more than the wire bytes it saves.
pub const DEFAULT_COMPRESS_THRESHOLD: usize = 512;

impl Default for CompressMode {
    fn default() -> Self {
        CompressMode::Threshold(DEFAULT_COMPRESS_THRESHOLD)
    }
}

impl CompressMode {
    /// Parse a `--mrs-compress` value: `on`, `off`, or `threshold=N`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "on" => Ok(CompressMode::On),
            "off" => Ok(CompressMode::Off),
            _ => match s.strip_prefix("threshold=") {
                Some(n) => n
                    .parse::<usize>()
                    .map(CompressMode::Threshold)
                    .map_err(|_| format!("bad compression threshold: {n:?}")),
                None => Err(format!("bad --mrs-compress value {s:?} (want on|off|threshold=N)")),
            },
        }
    }

    fn applies_to(self, len: usize) -> bool {
        match self {
            CompressMode::On => true,
            CompressMode::Off => false,
            CompressMode::Threshold(t) => len >= t,
        }
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Frame shorter than its fixed header.
    Truncated,
    /// Flags field has bits set that this decoder does not know — a
    /// newer producer or a corrupted header byte.
    UnknownFlags(u8),
    /// Stored checksum does not match the payload — the frame was
    /// corrupted in transit or at rest. Remote fetchers retry once on
    /// exactly this variant.
    Checksum { expected: u64, actual: u64 },
    /// Checksum was fine but the compressed payload is malformed — this
    /// indicates a producer bug, not wire corruption, so it is not
    /// retried.
    Compression(lz::LzError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated MRSF1 frame"),
            FrameError::UnknownFlags(flags) => {
                write!(f, "frame has unknown flag bits: {flags:#04x}")
            }
            FrameError::Checksum { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:#018x}, payload {actual:#018x}"
                )
            }
            FrameError::Compression(e) => write!(f, "frame payload corrupt: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// True if `bytes` begin with the `MRSF1` magic.
pub fn is_framed(bytes: &[u8]) -> bool {
    bytes.len() >= FRAME_MAGIC.len() && &bytes[..FRAME_MAGIC.len()] == FRAME_MAGIC
}

/// Encode `raw` bucket bytes for the wire under `mode`.
///
/// Returns the input unchanged (moved, not copied) when the mode says
/// raw; otherwise builds a frame, storing the compressed payload only
/// when compression actually won — incompressible buckets are framed
/// uncompressed so the checksum still protects them without inflating
/// them past `raw.len() + FRAME_HEADER_LEN`.
pub fn encode_vec(raw: Vec<u8>, mode: CompressMode) -> Vec<u8> {
    encode_with_flags(raw, mode, 0)
}

/// Like [`encode_vec`], additionally advertising the payload as a sorted
/// run ([`FLAG_SORTED_RUN`]) when `sorted` is true. The advertisement
/// only rides on framed output: when the mode leaves the bucket raw there
/// is no header to carry it, and consumers fall back to auto-detection.
pub fn encode_vec_sorted(raw: Vec<u8>, mode: CompressMode, sorted: bool) -> Vec<u8> {
    encode_with_flags(raw, mode, if sorted { FLAG_SORTED_RUN } else { 0 })
}

fn encode_with_flags(raw: Vec<u8>, mode: CompressMode, extra_flags: u8) -> Vec<u8> {
    if !mode.applies_to(raw.len()) {
        return raw;
    }
    // Buckets beyond u32 range cannot be framed (header field width);
    // fall back to raw, which every decoder accepts.
    if raw.len() > u32::MAX as usize {
        return raw;
    }
    let compressed = lz::compress(&raw);
    let (flags, payload) =
        if compressed.len() < raw.len() { (FLAG_COMPRESSED, compressed) } else { (0, raw.clone()) };
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(FRAME_MAGIC);
    out.push(flags | extra_flags);
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    out.extend_from_slice(&xxh64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode wire bytes back to raw bucket bytes.
///
/// Non-framed input (anything not starting with the `MRSF1` magic) is
/// passed through untouched — that is the legacy raw format. Framed
/// input is checksum-verified and decompressed.
pub fn decode_vec(bytes: Vec<u8>) -> Result<Vec<u8>, FrameError> {
    if !is_framed(&bytes) {
        return Ok(bytes);
    }
    decode_frame(&bytes)
}

/// Decode a frame from a shared or borrowed buffer (the zero-copy serve
/// path hands out `Arc<[u8]>` frames; consumers decode from the slice).
pub fn decode_frame(bytes: &[u8]) -> Result<Vec<u8>, FrameError> {
    if !is_framed(bytes) {
        return Ok(bytes.to_vec());
    }
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let flags = bytes[5];
    if flags & !KNOWN_FLAGS != 0 {
        return Err(FrameError::UnknownFlags(flags));
    }
    let ulen = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
    let expected = u64::from_le_bytes(bytes[10..18].try_into().unwrap());
    let payload = &bytes[FRAME_HEADER_LEN..];
    let actual = xxh64(payload);
    if actual != expected {
        return Err(FrameError::Checksum { expected, actual });
    }
    if flags & FLAG_COMPRESSED != 0 {
        lz::decompress(payload, ulen).map_err(FrameError::Compression)
    } else if payload.len() != ulen {
        Err(FrameError::Compression(lz::LzError::WrongLength {
            expected: ulen,
            got: payload.len(),
        }))
    } else {
        Ok(payload.to_vec())
    }
}

/// Decode wire bytes and report whether they carry a *verified* sorted-run
/// claim: the frame set [`FLAG_SORTED_RUN`] **and** the decoded payload
/// passed the monotonicity spot-check. A claim that fails the check is
/// demoted to unsorted (and counted, see [`sorted_claim_rejects`]) rather
/// than rejected outright — the consumer then sorts on arrival, exactly
/// as it does for legacy/unflagged input.
pub fn decode_frame_sorted(bytes: &[u8]) -> Result<(Vec<u8>, bool), FrameError> {
    let claimed =
        bytes.len() >= FRAME_HEADER_LEN && is_framed(bytes) && bytes[5] & FLAG_SORTED_RUN != 0;
    let raw = decode_frame(bytes)?;
    if claimed && !spot_check_sorted(&raw) {
        SORTED_CLAIM_REJECTS.fetch_add(1, Ordering::Relaxed);
        return Ok((raw, false));
    }
    Ok((raw, claimed))
}

/// Cheap monotonicity spot-check of a sorted-run claim: walk the head of
/// the `MRSB1` payload (magic, varint record count, varint-prefixed
/// key/value pairs) and verify the first [`SPOT_CHECK_PAIRS`] adjacent
/// keys are non-decreasing. Anything unparsable fails the check — a
/// sorted-run claim on a non-bucket payload is a producer bug.
fn spot_check_sorted(raw: &[u8]) -> bool {
    // The MRSB1 bucket magic (mrs-fs); restated here so the codec can
    // sanity-walk the payload without depending on the parser crate.
    let Some(b) = raw.strip_prefix(b"MRSB1") else { return false };
    let Some((count, mut rest)) = varint(b) else { return false };
    let mut prev: Option<&[u8]> = None;
    for _ in 0..(count as usize).min(SPOT_CHECK_PAIRS + 1) {
        let Some((klen, r)) = varint(rest) else { return false };
        if klen as usize > r.len() {
            return false;
        }
        let (k, r) = r.split_at(klen as usize);
        let Some((vlen, r)) = varint(r) else { return false };
        if vlen as usize > r.len() {
            return false;
        }
        if prev.is_some_and(|p| p > k) {
            return false;
        }
        prev = Some(k);
        rest = r.split_at(vlen as usize).1;
    }
    true
}

/// LEB128 unsigned varint off the front of `b` (the `MRSB1` length
/// encoding).
fn varint(b: &[u8]) -> Option<(u64, &[u8])> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in b.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some((v, &b[i + 1..]));
        }
        shift += 7;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(CompressMode::parse("on"), Ok(CompressMode::On));
        assert_eq!(CompressMode::parse("off"), Ok(CompressMode::Off));
        assert_eq!(CompressMode::parse("threshold=4096"), Ok(CompressMode::Threshold(4096)));
        assert!(CompressMode::parse("sometimes").is_err());
        assert!(CompressMode::parse("threshold=four").is_err());
    }

    #[test]
    fn off_mode_is_identity() {
        let raw = b"MRSB1 pretend bucket bytes".to_vec();
        assert_eq!(encode_vec(raw.clone(), CompressMode::Off), raw);
    }

    #[test]
    fn threshold_gates_framing() {
        let small = vec![7u8; 100];
        let big = vec![7u8; 1000];
        let mode = CompressMode::Threshold(512);
        assert_eq!(encode_vec(small.clone(), mode), small, "below threshold stays raw");
        let framed = encode_vec(big.clone(), mode);
        assert!(is_framed(&framed));
        assert!(framed.len() < big.len(), "repetitive payload compresses");
        assert_eq!(decode_vec(framed).unwrap(), big);
    }

    #[test]
    fn incompressible_payload_framed_uncompressed() {
        let mut x = 88172645463325252u64;
        let raw: Vec<u8> = (0..2048)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 40) as u8
            })
            .collect();
        let framed = encode_vec(raw.clone(), CompressMode::On);
        assert!(is_framed(&framed));
        assert_eq!(framed.len(), raw.len() + FRAME_HEADER_LEN, "stored, not inflated");
        assert_eq!(framed[5] & FLAG_COMPRESSED, 0);
        assert_eq!(decode_vec(framed).unwrap(), raw);
    }

    #[test]
    fn raw_passthrough_on_decode() {
        let raw = b"anything that is not the frame magic".to_vec();
        assert_eq!(decode_vec(raw.clone()).unwrap(), raw);
        assert_eq!(decode_frame(&raw).unwrap(), raw);
    }

    #[test]
    fn truncated_header_is_an_error() {
        let framed = encode_vec(vec![1u8; 600], CompressMode::On);
        for cut in FRAME_MAGIC.len()..FRAME_HEADER_LEN {
            assert_eq!(decode_vec(framed[..cut].to_vec()), Err(FrameError::Truncated));
        }
    }

    #[test]
    fn empty_input_roundtrips_in_every_mode() {
        for mode in [CompressMode::On, CompressMode::Off, CompressMode::Threshold(0)] {
            assert_eq!(decode_vec(encode_vec(Vec::new(), mode)).unwrap(), Vec::<u8>::new());
        }
    }

    /// Hand-rolled MRSB1 bucket bytes (single-byte varints suffice here).
    fn bucket_bytes(records: &[(&[u8], &[u8])]) -> Vec<u8> {
        let mut b = b"MRSB1".to_vec();
        b.push(records.len() as u8);
        for (k, v) in records {
            b.push(k.len() as u8);
            b.extend_from_slice(k);
            b.push(v.len() as u8);
            b.extend_from_slice(v);
        }
        b
    }

    #[test]
    fn sorted_flag_roundtrips_and_verifies() {
        let raw = bucket_bytes(&[(b"a", b"1"), (b"a", b"2"), (b"b", b"")]);
        let framed = encode_vec_sorted(raw.clone(), CompressMode::On, true);
        assert!(is_framed(&framed));
        assert_ne!(framed[5] & FLAG_SORTED_RUN, 0);
        let (back, sorted) = decode_frame_sorted(&framed).unwrap();
        assert_eq!(back, raw);
        assert!(sorted, "genuinely sorted claim must survive the spot-check");
        // The plain decoders accept the new flag bit too.
        assert_eq!(decode_vec(framed.clone()).unwrap(), raw);
        assert_eq!(decode_frame(&framed).unwrap(), raw);
    }

    #[test]
    fn unflagged_and_raw_input_report_unsorted() {
        let raw = bucket_bytes(&[(b"a", b"1")]);
        let framed = encode_vec(raw.clone(), CompressMode::On);
        assert_eq!(decode_frame_sorted(&framed).unwrap(), (raw.clone(), false));
        assert_eq!(decode_frame_sorted(&raw).unwrap(), (raw.clone(), false));
        let unflagged = encode_vec_sorted(raw.clone(), CompressMode::On, false);
        assert_eq!(decode_frame_sorted(&unflagged).unwrap(), (raw, false));
    }

    #[test]
    fn bogus_sorted_claim_is_demoted_and_counted() {
        let unsorted = bucket_bytes(&[(b"b", b"1"), (b"a", b"2")]);
        let framed = encode_vec_sorted(unsorted.clone(), CompressMode::On, true);
        let before = sorted_claim_rejects();
        let (back, sorted) = decode_frame_sorted(&framed).unwrap();
        assert_eq!(back, unsorted, "payload still decodes");
        assert!(!sorted, "claim must be demoted to unsorted");
        assert!(sorted_claim_rejects() > before, "the reject must be counted");
        // A claim on a non-bucket payload is equally bogus.
        let garbage = encode_vec_sorted(vec![9u8; 600], CompressMode::On, true);
        assert!(!decode_frame_sorted(&garbage).unwrap().1);
    }

    #[test]
    fn sorted_claim_below_threshold_stays_raw() {
        let raw = bucket_bytes(&[(b"a", b"1")]);
        let out = encode_vec_sorted(raw.clone(), CompressMode::Threshold(512), true);
        assert_eq!(out, raw, "no frame, so no flag to carry");
    }
}
