//! mrs-codec: the shuffle payload codec.
//!
//! Three dependency-free layers, bottom to top:
//!
//! - [`lz`] — an LZ4-style block compressor/decompressor,
//! - [`xxhash`] — one-shot xxHash64,
//! - [`frame`] — the versioned `MRSF1` frame (magic, flags,
//!   uncompressed length, checksum, payload) that the data plane puts
//!   on the wire around raw `MRSB1` bucket bytes.
//!
//! Producers call [`encode_vec`] once per bucket; every consumer —
//! remote fetch, colocated short-circuit, or shared-filesystem read —
//! calls [`decode_vec`]/[`decode_frame`], which verify the checksum and
//! transparently accept the legacy unframed format.

pub mod frame;
pub mod lz;
pub mod xxhash;

pub use frame::{
    decode_frame, decode_frame_sorted, decode_vec, encode_vec, encode_vec_sorted, is_framed,
    sorted_claim_rejects, CompressMode, FrameError, DEFAULT_COMPRESS_THRESHOLD, FLAG_SORTED_RUN,
    FRAME_HEADER_LEN, FRAME_MAGIC,
};
pub use lz::{compress, decompress, LzError};
pub use xxhash::xxh64;
