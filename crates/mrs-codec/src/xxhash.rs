//! xxHash64 — the frame checksum.
//!
//! Standard xxHash64 with the published prime constants, specialised to
//! one-shot hashing of a byte slice (the frame path never streams).
//! Chosen over CRC32 because it runs at memory speed without hardware
//! carry-less multiply and its 64-bit output makes an undetected
//! single-byte flip astronomically unlikely.

const P1: u64 = 0x9E3779B185EBCA87;
const P2: u64 = 0xC2B2AE3D27D4EB4F;
const P3: u64 = 0x165667B19E3779F9;
const P4: u64 = 0x85EBCA77C2B2AE63;
const P5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u64 {
    u32::from_le_bytes(b[..4].try_into().unwrap()) as u64
}

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(P2)).rotate_left(31).wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, lane: u64) -> u64 {
    (acc ^ round(0, lane)).wrapping_mul(P1).wrapping_add(P4)
}

/// One-shot xxHash64 of `data` with seed 0.
pub fn xxh64(data: &[u8]) -> u64 {
    let len = data.len() as u64;
    let mut rest = data;
    let mut acc = if rest.len() >= 32 {
        let (mut v1, mut v2, mut v3, mut v4) =
            (P1.wrapping_add(P2), P2, 0u64, 0u64.wrapping_sub(P1));
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        let mut a = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        a = merge_round(a, v1);
        a = merge_round(a, v2);
        a = merge_round(a, v3);
        merge_round(a, v4)
    } else {
        P5
    };
    acc = acc.wrapping_add(len);
    while rest.len() >= 8 {
        acc = (acc ^ round(0, read_u64(rest))).rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        acc = (acc ^ read_u32(rest).wrapping_mul(P1))
            .rotate_left(23)
            .wrapping_mul(P2)
            .wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        acc = (acc ^ (b as u64).wrapping_mul(P5)).rotate_left(11).wrapping_mul(P1);
    }
    acc ^= acc >> 33;
    acc = acc.wrapping_mul(P2);
    acc ^= acc >> 29;
    acc = acc.wrapping_mul(P3);
    acc ^= acc >> 32;
    acc
}

#[cfg(test)]
mod tests {
    use super::xxh64;

    // Reference vectors for seed 0 from the canonical xxHash test suite.
    #[test]
    fn matches_reference_vectors() {
        assert_eq!(xxh64(b""), 0xEF46DB3751D8E999);
        assert_eq!(xxh64(b"a"), 0xD24EC4F1A98C6E5B);
        assert_eq!(xxh64(b"abc"), 0x44BC2CF5AD770999);
        assert_eq!(xxh64(b"Nobody inspects the spammish repetition"), 0xFBCEA83C8A378BF1);
    }

    #[test]
    fn covers_every_tail_length() {
        // Exercise the 32-byte stripe loop plus all 0..32 tail paths.
        let data: Vec<u8> = (0u16..200).map(|i| (i * 7 % 251) as u8).collect();
        let mut seen = std::collections::HashSet::new();
        for cut in 0..data.len() {
            assert!(seen.insert(xxh64(&data[..cut])), "collision at prefix {cut}");
        }
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let data: Vec<u8> = (0..97u8).collect();
        let base = xxh64(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut m = data.clone();
                m[i] ^= 1 << bit;
                assert_ne!(xxh64(&m), base, "flip byte {i} bit {bit}");
            }
        }
    }
}
