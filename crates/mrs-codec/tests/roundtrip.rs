//! Property tests for the shuffle codec: compress→decompress identity
//! on arbitrary byte strings, frame round-trips in every mode, and a
//! corruption property — any single flipped payload byte must be caught
//! by the frame checksum, never silently decoded.

use mrs_codec::{
    compress, decode_vec, decompress, encode_vec, is_framed, CompressMode, FrameError,
    FRAME_HEADER_LEN,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn prop_lz_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn prop_lz_roundtrip_compressible(
        word in proptest::collection::vec(any::<u8>(), 1..8),
        reps in 1usize..600,
    ) {
        let data: Vec<u8> = word.iter().copied().cycle().take(word.len() * reps).collect();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn prop_lz_garbage_never_panics(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
        expected in 0usize..2048,
    ) {
        let _ = decompress(&garbage, expected);
    }

    #[test]
    fn prop_frame_roundtrip_all_modes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for mode in [
            CompressMode::On,
            CompressMode::Off,
            CompressMode::Threshold(0),
            CompressMode::Threshold(256),
            CompressMode::default(),
        ] {
            let wire = encode_vec(data.clone(), mode);
            prop_assert_eq!(decode_vec(wire).unwrap(), data.clone());
        }
    }

    #[test]
    fn prop_frame_decode_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_vec(garbage);
    }
}

/// Deterministic, exhaustive corruption sweep: for representative
/// payloads (compressible text, incompressible noise, tiny, empty),
/// flip every single byte of the encoded frame in turn and assert a
/// flip can never yield *wrong* data. A flip either errors, or — if it
/// is semantically neutral (e.g. the compressed-flag bit on an empty
/// payload) — reproduces the exact original bytes. The one designed
/// exception is the magic itself: a flipped magic byte demotes the
/// frame to legacy raw passthrough, returning the mangled frame bytes
/// verbatim, which the downstream `MRSB1` parser then rejects; here we
/// only require that it never reconstructs the original cleartext.
#[test]
fn every_single_byte_flip_is_caught() {
    let noise: Vec<u8> = {
        let mut x = 0x2545f4914f6cdd1du64;
        (0..1500)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 48) as u8
            })
            .collect()
    };
    let corpora: Vec<Vec<u8>> = vec![
        b"the shuffle the shuffle the shuffle moves the bytes ".repeat(40),
        noise,
        vec![0u8; 700],
        b"x".to_vec(),
        Vec::new(),
    ];
    for raw in corpora {
        let wire = encode_vec(raw.clone(), CompressMode::On);
        assert!(is_framed(&wire));
        for i in 0..wire.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bad = wire.clone();
                bad[i] ^= bit;
                match decode_vec(bad) {
                    Err(_) => {}
                    Ok(decoded) if i < 5 => {
                        // Corrupted magic: raw passthrough of the
                        // mangled frame bytes, never the cleartext.
                        assert_ne!(decoded, raw, "flip at byte {i} reproduced the cleartext");
                    }
                    Ok(decoded) => {
                        assert_eq!(decoded, raw, "flip at byte {i} produced wrong data");
                    }
                }
            }
        }
        // In particular, every payload byte flip must be a checksum error.
        for i in FRAME_HEADER_LEN..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            match decode_vec(bad) {
                Err(FrameError::Checksum { .. }) => {}
                other => panic!("payload flip at byte {i}: expected checksum error, got {other:?}"),
            }
        }
    }
}

/// The explicit compat matrix the cluster relies on: raw producer with
/// frame-aware consumer, and framed producer where the payload happens
/// to be below threshold (emitted raw) with the same consumer.
#[test]
fn mixed_mode_compat_matrix() {
    let raw = b"MRSB1-ish bucket payload, short".to_vec();
    // Raw producer -> frame-aware consumer.
    assert_eq!(decode_vec(encode_vec(raw.clone(), CompressMode::Off)).unwrap(), raw);
    // Threshold producer under threshold -> raw on wire -> consumer.
    let wire = encode_vec(raw.clone(), CompressMode::default());
    assert!(!is_framed(&wire));
    assert_eq!(decode_vec(wire).unwrap(), raw);
    // Compressing producer -> consumer.
    assert_eq!(decode_vec(encode_vec(raw.clone(), CompressMode::On)).unwrap(), raw);
}
