//! Differential testing: the tree interpreter and the bytecode VM must
//! agree on every program — values, errors, everything observable. This
//! is the invariant the Fig. 3 tier comparison rests on ("the algorithm
//! is identical in all cases").
//!
//! Programs are generated structurally (bounded loops, guarded divisions)
//! so that generation cannot produce hangs, then run on both engines.

use proptest::prelude::*;
use slowpy::ast::{BinOp, Expr, FnDef, Program, Stmt};
use slowpy::{Engine, Value};

/// Variables available in generated code (declared up-front).
const VARS: [&str; 4] = ["a", "b", "c", "d"];

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-100i64..100).prop_map(Expr::Int),
        (-100i64..100).prop_map(|i| Expr::Float(i as f64 / 4.0)),
        any::<bool>().prop_map(Expr::Bool),
        (0usize..VARS.len()).prop_map(|i| Expr::Var(VARS[i].to_owned())),
        // Reads of the shared list `l` (declared with 3 elements; index -3..5
        // exercises negative indexing and out-of-range errors, on which the
        // engines must also agree).
        (-3i64..5)
            .prop_map(|i| { Expr::Index(Box::new(Expr::Var("l".into())), Box::new(Expr::Int(i))) }),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.prop_map(|e| Expr::Neg(Box::new(e))),
        ]
    })
}

fn arb_assign() -> impl Strategy<Value = Stmt> + Clone {
    (0usize..VARS.len(), arb_expr()).prop_map(|(i, e)| Stmt::Assign(VARS[i].to_owned(), e)).boxed()
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let ifstmt = (
        arb_expr(),
        proptest::collection::vec(arb_assign(), 0..3),
        proptest::collection::vec(arb_assign(), 0..3),
    )
        .prop_map(|(cond, t, e)| Stmt::If(cond, t, e));
    let index_assign = (-3i64..5, arb_expr())
        .prop_map(|(i, e)| Stmt::IndexAssign(Expr::Var("l".into()), Expr::Int(i), e));
    prop_oneof![arb_assign(), ifstmt, index_assign]
}

/// A generated function: declares the four scalar variables and a shared
/// 3-element list, runs a statement sequence (optionally inside a bounded
/// counted loop), and returns a mix of every variable and list slot so all
/// state is observable.
fn arb_function() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(arb_stmt(), 0..8),
        0u8..4, // loop repetitions
    )
        .prop_map(|(stmts, reps)| {
            let mut body: Vec<Stmt> = VARS
                .iter()
                .enumerate()
                .map(|(i, v)| Stmt::Var((*v).to_owned(), Expr::Int(i as i64 + 1)))
                .collect();
            body.push(Stmt::Var(
                "l".into(),
                Expr::List(vec![Expr::Int(100), Expr::Int(200), Expr::Int(300)]),
            ));
            if reps == 0 {
                body.extend(stmts);
            } else {
                // var i = 0; while (i < reps) { stmts; i = i + 1; }
                body.push(Stmt::Var("i".into(), Expr::Int(0)));
                let mut loop_body = stmts;
                loop_body.push(Stmt::Assign(
                    "i".into(),
                    Expr::Bin(BinOp::Add, Box::new(Expr::Var("i".into())), Box::new(Expr::Int(1))),
                ));
                body.push(Stmt::While(
                    Expr::Bin(
                        BinOp::Lt,
                        Box::new(Expr::Var("i".into())),
                        Box::new(Expr::Int(reps as i64)),
                    ),
                    loop_body,
                ));
            }
            let lsum = (0..3).fold(Expr::Int(0), |acc, i| {
                Expr::Bin(
                    BinOp::Add,
                    Box::new(acc),
                    Box::new(Expr::Index(Box::new(Expr::Var("l".into())), Box::new(Expr::Int(i)))),
                )
            });
            body.push(Stmt::Return(Some(Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Var("a".into())),
                    Box::new(Expr::Bin(
                        BinOp::Mul,
                        Box::new(Expr::Var("b".into())),
                        Box::new(Expr::Int(3)),
                    )),
                )),
                Box::new(Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Bin(
                        BinOp::Sub,
                        Box::new(Expr::Var("c".into())),
                        Box::new(Expr::Var("d".into())),
                    )),
                    Box::new(lsum),
                )),
            ))));
            Program { functions: vec![FnDef { name: "f".into(), params: vec![], body, line: 1 }] }
        })
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        // NaN == NaN for the purpose of agreement.
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn tree_and_vm_agree_on_generated_programs(prog in arb_function()) {
        let engine = Engine::new();
        let tree = engine.run_tree(&prog, "f", &[]);
        let vm = engine.run_vm(&prog, "f", &[]);
        match (&tree, &vm) {
            (Ok(a), Ok(b)) => prop_assert!(
                values_equal(a, b),
                "tree={a:?} vm={b:?} prog={prog:?}"
            ),
            (Err(_), Err(_)) => {} // both failed: agreement on failure
            other => prop_assert!(false, "engines disagree on success: {other:?}"),
        }
    }
}

/// Hand-picked regression seeds for corners the generator touches rarely.
#[test]
fn corner_programs_agree() {
    let engine = Engine::new();
    let sources = [
        // division by zero only on one branch
        "fn f() { var a = 1; if (a > 0) { a = a + 1; } else { a = a / 0; } return a; }",
        // integer overflow wraps identically
        "fn f() { var a = 9223372036854775807; return a + 1; }",
        // deeply nested expressions
        "fn f() { return ((((1 + 2) * 3 - 4) * 5 + 6) * 7 - 8) * 9; }",
        // boolean arithmetic errors in both engines
        "fn f() { return true; } fn g() { return f() + 1; }",
        // negative float modulo (rem_euclid semantics)
        "fn f() { return -7.5 % 2.0; }",
        // integer // float mixing
        "fn f() { return 7 // 2.0 + 7.0 // 2; }",
    ];
    for src in sources {
        let prog = slowpy::parse(src).unwrap();
        let name = &prog.functions.last().unwrap().name.clone();
        let tree = engine.run_tree(&prog, name, &[]);
        let vm = engine.run_vm(&prog, name, &[]);
        match (&tree, &vm) {
            (Ok(a), Ok(b)) => assert!(values_equal(a, b), "{src}: {a:?} vs {b:?}"),
            (Err(_), Err(_)) => {}
            other => panic!("{src}: engines disagree: {other:?}"),
        }
    }
}
