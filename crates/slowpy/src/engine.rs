//! The embedding API: native functions and the two engines behind one door.
//!
//! Natives are how the "C inner loop via ctypes" tier works (§V-B): the
//! host registers a compiled Rust function under a name, and slowpy
//! programs call it like any other function — "we were able to very easily
//! replace the inner loop of our map task with optimized C code, while
//! leaving the rest of the loop unchanged".

use crate::ast::Program;
use crate::bytecode::{compile, Module};
use crate::tree::TreeInterp;
use crate::value::{RuntimeError, VResult, Value};
use crate::vm::Vm;
use std::collections::HashMap;
use std::rc::Rc;

/// A registered native function.
pub type NativeFn = Rc<dyn Fn(&[Value]) -> VResult>;

/// Holds the native-function table and runs programs on either engine.
#[derive(Clone, Default)]
pub struct Engine {
    natives: HashMap<String, NativeFn>,
}

fn num1(args: &[Value], what: &str) -> Result<f64, RuntimeError> {
    match args {
        [v] => v
            .as_f64()
            .ok_or_else(|| RuntimeError(format!("{what} expects a number, got {}", v.type_name()))),
        _ => Err(RuntimeError(format!("{what} expects 1 argument, got {}", args.len()))),
    }
}

impl Engine {
    /// An engine with the standard library registered: `sqrt`, `abs`,
    /// `floor`, `min`, `max`, `int`, `float`, `len`.
    pub fn new() -> Engine {
        let mut e = Engine { natives: HashMap::new() };
        e.register("sqrt", |args| Ok(Value::Float(num1(args, "sqrt")?.sqrt())));
        e.register("floor", |args| Ok(Value::Float(num1(args, "floor")?.floor())));
        e.register("abs", |args| match args {
            [Value::Int(i)] => Ok(Value::Int(i.wrapping_abs())),
            _ => Ok(Value::Float(num1(args, "abs")?.abs())),
        });
        e.register("min", |args| binary_minmax(args, "min", true));
        e.register("max", |args| binary_minmax(args, "max", false));
        e.register("int", |args| Ok(Value::Int(num1(args, "int")? as i64)));
        e.register("float", |args| Ok(Value::Float(num1(args, "float")?)));
        e.register("len", |args| match args {
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [Value::List(items)] => Ok(Value::Int(items.borrow().len() as i64)),
            [v] => {
                Err(RuntimeError(format!("len expects a string or list, got {}", v.type_name())))
            }
            _ => Err(RuntimeError(format!("len expects 1 argument, got {}", args.len()))),
        });
        e.register("push", |args| match args {
            [Value::List(items), v] => {
                items.borrow_mut().push(v.clone());
                Ok(Value::Nil)
            }
            _ => Err(RuntimeError("push expects (list, value)".into())),
        });
        e.register("pop", |args| match args {
            [Value::List(items)] => {
                items.borrow_mut().pop().ok_or_else(|| RuntimeError("pop from empty list".into()))
            }
            _ => Err(RuntimeError("pop expects a list".into())),
        });
        e
    }

    /// An engine with no natives at all.
    pub fn bare() -> Engine {
        Engine::default()
    }

    /// Register (or replace) a native function.
    pub fn register<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[Value]) -> VResult + 'static,
    {
        self.natives.insert(name.to_owned(), Rc::new(f));
    }

    /// The native table (used by both engines).
    pub fn natives(&self) -> &HashMap<String, NativeFn> {
        &self.natives
    }

    /// Run `func(args)` on the tree-walking interpreter (the "CPython"
    /// tier).
    pub fn run_tree(&self, program: &Program, func: &str, args: &[Value]) -> VResult {
        TreeInterp::new(program, &self.natives).call(func, args)
    }

    /// Compile a program against this engine's natives.
    pub fn compile(&self, program: &Program) -> Result<Module, RuntimeError> {
        compile(program, &self.natives)
    }

    /// Run `func(args)` on the bytecode VM (the "PyPy" tier). Compiles
    /// fresh each call; hold a [`Module`] and use [`Engine::run_module`]
    /// in loops.
    pub fn run_vm(&self, program: &Program, func: &str, args: &[Value]) -> VResult {
        let module = self.compile(program)?;
        self.run_module(&module, func, args)
    }

    /// Run a pre-compiled module function.
    pub fn run_module(&self, module: &Module, func: &str, args: &[Value]) -> VResult {
        Vm::new(module, &self.natives).call(func, args)
    }
}

fn binary_minmax(args: &[Value], what: &str, is_min: bool) -> VResult {
    match args {
        [Value::Int(a), Value::Int(b)] => {
            Ok(Value::Int(if is_min { *a.min(b) } else { *a.max(b) }))
        }
        [a, b] => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(Value::Float(if is_min { x.min(y) } else { x.max(y) })),
            _ => Err(RuntimeError(format!("{what} expects numbers"))),
        },
        _ => Err(RuntimeError(format!("{what} expects 2 arguments, got {}", args.len()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn both(e: &Engine, src: &str, func: &str, args: &[Value]) -> Value {
        let prog = parse(src).unwrap();
        let a = e.run_tree(&prog, func, args).unwrap();
        let b = e.run_vm(&prog, func, args).unwrap();
        assert_eq!(a, b, "tree and vm disagree on {func}");
        a
    }

    #[test]
    fn stdlib_functions_work_on_both_engines() {
        let e = Engine::new();
        let src = "fn f(x) { return sqrt(x) + floor(1.7) + abs(-3) + min(2, 9) + max(2, 9); }";
        assert_eq!(
            both(&e, src, "f", &[Value::Float(16.0)]),
            Value::Float(4.0 + 1.0 + 3.0 + 2.0 + 9.0)
        );
    }

    #[test]
    fn custom_native_is_callable() {
        let mut e = Engine::new();
        e.register("triple", |args| Ok(Value::Int(args[0].as_i64().unwrap_or(0) * 3)));
        assert_eq!(
            both(&e, "fn f(x) { return triple(x) + 1; }", "f", &[Value::Int(4)]),
            Value::Int(13)
        );
    }

    #[test]
    fn int_truncates_float() {
        let e = Engine::new();
        assert_eq!(both(&e, "fn f() { return int(3.9); }", "f", &[]), Value::Int(3));
    }

    #[test]
    fn len_counts_chars() {
        let e = Engine::new();
        assert_eq!(both(&e, "fn f() { return len(\"héllo\"); }", "f", &[]), Value::Int(5));
    }

    #[test]
    fn list_builtins_agree_on_both_engines() {
        let e = Engine::new();
        let src = "fn f() {\n var a = [];\n var i = 0;\n while (i < 5) { push(a, i * i); i = i + 1; }\n var last = pop(a);\n return len(a) * 100 + last;\n}";
        assert_eq!(both(&e, src, "f", &[]), Value::Int(4 * 100 + 16));
    }

    #[test]
    fn list_builtin_errors() {
        let e = Engine::new();
        let prog = parse("fn f() { return pop([]); }").unwrap();
        assert!(e.run_tree(&prog, "f", &[]).is_err());
        assert!(e.run_vm(&prog, "f", &[]).is_err());
    }

    #[test]
    fn native_arity_errors_on_both_engines() {
        let e = Engine::new();
        let prog = parse("fn f() { return sqrt(1, 2); }").unwrap();
        assert!(e.run_tree(&prog, "f", &[]).is_err());
        assert!(e.run_vm(&prog, "f", &[]).is_err());
    }
}
